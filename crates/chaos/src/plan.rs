//! Fault plans: seeded, declarative descriptions of a fault schedule.
//!
//! A plan is evaluated per message by [`ChaosHook`](crate::hook::ChaosHook).
//! Every decision is a pure function of `(seed, rule index, rel_src,
//! rel_dst, pair_seq)` — a *stateless* hash rather than a stateful RNG,
//! because messages from different sending threads interleave
//! nondeterministically and a shared RNG stream would hand different draws
//! to the same message across runs. The stateless form gives every message
//! the same verdict no matter the interleaving.

use std::time::Duration;

/// The fault classes the harness can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultClass {
    /// Silently lose matching messages (sender still sees success).
    Drop,
    /// Deliver matching messages late by `delay_ms`.
    Delay,
    /// Deliver matching messages twice (retransmission duplicate).
    Duplicate,
    /// Kill `kill_rel` when the triggering message fires the rule
    /// ("kill endpoint at step N" — N is the trigger's `pair_seq`).
    Kill,
    /// Network partition: drop messages crossing between two node groups
    /// while the trigger pair's sequence number is inside the window (the
    /// partition "heals" once traffic advances past `window.end`).
    Partition,
}

impl FaultClass {
    /// Stable lowercase name (used in traces).
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultClass::Drop => "drop",
            FaultClass::Delay => "delay",
            FaultClass::Duplicate => "duplicate",
            FaultClass::Kill => "kill",
            FaultClass::Partition => "partition",
        }
    }
}

/// Half-open `[start, end)` window over a pair's message sequence numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqWindow {
    /// First sequence number the rule applies to.
    pub start: u64,
    /// First sequence number past the window.
    pub end: u64,
}

impl SeqWindow {
    /// Window covering every message.
    pub fn all() -> Self {
        Self { start: 0, end: u64::MAX }
    }

    /// Window covering exactly one sequence number.
    pub fn exactly(n: u64) -> Self {
        Self { start: n, end: n + 1 }
    }

    /// Window covering `[0, end)`.
    pub fn first(end: u64) -> Self {
        Self { start: 0, end }
    }

    /// Whether `seq` lies inside the window.
    pub fn contains(&self, seq: u64) -> bool {
        seq >= self.start && seq < self.end
    }
}

/// Which messages a rule applies to. All `Some` constraints must hold;
/// the default (all `None`) matches everything.
///
/// Constraints are phrased in *normalized* endpoint ids (`rel_*` in
/// [`simnet::MsgView`]): 0 is the first endpoint registered on the fabric.
/// A [`ChaosWorld`](crate::harness::ChaosWorld) boots the control plane
/// first, so rel ids `0..=nodes` are the RM daemon plus the per-node PMIx
/// servers and job ranks follow densely after them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleScope {
    /// Both endpoints' rel ids must be in `[lo, hi)`.
    pub pair_within: Option<(u64, u64)>,
    /// The destination's rel id must be in `[lo, hi)`.
    pub dst_in: Option<(u64, u64)>,
    /// The message must cross between the two node groups (either
    /// direction). Messages whose src or dst node is unknown do not match.
    pub crossing: Option<(Vec<u32>, Vec<u32>)>,
}

impl RuleScope {
    /// Match every message.
    pub fn any() -> Self {
        Self::default()
    }

    /// Both endpoints within `[lo, hi)` (e.g. the control plane).
    pub fn pair_within(lo: u64, hi: u64) -> Self {
        Self { pair_within: Some((lo, hi)), ..Self::default() }
    }

    /// Destination within `[lo, hi)`.
    pub fn dst_in(lo: u64, hi: u64) -> Self {
        Self { dst_in: Some((lo, hi)), ..Self::default() }
    }

    /// Messages crossing between node groups `a` and `b`.
    pub fn crossing(a: Vec<u32>, b: Vec<u32>) -> Self {
        Self { crossing: Some((a, b)), ..Self::default() }
    }

    /// Restrict an existing scope to crossing traffic.
    pub fn and_crossing(mut self, a: Vec<u32>, b: Vec<u32>) -> Self {
        self.crossing = Some((a, b));
        self
    }

    /// Whether a message with these coordinates matches.
    pub fn matches(
        &self,
        rel_src: u64,
        rel_dst: u64,
        src_node: Option<u32>,
        dst_node: Option<u32>,
    ) -> bool {
        if let Some((lo, hi)) = self.pair_within {
            if !(rel_src >= lo && rel_src < hi && rel_dst >= lo && rel_dst < hi) {
                return false;
            }
        }
        if let Some((lo, hi)) = self.dst_in {
            if !(rel_dst >= lo && rel_dst < hi) {
                return false;
            }
        }
        if let Some((a, b)) = &self.crossing {
            let (Some(s), Some(d)) = (src_node, dst_node) else { return false };
            let a_to_b = a.contains(&s) && b.contains(&d);
            let b_to_a = b.contains(&s) && a.contains(&d);
            if !(a_to_b || b_to_a) {
                return false;
            }
        }
        true
    }
}

/// One fault rule. The first rule of a plan that matches a message wins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRule {
    /// What to inject.
    pub class: FaultClass,
    /// Which messages are candidates.
    pub scope: RuleScope,
    /// Which per-pair sequence numbers are candidates.
    pub window: SeqWindow,
    /// Firing probability in per-mille (1000 = every candidate fires),
    /// decided by the seeded per-message hash.
    pub per_mille: u16,
    /// Extra delivery delay for [`FaultClass::Delay`], in milliseconds.
    pub delay_ms: u64,
    /// Normalized endpoint id to kill for [`FaultClass::Kill`].
    pub kill_rel: u64,
}

impl FaultRule {
    /// A rule that always fires within `scope` and `window`.
    pub fn new(class: FaultClass, scope: RuleScope, window: SeqWindow) -> Self {
        Self { class, scope, window, per_mille: 1000, delay_ms: 0, kill_rel: 0 }
    }

    /// Set the firing probability (per-mille).
    pub fn with_per_mille(mut self, per_mille: u16) -> Self {
        self.per_mille = per_mille;
        self
    }

    /// Set the delay duration (for [`FaultClass::Delay`]).
    pub fn with_delay_ms(mut self, ms: u64) -> Self {
        self.delay_ms = ms;
        self
    }

    /// Set the kill victim (for [`FaultClass::Kill`]).
    pub fn with_kill_rel(mut self, rel: u64) -> Self {
        self.kill_rel = rel;
        self
    }

    /// The delay this rule injects.
    pub fn delay(&self) -> Duration {
        Duration::from_millis(self.delay_ms)
    }
}

/// A seeded fault schedule: evaluated per message, reproducible from the
/// seed alone (given the same scenario).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The seed all per-message decisions are derived from.
    pub seed: u64,
    /// Rules, in priority order (first match wins).
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// A plan with no rules (useful as a disarmed baseline).
    pub fn quiet(seed: u64) -> Self {
        Self { seed, rules: Vec::new() }
    }

    /// A plan with the given rules.
    pub fn new(seed: u64, rules: Vec<FaultRule>) -> Self {
        Self { seed, rules }
    }

    /// The deterministic per-message firing decision for rule `rule_idx`:
    /// a splitmix64-style hash of `(seed, rule_idx, rel_src, rel_dst,
    /// pair_seq)` reduced to per-mille.
    pub fn fires(&self, rule_idx: usize, rel_src: u64, rel_dst: u64, pair_seq: u64) -> bool {
        let rule = &self.rules[rule_idx];
        if rule.per_mille >= 1000 {
            return true;
        }
        let h = decision_hash(self.seed, rule_idx as u64, rel_src, rel_dst, pair_seq);
        (h % 1000) < rule.per_mille as u64
    }
}

/// Stateless decision hash (splitmix64 finalizer over the mixed inputs).
pub(crate) fn decision_hash(seed: u64, rule: u64, rel_src: u64, rel_dst: u64, seq: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(rule.wrapping_mul(0xd1342543de82ef95))
        .wrapping_add(rel_src.wrapping_mul(0xbf58476d1ce4e5b9))
        .wrapping_add(rel_dst.wrapping_mul(0x94d049bb133111eb))
        .wrapping_add(seq.wrapping_mul(0x2545f4914f6cdd1d));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_contain_what_they_say() {
        assert!(SeqWindow::all().contains(0));
        assert!(SeqWindow::all().contains(u64::MAX - 1));
        assert!(SeqWindow::exactly(3).contains(3));
        assert!(!SeqWindow::exactly(3).contains(2));
        assert!(!SeqWindow::exactly(3).contains(4));
        assert!(SeqWindow::first(2).contains(1));
        assert!(!SeqWindow::first(2).contains(2));
    }

    #[test]
    fn scope_constraints_compose() {
        let s = RuleScope::pair_within(0, 3).and_crossing(vec![0], vec![1]);
        assert!(s.matches(1, 2, Some(0), Some(1)));
        assert!(s.matches(2, 1, Some(1), Some(0)), "either direction crosses");
        assert!(!s.matches(1, 5, Some(0), Some(1)), "pair_within violated");
        assert!(!s.matches(1, 2, Some(0), Some(0)), "same side, not crossing");
        assert!(!s.matches(1, 2, None, Some(1)), "unknown node never crosses");
        assert!(RuleScope::any().matches(9, 9, None, None));
        assert!(RuleScope::dst_in(4, 6).matches(0, 5, None, None));
        assert!(!RuleScope::dst_in(4, 6).matches(0, 6, None, None));
    }

    #[test]
    fn firing_decision_is_deterministic_and_seed_sensitive() {
        let rule = FaultRule::new(FaultClass::Drop, RuleScope::any(), SeqWindow::all())
            .with_per_mille(500);
        let a = FaultPlan::new(7, vec![rule.clone()]);
        let b = FaultPlan::new(7, vec![rule.clone()]);
        let c = FaultPlan::new(8, vec![rule]);
        let mut diverged = false;
        for seq in 0..256 {
            assert_eq!(a.fires(0, 1, 2, seq), b.fires(0, 1, 2, seq), "same seed, same draw");
            if a.fires(0, 1, 2, seq) != c.fires(0, 1, 2, seq) {
                diverged = true;
            }
        }
        assert!(diverged, "different seeds must yield different schedules");
    }

    #[test]
    fn per_mille_bounds_are_respected() {
        let always = FaultPlan::new(
            1,
            vec![FaultRule::new(FaultClass::Drop, RuleScope::any(), SeqWindow::all())],
        );
        let never = FaultPlan::new(
            1,
            vec![FaultRule::new(FaultClass::Drop, RuleScope::any(), SeqWindow::all())
                .with_per_mille(0)],
        );
        for seq in 0..64 {
            assert!(always.fires(0, 0, 1, seq));
            assert!(!never.fires(0, 0, 1, seq));
        }
    }
}
