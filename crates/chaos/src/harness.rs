//! The chaos world: a booted DVM with a fault plan armed on its fabric.

use crate::hook::{ChaosHook, FaultRecord};
use crate::invariant::{InvariantChecker, InvariantCtx, Violation};
use crate::plan::FaultPlan;
use crate::trace;
use parking_lot::Mutex;
use pmix::{PmixUniverse, ProcId};
use prrte::Launcher;
use simnet::{EndpointId, FaultHook, SimTestbed};
use std::sync::Arc;

/// Serializes chaos worlds within one process. Endpoint ids come from a
/// process-global counter, so normalized (`rel_*`) ids are dense and
/// run-stable only while a single world at a time is registering
/// endpoints. Tests that each build a world therefore serialize here
/// automatically, whatever the test harness's thread count.
static WORLD_GATE: Mutex<()> = Mutex::new(());

/// The bundled outcome of one chaos run.
#[derive(Debug)]
pub struct RunReport {
    /// The seed the plan was built from.
    pub seed: u64,
    /// Canonical (sorted) fault trace.
    pub trace: Vec<FaultRecord>,
    /// The trace as deterministic JSON — byte-identical across runs of the
    /// same (seed, scenario).
    pub trace_json: String,
    /// Invariant violations (empty = all hold).
    pub violations: Vec<Violation>,
    /// Flight-recorder snapshot (`introspect/v1` JSON), captured at finish
    /// time when the run killed anything or violated any invariant: the
    /// live cross-layer state — in-flight requests, held CIDs and PGCIDs,
    /// handshake-cache entries, epoch pins, server shard occupancy — the
    /// post-mortem needs. `None` for clean, kill-free runs.
    pub flight_recorder: Option<String>,
}

impl RunReport {
    /// Panic with every violation if any invariant failed.
    pub fn assert_clean(&self) {
        assert!(
            self.violations.is_empty(),
            "seed {} violated {} invariant(s):\n{}",
            self.seed,
            self.violations.len(),
            self.violations
                .iter()
                .map(|v| format!("  {v}"))
                .collect::<Vec<_>>()
                .join("\n"),
        );
    }
}

/// A DVM with a [`ChaosHook`] armed: run a workload through
/// [`ChaosWorld::launcher`], kill processes via [`ChaosWorld::kill_proc`],
/// then [`ChaosWorld::finish`] to disarm and collect the report.
pub struct ChaosWorld {
    launcher: Launcher,
    hook: Arc<ChaosHook>,
    explicit_kills: Mutex<Vec<EndpointId>>,
    // Held for the world's lifetime; declared last so the universe (and its
    // endpoint registrations) tears down before the next world boots.
    _gate: parking_lot::MutexGuard<'static, ()>,
}

impl ChaosWorld {
    /// Boot a DVM over `testbed` and arm `plan` on its fabric.
    pub fn new(testbed: SimTestbed, plan: FaultPlan) -> Self {
        let gate = WORLD_GATE.lock();
        let nodes = testbed.cluster.node_ids().count();
        let launcher = Launcher::new(testbed);
        let hook = Arc::new(ChaosHook::new(plan));
        launcher
            .universe()
            .fabric()
            .set_fault_hook(Some(hook.clone() as Arc<dyn FaultHook>));
        debug_assert_eq!(
            launcher.universe().server_endpoints().len(),
            nodes + 1,
            "control plane = RM + one server per node",
        );
        Self { launcher, hook, explicit_kills: Mutex::new(Vec::new()), _gate: gate }
    }

    /// The launcher (spawn jobs through this).
    pub fn launcher(&self) -> &Launcher {
        &self.launcher
    }

    /// The universe under the launcher.
    pub fn universe(&self) -> &Arc<PmixUniverse> {
        self.launcher.universe()
    }

    /// The armed hook.
    pub fn hook(&self) -> &Arc<ChaosHook> {
        &self.hook
    }

    /// Number of control-plane endpoints (RM daemon + per-node servers).
    /// They registered first, so their normalized ids are `0..this`.
    pub fn control_plane(&self) -> u64 {
        self.universe().server_endpoints().len() as u64
    }

    /// Normalized endpoint id of `rank` in the world's **first** spawned
    /// job (ranks register densely right after the control plane).
    pub fn rank_rel(&self, rank: u32) -> u64 {
        self.control_plane() + rank as u64
    }

    /// Kill a process explicitly (recorded for the failure-delivery check).
    pub fn kill_proc(&self, proc: &ProcId) {
        if let Ok(entry) = self.universe().registry().locate(proc) {
            self.explicit_kills.lock().push(entry.endpoint);
        }
        let _ = self.universe().kill_proc(proc);
    }

    /// Disarm the hook and evaluate every invariant.
    ///
    /// `reinit_ok` reports whether a post-kill session re-init succeeded
    /// (if the scenario performed one); `cid_agree` lists process names
    /// whose `cid` counters must match (symmetric scenarios only).
    pub fn finish(self, reinit_ok: Option<bool>, cid_agree: Vec<String>) -> RunReport {
        let fabric = self.universe().fabric();
        fabric.set_fault_hook(None);
        let seed = self.hook.plan().seed;
        let trace = trace::canonicalize(self.hook.records());
        let trace_json = trace::to_json(&trace);
        let mut expected_dead = self.hook.killed();
        expected_dead.extend(self.explicit_kills.lock().iter().copied());
        let obs = fabric.obs();
        let any_kills = !expected_dead.is_empty();
        // Snapshot every tracked survivors pset (`Session::track_faults`)
        // down to endpoints, so the checker can audit that no killed
        // process is still listed as a survivor.
        let registry = self.universe().registry();
        let tracked_psets: Vec<(String, Vec<simnet::EndpointId>)> = registry
            .pset_names()
            .into_iter()
            .filter(|n| n.starts_with(pmix::SURVIVORS_PSET_PREFIX))
            .filter_map(|n| {
                let members = registry.pset_members(&n).ok()?;
                let eps = members
                    .iter()
                    .filter_map(|p| registry.locate(p).ok().map(|e| e.endpoint))
                    .collect();
                Some((n, eps))
            })
            .collect();
        let violations = InvariantChecker::standard().check(&InvariantCtx {
            obs: &obs,
            fabric,
            trace: &trace,
            expected_dead,
            reinit_ok,
            cid_agree,
            tracked_psets,
        });
        // Auto-attach the flight recorder whenever there is something to
        // diagnose: a violated invariant or an injected/explicit kill.
        let flight_recorder = (any_kills || !violations.is_empty())
            .then(|| mpi_sessions::introspect::snapshot_string(self.universe()));
        RunReport { seed, trace, trace_json, violations, flight_recorder }
    }
}

impl Drop for ChaosWorld {
    fn drop(&mut self) {
        // Belt and braces: never let an armed hook see teardown traffic.
        self.universe().fabric().set_fault_hook(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultClass, FaultRule, RuleScope, SeqWindow};
    use prrte::JobSpec;

    #[test]
    fn quiet_world_runs_a_job_and_reports_clean() {
        let world = ChaosWorld::new(SimTestbed::tiny(2, 1), FaultPlan::quiet(0));
        let out = world
            .launcher()
            .spawn(JobSpec::new(2), |ctx| ctx.rank())
            .join()
            .unwrap();
        assert_eq!(out, vec![0, 1]);
        let report = world.finish(None, Vec::new());
        assert!(report.trace.is_empty());
        assert_eq!(report.trace_json, "[]");
        report.assert_clean();
    }

    #[test]
    fn explicit_kill_is_expected_by_the_failure_check() {
        let world = ChaosWorld::new(SimTestbed::tiny(2, 1), FaultPlan::quiet(1));
        let handle = world.launcher().spawn(JobSpec::new(2), |ctx| {
            if ctx.rank() == 1 {
                std::thread::sleep(std::time::Duration::from_millis(400));
            }
            ctx.rank()
        });
        let victim = ProcId::new(handle.nspace(), 1);
        std::thread::sleep(std::time::Duration::from_millis(100));
        world.kill_proc(&victim);
        let _ = handle.join();
        world.finish(None, Vec::new()).assert_clean();
    }

    #[test]
    fn control_plane_and_rank_rel_are_dense() {
        let world = ChaosWorld::new(SimTestbed::tiny(3, 2), FaultPlan::quiet(2));
        assert_eq!(world.control_plane(), 4, "RM + 3 node servers");
        assert_eq!(world.rank_rel(0), 4);
        assert_eq!(world.rank_rel(5), 9);
        // The fabric's base endpoint is the RM (first registration).
        let fabric = world.universe().fabric();
        let rm = world.universe().server_endpoints()[0];
        assert_eq!(fabric.base_endpoint_id(), rm.0);
        world.finish(None, Vec::new()).assert_clean();
    }

    #[test]
    fn clean_run_attaches_no_flight_recorder() {
        let world = ChaosWorld::new(SimTestbed::tiny(1, 1), FaultPlan::quiet(7));
        let out = world.launcher().spawn(JobSpec::new(1), |ctx| ctx.rank()).join().unwrap();
        assert_eq!(out, vec![0]);
        let report = world.finish(None, Vec::new());
        report.assert_clean();
        assert!(report.flight_recorder.is_none(), "nothing to diagnose, nothing attached");
    }

    #[test]
    fn kill_attaches_a_parseable_flight_recorder() {
        let world = ChaosWorld::new(SimTestbed::tiny(2, 1), FaultPlan::quiet(8));
        let handle = world.launcher().spawn(JobSpec::new(2), |ctx| {
            if ctx.rank() == 1 {
                std::thread::sleep(std::time::Duration::from_millis(400));
            }
            ctx.rank()
        });
        let victim = ProcId::new(handle.nspace(), 1);
        std::thread::sleep(std::time::Duration::from_millis(100));
        world.kill_proc(&victim);
        let _ = handle.join();
        let report = world.finish(None, Vec::new());
        report.assert_clean();
        let artifact = report.flight_recorder.expect("a kill always attaches the recorder");
        let v = serde_json::parse_value(&artifact).expect("artifact is valid JSON");
        let obj = v.as_object().expect("artifact is an object");
        assert_eq!(
            obj.get("schema").and_then(|s| s.as_str()),
            Some(mpi_sessions::introspect::SCHEMA)
        );
        for section in ["processes", "registry", "servers", "cvars"] {
            assert!(obj.contains_key(section), "missing section {section}");
        }
    }

    #[test]
    fn armed_drop_rule_is_traced_and_accounted() {
        let rule = FaultRule::new(
            FaultClass::Drop,
            RuleScope::any(),
            SeqWindow::exactly(0),
        );
        let world = ChaosWorld::new(SimTestbed::tiny(1, 2), FaultPlan::new(5, vec![rule]));
        // Raw endpoint traffic below the PMIx layer: first message dropped,
        // second delivered.
        let fabric = world.universe().fabric();
        let a = fabric.register(simnet::NodeId(0));
        let b = fabric.register(simnet::NodeId(0));
        a.sender().send(b.id(), bytes::Bytes::from_static(b"lost")).unwrap();
        a.sender().send(b.id(), bytes::Bytes::from_static(b"kept")).unwrap();
        let got = b.recv_timeout(std::time::Duration::from_secs(2)).unwrap();
        assert_eq!(&got.payload[..], b"kept");
        let report = world.finish(None, Vec::new());
        assert_eq!(report.trace.len(), 1);
        assert_eq!(report.trace[0].class, FaultClass::Drop);
        assert_eq!(report.trace[0].pair_seq, 0);
        report.assert_clean();
    }
}
