//! # chaos — deterministic fault injection for the sessions stack
//!
//! A seeded schedule-exploration harness over the whole simulated stack
//! (simnet fabric → PMIx servers → PRRTE jobs → MPI sessions). The pieces:
//!
//! * [`plan`] — [`FaultPlan`]: a seed plus a list of [`FaultRule`]s
//!   describing *which* messages to drop / delay / duplicate, *when* to
//!   partition node groups, and *which* endpoint to kill at step N. Rules
//!   fire as pure functions of the seed and the message coordinates
//!   (normalized endpoint pair + per-pair sequence number) — never of
//!   wall-clock time or raw ids, so the same seed yields the same schedule
//!   on every run;
//! * [`hook`] — [`ChaosHook`]: the [`simnet::FaultHook`] implementation
//!   that evaluates a plan per message and records every injected fault;
//! * [`trace`] — canonicalization of the fault record into a sorted,
//!   byte-stable JSON trace (thread interleaving perturbs record *order*,
//!   never record *content*, so sorting restores determinism);
//! * [`invariant`] — [`InvariantChecker`]: post-run assertions over the
//!   observability registry (exactly-once exCID handshakes, PGCID
//!   accounting and cross-server agreement, abort/fanout exclusivity,
//!   failure-event delivery, session re-init) — the protocol properties
//!   that must survive *any* fault schedule;
//! * [`harness`] — [`ChaosWorld`]: boots a DVM with the hook armed,
//!   serializes chaos runs (normalized endpoint ids are only stable while
//!   one world at a time registers endpoints), and bundles trace +
//!   invariant results into a [`RunReport`].
//!
//! A failing seed is a complete reproduction recipe: rebuild the same
//! [`FaultPlan`] from the seed, re-run the same scenario, and the identical
//! fault schedule (and trace) comes out.

pub mod harness;
pub mod hook;
pub mod invariant;
pub mod plan;
pub mod trace;

pub use harness::{ChaosWorld, RunReport};
pub use hook::{ChaosHook, FaultRecord};
pub use invariant::{InvariantChecker, InvariantCtx, Violation};
pub use plan::{FaultClass, FaultPlan, FaultRule, RuleScope, SeqWindow};
