//! The fabric-side evaluator of a [`FaultPlan`].

use crate::plan::{FaultClass, FaultPlan};
use parking_lot::Mutex;
use simnet::{EndpointId, FaultAction, FaultHook, FaultVerdict, MsgView};

/// One injected fault, as recorded by [`ChaosHook`].
///
/// Records are keyed entirely by run-stable coordinates (normalized
/// endpoint pair + per-pair sequence number), so the *set* of records for a
/// given (seed, scenario) is identical across runs even though the order
/// the hook appends them in depends on thread scheduling.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FaultRecord {
    /// Normalized source endpoint id.
    pub rel_src: u64,
    /// Normalized destination endpoint id.
    pub rel_dst: u64,
    /// Sequence number of the message on its (src, dst) pair.
    pub pair_seq: u64,
    /// The injected fault class.
    pub class: FaultClass,
    /// Class-specific detail: delay in ms for `Delay`, the victim's
    /// normalized id for `Kill`, 0 otherwise.
    pub detail: u64,
    /// Payload length of the affected message.
    pub len: usize,
}

/// A [`FaultHook`] that evaluates a [`FaultPlan`] per message and records
/// every fault it injects.
pub struct ChaosHook {
    plan: FaultPlan,
    records: Mutex<Vec<FaultRecord>>,
    killed: Mutex<Vec<EndpointId>>,
}

impl ChaosHook {
    /// Wrap a plan.
    pub fn new(plan: FaultPlan) -> Self {
        Self { plan, records: Mutex::new(Vec::new()), killed: Mutex::new(Vec::new()) }
    }

    /// The plan being evaluated.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Snapshot of every fault injected so far (append order — pass through
    /// [`crate::trace::canonicalize`] before comparing across runs).
    pub fn records(&self) -> Vec<FaultRecord> {
        self.records.lock().clone()
    }

    /// Raw ids of every endpoint this hook killed.
    pub fn killed(&self) -> Vec<EndpointId> {
        self.killed.lock().clone()
    }
}

impl FaultHook for ChaosHook {
    fn on_message(&self, msg: &MsgView) -> FaultVerdict {
        for (idx, rule) in self.plan.rules.iter().enumerate() {
            let scope_ok = rule.scope.matches(
                msg.rel_src,
                msg.rel_dst,
                msg.src_node.map(|n| n.0),
                msg.dst_node.map(|n| n.0),
            );
            if !scope_ok || !rule.window.contains(msg.pair_seq) {
                continue;
            }
            if !self.plan.fires(idx, msg.rel_src, msg.rel_dst, msg.pair_seq) {
                continue;
            }
            let (action, detail, kills) = match rule.class {
                FaultClass::Drop | FaultClass::Partition => (FaultAction::Drop, 0, Vec::new()),
                FaultClass::Delay => (FaultAction::Delay(rule.delay()), rule.delay_ms, Vec::new()),
                FaultClass::Duplicate => (FaultAction::Duplicate, 0, Vec::new()),
                FaultClass::Kill => {
                    // rel ids are offsets from the fabric's first endpoint;
                    // the triggering message carries both forms, which
                    // recovers the base without consulting the fabric.
                    let base = msg.src.0 - msg.rel_src;
                    let victim = EndpointId(base + rule.kill_rel);
                    self.killed.lock().push(victim);
                    (FaultAction::Deliver, rule.kill_rel, vec![victim])
                }
            };
            self.records.lock().push(FaultRecord {
                rel_src: msg.rel_src,
                rel_dst: msg.rel_dst,
                pair_seq: msg.pair_seq,
                class: rule.class,
                detail,
                len: msg.len,
            });
            return FaultVerdict { action, kills };
        }
        FaultVerdict::deliver()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultRule, RuleScope, SeqWindow};
    use simnet::NodeId;

    fn view(rel_src: u64, rel_dst: u64, seq: u64) -> MsgView {
        MsgView {
            src: EndpointId(100 + rel_src),
            dst: EndpointId(100 + rel_dst),
            rel_src,
            rel_dst,
            src_node: Some(NodeId(0)),
            dst_node: Some(NodeId(1)),
            pair_seq: seq,
            len: 32,
        }
    }

    #[test]
    fn first_matching_rule_wins_and_is_recorded() {
        let plan = FaultPlan::new(
            3,
            vec![
                FaultRule::new(FaultClass::Drop, RuleScope::any(), SeqWindow::exactly(0)),
                FaultRule::new(FaultClass::Delay, RuleScope::any(), SeqWindow::all())
                    .with_delay_ms(5),
            ],
        );
        let hook = ChaosHook::new(plan);
        let v0 = hook.on_message(&view(1, 2, 0));
        assert_eq!(v0.action, FaultAction::Drop, "seq 0 hits the drop rule first");
        let v1 = hook.on_message(&view(1, 2, 1));
        assert!(matches!(v1.action, FaultAction::Delay(_)));
        let recs = hook.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].class, FaultClass::Drop);
        assert_eq!(recs[1].class, FaultClass::Delay);
        assert_eq!(recs[1].detail, 5);
    }

    #[test]
    fn kill_rule_targets_rel_id_via_base_recovery() {
        let plan = FaultPlan::new(
            9,
            vec![FaultRule::new(FaultClass::Kill, RuleScope::any(), SeqWindow::exactly(2))
                .with_kill_rel(7)],
        );
        let hook = ChaosHook::new(plan);
        assert!(hook.on_message(&view(1, 2, 1)).kills.is_empty());
        let v = hook.on_message(&view(1, 2, 2));
        // base = raw 101 - rel 1 = 100, so victim = endpoint 107.
        assert_eq!(v.kills, vec![EndpointId(107)]);
        assert_eq!(v.action, FaultAction::Deliver);
        assert_eq!(hook.killed(), vec![EndpointId(107)]);
    }

    #[test]
    fn unmatched_messages_are_untouched_and_unrecorded() {
        let plan = FaultPlan::new(
            1,
            vec![FaultRule::new(
                FaultClass::Drop,
                RuleScope::dst_in(50, 60),
                SeqWindow::all(),
            )],
        );
        let hook = ChaosHook::new(plan);
        let v = hook.on_message(&view(1, 2, 0));
        assert_eq!(v.action, FaultAction::Deliver);
        assert!(v.kills.is_empty());
        assert!(hook.records().is_empty());
    }
}
