//! Post-run protocol invariants, checked from the observability registry.
//!
//! Every fault schedule — whatever it drops, delays, duplicates, kills or
//! partitions — must leave the stack in a state where these hold:
//!
//! 1. **handshake-unique** — at most one completed exCID handshake per
//!    (process, exCID, peer, cache generation); the `pml.handshake` event
//!    count matches the `handshakes` counter. The cache generation bumps
//!    whenever the PML evicts or invalidates a cache entry, so a repeat
//!    handshake is legal exactly when a removal happened in between —
//!    needed because recycled PGCIDs revisit old (exCID, peer) keys.
//! 2. **fanout-abort-exclusive** — no server both completes (fan-out) and
//!    aborts the same collective epoch: a failed group construct must not
//!    leak its result (or its PGCID) to waiting clients.
//! 3. **pgcid-agreement** — every server that fans out a given group
//!    construct epoch reports the same PGCID and member count.
//! 4. **pgcid-accounting** — every PGCID exposed to the stack (group
//!    fan-outs, exCID refills) is non-zero, a PGCID feeds at most one refill
//!    per lifetime (one more than its `pgcid.recycled` count), and the
//!    number of distinct PGCIDs in use never exceeds what the RM allocated.
//! 5. **failure-delivery** — a fresh failure watcher converges on exactly
//!    the endpoints the run killed: nothing lost, nothing invented (this
//!    exercises the late-subscriber replay path).
//! 6. **reinit** — when the scenario re-initialized a session after a kill,
//!    that re-init must have succeeded.
//! 7. **fault-counter-match** — the fabric's fault counters agree with the
//!    hook's trace: every injected fault was accounted, no phantom faults.
//! 8. **cid-agreement** — in symmetric scenarios, all listed processes
//!    performed the same number of exCID refills and derivations.
//! 9. **pset-epoch-monotonic** — the registry's `pset.update` stream
//!    carries strictly increasing epochs: no torn, reordered or duplicated
//!    pset version ever reached a subscriber.
//! 10. **rebuild-epoch-published** — every `session.rebuild` pinned an
//!     epoch the registry actually published; a rebuild against an invented
//!     epoch means group membership diverged from the runtime's view.
//! 11. **stale-epoch** — no rebuilt communicator was retired with traffic
//!     still queued against it: a nonzero `stale_unexpected` at retire
//!     means a message crossed a pset epoch boundary.
//! 12. **request-terminal** — every issued setup request (`req.issued`)
//!     reached a terminal state on its process: a matching `req.completed`
//!     or `req.failed` with the same request id. A request that is neither
//!     is a construction stranded mid-state-machine by the fault schedule
//!     (a cancelled request completes first — drop drives the collective
//!     to completion — so cancellation still pairs with `req.completed`).
//!
//! 13. **stall-terminal** — every stall the progress-engine watchdog
//!     declared (`req.stalled`) cleared (`req.unstalled`) or escalated to a
//!     typed terminal state (`req.completed` / `req.failed`). A stall that
//!     does neither is a hung construction the fault schedule wedged
//!     *permanently* — exactly the failure mode the watchdog exists to
//!     surface. Stall/unstall episodes alternate per request, so the count
//!     algebra (`stalls ≤ unstalls`, or one extra stall closed by a
//!     terminal event) checks episode closure without needing ring order.
//!
//! 14. **lazy-resolve-terminal** — every lazy peer resolution a process
//!     began (`pml.lazy_resolve` phase `begin`) reached a terminal `end`
//!     for the same peer, and every `end` carries an outcome of
//!     `resolved` or `failed`. A begin with no end is a send parked
//!     forever behind a KVS fetch the fault schedule wedged; an end with
//!     no begin (per peer) is resolver bookkeeping gone wrong.
//!
//! 15. **survivors-exclude-dead** — at run end, no tracked survivors pset
//!     (`mpi://survivors/...`, the queryable faults pset maintained by the
//!     failure bridge) still names a process whose endpoint the run killed.
//!     A dead member lingering there means the bridge's prune raced or
//!     lost the death, and every epoch-pinned repair over the pset would
//!     re-admit a corpse.
//!
//! Ring overflow (`events_dropped > 0`) is itself a violation: the event-
//! based checks are only sound over a complete ring, so scenarios must be
//! sized to fit it.

use crate::hook::FaultRecord;
use crate::plan::FaultClass;
use simnet::{EndpointId, Fabric};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

/// One invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant failed.
    pub invariant: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

/// Everything a check needs about one finished run.
pub struct InvariantCtx<'a> {
    /// The fabric-wide observability registry.
    pub obs: &'a obs::Registry,
    /// The fabric itself (for the failure-replay probe).
    pub fabric: &'a Fabric,
    /// The hook's fault trace (canonical or raw — only counted/matched).
    pub trace: &'a [FaultRecord],
    /// Every endpoint the run killed (hook verdicts + explicit kills).
    pub expected_dead: Vec<EndpointId>,
    /// Whether a post-kill session re-init succeeded, if the scenario did one.
    pub reinit_ok: Option<bool>,
    /// Process names whose `cid` counters must agree (symmetric scenarios).
    pub cid_agree: Vec<String>,
    /// Final membership of every tracked survivors pset, resolved to
    /// endpoints (name, member endpoints). The harness snapshots these from
    /// the registry at `finish()`.
    pub tracked_psets: Vec<(String, Vec<EndpointId>)>,
}

/// The invariant suite. Construct with [`InvariantChecker::standard`] and
/// run [`InvariantChecker::check`]; an empty result means all hold.
#[derive(Default)]
pub struct InvariantChecker;

impl InvariantChecker {
    /// The full standard suite.
    pub fn standard() -> Self {
        Self
    }

    /// Run every check; returns all violations found.
    pub fn check(&self, ctx: &InvariantCtx<'_>) -> Vec<Violation> {
        let mut out = Vec::new();
        self.check_ring(ctx, &mut out);
        self.check_handshakes(ctx, &mut out);
        self.check_fanout_abort(ctx, &mut out);
        self.check_pgcids(ctx, &mut out);
        self.check_failure_delivery(ctx, &mut out);
        self.check_reinit(ctx, &mut out);
        self.check_fault_counters(ctx, &mut out);
        self.check_cid_agreement(ctx, &mut out);
        self.check_pset_epochs(ctx, &mut out);
        self.check_stale_epochs(ctx, &mut out);
        self.check_request_terminal(ctx, &mut out);
        self.check_stall_terminal(ctx, &mut out);
        self.check_lazy_resolve_terminal(ctx, &mut out);
        self.check_survivors_exclude_dead(ctx, &mut out);
        out
    }

    fn check_ring(&self, ctx: &InvariantCtx<'_>, out: &mut Vec<Violation>) {
        let dropped = ctx.obs.events_dropped();
        if dropped > 0 {
            out.push(Violation {
                invariant: "obs-ring",
                detail: format!("{dropped} events dropped; event checks are unsound"),
            });
        }
    }

    fn check_handshakes(&self, ctx: &InvariantCtx<'_>, out: &mut Vec<Violation>) {
        let events = ctx.obs.events_named("pml.handshake");
        let mut seen: BTreeSet<(String, u64, u64, u64, u64)> = BTreeSet::new();
        for e in &events {
            // `cache_gen` distinguishes a legal re-handshake (the cached
            // peer state was evicted or invalidated in between, bumping the
            // generation) from a true double handshake. Events predating
            // the attribute default to generation 0.
            let key = (
                e.process.clone(),
                attr_u64(e, "pgcid"),
                attr_u64(e, "derivation"),
                attr_u64(e, "peer"),
                attr_u64(e, "cache_gen"),
            );
            if !seen.insert(key.clone()) {
                out.push(Violation {
                    invariant: "handshake-unique",
                    detail: format!(
                        "process {} completed the handshake with peer {} twice \
                         (pgcid {}, derivation {}) within cache generation {}",
                        key.0, key.3, key.1, key.2, key.4
                    ),
                });
            }
        }
        let counted = ctx.obs.sum_counters("pml", "handshakes");
        if counted != events.len() as u64 {
            out.push(Violation {
                invariant: "handshake-unique",
                detail: format!(
                    "handshakes counter says {counted} but {} events recorded",
                    events.len()
                ),
            });
        }
    }

    fn check_fanout_abort(&self, ctx: &InvariantCtx<'_>, out: &mut Vec<Violation>) {
        let fanouts = ctx.obs.events_named("group.fanout");
        let aborted: BTreeSet<(String, String, String, u64)> = ctx
            .obs
            .events_named("group.abort")
            .iter()
            .map(|e| {
                (
                    e.process.clone(),
                    attr_str(e, "kind"),
                    attr_str(e, "op"),
                    attr_u64(e, "epoch"),
                )
            })
            .collect();
        for e in &fanouts {
            let key = (
                e.process.clone(),
                attr_str(e, "kind"),
                attr_str(e, "op"),
                attr_u64(e, "epoch"),
            );
            if aborted.contains(&key) {
                out.push(Violation {
                    invariant: "fanout-abort-exclusive",
                    detail: format!(
                        "server {} both completed and aborted {} \"{}\" epoch {}",
                        key.0, key.1, key.2, key.3
                    ),
                });
            }
        }
        // pgcid-agreement: all fan-outs of one construct epoch must agree.
        let mut per_op: BTreeMap<(String, u64), BTreeSet<(u64, u64)>> = BTreeMap::new();
        for e in &fanouts {
            if attr_str(e, "kind") != "group_construct" {
                continue;
            }
            per_op
                .entry((attr_str(e, "op"), attr_u64(e, "epoch")))
                .or_default()
                .insert((attr_u64(e, "pgcid"), attr_u64(e, "members")));
        }
        for ((op, epoch), views) in per_op {
            if views.len() > 1 {
                out.push(Violation {
                    invariant: "pgcid-agreement",
                    detail: format!(
                        "construct \"{op}\" epoch {epoch} fanned out with divergent \
                         (pgcid, members) views: {views:?}"
                    ),
                });
            }
        }
    }

    fn check_pgcids(&self, ctx: &InvariantCtx<'_>, out: &mut Vec<Violation>) {
        let mut used: BTreeSet<u64> = BTreeSet::new();
        for e in ctx.obs.events_named("group.fanout") {
            let p = attr_u64(&e, "pgcid");
            if p != 0 {
                used.insert(p);
            }
        }
        let mut refill_pgcids: Vec<u64> = Vec::new();
        for e in ctx.obs.events_named("cid.refill") {
            let p = attr_u64(&e, "pgcid");
            if p == 0 {
                out.push(Violation {
                    invariant: "pgcid-accounting",
                    detail: format!("process {} refilled its exCID pool with pgcid 0", e.process),
                });
            }
            used.insert(p);
            refill_pgcids.push(p);
        }
        // A PGCID may feed one refill per *lifetime*: its first use plus one
        // more for every time a group destruct returned it to the pool.
        let mut refill_counts: BTreeMap<u64, u64> = BTreeMap::new();
        for p in &refill_pgcids {
            *refill_counts.entry(*p).or_insert(0) += 1;
        }
        let mut recycled: BTreeMap<u64, u64> = BTreeMap::new();
        for e in ctx.obs.events_named("pgcid.recycled") {
            *recycled.entry(attr_u64(&e, "pgcid")).or_insert(0) += 1;
        }
        for (p, n) in &refill_counts {
            let allowed = 1 + recycled.get(p).copied().unwrap_or(0);
            if *n > allowed {
                out.push(Violation {
                    invariant: "pgcid-accounting",
                    detail: format!(
                        "pgcid {p} fed {n} exCID refills but was recycled only {} time(s)",
                        allowed - 1
                    ),
                });
            }
        }
        let allocated = ctx.obs.sum_counters("pmix", "pgcid_allocated");
        if (used.len() as u64) > allocated {
            out.push(Violation {
                invariant: "pgcid-accounting",
                detail: format!(
                    "{} distinct PGCIDs in use but RM only allocated {allocated}",
                    used.len()
                ),
            });
        }
    }

    fn check_failure_delivery(&self, ctx: &InvariantCtx<'_>, out: &mut Vec<Violation>) {
        // A fresh watcher replays every prior death: the late-subscriber
        // guarantee means its replay IS the fabric's failure knowledge.
        let mut watcher = ctx.fabric.watch_failures();
        let mut seen: BTreeSet<EndpointId> = BTreeSet::new();
        // Replay is synchronous at subscription; drain with a short grace
        // period in case a verdict kill is still being broadcast.
        while let Some(ev) = watcher.recv_timeout(Duration::from_millis(50)) {
            seen.insert(ev.endpoint);
        }
        let expected: BTreeSet<EndpointId> = ctx.expected_dead.iter().copied().collect();
        for ep in expected.difference(&seen) {
            out.push(Violation {
                invariant: "failure-delivery",
                detail: format!("killed endpoint {ep:?} never reached failure watchers"),
            });
        }
        for ep in seen.difference(&expected) {
            out.push(Violation {
                invariant: "failure-delivery",
                detail: format!("watchers saw a death nobody injected: {ep:?}"),
            });
        }
    }

    fn check_reinit(&self, ctx: &InvariantCtx<'_>, out: &mut Vec<Violation>) {
        if ctx.reinit_ok == Some(false) {
            out.push(Violation {
                invariant: "reinit",
                detail: "session re-initialization after the kill failed".into(),
            });
        }
    }

    fn check_fault_counters(&self, ctx: &InvariantCtx<'_>, out: &mut Vec<Violation>) {
        let count = |classes: &[FaultClass]| {
            ctx.trace.iter().filter(|r| classes.contains(&r.class)).count() as u64
        };
        let pairs = [
            ("faults_dropped", count(&[FaultClass::Drop, FaultClass::Partition])),
            ("faults_delayed", count(&[FaultClass::Delay])),
            ("faults_duplicated", count(&[FaultClass::Duplicate])),
        ];
        for (name, traced) in pairs {
            let counted = ctx.obs.sum_counters("fabric", name);
            if counted != traced {
                out.push(Violation {
                    invariant: "fault-counter-match",
                    detail: format!("fabric {name} = {counted} but the trace holds {traced}"),
                });
            }
        }
    }

    fn check_pset_epochs(&self, ctx: &InvariantCtx<'_>, out: &mut Vec<Violation>) {
        // The bridge emits one `pset.update` per registry change under the
        // emission lock, so ring order is publication order: epochs must be
        // strictly increasing across all psets (the epoch is global).
        let updates = ctx.obs.events_named("pset.update");
        let epochs: Vec<u64> = updates.iter().map(|e| attr_u64(e, "epoch")).collect();
        for w in epochs.windows(2) {
            if w[0] >= w[1] {
                out.push(Violation {
                    invariant: "pset-epoch-monotonic",
                    detail: format!(
                        "pset.update stream is not strictly increasing: {} then {}",
                        w[0], w[1]
                    ),
                });
            }
        }
        // Every rebuild must have pinned a published epoch.
        let published: BTreeSet<u64> = epochs.iter().copied().collect();
        for e in ctx.obs.events_named("session.rebuild") {
            let epoch = attr_u64(&e, "epoch");
            if !published.contains(&epoch) {
                out.push(Violation {
                    invariant: "rebuild-epoch-published",
                    detail: format!(
                        "process {} rebuilt '{}' at epoch {epoch}, which the registry \
                         never published",
                        e.process,
                        attr_str(&e, "pset"),
                    ),
                });
            }
        }
    }

    fn check_stale_epochs(&self, ctx: &InvariantCtx<'_>, out: &mut Vec<Violation>) {
        for e in ctx.obs.events_named("elastic.retire") {
            let stale = attr_u64(&e, "stale_unexpected");
            if stale > 0 {
                out.push(Violation {
                    invariant: "stale-epoch",
                    detail: format!(
                        "process {} retired its '{}' epoch-{} communicator with {stale} \
                         unexpected message(s) still queued — traffic crossed an epoch \
                         boundary",
                        e.process,
                        attr_str(&e, "pset"),
                        attr_u64(&e, "epoch"),
                    ),
                });
            }
        }
    }

    fn check_request_terminal(&self, ctx: &InvariantCtx<'_>, out: &mut Vec<Violation>) {
        let mut terminal: BTreeSet<(String, u64)> = BTreeSet::new();
        for name in ["req.completed", "req.failed"] {
            for e in ctx.obs.events_named(name) {
                terminal.insert((e.process.clone(), attr_u64(&e, "id")));
            }
        }
        for e in ctx.obs.events_named("req.issued") {
            let key = (e.process.clone(), attr_u64(&e, "id"));
            // No kill exemption: a request on a killed endpoint must still
            // terminate — its stages *fail* when the fabric is gone, and
            // both `wait` and drop drive the machine to that terminal state.
            if terminal.contains(&key) {
                continue;
            }
            out.push(Violation {
                invariant: "request-terminal",
                detail: format!(
                    "process {} issued setup request {} ({}) that never completed, \
                     failed, or was cancelled",
                    key.0,
                    key.1,
                    attr_str(&e, "op"),
                ),
            });
        }
    }

    fn check_stall_terminal(&self, ctx: &InvariantCtx<'_>, out: &mut Vec<Violation>) {
        let mut stalls: BTreeMap<(String, u64), (u64, u64)> = BTreeMap::new();
        for e in ctx.obs.events_named("req.stalled") {
            stalls.entry((e.process.clone(), attr_u64(&e, "id"))).or_default().0 += 1;
        }
        for e in ctx.obs.events_named("req.unstalled") {
            stalls.entry((e.process.clone(), attr_u64(&e, "id"))).or_default().1 += 1;
        }
        let mut terminal: BTreeSet<(String, u64)> = BTreeSet::new();
        for name in ["req.completed", "req.failed"] {
            for e in ctx.obs.events_named(name) {
                terminal.insert((e.process.clone(), attr_u64(&e, "id")));
            }
        }
        for ((process, id), (stalled, unstalled)) in stalls {
            // Episodes alternate stall → unstall; at most one episode can
            // be open at the end, and only if a terminal event closed it.
            if stalled > unstalled + 1 || (stalled == unstalled + 1 && !terminal.contains(&(process.clone(), id))) {
                out.push(Violation {
                    invariant: "stall-terminal",
                    detail: format!(
                        "process {process} request {id}: {stalled} stall(s), \
                         {unstalled} clear(s), no terminal state — a wedged \
                         construction the watchdog flagged but nothing resolved"
                    ),
                });
            } else if unstalled > stalled {
                out.push(Violation {
                    invariant: "stall-terminal",
                    detail: format!(
                        "process {process} request {id}: {unstalled} unstall \
                         event(s) but only {stalled} stall(s) — watchdog \
                         accounting is broken"
                    ),
                });
            }
        }
    }

    fn check_lazy_resolve_terminal(&self, ctx: &InvariantCtx<'_>, out: &mut Vec<Violation>) {
        // Per (process, peer): resolutions begun vs. terminated. Lazy
        // resolution is a per-peer state machine (one fetch in flight per
        // peer, later senders park behind it), so the pair counts must
        // balance exactly once the run has drained.
        let mut tallies: BTreeMap<(String, String), (u64, u64)> = BTreeMap::new();
        for e in ctx.obs.events_named("pml.lazy_resolve") {
            let key = (e.process.clone(), attr_str(&e, "peer"));
            let entry = tallies.entry(key.clone()).or_default();
            match attr_str(&e, "phase").as_str() {
                "begin" => entry.0 += 1,
                "end" => {
                    entry.1 += 1;
                    let outcome = attr_str(&e, "outcome");
                    if outcome != "resolved" && outcome != "failed" {
                        out.push(Violation {
                            invariant: "lazy-resolve-terminal",
                            detail: format!(
                                "process {} ended its resolution of peer {} with \
                                 untyped outcome \"{outcome}\"",
                                key.0, key.1
                            ),
                        });
                    }
                }
                other => {
                    out.push(Violation {
                        invariant: "lazy-resolve-terminal",
                        detail: format!(
                            "process {} emitted a lazy-resolve event with unknown \
                             phase \"{other}\" for peer {}",
                            key.0, key.1
                        ),
                    });
                }
            }
        }
        for ((process, peer), (begins, ends)) in tallies {
            if begins != ends {
                out.push(Violation {
                    invariant: "lazy-resolve-terminal",
                    detail: format!(
                        "process {process} began {begins} resolution(s) of peer \
                         {peer} but ended {ends} — a send is parked behind a \
                         KVS fetch that never terminated"
                    ),
                });
            }
        }
    }

    fn check_survivors_exclude_dead(&self, ctx: &InvariantCtx<'_>, out: &mut Vec<Violation>) {
        let dead: BTreeSet<EndpointId> = ctx.expected_dead.iter().copied().collect();
        for (pset, members) in &ctx.tracked_psets {
            for ep in members {
                if dead.contains(ep) {
                    out.push(Violation {
                        invariant: "survivors-exclude-dead",
                        detail: format!(
                            "survivors pset '{pset}' still names killed endpoint {ep:?} \
                             at run end — the failure bridge never pruned it"
                        ),
                    });
                }
            }
        }
    }

    fn check_cid_agreement(&self, ctx: &InvariantCtx<'_>, out: &mut Vec<Violation>) {
        for name in ["refills", "derivations"] {
            let values: BTreeSet<u64> = ctx
                .cid_agree
                .iter()
                .map(|p| ctx.obs.counter_value(p, "cid", name))
                .collect();
            if values.len() > 1 {
                out.push(Violation {
                    invariant: "cid-agreement",
                    detail: format!(
                        "cid.{name} diverges across ranks {:?}: {values:?}",
                        ctx.cid_agree
                    ),
                });
            }
        }
    }
}

fn attr_u64(e: &obs::Event, k: &str) -> u64 {
    e.attr(k).and_then(|v| v.as_u64()).unwrap_or(0)
}

fn attr_str(e: &obs::Event, k: &str) -> String {
    e.attr(k).and_then(|v| v.as_str()).unwrap_or("").to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{CostModel, NodeId};

    fn ctx_for<'a>(
        obs: &'a obs::Registry,
        fabric: &'a Fabric,
        trace: &'a [FaultRecord],
    ) -> InvariantCtx<'a> {
        InvariantCtx {
            obs,
            fabric,
            trace,
            expected_dead: Vec::new(),
            reinit_ok: None,
            cid_agree: Vec::new(),
            tracked_psets: Vec::new(),
        }
    }

    #[test]
    fn clean_world_has_no_violations() {
        let fabric = Fabric::new(CostModel::zero());
        let obs = fabric.obs();
        let v = InvariantChecker::standard().check(&ctx_for(&obs, &fabric, &[]));
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn duplicate_handshake_is_flagged() {
        let fabric = Fabric::new(CostModel::zero());
        let obs = fabric.obs();
        let attrs = || {
            vec![
                ("pgcid".into(), 5u64.into()),
                ("derivation".into(), 0u64.into()),
                ("peer".into(), 1u64.into()),
            ]
        };
        obs.event("ep1", "pml", "pml.handshake", attrs());
        obs.event("ep1", "pml", "pml.handshake", attrs());
        obs.counter("ep1", "pml", "handshakes").add(2);
        // Account for the pgcid so only the handshake check trips.
        obs.counter("server:0", "pmix", "pgcid_allocated").inc();
        let v = InvariantChecker::standard().check(&ctx_for(&obs, &fabric, &[]));
        assert_eq!(v.len(), 1, "got: {v:?}");
        assert_eq!(v[0].invariant, "handshake-unique");
    }

    #[test]
    fn rehandshake_across_cache_generations_is_legal() {
        let fabric = Fabric::new(CostModel::zero());
        let obs = fabric.obs();
        let attrs = |generation: u64| {
            vec![
                ("pgcid".into(), 5u64.into()),
                ("derivation".into(), 0u64.into()),
                ("peer".into(), 1u64.into()),
                ("cache_gen".into(), generation.into()),
            ]
        };
        // Same (process, exCID, peer) twice — legal because an eviction
        // bumped the generation between the two completions.
        obs.event("ep1", "pml", "pml.handshake", attrs(0));
        obs.event("ep1", "pml", "pml.handshake", attrs(3));
        obs.counter("ep1", "pml", "handshakes").add(2);
        obs.counter("server:0", "pmix", "pgcid_allocated").inc();
        let v = InvariantChecker::standard().check(&ctx_for(&obs, &fabric, &[]));
        assert!(v.is_empty(), "got: {v:?}");
        // A third completion reusing generation 3 is the real bug.
        obs.event("ep1", "pml", "pml.handshake", attrs(3));
        obs.counter("ep1", "pml", "handshakes").inc();
        let v = InvariantChecker::standard().check(&ctx_for(&obs, &fabric, &[]));
        assert_eq!(v.len(), 1, "got: {v:?}");
        assert_eq!(v[0].invariant, "handshake-unique");
    }

    #[test]
    fn recycled_pgcid_may_feed_one_more_refill() {
        let fabric = Fabric::new(CostModel::zero());
        let obs = fabric.obs();
        let refill = || {
            obs.event("r0", "cid", "cid.refill", vec![("pgcid".into(), 9u64.into())]);
        };
        obs.counter("server:0", "pmix", "pgcid_allocated").inc();
        refill();
        refill();
        // Two refills of pgcid 9 with no recycle in between: a violation.
        let v = InvariantChecker::standard().check(&ctx_for(&obs, &fabric, &[]));
        assert_eq!(v.len(), 1, "got: {v:?}");
        assert_eq!(v[0].invariant, "pgcid-accounting");
        // The destruct-time recycle legitimizes the reuse.
        obs.event("server:0", "pmix", "pgcid.recycled", vec![(
            "pgcid".into(),
            9u64.into(),
        )]);
        let v = InvariantChecker::standard().check(&ctx_for(&obs, &fabric, &[]));
        assert!(v.is_empty(), "got: {v:?}");
    }

    #[test]
    fn fanout_after_abort_is_flagged() {
        let fabric = Fabric::new(CostModel::zero());
        let obs = fabric.obs();
        let base = || {
            vec![
                ("op".into(), "g".into()),
                ("kind".into(), "group_construct".into()),
                ("epoch".into(), 1u64.into()),
            ]
        };
        obs.event("server:0", "pmix", "group.abort", {
            let mut a = base();
            a.push(("reason".into(), "timeout".into()));
            a
        });
        obs.event("server:0", "pmix", "group.fanout", {
            let mut a = base();
            a.push(("members".into(), 2u64.into()));
            a.push(("pgcid".into(), 0u64.into()));
            a
        });
        let v = InvariantChecker::standard().check(&ctx_for(&obs, &fabric, &[]));
        assert_eq!(v.len(), 1, "got: {v:?}");
        assert_eq!(v[0].invariant, "fanout-abort-exclusive");
    }

    #[test]
    fn pgcid_overdraw_and_disagreement_are_flagged() {
        let fabric = Fabric::new(CostModel::zero());
        let obs = fabric.obs();
        // Two servers fan the same epoch out with different pgcids, and the
        // RM never allocated anything.
        for (srv, pgcid) in [("server:0", 11u64), ("server:1", 12u64)] {
            obs.event(srv, "pmix", "group.fanout", vec![
                ("op".into(), "g".into()),
                ("kind".into(), "group_construct".into()),
                ("epoch".into(), 1u64.into()),
                ("members".into(), 2u64.into()),
                ("pgcid".into(), pgcid.into()),
            ]);
        }
        let v = InvariantChecker::standard().check(&ctx_for(&obs, &fabric, &[]));
        let names: Vec<&str> = v.iter().map(|x| x.invariant).collect();
        assert!(names.contains(&"pgcid-agreement"), "got: {v:?}");
        assert!(names.contains(&"pgcid-accounting"), "got: {v:?}");
    }

    #[test]
    fn failure_delivery_mismatches_are_flagged() {
        let fabric = Fabric::new(CostModel::zero());
        let obs = fabric.obs();
        let a = fabric.register(NodeId(0));
        let b = fabric.register(NodeId(0));
        fabric.kill(a.id());
        // `a` died but is not expected; `b` is expected but alive.
        let mut ctx = ctx_for(&obs, &fabric, &[]);
        ctx.expected_dead = vec![b.id()];
        let v = InvariantChecker::standard().check(&ctx);
        assert_eq!(v.len(), 2, "got: {v:?}");
        assert!(v.iter().all(|x| x.invariant == "failure-delivery"));
    }

    #[test]
    fn fault_counters_must_match_trace() {
        let fabric = Fabric::new(CostModel::zero());
        let obs = fabric.obs();
        let trace = vec![FaultRecord {
            rel_src: 0,
            rel_dst: 1,
            pair_seq: 0,
            class: FaultClass::Drop,
            detail: 0,
            len: 4,
        }];
        // Trace says one drop, fabric counted none.
        let v = InvariantChecker::standard().check(&ctx_for(&obs, &fabric, &trace));
        assert_eq!(v.len(), 1, "got: {v:?}");
        assert_eq!(v[0].invariant, "fault-counter-match");
    }

    #[test]
    fn pset_epoch_violations_are_flagged() {
        let fabric = Fabric::new(CostModel::zero());
        let obs = fabric.obs();
        let update = |epoch: u64| {
            obs.event("registry", "pmix", "pset.update", vec![
                ("pset".into(), "app://x".into()),
                ("epoch".into(), epoch.into()),
                ("kind".into(), "membership".into()),
                ("members".into(), 2u64.into()),
            ]);
        };
        update(1);
        update(3);
        update(3); // duplicate epoch: monotonicity broken
        // A rebuild against an epoch nobody published.
        obs.event("ep9", "session", "session.rebuild", vec![
            ("pset".into(), "app://x".into()),
            ("epoch".into(), 7u64.into()),
        ]);
        let v = InvariantChecker::standard().check(&ctx_for(&obs, &fabric, &[]));
        let names: Vec<&str> = v.iter().map(|x| x.invariant).collect();
        assert!(names.contains(&"pset-epoch-monotonic"), "got: {v:?}");
        assert!(names.contains(&"rebuild-epoch-published"), "got: {v:?}");
        assert_eq!(v.len(), 2, "got: {v:?}");
    }

    #[test]
    fn stale_retire_is_flagged_and_clean_retire_is_not() {
        let fabric = Fabric::new(CostModel::zero());
        let obs = fabric.obs();
        let retire = |stale: u64| {
            obs.event("ep4", "session", "elastic.retire", vec![
                ("pset".into(), "app://x".into()),
                ("epoch".into(), 2u64.into()),
                ("stale_unexpected".into(), stale.into()),
            ]);
        };
        retire(0);
        let v = InvariantChecker::standard().check(&ctx_for(&obs, &fabric, &[]));
        assert!(v.is_empty(), "clean retire flagged: {v:?}");
        retire(3);
        let v = InvariantChecker::standard().check(&ctx_for(&obs, &fabric, &[]));
        assert_eq!(v.len(), 1, "got: {v:?}");
        assert_eq!(v[0].invariant, "stale-epoch");
        assert!(v[0].detail.contains("3 unexpected"));
    }

    #[test]
    fn stranded_setup_request_is_flagged() {
        let fabric = Fabric::new(CostModel::zero());
        let obs = fabric.obs();
        let ev = |name: &str, id: u64| {
            obs.event("ns:0", "req", name, vec![
                ("op".into(), "comm_create_from_group".into()),
                ("id".into(), id.into()),
            ]);
        };
        ev("req.issued", 1);
        ev("req.completed", 1);
        ev("req.issued", 2);
        ev("req.failed", 2);
        let v = InvariantChecker::standard().check(&ctx_for(&obs, &fabric, &[]));
        assert!(v.is_empty(), "terminated requests flagged: {v:?}");
        ev("req.issued", 3); // never reaches a terminal event
        let v = InvariantChecker::standard().check(&ctx_for(&obs, &fabric, &[]));
        assert_eq!(v.len(), 1, "got: {v:?}");
        assert_eq!(v[0].invariant, "request-terminal");
        assert!(v[0].detail.contains("request 3"));
    }

    #[test]
    fn stranded_lazy_resolution_is_flagged() {
        let fabric = Fabric::new(CostModel::zero());
        let obs = fabric.obs();
        let ev = |phase: &str, outcome: Option<&str>| {
            let mut attrs: Vec<(String, obs::AttrValue)> =
                vec![("peer".into(), "job:1".into()), ("phase".into(), phase.into())];
            if let Some(o) = outcome {
                attrs.push(("outcome".into(), o.into()));
            }
            obs.event("job:0", "pml", "pml.lazy_resolve", attrs);
        };
        // A resolved round trip and a typed failure are both clean.
        ev("begin", None);
        ev("end", Some("resolved"));
        ev("begin", None);
        ev("end", Some("failed"));
        let v = InvariantChecker::standard().check(&ctx_for(&obs, &fabric, &[]));
        assert!(v.is_empty(), "terminated resolutions flagged: {v:?}");
        // A begin with no end: a send parked forever.
        ev("begin", None);
        let v = InvariantChecker::standard().check(&ctx_for(&obs, &fabric, &[]));
        assert_eq!(v.len(), 1, "got: {v:?}");
        assert_eq!(v[0].invariant, "lazy-resolve-terminal");
        assert!(v[0].detail.contains("began 3"));
        // Closing it with an untyped outcome is its own violation.
        ev("end", Some("shrug"));
        let v = InvariantChecker::standard().check(&ctx_for(&obs, &fabric, &[]));
        assert_eq!(v.len(), 1, "got: {v:?}");
        assert!(v[0].detail.contains("untyped outcome"));
    }

    #[test]
    fn dead_member_in_survivors_pset_is_flagged() {
        let fabric = Fabric::new(CostModel::zero());
        let obs = fabric.obs();
        let a = fabric.register(NodeId(0));
        let b = fabric.register(NodeId(0));
        fabric.kill(a.id());
        let mut ctx = ctx_for(&obs, &fabric, &[]);
        ctx.expected_dead = vec![a.id()];
        // Live member only: clean.
        ctx.tracked_psets = vec![("mpi://survivors/j".into(), vec![b.id()])];
        let v = InvariantChecker::standard().check(&ctx);
        assert!(v.is_empty(), "pruned pset flagged: {v:?}");
        // The killed endpoint still listed: the bridge lost the prune.
        ctx.tracked_psets = vec![("mpi://survivors/j".into(), vec![a.id(), b.id()])];
        let v = InvariantChecker::standard().check(&ctx);
        assert_eq!(v.len(), 1, "got: {v:?}");
        assert_eq!(v[0].invariant, "survivors-exclude-dead");
    }

    #[test]
    fn reinit_failure_and_cid_divergence_are_flagged() {
        let fabric = Fabric::new(CostModel::zero());
        let obs = fabric.obs();
        obs.counter("r0", "cid", "refills").inc();
        // r1 never refilled: divergence.
        let mut ctx = ctx_for(&obs, &fabric, &[]);
        ctx.reinit_ok = Some(false);
        ctx.cid_agree = vec!["r0".into(), "r1".into()];
        let v = InvariantChecker::standard().check(&ctx);
        let names: Vec<&str> = v.iter().map(|x| x.invariant).collect();
        assert!(names.contains(&"reinit"), "got: {v:?}");
        assert!(names.contains(&"cid-agreement"), "got: {v:?}");
    }
}
