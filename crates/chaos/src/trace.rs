//! Canonical fault traces.
//!
//! The hook appends records in real-time order, which varies run to run
//! with thread scheduling. The record *contents* are keyed purely by
//! run-stable coordinates, so sorting yields a canonical form: the same
//! (seed, scenario) produces a byte-identical trace on every run — the
//! reproducibility contract the chaos suite asserts.

use crate::hook::FaultRecord;

/// Sort records into canonical order: by pair, then sequence number, then
/// class. Duplicates are preserved (a message can be recorded once only,
/// so none arise in practice).
pub fn canonicalize(mut records: Vec<FaultRecord>) -> Vec<FaultRecord> {
    records.sort();
    records
}

/// Render a canonical trace as one deterministic JSON array (sorted keys,
/// no whitespace variance, no floats).
pub fn to_json(records: &[FaultRecord]) -> String {
    let mut out = String::from("[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"class\":\"{}\",\"detail\":{},\"len\":{},\"pair_seq\":{},\"rel_dst\":{},\"rel_src\":{}}}",
            r.class.as_str(),
            r.detail,
            r.len,
            r.pair_seq,
            r.rel_dst,
            r.rel_src,
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultClass;

    fn rec(rel_src: u64, rel_dst: u64, seq: u64, class: FaultClass) -> FaultRecord {
        FaultRecord { rel_src, rel_dst, pair_seq: seq, class, detail: 0, len: 8 }
    }

    #[test]
    fn canonical_order_is_interleaving_independent() {
        let a = vec![
            rec(1, 2, 3, FaultClass::Drop),
            rec(0, 1, 0, FaultClass::Delay),
            rec(1, 2, 0, FaultClass::Drop),
        ];
        let mut b = a.clone();
        b.reverse();
        assert_eq!(canonicalize(a), canonicalize(b));
    }

    #[test]
    fn json_is_stable_and_parseable_shape() {
        let t = canonicalize(vec![
            rec(1, 2, 1, FaultClass::Kill),
            rec(0, 1, 0, FaultClass::Drop),
        ]);
        let j = to_json(&t);
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\"class\":\"drop\""));
        assert!(j.contains("\"class\":\"kill\""));
        assert_eq!(j, to_json(&t), "rendering is pure");
        assert_eq!(to_json(&[]), "[]");
    }
}
