//! Property tests for the observability primitives: counters only ever go
//! up, and the event ring never exceeds its bound — even under concurrent
//! writers.

use std::sync::Arc;
use std::thread;

use obs::Registry;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        .. ProptestConfig::default()
    })]

    /// Interleaved increments from several threads never make a counter
    /// read go backwards, and the final value is exactly the sum of all
    /// increments (no lost updates).
    #[test]
    fn prop_counters_are_monotonic_under_concurrency(
        per_thread in proptest::collection::vec(1u64..200, 2..6)
    ) {
        let reg = Arc::new(Registry::new());
        let expected: u64 = per_thread.iter().sum();
        let handles: Vec<_> = per_thread
            .iter()
            .cloned()
            .map(|n| {
                let reg = reg.clone();
                thread::spawn(move || {
                    let c = reg.counter("p", "test", "shared");
                    let mut last = c.get();
                    for _ in 0..n {
                        c.inc();
                        let now = c.get();
                        // Monotonic: a read after an increment is strictly
                        // greater than the read before it.
                        assert!(now > last, "counter went backwards: {last} -> {now}");
                        last = now;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        prop_assert_eq!(reg.counter_value("p", "test", "shared"), expected);
    }

    /// However many events are recorded by however many threads, the ring
    /// holds at most `capacity` events, drop accounting is exact, and the
    /// surviving events carry strictly increasing timestamps.
    #[test]
    fn prop_event_ring_respects_bound(
        capacity in 1usize..64,
        per_thread in proptest::collection::vec(0u64..100, 1..5)
    ) {
        let reg = Arc::new(Registry::with_event_capacity(capacity));
        let total: u64 = per_thread.iter().sum();
        let handles: Vec<_> = per_thread
            .iter()
            .cloned()
            .enumerate()
            .map(|(t, n)| {
                let reg = reg.clone();
                thread::spawn(move || {
                    let process = format!("writer{t}");
                    for i in 0..n {
                        reg.event(&process, "test", "tick", vec![("i".into(), i.into())]);
                        assert!(reg.events_len() <= capacity, "ring exceeded bound");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let kept = reg.events_len() as u64;
        prop_assert!(kept <= capacity as u64);
        prop_assert_eq!(kept + reg.events_dropped(), total);
        let evs = reg.events_snapshot();
        prop_assert!(evs.windows(2).all(|w| w[0].ts < w[1].ts));
    }
}
