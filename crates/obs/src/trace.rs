//! Causal span tracing: logical-clock spans with cross-process context
//! propagation.
//!
//! A [`Span`] is one timed region of one simulated process (a fence call, a
//! group-construction stage, an exCID handshake). Spans carry:
//!
//! * a **runtime identity** — `(TraceId, SpanId)` allocated from per-registry
//!   counters. Runtime ids are *not* run-stable (allocation order depends on
//!   thread scheduling) and therefore never appear in exported artifacts;
//!   the offline analyzer ([`crate::analyze`]) maps them to canonical ids.
//! * **Lamport timestamps** — `start_clock`/`end_clock` drawn from a
//!   registry-wide logical clock that is advanced on every span operation
//!   and merged (`max`) with every adopted or linked [`SpanContext`], so a
//!   span that causally follows another always carries a larger clock.
//! * a **work counter** — a caller-maintained count of deterministic logical
//!   cost (protocol messages, consensus rounds, members installed). The
//!   analyzer uses `work`, never wall time, so its output is run-stable.
//!
//! Causality crosses process boundaries two ways:
//!
//! * **Piggybacked contexts** — simnet attaches the sender's current
//!   [`SpanContext`] to every envelope; the receiver [`Span::link`]s it.
//! * **Thread propagation** — [`Span::enter`] pushes the span on a
//!   thread-local stack consulted by [`current_context`]; the PRRTE launcher
//!   seeds each rank thread with an *ambient* context ([`set_ambient`]) so
//!   even spans created deep inside the MPI core parent correctly.
//!
//! Ended spans land in a bounded per-registry buffer (drop-new with a
//! counter when full); open spans are simply absent from snapshots.

use crate::AttrValue;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// Identifies one causal trace (conventionally: one launched job).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Runtime identifier of one span within its registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// A span's identity plus the logical clock at capture time — small and
/// `Copy`, suitable for piggybacking on a message or parking in
/// thread-local storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    /// Trace the span belongs to.
    pub trace: TraceId,
    /// The span itself.
    pub span: SpanId,
    /// Logical clock when the context was captured.
    pub clock: u64,
}

/// The context that piggybacks on simnet messages. Identical to
/// [`SpanContext`]; the alias exists because call sites read better when
/// the thing attached to an envelope is named after the trace it carries.
pub type TraceContext = SpanContext;

/// One completed span, as stored in the registry's span buffer.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Runtime span id (registry-local; not run-stable).
    pub id: SpanId,
    /// Runtime trace id (registry-local; not run-stable).
    pub trace: TraceId,
    /// Parent span, when the span was created under one.
    pub parent: Option<SpanId>,
    /// Cross-thread / cross-process causal predecessors.
    pub links: Vec<SpanContext>,
    /// Emitting process (same scoping convention as metric keys).
    pub process: String,
    /// Span name, e.g. `"group.fanin"`.
    pub name: String,
    /// Caller-supplied run-stable discriminator (op id, group name, peer
    /// rank, sequence number) distinguishing same-named spans.
    pub key: String,
    /// Per-process start order (0, 1, 2, … within `process`).
    pub seq: u64,
    /// Lamport clock at span start.
    pub start_clock: u64,
    /// Lamport clock at span end.
    pub end_clock: u64,
    /// Deterministic logical cost accumulated via [`Span::add_work`].
    pub work: u64,
    /// Free-form typed attributes.
    pub attrs: Vec<(String, AttrValue)>,
    /// Fault annotations ([`Span::fault`] or [`fault_current`]).
    pub faults: Vec<String>,
}

/// Default span-buffer capacity.
pub const DEFAULT_SPAN_CAPACITY: usize = 65_536;

struct TraceBuf {
    spans: Vec<SpanRecord>,
    /// Next per-process start sequence number.
    seqs: HashMap<String, u64>,
    /// Fault annotations targeting spans that have not ended yet
    /// (runtime span id → notes), drained into the record at end.
    open_faults: HashMap<u64, Vec<String>>,
    dropped: u64,
    capacity: usize,
}

/// Shared tracing state of one registry: the logical clock, the id
/// allocators and the bounded buffer of ended spans.
pub struct TraceShared {
    clock: AtomicU64,
    next_span: AtomicU64,
    next_trace: AtomicU64,
    buf: Mutex<TraceBuf>,
}

impl TraceShared {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            clock: AtomicU64::new(0),
            next_span: AtomicU64::new(1),
            next_trace: AtomicU64::new(1),
            buf: Mutex::new(TraceBuf {
                spans: Vec::new(),
                seqs: HashMap::new(),
                open_faults: HashMap::new(),
                dropped: 0,
                capacity: capacity.max(1),
            }),
        }
    }

    /// Advance the logical clock and return the new value.
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Lamport merge: raise the clock to at least `observed`, then tick.
    fn observe(&self, observed: u64) -> u64 {
        self.clock.fetch_max(observed, Ordering::Relaxed);
        self.tick()
    }

    pub(crate) fn snapshot(&self) -> Vec<SpanRecord> {
        self.buf.lock().spans.clone()
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.buf.lock().dropped
    }

    pub(crate) fn capacity(&self) -> usize {
        self.buf.lock().capacity
    }

    pub(crate) fn start_span(
        self: &Arc<Self>,
        process: &str,
        name: &str,
        key: &str,
        parent: Option<SpanContext>,
    ) -> Span {
        let id = SpanId(self.next_span.fetch_add(1, Ordering::Relaxed));
        let (trace, start_clock) = match parent {
            Some(p) => (p.trace, self.observe(p.clock)),
            None => (TraceId(self.next_trace.fetch_add(1, Ordering::Relaxed)), self.tick()),
        };
        let seq = {
            let mut buf = self.buf.lock();
            let s = buf.seqs.entry(process.to_string()).or_insert(0);
            let v = *s;
            *s += 1;
            v
        };
        Span {
            inner: Some(SpanInner {
                shared: self.clone(),
                rec: SpanRecord {
                    id,
                    trace,
                    parent: parent.map(|p| p.span),
                    links: Vec::new(),
                    process: process.to_string(),
                    name: name.to_string(),
                    key: key.to_string(),
                    seq,
                    start_clock,
                    end_clock: start_clock,
                    work: 0,
                    attrs: Vec::new(),
                    faults: Vec::new(),
                },
            }),
        }
    }
}

struct SpanInner {
    shared: Arc<TraceShared>,
    rec: SpanRecord,
}

/// A live span. Ends (and lands in the registry's span buffer) on
/// [`Span::end`] or drop, whichever comes first.
pub struct Span {
    inner: Option<SpanInner>,
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(i) => write!(f, "Span({:?} {}/{})", i.rec.id, i.rec.process, i.rec.name),
            None => write!(f, "Span(ended)"),
        }
    }
}

impl Span {
    /// Capture the span's context at the current logical clock.
    pub fn context(&self) -> SpanContext {
        let i = self.inner.as_ref().expect("span already ended");
        SpanContext { trace: i.rec.trace, span: i.rec.id, clock: i.shared.tick() }
    }

    /// Runtime span id.
    pub fn id(&self) -> SpanId {
        self.inner.as_ref().expect("span already ended").rec.id
    }

    /// Record a causal predecessor (a context carried by a message or
    /// handed over from another thread). Merges the logical clock. A span
    /// created without a parent adopts the trace of its first link, so
    /// server-side operation spans join the trace of the job that caused
    /// them.
    pub fn link(&mut self, ctx: SpanContext) {
        let i = self.inner.as_mut().expect("span already ended");
        i.shared.observe(ctx.clock);
        if i.rec.parent.is_none() && i.rec.links.is_empty() {
            i.rec.trace = ctx.trace;
        }
        if !i.rec.links.iter().any(|l| l.span == ctx.span) {
            i.rec.links.push(ctx);
        }
    }

    /// Accumulate deterministic logical cost (protocol messages, rounds,
    /// members — never wall time).
    pub fn add_work(&mut self, n: u64) {
        self.inner.as_mut().expect("span already ended").rec.work += n;
    }

    /// Attach a typed attribute.
    pub fn attr(&mut self, k: &str, v: impl Into<AttrValue>) {
        self.inner
            .as_mut()
            .expect("span already ended")
            .rec
            .attrs
            .push((k.to_string(), v.into()));
    }

    /// Annotate the span with a fault description.
    pub fn fault(&mut self, detail: &str) {
        self.inner
            .as_mut()
            .expect("span already ended")
            .rec
            .faults
            .push(detail.to_string());
    }

    /// Push the span onto this thread's context stack; [`current_context`]
    /// returns it until the guard drops.
    pub fn enter(&self) -> SpanEntered {
        let i = self.inner.as_ref().expect("span already ended");
        let entry = TlEntry {
            ctx: SpanContext { trace: i.rec.trace, span: i.rec.id, clock: i.shared.tick() },
            shared: Arc::downgrade(&i.shared),
        };
        STACK.with(|s| s.borrow_mut().push(entry));
        SpanEntered { span: i.rec.id }
    }

    /// End the span now (idempotent with drop).
    pub fn end(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        let Some(mut i) = self.inner.take() else { return };
        i.rec.end_clock = i.shared.tick();
        let mut buf = i.shared.buf.lock();
        if let Some(notes) = buf.open_faults.remove(&i.rec.id.0) {
            i.rec.faults.extend(notes);
        }
        if buf.spans.len() >= buf.capacity {
            buf.dropped += 1;
        } else {
            buf.spans.push(i.rec);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Guard returned by [`Span::enter`]; pops the thread-local context stack
/// on drop.
#[must_use = "dropping the guard immediately exits the span"]
pub struct SpanEntered {
    span: SpanId,
}

impl Drop for SpanEntered {
    fn drop(&mut self) {
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Normally a strict stack; tolerate out-of-order guard drops by
            // removing the matching entry wherever it sits.
            if let Some(pos) = stack.iter().rposition(|e| e.ctx.span == self.span) {
                stack.remove(pos);
            }
        });
    }
}

#[derive(Clone)]
struct TlEntry {
    ctx: SpanContext,
    shared: Weak<TraceShared>,
}

thread_local! {
    static STACK: RefCell<Vec<TlEntry>> = const { RefCell::new(Vec::new()) };
    static AMBIENT: RefCell<Option<TlEntry>> = const { RefCell::new(None) };
}

fn current_entry() -> Option<TlEntry> {
    let top = STACK.with(|s| s.borrow().last().cloned());
    top.or_else(|| AMBIENT.with(|a| a.borrow().clone()))
}

/// The context of this thread's innermost entered span, falling back to
/// the thread's ambient context (see [`set_ambient`]).
pub fn current_context() -> Option<SpanContext> {
    current_entry().map(|e| e.ctx)
}

/// Like [`current_context`], but only when the current span belongs to
/// `shared` — parallel simulated worlds must not adopt each other's spans.
pub(crate) fn current_context_in(shared: &Arc<TraceShared>) -> Option<SpanContext> {
    current_entry()
        .filter(|e| std::ptr::eq(e.shared.as_ptr(), Arc::as_ptr(shared)))
        .map(|e| e.ctx)
}

/// Install `span` as this thread's ambient context: the fallback parent
/// for spans created while no entered span is on the stack. The PRRTE
/// launcher calls this on each rank thread with the rank's root span.
pub fn set_ambient(span: &Span) {
    let i = span.inner.as_ref().expect("span already ended");
    let entry = TlEntry {
        ctx: SpanContext { trace: i.rec.trace, span: i.rec.id, clock: i.shared.tick() },
        shared: Arc::downgrade(&i.shared),
    };
    AMBIENT.with(|a| *a.borrow_mut() = Some(entry));
}

/// Clear this thread's ambient context.
pub fn clear_ambient() {
    AMBIENT.with(|a| *a.borrow_mut() = None);
}

/// Annotate the current thread's innermost span with a fault description.
///
/// Called by the fault-injection seam in simnet: the hook runs on the
/// *sender's* thread inside the fabric send path, so the annotation lands
/// on whatever operation span that thread is inside (e.g. the fence a kill
/// rule interrupted). Returns `false` when no span is current.
pub fn fault_current(detail: &str) -> bool {
    let Some(entry) = current_entry() else { return false };
    let Some(shared) = entry.shared.upgrade() else { return false };
    shared
        .buf
        .lock()
        .open_faults
        .entry(entry.ctx.span.0)
        .or_default()
        .push(detail.to_string());
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn span_lands_in_buffer_with_monotonic_clocks() {
        let r = Registry::new();
        let mut s = r.span("p0", "op", "k");
        s.add_work(3);
        s.attr("n", 7u64);
        s.end();
        let spans = r.spans_snapshot();
        assert_eq!(spans.len(), 1);
        let rec = &spans[0];
        assert_eq!(rec.process, "p0");
        assert_eq!(rec.name, "op");
        assert_eq!(rec.key, "k");
        assert_eq!(rec.work, 3);
        assert!(rec.start_clock < rec.end_clock);
        assert_eq!(rec.seq, 0);
    }

    #[test]
    fn entered_span_parents_children_on_same_thread() {
        let r = Registry::new();
        let parent = r.span("p0", "outer", "");
        let pid = parent.id();
        let g = parent.enter();
        let child = r.span("p0", "inner", "");
        assert_eq!(child.inner.as_ref().unwrap().rec.parent, Some(pid));
        assert_eq!(child.inner.as_ref().unwrap().rec.trace, parent.inner.as_ref().unwrap().rec.trace);
        drop(child);
        drop(g);
        let orphan = r.span("p0", "later", "");
        assert_eq!(orphan.inner.as_ref().unwrap().rec.parent, None);
    }

    #[test]
    fn link_merges_clock_and_adopts_trace() {
        let r = Registry::new();
        let a = r.span("p0", "send", "");
        let ctx = a.context();
        let mut b = r.span("p1", "recv", "");
        b.link(ctx);
        let inner = b.inner.as_ref().unwrap();
        assert_eq!(inner.rec.trace, ctx.trace, "root span adopts trace of first link");
        assert!(inner.rec.start_clock > 0);
        drop(a);
        b.end();
        let recv = r
            .spans_snapshot()
            .into_iter()
            .find(|s| s.name == "recv")
            .unwrap();
        assert_eq!(recv.links.len(), 1);
        assert!(recv.end_clock > ctx.clock, "receiver clock advanced past the carried context");
    }

    #[test]
    fn duplicate_links_collapse() {
        let r = Registry::new();
        let a = r.span("p0", "send", "");
        let mut b = r.span("p1", "recv", "");
        b.link(a.context());
        b.link(a.context());
        assert_eq!(b.inner.as_ref().unwrap().rec.links.len(), 1);
    }

    #[test]
    fn buffer_is_bounded_and_counts_drops() {
        let r = Registry::with_capacities(16, 2);
        for i in 0..5 {
            r.span("p", "s", &i.to_string()).end();
        }
        assert_eq!(r.spans_snapshot().len(), 2);
        assert_eq!(r.spans_dropped(), 3);
    }

    #[test]
    fn fault_current_reaches_the_entered_span() {
        let r = Registry::new();
        let span = r.span("p0", "fence", "0");
        let g = span.enter();
        assert!(fault_current("fault:kill"));
        drop(g);
        span.end();
        let rec = &r.spans_snapshot()[0];
        assert_eq!(rec.faults, vec!["fault:kill".to_string()]);
    }

    #[test]
    fn fault_current_without_span_is_noop() {
        clear_ambient();
        assert!(!fault_current("x"));
    }

    #[test]
    fn ambient_context_is_a_fallback_not_an_override() {
        let r = Registry::new();
        let root = r.span("rank0", "rank.main", "");
        set_ambient(&root);
        let child = r.span("rank0", "work", "");
        assert_eq!(child.inner.as_ref().unwrap().rec.parent, Some(root.id()));
        let inner = r.span("rank0", "inner", "");
        let g = inner.enter();
        let deep = r.span("rank0", "deep", "");
        assert_eq!(deep.inner.as_ref().unwrap().rec.parent, Some(inner.id()));
        drop(g);
        clear_ambient();
        let after = r.span("rank0", "after", "");
        assert_eq!(after.inner.as_ref().unwrap().rec.parent, None);
    }

    #[test]
    fn per_process_seq_is_dense() {
        let r = Registry::new();
        r.span("a", "x", "").end();
        r.span("a", "y", "").end();
        r.span("b", "z", "").end();
        let mut seqs: Vec<(String, u64)> = r
            .spans_snapshot()
            .into_iter()
            .map(|s| (s.process, s.seq))
            .collect();
        seqs.sort();
        assert_eq!(
            seqs,
            vec![("a".into(), 0), ("a".into(), 1), ("b".into(), 0)]
        );
    }
}
