//! MPI_T-style tool information interface: control variables (cvars) and
//! performance variables (pvars).
//!
//! Real MPI deployments observe and tune the runtime through `MPI_T`, the
//! tool-information interface: an enumerable set of **control variables**
//! (knobs) and **performance variables** (readings). This module gives the
//! simulated stack the same surface, hung off the per-fabric [`Registry`]
//! so one simulated cluster's knobs and readings live in one place.
//!
//! # Control variables
//!
//! A cvar is a named, typed knob keyed `(scope, name)`:
//!
//! * `scope` follows the metric-key convention — a process string
//!   (`"ep3"`, a `ProcId` rendering) for per-process knobs, `"universe"`
//!   for cluster-wide ones, `"env"` for environment-variable knobs
//!   captured at boot;
//! * reads go through a closure, so a cvar always reports the *live*
//!   value, not a registration-time copy;
//! * writable cvars carry a setter closure that delegates to the same
//!   legacy setter (`set_pgcid_block`, `set_handshake_cache_cap`, …) the
//!   pre-cvar API exposed — a registry write is behavior-identical to the
//!   ad-hoc call it absorbs;
//! * every successful write emits a `cvar.changed` event (component
//!   `"tool"`) carrying the old and new values. Reads emit nothing: the
//!   introspection surface must stay invisible to the perf fingerprint.
//!
//! Registration closures return `Option<CvarValue>`; a closure whose
//! subject has been dropped (it captured a `Weak`) returns `None` and the
//! entry is pruned lazily on the next enumeration or read.
//!
//! # Performance variables
//!
//! A pvar binds one existing instrument (or a cross-process sum of one
//! `(component, name)` family) for repeated sampling through a
//! [`PvarSession`]. Readings are defined to agree **byte-for-byte** with
//! [`Registry::export`]: a `Timer` pvar renders exactly the histogram's
//! export leaf (`count`/`sum_ns`/`max_ns`/percentiles/buckets), a
//! `Level` pvar reads the same cells the gauge export and `#hw` sibling
//! are built from. The soak harness and the perf gate sample through this
//! surface, so the numbers a tool would see are the numbers the gates
//! enforce.

use crate::{AttrValue, Registry};
use serde_json::{Map, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Control variables
// ---------------------------------------------------------------------------

/// The typed value of a control variable.
#[derive(Debug, Clone, PartialEq)]
pub enum CvarValue {
    /// Unsigned integer knob (caps, block sizes, tick thresholds).
    U64(u64),
    /// Boolean knob (feature enables).
    Bool(bool),
    /// String knob (env captures, enumerations).
    Str(String),
}

impl CvarValue {
    /// Coerce to `u64` when the value holds one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            CvarValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// Coerce to `bool` when the value holds one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            CvarValue::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Borrow as a string when the value holds one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            CvarValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Render as JSON (introspection snapshots).
    pub fn to_json(&self) -> Value {
        match self {
            CvarValue::U64(v) => Value::U64(*v),
            CvarValue::Bool(v) => Value::Bool(*v),
            CvarValue::Str(s) => Value::Str(s.clone()),
        }
    }
}

impl std::fmt::Display for CvarValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CvarValue::U64(v) => write!(f, "{v}"),
            CvarValue::Bool(v) => write!(f, "{v}"),
            CvarValue::Str(s) => write!(f, "{s}"),
        }
    }
}

/// Why a cvar write was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CvarError {
    /// No cvar registered under `(scope, name)` (or its subject died).
    Unknown(String),
    /// The cvar exists but is read-only.
    ReadOnly(String),
    /// The setter rejected the value (type or range).
    Rejected(String),
}

impl std::fmt::Display for CvarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CvarError::Unknown(s) => write!(f, "unknown cvar {s}"),
            CvarError::ReadOnly(s) => write!(f, "cvar {s} is read-only"),
            CvarError::Rejected(s) => write!(f, "cvar write rejected: {s}"),
        }
    }
}

type CvarReader = Box<dyn Fn() -> Option<CvarValue> + Send + Sync>;
type CvarWriter = Box<dyn Fn(&CvarValue) -> Result<(), String> + Send + Sync>;

struct CvarEntry {
    description: &'static str,
    read: CvarReader,
    write: Option<CvarWriter>,
}

/// One row of a cvar enumeration: a point-in-time snapshot of the entry.
#[derive(Debug, Clone)]
pub struct CvarInfo {
    /// Scope key (process string, `"universe"`, `"env"`).
    pub scope: String,
    /// Knob name, dot-namespaced by subsystem (`pml.handshake_cache_cap`).
    pub name: String,
    /// Human-readable description.
    pub description: &'static str,
    /// Whether the cvar accepts writes.
    pub writable: bool,
    /// Current value at enumeration time.
    pub value: CvarValue,
}

/// The per-registry cvar store (see the module docs).
#[derive(Default)]
pub(crate) struct CvarStore {
    entries: parking_lot::Mutex<BTreeMap<(String, String), CvarEntry>>,
}

impl Registry {
    /// Register (or replace) the control variable `(scope, name)`.
    ///
    /// `read` reports the live value (`None` once the knob's subject has
    /// been dropped — the entry is then pruned lazily); `write`, when
    /// present, applies a new value by delegating to the subsystem's own
    /// setter. Registration is silent: no event, no metric.
    ///
    /// # Examples
    ///
    /// A read/write round-trip: the writer delegates to the subsystem's
    /// own setter (here an atomic), so a tool's `cvar_write` and the
    /// legacy direct setter stay behavior-identical.
    ///
    /// ```
    /// use std::sync::atomic::{AtomicU64, Ordering};
    /// use std::sync::Arc;
    /// use obs::{u64_writer, CvarValue, Registry};
    ///
    /// let registry = Registry::new();
    /// let cap = Arc::new(AtomicU64::new(8));
    /// let (r, w) = (Arc::clone(&cap), Arc::clone(&cap));
    /// registry.cvar_register(
    ///     "universe",
    ///     "demo.cache_cap",
    ///     "bound on the demo cache",
    ///     move || Some(CvarValue::U64(r.load(Ordering::Relaxed))),
    ///     u64_writer(move |n| w.store(n, Ordering::Relaxed)),
    /// );
    /// assert_eq!(
    ///     registry.cvar_read("universe", "demo.cache_cap"),
    ///     Some(CvarValue::U64(8)),
    /// );
    /// registry
    ///     .cvar_write("universe", "demo.cache_cap", CvarValue::U64(32))
    ///     .unwrap();
    /// assert_eq!(cap.load(Ordering::Relaxed), 32);
    /// ```
    pub fn cvar_register(
        &self,
        scope: &str,
        name: &str,
        description: &'static str,
        read: impl Fn() -> Option<CvarValue> + Send + Sync + 'static,
        write: Option<CvarWriter>,
    ) {
        self.tool.entries.lock().insert(
            (scope.to_string(), name.to_string()),
            CvarEntry { description, read: Box::new(read), write },
        );
    }

    /// Read the current value of one cvar (`None` if unknown or dead).
    pub fn cvar_read(&self, scope: &str, name: &str) -> Option<CvarValue> {
        let k = (scope.to_string(), name.to_string());
        let mut entries = self.tool.entries.lock();
        let entry = entries.get(&k)?;
        match (entry.read)() {
            Some(v) => Some(v),
            None => {
                entries.remove(&k);
                None
            }
        }
    }

    /// Write a cvar. On success the new value is applied through the
    /// registered setter (behavior-identical to the legacy ad-hoc call)
    /// and a `cvar.changed` event is emitted with the old and new values.
    pub fn cvar_write(&self, scope: &str, name: &str, value: CvarValue) -> Result<(), CvarError> {
        let label = format!("{scope}/{name}");
        let old = {
            let k = (scope.to_string(), name.to_string());
            let mut entries = self.tool.entries.lock();
            let entry = entries.get(&k).ok_or_else(|| CvarError::Unknown(label.clone()))?;
            let Some(old) = (entry.read)() else {
                entries.remove(&k);
                return Err(CvarError::Unknown(label));
            };
            let write = entry.write.as_ref().ok_or_else(|| CvarError::ReadOnly(label.clone()))?;
            write(&value).map_err(CvarError::Rejected)?;
            old
        };
        self.event(
            scope,
            "tool",
            "cvar.changed",
            vec![
                ("cvar".into(), AttrValue::Str(name.to_string())),
                ("from".into(), AttrValue::Str(old.to_string())),
                ("to".into(), AttrValue::Str(value.to_string())),
            ],
        );
        Ok(())
    }

    /// Enumerate every live cvar, sorted by `(scope, name)`. Entries whose
    /// subject has been dropped are pruned as a side effect.
    pub fn cvars(&self) -> Vec<CvarInfo> {
        let mut entries = self.tool.entries.lock();
        let mut out = Vec::with_capacity(entries.len());
        entries.retain(|(scope, name), e| match (e.read)() {
            Some(value) => {
                out.push(CvarInfo {
                    scope: scope.clone(),
                    name: name.clone(),
                    description: e.description,
                    writable: e.write.is_some(),
                    value,
                });
                true
            }
            None => false,
        });
        out
    }
}

/// Convenience constructor for a writer closure (keeps call sites short).
pub fn writer(
    f: impl Fn(&CvarValue) -> Result<(), String> + Send + Sync + 'static,
) -> Option<CvarWriter> {
    Some(Box::new(f))
}

/// A writer that accepts only `U64` values and hands the integer on.
pub fn u64_writer(f: impl Fn(u64) + Send + Sync + 'static) -> Option<CvarWriter> {
    writer(move |v| match v.as_u64() {
        Some(n) => {
            f(n);
            Ok(())
        }
        None => Err(format!("expected an unsigned integer, got {v}")),
    })
}

/// A writer that accepts only `Bool` values and hands the flag on.
pub fn bool_writer(f: impl Fn(bool) + Send + Sync + 'static) -> Option<CvarWriter> {
    writer(move |v| match v.as_bool() {
        Some(b) => {
            f(b);
            Ok(())
        }
        None => Err(format!("expected a boolean, got {v}")),
    })
}

// ---------------------------------------------------------------------------
// Environment knobs
// ---------------------------------------------------------------------------

/// One documented environment-variable knob (see the README knob table).
pub struct EnvKnob {
    /// Cvar name under the `"env"` scope.
    pub name: &'static str,
    /// The environment variable consulted.
    pub env: &'static str,
    /// What the knob does.
    pub description: &'static str,
}

/// The canonical environment-knob table. `ci.sh` and the test harnesses
/// read these variables directly; [`register_env_cvars`] mirrors them into
/// the cvar registry (read-only — the environment cannot be rewritten
/// mid-run) so one enumeration shows every knob that shaped the run.
pub const ENV_KNOBS: &[EnvKnob] = &[
    EnvKnob {
        name: "chaos.seeds",
        env: "CHAOS_SEEDS",
        description: "extra comma-separated u64 seeds for the chaos sweep (tests/chaos_suite.rs)",
    },
    EnvKnob {
        name: "chaos.scenarios",
        env: "CHAOS_SCENARIOS",
        description: "restrict the CHAOS_SEEDS sweep to the named scenarios",
    },
    EnvKnob {
        name: "bench.tol",
        env: "BENCH_TOL",
        description: "per-leaf relative tolerance for the bench_gate baseline diff",
    },
    EnvKnob {
        name: "soak.waves",
        env: "SOAK_WAVES",
        description: "default wave count for fig_soak (CLI --waves overrides)",
    },
    EnvKnob {
        name: "soak.sample_every",
        env: "SOAK_SAMPLE_EVERY",
        description: "default sampling stride for fig_soak (CLI --sample-every overrides)",
    },
    EnvKnob {
        name: "session.init_mode",
        env: "INIT_MODE",
        description: "default session-init mode at universe boot, eager or lazy \
                      (the pmix.init_mode cvar and the per-session init_mode info key override)",
    },
];

/// Capture the environment knobs as read-only cvars under the `"env"`
/// scope. Unset variables read as `"<unset>"` so the enumeration always
/// lists the full knob table. Values are captured once, at call time.
pub fn register_env_cvars(registry: &Registry) {
    for knob in ENV_KNOBS {
        let value = std::env::var(knob.env).unwrap_or_else(|_| "<unset>".to_string());
        registry.cvar_register(
            "env",
            knob.name,
            knob.description,
            move || Some(CvarValue::Str(value.clone())),
            None,
        );
    }
}

// ---------------------------------------------------------------------------
// Performance variables
// ---------------------------------------------------------------------------

/// The class of a performance variable (MPI_T nomenclature).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PvarClass {
    /// Monotonic count (backed by a [`crate::Counter`]).
    Counter,
    /// Instantaneous level with a high-water mark (a [`crate::Gauge`]).
    Level,
    /// Duration distribution (a [`crate::Histogram`]).
    Timer,
}

impl PvarClass {
    /// Stable lowercase rendering (snapshots, enumerations).
    pub fn as_str(&self) -> &'static str {
        match self {
            PvarClass::Counter => "counter",
            PvarClass::Level => "level",
            PvarClass::Timer => "timer",
        }
    }
}

/// One row of a pvar enumeration.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct PvarDesc {
    /// Variable class.
    pub class: PvarClass,
    /// Emitting process (metric-key convention).
    pub process: String,
    /// Subsystem.
    pub component: String,
    /// Metric name.
    pub name: String,
}

/// One pvar sample.
#[derive(Debug, Clone, PartialEq)]
pub enum PvarReading {
    /// Counter value (or cross-process sum).
    Counter(u64),
    /// Gauge value plus its high-water mark (cross-process: sums of each).
    Level {
        /// Current value.
        value: i64,
        /// Peak value (see [`crate::Gauge::high_water`]).
        high_water: i64,
    },
    /// The histogram's full export leaf — byte-identical to
    /// [`Registry::export`]'s rendering of the same instrument.
    Timer(Value),
}

impl PvarReading {
    /// The counter value, if this is a counter reading.
    pub fn as_counter(&self) -> Option<u64> {
        match self {
            PvarReading::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The level value, if this is a level reading.
    pub fn as_level(&self) -> Option<i64> {
        match self {
            PvarReading::Level { value, .. } => Some(*value),
            _ => None,
        }
    }
}

enum Binding {
    /// Sum of one `(component, name)` counter family across processes.
    CounterSum(String, String),
    /// Sum of one `(component, name)` gauge family (values and marks).
    LevelSum(String, String),
    /// One specific gauge.
    Level(String, String, String),
    /// One specific histogram.
    Timer(String, String, String),
}

/// A bound set of performance-variable handles over one registry — the
/// MPI_T "pvar session" analog. Bind handles once, then sample repeatedly;
/// reads are side-effect-free (no events, no metric writes) so sampling
/// never perturbs what it measures.
pub struct PvarSession {
    registry: Arc<Registry>,
    bound: Vec<Binding>,
}

/// Index of a bound pvar handle within its session.
pub type PvarHandle = usize;

impl PvarSession {
    /// Start a session over `registry`.
    pub fn new(registry: Arc<Registry>) -> Self {
        Self { registry, bound: Vec::new() }
    }

    /// Bind the cross-process sum of one counter family.
    pub fn bind_counter_sum(&mut self, component: &str, name: &str) -> PvarHandle {
        self.push(Binding::CounterSum(component.into(), name.into()))
    }

    /// Bind the cross-process sum of one gauge family.
    pub fn bind_level_sum(&mut self, component: &str, name: &str) -> PvarHandle {
        self.push(Binding::LevelSum(component.into(), name.into()))
    }

    /// Bind one specific gauge.
    pub fn bind_level(&mut self, process: &str, component: &str, name: &str) -> PvarHandle {
        self.push(Binding::Level(process.into(), component.into(), name.into()))
    }

    /// Bind one specific histogram.
    pub fn bind_timer(&mut self, process: &str, component: &str, name: &str) -> PvarHandle {
        self.push(Binding::Timer(process.into(), component.into(), name.into()))
    }

    fn push(&mut self, b: Binding) -> PvarHandle {
        self.bound.push(b);
        self.bound.len() - 1
    }

    /// Number of bound handles.
    pub fn len(&self) -> usize {
        self.bound.len()
    }

    /// Whether the session has no bound handles.
    pub fn is_empty(&self) -> bool {
        self.bound.is_empty()
    }

    /// Sample one handle.
    ///
    /// # Panics
    /// Panics if `h` was not returned by a `bind_*` call on this session.
    pub fn read(&self, h: PvarHandle) -> PvarReading {
        let r = &self.registry;
        match &self.bound[h] {
            Binding::CounterSum(c, n) => PvarReading::Counter(r.sum_counters(c, n)),
            Binding::LevelSum(c, n) => PvarReading::Level {
                value: r.sum_gauges(c, n),
                high_water: r.sum_gauge_high_water(c, n),
            },
            Binding::Level(p, c, n) => {
                let g = r.gauges.read().get(&crate::key(p, c, n)).cloned().unwrap_or_default();
                PvarReading::Level { value: g.get(), high_water: g.high_water() }
            }
            Binding::Timer(p, c, n) => {
                let hist =
                    r.histograms.read().get(&crate::key(p, c, n)).cloned().unwrap_or_default();
                PvarReading::Timer(hist.export())
            }
        }
    }

    /// Shorthand: sample a handle bound to a counter (sum).
    pub fn read_u64(&self, h: PvarHandle) -> u64 {
        self.read(h).as_counter().unwrap_or(0)
    }

    /// Shorthand: sample a handle bound to a level.
    pub fn read_i64(&self, h: PvarHandle) -> i64 {
        self.read(h).as_level().unwrap_or(0)
    }
}

impl Registry {
    /// Enumerate every live instrument as a pvar descriptor, sorted by
    /// `(class, process, component, name)`. Counters that never
    /// incremented are skipped (matching [`Registry::export`]); gauges are
    /// always listed (a zero level is a real reading).
    pub fn pvar_enumerate(&self) -> Vec<PvarDesc> {
        let mut out = Vec::new();
        for ((p, c, n), v) in self.counters.read().iter() {
            if v.get() > 0 {
                out.push(PvarDesc {
                    class: PvarClass::Counter,
                    process: p.clone(),
                    component: c.clone(),
                    name: n.clone(),
                });
            }
        }
        for (p, c, n) in self.gauges.read().keys() {
            out.push(PvarDesc {
                class: PvarClass::Level,
                process: p.clone(),
                component: c.clone(),
                name: n.clone(),
            });
        }
        for ((p, c, n), v) in self.histograms.read().iter() {
            if v.count() > 0 {
                out.push(PvarDesc {
                    class: PvarClass::Timer,
                    process: p.clone(),
                    component: c.clone(),
                    name: n.clone(),
                });
            }
        }
        out.sort();
        out
    }
}

/// Render the cvar enumeration as a deterministic JSON array (the
/// introspection snapshot's `cvars` section).
pub fn cvars_to_json(registry: &Registry) -> Value {
    let rows: Vec<Value> = registry
        .cvars()
        .into_iter()
        .map(|c| {
            let mut m = Map::new();
            m.insert("scope".into(), Value::Str(c.scope));
            m.insert("name".into(), Value::Str(c.name));
            m.insert("description".into(), Value::Str(c.description.to_string()));
            m.insert("writable".into(), Value::Bool(c.writable));
            m.insert("value".into(), c.value.to_json());
            Value::Object(m)
        })
        .collect();
    Value::Array(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn cvar_register_read_write_roundtrip() {
        let r = Registry::new();
        let cell = Arc::new(AtomicU64::new(8));
        let rd = cell.clone();
        let wr = cell.clone();
        r.cvar_register(
            "universe",
            "test.block",
            "a test knob",
            move || Some(CvarValue::U64(rd.load(Ordering::Relaxed))),
            u64_writer(move |v| wr.store(v, Ordering::Relaxed)),
        );
        assert_eq!(r.cvar_read("universe", "test.block"), Some(CvarValue::U64(8)));
        r.cvar_write("universe", "test.block", CvarValue::U64(32)).unwrap();
        assert_eq!(cell.load(Ordering::Relaxed), 32);
        // The write emitted exactly one cvar.changed with old and new.
        let evs = r.events_named("cvar.changed");
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].attr("from").unwrap().as_str(), Some("8"));
        assert_eq!(evs[0].attr("to").unwrap().as_str(), Some("32"));
        // Type mismatch is rejected without touching the value.
        let err = r.cvar_write("universe", "test.block", CvarValue::Bool(true)).unwrap_err();
        assert!(matches!(err, CvarError::Rejected(_)));
        assert_eq!(cell.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn cvar_readonly_and_unknown_writes_fail() {
        let r = Registry::new();
        r.cvar_register("env", "ro", "read-only", || Some(CvarValue::Str("x".into())), None);
        assert!(matches!(
            r.cvar_write("env", "ro", CvarValue::Str("y".into())),
            Err(CvarError::ReadOnly(_))
        ));
        assert!(matches!(
            r.cvar_write("env", "nope", CvarValue::U64(1)),
            Err(CvarError::Unknown(_))
        ));
        assert!(r.events_named("cvar.changed").is_empty());
    }

    #[test]
    fn dead_subject_prunes_the_entry() {
        let r = Registry::new();
        let cell = Arc::new(AtomicU64::new(1));
        let weak = Arc::downgrade(&cell);
        r.cvar_register(
            "ep0",
            "dyn.knob",
            "dies with its subject",
            move || weak.upgrade().map(|c| CvarValue::U64(c.load(Ordering::Relaxed))),
            None,
        );
        assert_eq!(r.cvars().len(), 1);
        drop(cell);
        assert!(r.cvar_read("ep0", "dyn.knob").is_none());
        assert!(r.cvars().is_empty());
    }

    #[test]
    fn env_cvars_cover_the_whole_knob_table() {
        let r = Registry::new();
        register_env_cvars(&r);
        let cvars = r.cvars();
        assert_eq!(cvars.len(), ENV_KNOBS.len());
        assert!(cvars.iter().all(|c| c.scope == "env" && !c.writable));
    }

    #[test]
    fn pvar_session_reads_match_the_direct_surface() {
        let r = Arc::new(Registry::new());
        r.counter("p0", "pml", "eager_sent").add(3);
        r.counter("p1", "pml", "eager_sent").add(4);
        let g = r.gauge("p0", "cid", "table_used");
        g.add(9);
        g.add(-2);
        let mut s = PvarSession::new(r.clone());
        let hc = s.bind_counter_sum("pml", "eager_sent");
        let hl = s.bind_level_sum("cid", "table_used");
        assert_eq!(s.read_u64(hc), 7);
        assert_eq!(s.read_i64(hl), 7);
        assert_eq!(
            s.read(hl),
            PvarReading::Level { value: 7, high_water: 9 }
        );
    }

    #[test]
    fn timer_pvar_agrees_with_export_byte_for_byte() {
        let r = Arc::new(Registry::new());
        let h = r.histogram("launcher", "prrte", "map_ns");
        for ns in [500u64, 5_000, 2_000_000, 20_000_000_000] {
            h.record_ns(ns);
        }
        let mut s = PvarSession::new(r.clone());
        let ht = s.bind_timer("launcher", "prrte", "map_ns");
        let PvarReading::Timer(leaf) = s.read(ht) else { panic!("timer reading") };
        // The same instrument's leaf inside the full export.
        let export = r.export();
        let from_export =
            &export.as_object().unwrap()["histograms"].as_object().unwrap()["launcher"]
                .as_object()
                .unwrap()["prrte"]
                .as_object()
                .unwrap()["map_ns"];
        assert_eq!(
            serde_json::to_string(&leaf).unwrap(),
            serde_json::to_string(from_export).unwrap(),
            "pvar sampling and file export must agree byte-for-byte"
        );
        // And the leaf carries the full stat set, not just percentiles.
        let obj = leaf.as_object().unwrap();
        for k in ["count", "sum_ns", "max_ns", "p50_ns", "p95_ns", "p99_ns", "buckets"] {
            assert!(obj.contains_key(k), "missing {k}");
        }
    }

    #[test]
    fn pvar_enumeration_is_sorted_and_classed() {
        let r = Registry::new();
        r.counter("p", "pml", "eager_sent").inc();
        r.counter("p", "pml", "never").get(); // zero: skipped
        r.gauge("p", "cid", "table_used");
        r.histogram("p", "pmix", "rpc_ns").record_ns(10);
        let descs = r.pvar_enumerate();
        assert_eq!(descs.len(), 3);
        assert_eq!(descs[0].class, PvarClass::Counter);
        assert_eq!(descs[1].class, PvarClass::Level);
        assert_eq!(descs[2].class, PvarClass::Timer);
        let mut sorted = descs.clone();
        sorted.sort();
        assert_eq!(descs, sorted);
    }
}
