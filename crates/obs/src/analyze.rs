//! Offline trace analysis: assemble the global span DAG, extract the
//! critical path, compute per-stage inclusive/exclusive cost, and emit
//! deterministic JSON plus a folded-stack flamegraph text report.
//!
//! Runtime span/trace ids and raw Lamport clocks are scheduling-dependent,
//! so nothing from the runtime representation reaches the output directly.
//! Instead every span is given a **canonical id** —
//! `process/name[:key][#occurrence]` — which is run-stable because `key` is
//! a caller-supplied stable discriminator and occurrence numbers follow
//! per-process start order (deterministic: each simulated process is
//! single-threaded, and server-side spans carry unique operation-id keys).
//! Logical times are *recomputed* here as longest-path depths over the
//! deterministic DAG, and all costs come from the spans' `work` counters,
//! never from wall time. Two runs at the same seed/size therefore produce
//! byte-identical reports.
//!
//! DAG edges, all run-stable:
//!
//! * **parent → child** — the child started inside the parent;
//! * **link → linker** — a context carried by a message (or handed across
//!   threads) causally precedes the span that linked it;
//! * **sibling order** — consecutive spans sharing `(process, parent)`,
//!   ordered by per-process start sequence. Spans *without* a parent get no
//!   sibling edges: on multi-client servers their relative start order is
//!   arrival order, which thread scheduling may permute.

use crate::trace::{SpanId, SpanRecord};
use serde_json::{Map, Value};
use std::collections::HashMap;

/// Schema identifier stamped into every report.
pub const TRACE_SCHEMA: &str = "mpi-sessions-trace-v1";

/// Exclusive cost of a span: its own deterministic work, floored at 1 so
/// every stage on a path contributes.
fn exclusive(rec: &SpanRecord) -> u64 {
    rec.work.max(1)
}

struct Node<'a> {
    rec: &'a SpanRecord,
    canon: String,
    /// Indices of causal predecessors (deduped).
    preds: Vec<usize>,
    /// Indices of children by parent tree.
    children: Vec<usize>,
}

/// Analyze a span snapshot into the deterministic JSON report.
///
/// `dropped` is the registry's span-drop counter; it is surfaced in the
/// report so a truncated trace can never masquerade as a complete one.
pub fn analyze(spans: &[SpanRecord], dropped: u64) -> Value {
    // Stable base order: per-process start order, then process name.
    let mut order: Vec<&SpanRecord> = spans.iter().collect();
    order.sort_by(|a, b| {
        (a.process.as_str(), a.seq, a.id).cmp(&(b.process.as_str(), b.seq, b.id))
    });

    // Canonical ids, with occurrence suffixes for repeated (process, name,
    // key) triples.
    let mut occ: HashMap<(String, String, String), u64> = HashMap::new();
    let mut nodes: Vec<Node> = order
        .into_iter()
        .map(|rec| {
            let triple = (rec.process.clone(), rec.name.clone(), rec.key.clone());
            let n = occ.entry(triple).or_insert(0);
            let mut canon = if rec.key.is_empty() {
                format!("{}/{}", rec.process, rec.name)
            } else {
                format!("{}/{}:{}", rec.process, rec.name, rec.key)
            };
            if *n > 0 {
                canon.push('#');
                canon.push_str(&n.to_string());
            }
            *n += 1;
            Node { rec, canon, preds: Vec::new(), children: Vec::new() }
        })
        .collect();

    let by_id: HashMap<SpanId, usize> =
        nodes.iter().enumerate().map(|(i, n)| (n.rec.id, i)).collect();

    // Parent and link edges.
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (i, node) in nodes.iter().enumerate() {
        if let Some(p) = node.rec.parent {
            if let Some(&pi) = by_id.get(&p) {
                edges.push((pi, i));
            }
        }
        for l in &node.rec.links {
            if let Some(&li) = by_id.get(&l.span) {
                if li != i {
                    edges.push((li, i));
                }
            }
        }
    }
    // Sibling edges between consecutive spans sharing (process, parent);
    // nodes are already in per-process seq order.
    let mut sib_prev: HashMap<(&str, SpanId), usize> = HashMap::new();
    for (i, node) in nodes.iter().enumerate() {
        let Some(parent) = node.rec.parent else { continue };
        if !by_id.contains_key(&parent) {
            continue;
        }
        let k = (node.rec.process.as_str(), parent);
        if let Some(&prev) = sib_prev.get(&k) {
            edges.push((prev, i));
        }
        sib_prev.insert(k, i);
    }
    edges.sort_unstable();
    edges.dedup();
    for &(from, to) in &edges {
        nodes[to].preds.push(from);
    }
    let parent_children: Vec<(usize, usize)> = nodes
        .iter()
        .enumerate()
        .filter_map(|(i, n)| {
            n.rec.parent.and_then(|p| by_id.get(&p).map(|&pi| (pi, i)))
        })
        .collect();
    for (pi, ci) in parent_children {
        nodes[pi].children.push(ci);
    }

    // Deterministic topological order (Kahn, ready set ordered by canonical
    // id). Link cycles are routine: a link asserts the predecessor happened
    // before *some point* of the (interval) span, so two spans that each
    // observed the other's context — e.g. both servers' `group.xchg` during
    // a contribution exchange — legitimately link each other. Parent edges
    // are tree edges and genuinely precede the child's start.
    let n = nodes.len();
    let mut indeg: Vec<usize> = vec![0; n];
    for (i, node) in nodes.iter().enumerate() {
        indeg[i] = node.preds.len();
    }
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, node) in nodes.iter().enumerate() {
        for &p in &node.preds {
            succs[p].push(i);
        }
    }
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut topo: Vec<usize> = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    while topo.len() < n {
        let next = if ready.is_empty() {
            // Cycle: break it by dropping a link edge, never a parent edge
            // — force the smallest unplaced node whose parent is already
            // placed (its unsatisfied predecessors are all links), so a
            // span downstream of the cycle can't get ordered before its
            // parent and lose its depth. Fall back to the global minimum
            // only if every unplaced node waits on an unplaced parent.
            let parent_placed = |i: usize| {
                nodes[i].rec.parent.is_none_or(|p| by_id.get(&p).is_none_or(|&pi| placed[pi]))
            };
            (0..n)
                .filter(|&i| !placed[i] && parent_placed(i))
                .min_by(|&a, &b| nodes[a].canon.cmp(&nodes[b].canon))
                .or_else(|| {
                    (0..n)
                        .filter(|&i| !placed[i])
                        .min_by(|&a, &b| nodes[a].canon.cmp(&nodes[b].canon))
                })
                .expect("unplaced node exists")
        } else {
            let (pos, _) = ready
                .iter()
                .enumerate()
                .min_by(|(_, &a), (_, &b)| nodes[a].canon.cmp(&nodes[b].canon))
                .expect("ready non-empty");
            ready.swap_remove(pos)
        };
        if placed[next] {
            continue;
        }
        placed[next] = true;
        topo.push(next);
        for &s in &succs[next] {
            if placed[s] {
                continue;
            }
            indeg[s] = indeg[s].saturating_sub(1);
            if indeg[s] == 0 {
                ready.push(s);
            }
        }
    }
    let mut topo_pos = vec![0usize; n];
    for (pos, &i) in topo.iter().enumerate() {
        topo_pos[i] = pos;
    }

    // Longest paths: logical depth (edge count) and cumulative exclusive
    // cost with best-predecessor back-pointers for the critical path.
    // Only predecessors that precede a node in the topological order count,
    // so a (tolerated) cycle cannot recurse.
    let mut depth: Vec<u64> = vec![0; n];
    let mut dist: Vec<u64> = vec![0; n];
    let mut best_pred: Vec<Option<usize>> = vec![None; n];
    for &i in &topo {
        let excl = exclusive(nodes[i].rec);
        let mut d = 0u64;
        let mut best: Option<(u64, &str)> = None;
        for &p in &nodes[i].preds {
            if topo_pos[p] >= topo_pos[i] {
                continue;
            }
            d = d.max(depth[p] + 1);
            let cand = (dist[p], nodes[p].canon.as_str());
            let better = match best {
                None => true,
                // Higher cost wins; ties break toward the smaller
                // canonical id so the choice is run-stable.
                Some((bc, bn)) => cand.0 > bc || (cand.0 == bc && cand.1 < bn),
            };
            if better {
                best = Some(cand);
                best_pred[i] = Some(p);
            }
        }
        depth[i] = d;
        dist[i] = excl + best.map(|(c, _)| c).unwrap_or(0);
    }

    // Inclusive cost over the parent tree (children have larger runtime
    // ids than their parents, so descending-id order visits leaves first).
    let mut by_rid: Vec<usize> = (0..n).collect();
    by_rid.sort_by(|&a, &b| nodes[b].rec.id.cmp(&nodes[a].rec.id));
    let mut inclusive: Vec<u64> = (0..n).map(|i| exclusive(nodes[i].rec)).collect();
    for &i in &by_rid {
        let sum: u64 = nodes[i].children.iter().map(|&c| inclusive[c]).sum();
        inclusive[i] += sum;
    }

    // Group spans by runtime trace id; name each trace after its root
    // (the parentless span with the smallest canonical id).
    let mut traces: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, node) in nodes.iter().enumerate() {
        traces.entry(node.rec.trace.0).or_default().push(i);
    }
    let mut trace_list: Vec<(String, Vec<usize>)> = traces
        .into_values()
        .map(|members| {
            let root = members
                .iter()
                .copied()
                .filter(|&i| nodes[i].rec.parent.is_none())
                .min_by(|&a, &b| nodes[a].canon.cmp(&nodes[b].canon))
                .or_else(|| {
                    members
                        .iter()
                        .copied()
                        .min_by(|&a, &b| nodes[a].canon.cmp(&nodes[b].canon))
                })
                .expect("trace has members");
            (nodes[root].canon.clone(), members)
        })
        .collect();
    trace_list.sort_by(|a, b| a.0.cmp(&b.0));

    let mut traces_json: Vec<Value> = Vec::new();
    for (root, members) in &trace_list {
        // Critical path: walk best-predecessor links back from the
        // costliest member.
        let end = members
            .iter()
            .copied()
            .max_by(|&a, &b| {
                dist[a]
                    .cmp(&dist[b])
                    .then_with(|| nodes[b].canon.cmp(&nodes[a].canon))
            })
            .expect("trace has members");
        let mut path = Vec::new();
        let mut cur = Some(end);
        while let Some(i) = cur {
            path.push(i);
            cur = best_pred[i];
        }
        path.reverse();
        let path_json: Vec<Value> = path
            .iter()
            .map(|&i| {
                let mut m = Map::new();
                m.insert("span".into(), Value::Str(nodes[i].canon.clone()));
                m.insert("process".into(), Value::Str(nodes[i].rec.process.clone()));
                m.insert("name".into(), Value::Str(nodes[i].rec.name.clone()));
                m.insert("exclusive".into(), Value::U64(exclusive(nodes[i].rec)));
                Value::Object(m)
            })
            .collect();
        let mut t = Map::new();
        t.insert("root".into(), Value::Str(root.clone()));
        t.insert("spans".into(), Value::U64(members.len() as u64));
        t.insert("critical_path_cost".into(), Value::U64(dist[end]));
        t.insert("critical_path".into(), Value::Array(path_json));
        traces_json.push(Value::Object(t));
    }

    // Per-stage aggregation by span name.
    let mut stages: Map = Map::new();
    let mut stage_acc: HashMap<&str, (u64, u64, u64)> = HashMap::new();
    for (i, node) in nodes.iter().enumerate() {
        let e = stage_acc.entry(node.rec.name.as_str()).or_insert((0, 0, 0));
        e.0 += 1;
        e.1 += exclusive(node.rec);
        e.2 += inclusive[i];
    }
    let mut stage_names: Vec<&str> = stage_acc.keys().copied().collect();
    stage_names.sort_unstable();
    for name in stage_names {
        let (count, excl, incl) = stage_acc[name];
        let mut m = Map::new();
        m.insert("count".into(), Value::U64(count));
        m.insert("exclusive".into(), Value::U64(excl));
        m.insert("inclusive".into(), Value::U64(incl));
        stages.insert(name.to_string(), Value::Object(m));
    }

    // Span table, sorted by canonical id.
    let mut span_order: Vec<usize> = (0..n).collect();
    span_order.sort_by(|&a, &b| nodes[a].canon.cmp(&nodes[b].canon));
    let spans_json: Vec<Value> = span_order
        .iter()
        .map(|&i| {
            let node = &nodes[i];
            let mut m = Map::new();
            m.insert("id".into(), Value::Str(node.canon.clone()));
            m.insert("process".into(), Value::Str(node.rec.process.clone()));
            m.insert("name".into(), Value::Str(node.rec.name.clone()));
            m.insert("key".into(), Value::Str(node.rec.key.clone()));
            if let Some(p) = node.rec.parent.and_then(|p| by_id.get(&p)) {
                m.insert("parent".into(), Value::Str(nodes[*p].canon.clone()));
            }
            let mut links: Vec<String> = node
                .rec
                .links
                .iter()
                .filter_map(|l| by_id.get(&l.span).map(|&li| nodes[li].canon.clone()))
                .collect();
            links.sort();
            links.dedup();
            m.insert(
                "links".into(),
                Value::Array(links.into_iter().map(Value::Str).collect()),
            );
            m.insert("logical_start".into(), Value::U64(depth[i]));
            m.insert("logical_end".into(), Value::U64(depth[i] + exclusive(node.rec)));
            m.insert("work".into(), Value::U64(node.rec.work));
            m.insert("exclusive".into(), Value::U64(exclusive(node.rec)));
            m.insert("inclusive".into(), Value::U64(inclusive[i]));
            if !node.rec.faults.is_empty() {
                m.insert(
                    "faults".into(),
                    Value::Array(
                        node.rec.faults.iter().cloned().map(Value::Str).collect(),
                    ),
                );
            }
            Value::Object(m)
        })
        .collect();

    // Folded-stack flamegraph lines: frames are process:name along the
    // parent chain, values sum exclusive cost over identical stacks.
    let mut folded: HashMap<String, u64> = HashMap::new();
    for i in 0..n {
        let mut frames: Vec<String> = Vec::new();
        let mut cur = Some(i);
        let mut hops = 0;
        while let Some(j) = cur {
            frames.push(format!("{}:{}", nodes[j].rec.process, nodes[j].rec.name));
            cur = nodes[j].rec.parent.and_then(|p| by_id.get(&p).copied());
            hops += 1;
            if hops > n {
                break; // defensive: malformed parent chain
            }
        }
        frames.reverse();
        *folded.entry(frames.join(";")).or_insert(0) += exclusive(nodes[i].rec);
    }
    let mut flame: Vec<String> = folded
        .into_iter()
        .map(|(stack, v)| format!("{stack} {v}"))
        .collect();
    flame.sort();

    // Spans annotated with faults, for fault-attribution reports.
    let fault_spans: Vec<Value> = span_order
        .iter()
        .filter(|&&i| !nodes[i].rec.faults.is_empty())
        .map(|&i| {
            let mut m = Map::new();
            m.insert("span".into(), Value::Str(nodes[i].canon.clone()));
            m.insert(
                "faults".into(),
                Value::Array(nodes[i].rec.faults.iter().cloned().map(Value::Str).collect()),
            );
            Value::Object(m)
        })
        .collect();

    let mut root = Map::new();
    root.insert("schema".into(), Value::Str(TRACE_SCHEMA.to_string()));
    root.insert("span_count".into(), Value::U64(n as u64));
    root.insert("spans_dropped".into(), Value::U64(dropped));
    root.insert("traces".into(), Value::Array(traces_json));
    root.insert("stages".into(), Value::Object(stages));
    root.insert("spans".into(), Value::Array(spans_json));
    root.insert(
        "flamegraph".into(),
        Value::Array(flame.into_iter().map(Value::Str).collect()),
    );
    root.insert("fault_spans".into(), Value::Array(fault_spans));
    Value::Object(root)
}

/// Render the flamegraph lines of an [`analyze`] report as one text block
/// (folded-stack format, one `stack value` line each — feed straight into
/// any flamegraph renderer, or read as-is: indentation is the `;` depth).
pub fn flamegraph_text(report: &Value) -> String {
    let mut out = String::new();
    if let Some(lines) = report
        .as_object()
        .and_then(|o| o.get("flamegraph"))
        .and_then(Value::as_array)
    {
        for l in lines {
            if let Some(s) = l.as_str() {
                out.push_str(s);
                out.push('\n');
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn report(r: &Registry) -> Value {
        analyze(&r.spans_snapshot(), r.spans_dropped())
    }

    #[test]
    fn empty_snapshot_analyzes() {
        let v = analyze(&[], 0);
        let o = v.as_object().unwrap();
        assert_eq!(o["span_count"].as_u64(), Some(0));
        assert_eq!(o["schema"].as_str(), Some(TRACE_SCHEMA));
    }

    #[test]
    fn critical_path_follows_cost_across_a_link() {
        let r = Registry::new();
        let root = r.span("p0", "job", "");
        let g = root.enter();
        let mut cheap = r.span("p0", "cheap", "");
        cheap.add_work(1);
        let mut remote = r.span("p1", "remote", "");
        remote.link(cheap.context());
        remote.add_work(50);
        cheap.end();
        remote.end();
        drop(g);
        drop(root);
        let v = report(&r);
        let traces = v.as_object().unwrap()["traces"].as_array().unwrap();
        assert_eq!(traces.len(), 1);
        let path = traces[0].as_object().unwrap()["critical_path"]
            .as_array()
            .unwrap();
        let names: Vec<&str> = path
            .iter()
            .map(|e| e.as_object().unwrap()["name"].as_str().unwrap())
            .collect();
        assert_eq!(names, vec!["job", "cheap", "remote"]);
    }

    #[test]
    fn inclusive_rolls_up_the_parent_tree() {
        let r = Registry::new();
        let mut root = r.span("p0", "outer", "");
        root.add_work(2);
        let g = root.enter();
        let mut a = r.span("p0", "inner", "a");
        a.add_work(3);
        a.end();
        let mut b = r.span("p0", "inner", "b");
        b.add_work(4);
        b.end();
        drop(g);
        root.end();
        let v = report(&r);
        let spans = v.as_object().unwrap()["spans"].as_array().unwrap();
        let outer = spans
            .iter()
            .map(|s| s.as_object().unwrap())
            .find(|s| s["name"].as_str() == Some("outer"))
            .unwrap();
        assert_eq!(outer["exclusive"].as_u64(), Some(2));
        assert_eq!(outer["inclusive"].as_u64(), Some(9));
    }

    #[test]
    fn output_is_deterministic_for_one_snapshot() {
        let r = Registry::new();
        let root = r.span("p0", "job", "");
        let g = root.enter();
        for i in 0..4 {
            let mut s = r.span("p0", "step", &i.to_string());
            s.add_work(i + 1);
            s.end();
        }
        drop(g);
        drop(root);
        let snap = r.spans_snapshot();
        let a = serde_json::to_string(&analyze(&snap, 0)).unwrap();
        let mut shuffled = snap.clone();
        shuffled.reverse(); // buffer order must not matter
        let b = serde_json::to_string(&analyze(&shuffled, 0)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn repeated_triples_get_occurrence_suffixes() {
        let r = Registry::new();
        r.span("p", "op", "k").end();
        r.span("p", "op", "k").end();
        let v = report(&r);
        let ids: Vec<String> = v.as_object().unwrap()["spans"]
            .as_array()
            .unwrap()
            .iter()
            .map(|s| s.as_object().unwrap()["id"].as_str().unwrap().to_string())
            .collect();
        assert_eq!(ids, vec!["p/op:k".to_string(), "p/op:k#1".to_string()]);
    }

    #[test]
    fn flamegraph_lines_fold_stacks() {
        let r = Registry::new();
        let root = r.span("p0", "job", "");
        let g = root.enter();
        let mut s1 = r.span("p0", "step", "0");
        s1.add_work(2);
        s1.end();
        let mut s2 = r.span("p0", "step", "1");
        s2.add_work(3);
        s2.end();
        drop(g);
        drop(root);
        let v = report(&r);
        let text = flamegraph_text(&v);
        assert!(text.contains("p0:job;p0:step 5"), "folded stack sums work: {text}");
    }

    #[test]
    fn faults_surface_in_fault_spans() {
        let r = Registry::new();
        let mut s = r.span("p0", "fence", "0");
        s.fault("fault:kill");
        s.end();
        let v = report(&r);
        let fs = v.as_object().unwrap()["fault_spans"].as_array().unwrap();
        assert_eq!(fs.len(), 1);
        assert_eq!(
            fs[0].as_object().unwrap()["span"].as_str(),
            Some("p0/fence:0")
        );
    }
}
