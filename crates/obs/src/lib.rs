//! Stack-wide observability: a lock-cheap metrics registry plus a bounded
//! structured event recorder.
//!
//! Every layer of the simulated stack (fabric, PMIx, PRRTE, MPI core) hangs
//! one [`Registry`] off the fabric it runs on, so metrics from all processes
//! of one simulated cluster land in one place while parallel test clusters
//! stay isolated from each other.
//!
//! Design points:
//!
//! * **Keying** — every instrument is identified by `(process, component,
//!   name)`. `process` scopes the emitter (`"fabric"`, `"ep3"`,
//!   `"server:0"`, a `ProcId` rendering, …), `component` is the subsystem
//!   (`"fabric"`, `"pml"`, `"pmix"`, `"cid"`, …), `name` is the metric.
//! * **Hot path is atomic-only** — callers resolve a handle once (a
//!   `RwLock<HashMap>` lookup or insert) and afterwards touch nothing but
//!   atomics: counters and gauges are single `fetch_add`s, histograms a
//!   handful. No lock is held while recording.
//! * **Counters are monotonic** — the API offers only `inc`/`add`; there is
//!   no decrement or reset, so a later reading is never smaller than an
//!   earlier one (the property tests pin this down).
//! * **Events are bounded** — the recorder is a fixed-capacity ring: when
//!   full, the oldest event is dropped and a drop counter incremented, so
//!   memory use cannot grow with run length.
//! * **Export is plain JSON** — [`Registry::export`] renders everything into
//!   a `serde_json::Value` with sorted keys (deterministic output).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};
use serde_json::{Map, Value};

pub mod analyze;
pub mod tool;
pub mod trace;

pub use tool::{
    bool_writer, register_env_cvars, u64_writer, writer, CvarError, CvarInfo, CvarValue, EnvKnob,
    PvarClass, PvarDesc, PvarHandle, PvarReading, PvarSession, ENV_KNOBS,
};
pub use trace::{
    Span, SpanContext, SpanEntered, SpanId, SpanRecord, TraceContext, TraceId,
    DEFAULT_SPAN_CAPACITY,
};

/// Instrument identity: `(process, component, name)`.
pub type Key = (String, String, String);

fn key(process: &str, component: &str, name: &str) -> Key {
    (process.to_string(), component.to_string(), name.to_string())
}

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

/// Monotonic counter handle. Cloning shares the underlying cell.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`. There is deliberately no way to decrement.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

#[derive(Default)]
struct GaugeCore {
    value: AtomicI64,
    high: AtomicI64,
}

/// Instantaneous signed value (e.g. live endpoint count).
///
/// Every write also maintains a **high-water mark** — the largest value the
/// gauge has ever held. Leak audits (the soak harness) read the mark to
/// learn the peak footprint of a component without sampling mid-run.
#[derive(Clone, Default)]
pub struct Gauge(Arc<GaugeCore>);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.0.value.store(v, Ordering::Relaxed);
        self.0.high.fetch_max(v, Ordering::Relaxed);
    }

    /// Adjust by a (possibly negative) delta.
    pub fn add(&self, d: i64) {
        let new = self.0.value.fetch_add(d, Ordering::Relaxed) + d;
        self.0.high.fetch_max(new, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.value.load(Ordering::Relaxed)
    }

    /// Largest value ever held (0 for a gauge that never went positive).
    pub fn high_water(&self) -> i64 {
        self.0.high.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Upper bounds (inclusive, in nanoseconds) of the fixed histogram buckets.
/// Decade-spaced from 1µs to 10s; a final overflow bucket catches the rest.
pub const BUCKET_BOUNDS_NS: [u64; 8] = [
    1_000,              // 1µs
    10_000,             // 10µs
    100_000,            // 100µs
    1_000_000,          // 1ms
    10_000_000,         // 10ms
    100_000_000,        // 100ms
    1_000_000_000,      // 1s
    10_000_000_000,     // 10s
];

const NUM_BUCKETS: usize = BUCKET_BOUNDS_NS.len() + 1; // + overflow

#[derive(Default)]
struct HistogramCore {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

/// Fixed-bucket duration histogram handle. Cloning shares the cells.
#[derive(Clone, Default)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Record one duration.
    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Record one duration given in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        let idx = BUCKET_BOUNDS_NS
            .iter()
            .position(|&b| ns <= b)
            .unwrap_or(NUM_BUCKETS - 1);
        let c = &self.0;
        c.buckets[idx].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum_ns.fetch_add(ns, Ordering::Relaxed);
        c.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples, in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.0.sum_ns.load(Ordering::Relaxed)
    }

    /// Largest recorded sample, in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.0.max_ns.load(Ordering::Relaxed)
    }

    /// Estimate the `q`-th percentile (`q` in 1..=100) from the fixed
    /// buckets, interpolating linearly inside the bucket the rank falls
    /// into. The overflow bucket's upper edge is the observed maximum, so
    /// the estimate never exceeds it. Returns 0 for an empty histogram.
    ///
    /// Bucket edges are decade-spaced, so estimates are coarse — they
    /// answer "which decade, roughly where in it", which is what the
    /// flat JSON export can support without storing raw samples.
    pub fn percentile_ns(&self, q: u64) -> u64 {
        let c = &self.0;
        let count = c.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0;
        }
        let q = q.clamp(1, 100);
        // Smallest rank (1-based) at or above the q-th percentile.
        let rank = (count * q).div_ceil(100);
        let mut cum = 0u64;
        for (i, b) in c.buckets.iter().enumerate() {
            let in_bucket = b.load(Ordering::Relaxed);
            if in_bucket == 0 {
                continue;
            }
            if cum + in_bucket >= rank {
                let lower = if i == 0 { 0 } else { BUCKET_BOUNDS_NS[i - 1] };
                let upper = if i < BUCKET_BOUNDS_NS.len() {
                    BUCKET_BOUNDS_NS[i]
                } else {
                    c.max_ns.load(Ordering::Relaxed).max(lower + 1)
                };
                let into = rank - cum; // 1..=in_bucket
                let span = (upper - lower) as u128;
                return lower + (span * into as u128 / in_bucket as u128) as u64;
            }
            cum += in_bucket;
        }
        c.max_ns.load(Ordering::Relaxed)
    }

    /// Render the full stat set (`count`/`sum_ns`/`max_ns`/percentiles/
    /// buckets) as a JSON leaf. This is both the [`Registry::export`]
    /// rendering and the `Timer` pvar reading — one definition, so the
    /// two surfaces agree byte-for-byte.
    pub fn export(&self) -> Value {
        let c = &self.0;
        let mut m = Map::new();
        m.insert("count".into(), Value::U64(c.count.load(Ordering::Relaxed)));
        m.insert("sum_ns".into(), Value::U64(c.sum_ns.load(Ordering::Relaxed)));
        m.insert("max_ns".into(), Value::U64(c.max_ns.load(Ordering::Relaxed)));
        m.insert("p50_ns".into(), Value::U64(self.percentile_ns(50)));
        m.insert("p95_ns".into(), Value::U64(self.percentile_ns(95)));
        m.insert("p99_ns".into(), Value::U64(self.percentile_ns(99)));
        let buckets: Vec<Value> = c
            .buckets
            .iter()
            .map(|b| Value::U64(b.load(Ordering::Relaxed)))
            .collect();
        m.insert("buckets".into(), Value::Array(buckets));
        Value::Object(m)
    }
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// Typed attribute value attached to an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer attribute.
    U64(u64),
    /// Signed integer attribute.
    I64(i64),
    /// Floating-point attribute.
    F64(f64),
    /// String attribute.
    Str(String),
    /// Boolean attribute.
    Bool(bool),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

impl AttrValue {
    fn to_json(&self) -> Value {
        match self {
            AttrValue::U64(v) => Value::U64(*v),
            AttrValue::I64(v) => Value::I64(*v),
            AttrValue::F64(v) => Value::F64(*v),
            AttrValue::Str(v) => Value::Str(v.clone()),
            AttrValue::Bool(v) => Value::Bool(*v),
        }
    }

    /// Coerce to `u64` when the attribute holds one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            AttrValue::U64(v) => Some(*v),
            AttrValue::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Borrow as a string when the attribute holds one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// One structured event: logical timestamp plus the `(process, component,
/// name)` identity and free-form typed attributes.
#[derive(Debug, Clone)]
pub struct Event {
    /// Logical timestamp: a registry-wide strictly increasing sequence
    /// number (no wall clock — runs are simulated).
    pub ts: u64,
    /// Emitting process (same scoping convention as metric keys).
    pub process: String,
    /// Emitting subsystem.
    pub component: String,
    /// Event name, e.g. `"group.fanin"`.
    pub name: String,
    /// Typed attributes.
    pub attrs: Vec<(String, AttrValue)>,
}

impl Event {
    /// Look up an attribute by key.
    pub fn attr(&self, k: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(a, _)| a == k).map(|(_, v)| v)
    }
}

/// Default event-ring capacity.
pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

struct EventRecorder {
    clock: AtomicU64,
    capacity: usize,
    ring: Mutex<VecDeque<Event>>,
    dropped: AtomicU64,
}

impl EventRecorder {
    fn new(capacity: usize) -> Self {
        Self {
            clock: AtomicU64::new(0),
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 1024))),
            dropped: AtomicU64::new(0),
        }
    }

    fn record(&self, process: &str, component: &str, name: &str, attrs: Vec<(String, AttrValue)>) {
        let mut ev = Event {
            ts: 0,
            process: process.to_string(),
            component: component.to_string(),
            name: name.to_string(),
            attrs,
        };
        let mut ring = self.ring.lock();
        // The timestamp is minted under the ring lock: minting it outside
        // would let two racing recorders insert out of timestamp order.
        ev.ts = self.clock.fetch_add(1, Ordering::Relaxed);
        if ring.len() >= self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(ev);
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// The per-cluster metrics registry plus event recorder.
///
/// Cheap to share: every layer holds an `Arc<Registry>`. Handle resolution
/// (`counter`/`gauge`/`histogram`) takes a short-lived map lock; recording
/// through a resolved handle is lock-free.
pub struct Registry {
    pub(crate) counters: RwLock<HashMap<Key, Counter>>,
    pub(crate) gauges: RwLock<HashMap<Key, Gauge>>,
    pub(crate) histograms: RwLock<HashMap<Key, Histogram>>,
    events: EventRecorder,
    traces: Arc<trace::TraceShared>,
    /// MPI_T-style control-variable store (see [`tool`]).
    tool: tool::CvarStore,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// New registry with the default event capacity.
    pub fn new() -> Self {
        Self::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// New registry with an explicit event-ring capacity (min 1).
    pub fn with_event_capacity(capacity: usize) -> Self {
        Self::with_capacities(capacity, DEFAULT_SPAN_CAPACITY)
    }

    /// New registry with explicit event-ring and span-buffer capacities.
    pub fn with_capacities(event_capacity: usize, span_capacity: usize) -> Self {
        Self {
            counters: RwLock::new(HashMap::new()),
            gauges: RwLock::new(HashMap::new()),
            histograms: RwLock::new(HashMap::new()),
            events: EventRecorder::new(event_capacity),
            traces: Arc::new(trace::TraceShared::new(span_capacity)),
            tool: tool::CvarStore::default(),
        }
    }

    /// Get or create the counter keyed `(process, component, name)`.
    pub fn counter(&self, process: &str, component: &str, name: &str) -> Counter {
        let k = key(process, component, name);
        if let Some(c) = self.counters.read().get(&k) {
            return c.clone();
        }
        self.counters.write().entry(k).or_default().clone()
    }

    /// Get or create the gauge keyed `(process, component, name)`.
    pub fn gauge(&self, process: &str, component: &str, name: &str) -> Gauge {
        let k = key(process, component, name);
        if let Some(g) = self.gauges.read().get(&k) {
            return g.clone();
        }
        self.gauges.write().entry(k).or_default().clone()
    }

    /// Get or create the histogram keyed `(process, component, name)`.
    pub fn histogram(&self, process: &str, component: &str, name: &str) -> Histogram {
        let k = key(process, component, name);
        if let Some(h) = self.histograms.read().get(&k) {
            return h.clone();
        }
        self.histograms.write().entry(k).or_default().clone()
    }

    /// Record a structured event.
    pub fn event(&self, process: &str, component: &str, name: &str, attrs: Vec<(String, AttrValue)>) {
        self.events.record(process, component, name, attrs);
    }

    // -- tracing -------------------------------------------------------------

    /// Start a span. The parent is this thread's current context (entered
    /// span or ambient, see [`trace::current_context`]) when that context
    /// belongs to this registry; otherwise the span roots a new trace.
    ///
    /// `key` is a caller-supplied *run-stable* discriminator (operation id,
    /// group name, peer rank, a per-process sequence number): the offline
    /// analyzer derives canonical span identities from `(process, name,
    /// key)`, never from runtime ids.
    pub fn span(&self, process: &str, name: &str, key: &str) -> Span {
        let parent = trace::current_context_in(&self.traces);
        self.traces.start_span(process, name, key, parent)
    }

    /// Start a span under an explicit parent context (`None` roots a new
    /// trace even when the thread has a current context).
    pub fn span_with_parent(
        &self,
        process: &str,
        name: &str,
        key: &str,
        parent: Option<SpanContext>,
    ) -> Span {
        self.traces.start_span(process, name, key, parent)
    }

    /// Snapshot of every *ended* span in the buffer (unspecified order;
    /// feed into [`analyze::analyze`] for the canonical view).
    pub fn spans_snapshot(&self) -> Vec<SpanRecord> {
        self.traces.snapshot()
    }

    /// Number of ended spans discarded because the span buffer was full.
    pub fn spans_dropped(&self) -> u64 {
        self.traces.dropped()
    }

    /// Capacity of the span buffer.
    pub fn span_capacity(&self) -> usize {
        self.traces.capacity()
    }

    // -- read side -----------------------------------------------------------

    /// Value of one counter, or 0 if it was never created.
    pub fn counter_value(&self, process: &str, component: &str, name: &str) -> u64 {
        self.counters
            .read()
            .get(&key(process, component, name))
            .map(|c| c.get())
            .unwrap_or(0)
    }

    /// Sum of one `(component, name)` counter across all processes.
    pub fn sum_counters(&self, component: &str, name: &str) -> u64 {
        self.counters
            .read()
            .iter()
            .filter(|((_, c, n), _)| c == component && n == name)
            .map(|(_, v)| v.get())
            .sum()
    }

    /// Snapshot of every counter with a non-zero value, sorted by key.
    pub fn counters_snapshot(&self) -> Vec<(Key, u64)> {
        let mut v: Vec<(Key, u64)> = self
            .counters
            .read()
            .iter()
            .map(|(k, c)| (k.clone(), c.get()))
            .filter(|(_, n)| *n > 0)
            .collect();
        v.sort();
        v
    }

    /// Value of one gauge, or 0 if it was never created.
    pub fn gauge_value(&self, process: &str, component: &str, name: &str) -> i64 {
        self.gauges
            .read()
            .get(&key(process, component, name))
            .map(|g| g.get())
            .unwrap_or(0)
    }

    /// Sum of one `(component, name)` gauge across all processes.
    pub fn sum_gauges(&self, component: &str, name: &str) -> i64 {
        self.gauges
            .read()
            .iter()
            .filter(|((_, c, n), _)| c == component && n == name)
            .map(|(_, v)| v.get())
            .sum()
    }

    /// Sum of one `(component, name)` gauge's high-water marks across all
    /// processes. An upper bound on the true cluster-wide peak (per-process
    /// peaks need not coincide), which is the right direction for a leak
    /// audit: the reported peak is never an undercount of any real peak.
    pub fn sum_gauge_high_water(&self, component: &str, name: &str) -> i64 {
        self.gauges
            .read()
            .iter()
            .filter(|((_, c, n), _)| c == component && n == name)
            .map(|(_, v)| v.high_water())
            .sum()
    }

    /// Snapshot of every gauge (value, high-water), sorted by key. Unlike
    /// counters, zero-valued gauges are included: "this went back to zero"
    /// is exactly the reading a leak audit needs.
    pub fn gauges_snapshot(&self) -> Vec<(Key, i64, i64)> {
        let mut v: Vec<(Key, i64, i64)> = self
            .gauges
            .read()
            .iter()
            .map(|(k, g)| (k.clone(), g.get(), g.high_water()))
            .collect();
        v.sort();
        v
    }

    /// All recorded (still-buffered) events with the given name, in
    /// timestamp order.
    pub fn events_named(&self, name: &str) -> Vec<Event> {
        self.events
            .ring
            .lock()
            .iter()
            .filter(|e| e.name == name)
            .cloned()
            .collect()
    }

    /// Snapshot of the whole event ring, in timestamp order.
    pub fn events_snapshot(&self) -> Vec<Event> {
        self.events.ring.lock().iter().cloned().collect()
    }

    /// Number of buffered events.
    pub fn events_len(&self) -> usize {
        self.events.ring.lock().len()
    }

    /// Number of events dropped because the ring was full.
    pub fn events_dropped(&self) -> u64 {
        self.events.dropped.load(Ordering::Relaxed)
    }

    /// Capacity of the event ring.
    pub fn event_capacity(&self) -> usize {
        self.events.capacity
    }

    // -- export --------------------------------------------------------------

    /// Render the full registry (counters, gauges, histograms, events) into
    /// a JSON value. Keys are sorted, so output is deterministic given the
    /// same metric contents.
    ///
    /// Shape:
    /// ```json
    /// {
    ///   "counters":   { "<process>": { "<component>": { "<name>": N } } },
    ///   "gauges":     { ... same nesting, signed ... },
    ///   "histograms": { ... same nesting, {count,sum_ns,max_ns,buckets} ... },
    ///   "events":     { "dropped": N, "recorded": [ {ts,process,...} ] }
    /// }
    /// ```
    pub fn export(&self) -> Value {
        let mut root = Map::new();

        let mut counters = Map::new();
        for (k, v) in self.counters.read().iter() {
            if v.get() > 0 {
                nest(&mut counters, k, Value::U64(v.get()));
            }
        }
        root.insert("counters".into(), Value::Object(counters));

        let mut gauges = Map::new();
        for (k, v) in self.gauges.read().iter() {
            nest(&mut gauges, k, Value::I64(v.get()));
            // The high-water mark rides along under `<name>#hw`, so leak
            // audits can diff peak footprints from any exported artifact.
            let hw_key = (k.0.clone(), k.1.clone(), format!("{}#hw", k.2));
            nest(&mut gauges, &hw_key, Value::I64(v.high_water()));
        }
        root.insert("gauges".into(), Value::Object(gauges));

        let mut hists = Map::new();
        for (k, v) in self.histograms.read().iter() {
            if v.count() > 0 {
                nest(&mut hists, k, v.export());
            }
        }
        root.insert("histograms".into(), Value::Object(hists));

        let mut events = Map::new();
        events.insert("dropped".into(), Value::U64(self.events_dropped()));
        if self.events_dropped() > 0 {
            // Ring overflow silently truncates whatever downstream consumer
            // (chaos invariants, trace assembly) reads the ring; make the
            // loss impossible to miss in exported artifacts.
            events.insert(
                "warning".into(),
                Value::Str(format!(
                    "event ring overflowed: {} event(s) dropped; raise the \
                     event capacity or reduce instrumentation",
                    self.events_dropped()
                )),
            );
        }
        let recorded: Vec<Value> = self
            .events_snapshot()
            .iter()
            .map(|e| {
                let mut m = Map::new();
                m.insert("ts".into(), Value::U64(e.ts));
                m.insert("process".into(), Value::Str(e.process.clone()));
                m.insert("component".into(), Value::Str(e.component.clone()));
                m.insert("name".into(), Value::Str(e.name.clone()));
                let mut attrs = Map::new();
                for (k, v) in &e.attrs {
                    attrs.insert(k.clone(), v.to_json());
                }
                m.insert("attrs".into(), Value::Object(attrs));
                Value::Object(m)
            })
            .collect();
        events.insert("recorded".into(), Value::Array(recorded));
        root.insert("events".into(), Value::Object(events));

        Value::Object(root)
    }
}

/// Insert `value` at `map[process][component][name]`.
fn nest(map: &mut Map, k: &Key, value: Value) {
    let (process, component, name) = k;
    let proc_entry = map
        .entry(process.clone())
        .or_insert_with(|| Value::Object(Map::new()));
    let Value::Object(proc_map) = proc_entry else { unreachable!() };
    let comp_entry = proc_map
        .entry(component.clone())
        .or_insert_with(|| Value::Object(Map::new()));
    let Value::Object(comp_map) = comp_entry else { unreachable!() };
    comp_map.insert(name.clone(), value);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handle_is_shared() {
        let r = Registry::new();
        let a = r.counter("p", "c", "n");
        let b = r.counter("p", "c", "n");
        a.add(3);
        b.inc();
        assert_eq!(r.counter_value("p", "c", "n"), 4);
        assert_eq!(r.counter_value("p", "c", "other"), 0);
    }

    #[test]
    fn sum_counters_spans_processes() {
        let r = Registry::new();
        r.counter("p0", "pml", "eager_sent").add(2);
        r.counter("p1", "pml", "eager_sent").add(5);
        r.counter("p1", "pml", "rts_sent").add(9);
        assert_eq!(r.sum_counters("pml", "eager_sent"), 7);
        assert_eq!(r.sum_counters("pml", "rts_sent"), 9);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let r = Registry::new();
        let g = r.gauge("p", "c", "live");
        g.add(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        g.set(-1);
        assert_eq!(g.get(), -1);
    }

    #[test]
    fn gauge_high_water_tracks_peak_not_current() {
        let r = Registry::new();
        let g = r.gauge("p", "c", "live");
        assert_eq!(g.high_water(), 0);
        g.add(3);
        g.add(4); // peak = 7
        g.add(-6);
        assert_eq!(g.get(), 1);
        assert_eq!(g.high_water(), 7);
        g.set(5); // below the peak: the mark must not move
        assert_eq!(g.high_water(), 7);
        g.set(9);
        assert_eq!(g.high_water(), 9);
        // Read-side helpers see both facets.
        assert_eq!(r.gauge_value("p", "c", "live"), 9);
        assert_eq!(r.sum_gauges("c", "live"), 9);
        assert_eq!(r.sum_gauge_high_water("c", "live"), 9);
        let snap = r.gauges_snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].1, 9);
        assert_eq!(snap[0].2, 9);
        // Export carries the mark as a `#hw` sibling.
        let json = serde_json::to_string(&r.export()).unwrap();
        assert!(json.contains("\"live\":9"), "{json}");
        assert!(json.contains("\"live#hw\":9"), "{json}");
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let r = Registry::new();
        let h = r.histogram("p", "c", "lat");
        h.record(Duration::from_micros(5)); // bucket 1 (<=10µs)
        h.record(Duration::from_millis(2)); // bucket 4 (<=10ms)
        h.record(Duration::from_secs(100)); // overflow bucket
        assert_eq!(h.count(), 3);
        assert_eq!(h.max_ns(), 100_000_000_000);
        let json = h.export();
        let obj = json.as_object().unwrap();
        assert_eq!(obj["count"].as_u64(), Some(3));
        let buckets = obj["buckets"].as_array().unwrap();
        assert_eq!(buckets.len(), NUM_BUCKETS);
        assert_eq!(buckets[1].as_u64(), Some(1));
        assert_eq!(buckets[4].as_u64(), Some(1));
        assert_eq!(buckets[NUM_BUCKETS - 1].as_u64(), Some(1));
    }

    #[test]
    fn percentile_estimates_pinned_on_known_inputs() {
        // 100 samples of 5µs: everything sits in bucket 1, (1µs, 10µs].
        // p50 rank = 50 of 100 in-bucket → 1000 + 9000·50/100 = 5500ns.
        let r = Registry::new();
        let h = r.histogram("p", "c", "uniform");
        for _ in 0..100 {
            h.record_ns(5_000);
        }
        assert_eq!(h.percentile_ns(50), 5_500);
        assert_eq!(h.percentile_ns(99), 1_000 + 9_000 * 99 / 100);

        // Bimodal: 90 fast samples (500ns, bucket 0) + 10 slow (5ms,
        // bucket 4). p50 interpolates inside bucket 0, p95/p99 inside
        // bucket 4's (1ms, 10ms] range.
        let h = r.histogram("p", "c", "bimodal");
        for _ in 0..90 {
            h.record_ns(500);
        }
        for _ in 0..10 {
            h.record_ns(5_000_000);
        }
        assert_eq!(h.percentile_ns(50), 1_000 * 50 / 90);
        assert_eq!(h.percentile_ns(95), 1_000_000 + 9_000_000 * 5 / 10);
        assert_eq!(h.percentile_ns(99), 1_000_000 + 9_000_000 * 9 / 10);

        // Overflow bucket's upper edge is the observed max; a single
        // sample puts every percentile rank at that edge.
        let h = r.histogram("p", "c", "overflow");
        h.record_ns(20_000_000_000);
        assert_eq!(h.percentile_ns(50), 20_000_000_000);
        assert_eq!(h.percentile_ns(100), 20_000_000_000);

        // Empty histogram: all percentiles are 0.
        let h = r.histogram("p", "c", "empty");
        assert_eq!(h.percentile_ns(50), 0);
    }

    #[test]
    fn export_includes_percentiles() {
        let r = Registry::new();
        let h = r.histogram("p", "c", "lat");
        for _ in 0..100 {
            h.record_ns(5_000);
        }
        let json = serde_json::to_string(&r.export()).unwrap();
        assert!(json.contains("\"p50_ns\":5500"), "{json}");
        assert!(json.contains("\"p95_ns\""));
        assert!(json.contains("\"p99_ns\""));
    }

    #[test]
    fn export_warns_when_events_dropped() {
        let r = Registry::with_event_capacity(2);
        for _ in 0..5 {
            r.event("p", "c", "e", vec![]);
        }
        let json = serde_json::to_string(&r.export()).unwrap();
        assert!(json.contains("event ring overflowed"), "{json}");
        let clean = Registry::new();
        clean.event("p", "c", "e", vec![]);
        let json = serde_json::to_string(&clean.export()).unwrap();
        assert!(!json.contains("warning"), "{json}");
    }

    #[test]
    fn events_ring_drops_oldest() {
        let r = Registry::with_event_capacity(3);
        for i in 0..5u64 {
            r.event("p", "c", "e", vec![("i".into(), i.into())]);
        }
        assert_eq!(r.events_len(), 3);
        assert_eq!(r.events_dropped(), 2);
        let evs = r.events_snapshot();
        // Oldest two were dropped; timestamps stay strictly increasing.
        assert_eq!(evs[0].attr("i").unwrap().as_u64(), Some(2));
        assert!(evs.windows(2).all(|w| w[0].ts < w[1].ts));
    }

    #[test]
    fn export_is_nested_and_deterministic() {
        let r = Registry::new();
        r.counter("ep0", "pml", "eager_sent").add(4);
        r.counter("fabric", "fabric", "msgs_sent").add(10);
        r.histogram("launcher", "prrte", "map_ns").record_ns(500);
        r.event("srv", "pmix", "group.fanin", vec![("op".into(), "g1".into())]);
        let a = serde_json::to_string(&r.export()).unwrap();
        let b = serde_json::to_string(&r.export()).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("\"eager_sent\":4"));
        assert!(a.contains("\"msgs_sent\":10"));
        assert!(a.contains("group.fanin"));
    }
}
