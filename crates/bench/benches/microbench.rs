//! Criterion microbenchmarks over the simulated stack.
//!
//! Each benchmark uses `iter_custom`: the requested iteration count is
//! shipped into a freshly launched simulated job, the ranks run the hot
//! loop, and the job reports the elapsed time of the measured rank. That
//! keeps criterion's statistics while the real work happens inside the
//! multi-process simulation.
//!
//! Covered paths (mapping to the paper's evaluation concerns):
//! * `init/*` — startup cost of the two process models (Fig. 3's axis);
//! * `comm_create/*` — consensus vs PGCID vs derived identifiers (Fig. 4);
//! * `p2p/*` — steady-state latency incl. first-message handshake (Fig. 5);
//! * `coll/*` — barrier/allreduce building blocks;
//! * `pmix/*` — fence vs group construct substrate costs.

use criterion::{criterion_group, criterion_main, Criterion};
use mpi_sessions::{coll, Comm, ErrHandler, Info, ReduceOp, Session, ThreadLevel};
use prrte::{JobSpec, Launcher};
use simnet::SimTestbed;
use std::time::{Duration, Instant};

/// Run a 2-rank on-node job; rank 0's closure result is the measured time.
fn timed_job<F>(np: u32, f: F) -> Duration
where
    F: Fn(&prrte::ProcCtx) -> Duration + Send + Sync + 'static,
{
    let launcher = Launcher::new(SimTestbed::tiny(1, np));
    let out = launcher
        .spawn(JobSpec::new(np), move |ctx| f(&ctx))
        .join()
        .expect("bench job");
    out[0]
}

fn session_comm(ctx: &prrte::ProcCtx, tag: &str) -> (Session, Comm) {
    let s = Session::init(ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null()).unwrap();
    let g = s.group_from_pset("mpi://world").unwrap();
    let c = Comm::create_from_group(&g, tag).unwrap();
    (s, c)
}

fn bench_init(c: &mut Criterion) {
    let mut g = c.benchmark_group("init");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    g.bench_function("wpm", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                total += timed_job(2, |ctx| {
                    let t0 = Instant::now();
                    let w = mpi_sessions::world::init(ctx).unwrap();
                    let dt = t0.elapsed();
                    w.finalize().unwrap();
                    dt
                });
            }
            total
        })
    });
    g.bench_function("sessions", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                total += timed_job(2, |ctx| {
                    let t0 = Instant::now();
                    let (s, comm) = session_comm(ctx, "bench-init");
                    let dt = t0.elapsed();
                    comm.free().unwrap();
                    s.finalize().unwrap();
                    dt
                });
            }
            total
        })
    });
    g.finish();
}

fn bench_comm_create(c: &mut Criterion) {
    let mut g = c.benchmark_group("comm_create");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    for (name, which) in [("consensus", 0u8), ("pgcid", 1), ("derived", 2)] {
        g.bench_function(name, |b| {
            b.iter_custom(move |iters| {
                timed_job(4, move |ctx| {
                    let world = mpi_sessions::world::init(ctx).unwrap();
                    let (s, parent) = session_comm(ctx, "bench-cc");
                    let t0 = Instant::now();
                    let mut made = Vec::new();
                    for _ in 0..iters {
                        let d = match which {
                            0 => world.comm().dup_consensus().unwrap(),
                            1 => parent.dup_via_group().unwrap(),
                            _ => parent.dup().unwrap(),
                        };
                        made.push(d);
                    }
                    let dt = t0.elapsed();
                    for d in made {
                        d.free().unwrap();
                    }
                    parent.free().unwrap();
                    s.finalize().unwrap();
                    world.finalize().unwrap();
                    dt
                })
            })
        });
    }
    g.finish();
}

fn bench_p2p(c: &mut Criterion) {
    let mut g = c.benchmark_group("p2p");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    // Steady-state ping-pong over a sessions communicator (the handshake
    // completed during warmup).
    g.bench_function("pingpong_steady_8B", |b| {
        b.iter_custom(|iters| {
            timed_job(2, move |ctx| {
                let (s, comm) = session_comm(ctx, "bench-pp");
                let me = comm.rank();
                // warmup: complete the handshake
                if me == 0 {
                    comm.send(1, 0, b"warm").unwrap();
                    let _ = comm.recv(1, 0).unwrap();
                } else {
                    let _ = comm.recv(0, 0).unwrap();
                    comm.send(0, 0, b"warm").unwrap();
                }
                let payload = [0u8; 8];
                let t0 = Instant::now();
                for _ in 0..iters {
                    if me == 0 {
                        comm.send(1, 1, &payload).unwrap();
                        let _ = comm.recv(1, 1).unwrap();
                    } else {
                        let _ = comm.recv(0, 1).unwrap();
                        comm.send(0, 1, &payload).unwrap();
                    }
                }
                let dt = t0.elapsed();
                comm.free().unwrap();
                s.finalize().unwrap();
                dt
            })
        })
    });
    // First message on a fresh exCID communicator: includes EXT header +
    // matching-side mapping (the A2 ablation).
    g.bench_function("first_message_handshake", |b| {
        b.iter_custom(|iters| {
            timed_job(2, move |ctx| {
                let s = Session::init(ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null())
                    .unwrap();
                let group = s.group_from_pset("mpi://world").unwrap();
                let mut comms = Vec::new();
                for i in 0..iters {
                    comms.push(Comm::create_from_group(&group, &format!("hs{i}")).unwrap());
                }
                let me = comms[0].rank();
                let t0 = Instant::now();
                for comm in &comms {
                    if me == 0 {
                        comm.send(1, 0, b"x").unwrap();
                        let _ = comm.recv(1, 0).unwrap();
                    } else {
                        let _ = comm.recv(0, 0).unwrap();
                        comm.send(0, 0, b"x").unwrap();
                    }
                }
                let dt = t0.elapsed();
                for comm in comms {
                    comm.free().unwrap();
                }
                s.finalize().unwrap();
                dt
            })
        })
    });
    g.finish();
}

fn bench_coll(c: &mut Criterion) {
    let mut g = c.benchmark_group("coll");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    g.bench_function("barrier_np4", |b| {
        b.iter_custom(|iters| {
            timed_job(4, move |ctx| {
                let (s, comm) = session_comm(ctx, "bench-bar");
                let t0 = Instant::now();
                for _ in 0..iters {
                    coll::barrier(&comm).unwrap();
                }
                let dt = t0.elapsed();
                comm.free().unwrap();
                s.finalize().unwrap();
                dt
            })
        })
    });
    g.bench_function("allreduce_np4_64B", |b| {
        b.iter_custom(|iters| {
            timed_job(4, move |ctx| {
                let (s, comm) = session_comm(ctx, "bench-ar");
                let data = vec![1u64; 8];
                let t0 = Instant::now();
                for _ in 0..iters {
                    let _ = coll::allreduce_t(&comm, ReduceOp::Sum, &data).unwrap();
                }
                let dt = t0.elapsed();
                comm.free().unwrap();
                s.finalize().unwrap();
                dt
            })
        })
    });
    g.finish();
}

fn bench_pmix(c: &mut Criterion) {
    let mut g = c.benchmark_group("pmix");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    g.bench_function("fence_np4", |b| {
        b.iter_custom(|iters| {
            timed_job(4, move |ctx| {
                let members: Vec<pmix::ProcId> = (0..ctx.size())
                    .map(|r| pmix::ProcId::new(ctx.proc().nspace(), r))
                    .collect();
                let t0 = Instant::now();
                for _ in 0..iters {
                    ctx.pmix().fence(&members, false).unwrap();
                }
                t0.elapsed()
            })
        })
    });
    g.bench_function("group_construct_np4", |b| {
        b.iter_custom(|iters| {
            timed_job(4, move |ctx| {
                let members: Vec<pmix::ProcId> = (0..ctx.size())
                    .map(|r| pmix::ProcId::new(ctx.proc().nspace(), r))
                    .collect();
                let t0 = Instant::now();
                for i in 0..iters {
                    let g = ctx
                        .pmix()
                        .group_construct(
                            &format!("bm{i}"),
                            &members,
                            &pmix::GroupDirectives::for_mpi(),
                        )
                        .unwrap();
                    ctx.pmix().group_destruct(&g, None).unwrap();
                }
                t0.elapsed()
            })
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_init,
    bench_comm_create,
    bench_p2p,
    bench_coll,
    bench_pmix
);
criterion_main!(benches);
