//! Shared plumbing for the figure regenerators.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's experiment index): it runs the workload on the
//! simulated testbed, prints the same rows/series the paper reports, and
//! can dump machine-readable JSON next to the human-readable table.

use serde::Serialize;
use serde_json::{Map, Value};
use std::path::PathBuf;

/// Standard location for JSON result dumps (`target/figures/`).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("target/figures");
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Write a JSON result record for a figure.
pub fn dump_json<T: Serialize>(figure: &str, value: &T) {
    let path = results_dir().join(format!("{figure}.json"));
    match serde_json::to_vec_pretty(value) {
        Ok(bytes) => {
            if let Err(e) = std::fs::write(&path, bytes) {
                eprintln!("warn: could not write {}: {e}", path.display());
            } else {
                eprintln!("(wrote {})", path.display());
            }
        }
        Err(e) => eprintln!("warn: could not serialize {figure}: {e}"),
    }
}

/// Collects per-run obs registry exports (`--metrics-out <path>`).
///
/// Each figure binary records the observability export of its runs under
/// a run label; `finish` writes one JSON object mapping labels to exports.
/// Without `--metrics-out` on the command line the sink is disabled and
/// `record`/`finish` are no-ops, so the instrumented path costs nothing.
pub struct MetricsSink {
    path: Option<PathBuf>,
    runs: Map,
}

impl MetricsSink {
    /// Build from argv: honors `--metrics-out <path>`.
    pub fn from_args(args: &[String]) -> MetricsSink {
        let path = args
            .iter()
            .position(|a| a == "--metrics-out")
            .and_then(|i| args.get(i + 1))
            .map(PathBuf::from);
        MetricsSink { path, runs: Map::new() }
    }

    /// Whether `--metrics-out` was given (skip export work otherwise).
    pub fn enabled(&self) -> bool {
        self.path.is_some()
    }

    /// Record one run's metrics export under `label`.
    ///
    /// A `--metrics-out` run with dropped events is a **hard failure**:
    /// the export would silently under-report, so refuse to produce it
    /// (raise the ring capacity or trim the workload instead).
    pub fn record(&mut self, label: &str, metrics: Value) {
        if self.enabled() {
            let dropped = metrics
                .as_object()
                .and_then(|o| o.get("events"))
                .and_then(|e| e.as_object())
                .and_then(|e| e.get("dropped"))
                .and_then(Value::as_u64)
                .unwrap_or(0);
            assert!(
                dropped == 0,
                "run '{label}': {dropped} event(s) dropped from the obs ring; \
                 a --metrics-out export must be complete"
            );
            self.runs.insert(label.to_owned(), metrics);
        }
    }

    /// Write the collected exports; prints the destination on success.
    pub fn finish(self) {
        let Some(path) = self.path else { return };
        match serde_json::to_vec_pretty(&Value::Object(self.runs)) {
            Ok(bytes) => {
                if let Err(e) = std::fs::write(&path, bytes) {
                    eprintln!("warn: could not write metrics to {}: {e}", path.display());
                } else {
                    eprintln!("(wrote metrics to {})", path.display());
                }
            }
            Err(e) => eprintln!("warn: could not serialize metrics: {e}"),
        }
    }
}

/// Collects per-run span-DAG trace reports (`--trace-out <path>`).
///
/// Mirrors [`MetricsSink`]: figure binaries record the analyzed trace of
/// each run (see `obs::analyze`) under a run label; `finish` writes one
/// JSON object mapping labels to reports, plus a flamegraph-style text
/// rendering of every trace next to it (`<path>.flame.txt`). Reports are
/// derived from logical clocks and work counters only, so two runs at the
/// same seed and size produce byte-identical files.
pub struct TraceSink {
    path: Option<PathBuf>,
    runs: Map,
}

impl TraceSink {
    /// Build from argv: honors `--trace-out <path>`.
    pub fn from_args(args: &[String]) -> TraceSink {
        let path = args
            .iter()
            .position(|a| a == "--trace-out")
            .and_then(|i| args.get(i + 1))
            .map(PathBuf::from);
        TraceSink { path, runs: Map::new() }
    }

    /// Whether `--trace-out` was given (skip trace analysis otherwise).
    pub fn enabled(&self) -> bool {
        self.path.is_some()
    }

    /// Record one run's trace report under `label`.
    ///
    /// A traced run that overflowed the span buffer is a hard failure for
    /// the same reason dropped events are: an incomplete DAG would yield a
    /// silently wrong critical path.
    pub fn record(&mut self, label: &str, trace: Value) {
        if !self.enabled() {
            return;
        }
        let dropped = trace
            .as_object()
            .and_then(|o| o.get("spans_dropped"))
            .and_then(Value::as_u64)
            .unwrap_or(0);
        assert!(
            dropped == 0,
            "run '{label}': {dropped} span(s) dropped from the trace buffer; \
             a --trace-out report must be complete"
        );
        self.runs.insert(label.to_owned(), trace);
    }

    /// Write the collected reports; prints the destinations on success.
    pub fn finish(self) {
        let Some(path) = self.path else { return };
        let mut flame = String::new();
        for (label, report) in &self.runs {
            flame.push_str(&format!("== {label} ==\n"));
            flame.push_str(&obs::analyze::flamegraph_text(report));
            flame.push('\n');
        }
        match serde_json::to_vec_pretty(&Value::Object(self.runs)) {
            Ok(bytes) => {
                if let Err(e) = std::fs::write(&path, bytes) {
                    eprintln!("warn: could not write traces to {}: {e}", path.display());
                } else {
                    eprintln!("(wrote traces to {})", path.display());
                }
            }
            Err(e) => eprintln!("warn: could not serialize traces: {e}"),
        }
        let flame_path = PathBuf::from(format!("{}.flame.txt", path.display()));
        if let Err(e) = std::fs::write(&flame_path, flame) {
            eprintln!("warn: could not write flamegraph to {}: {e}", flame_path.display());
        } else {
            eprintln!("(wrote flamegraph to {})", flame_path.display());
        }
    }
}

/// Shared machinery for the sessions-as-a-service soak harness
/// (`fig_soak` and `bench_gate`'s soak workload): resource-level sampling
/// over the obs gauges and the leak-freedom verdict the soak gates on.
pub mod soak {
    use serde::Serialize;

    /// One reading of the per-component resource levels the lifecycle GC
    /// is responsible for, sampled from the shared obs registry. Gauges
    /// are *levels* (their high-water marks are tracked separately by
    /// `obs`), so a drained runtime must show the baseline again.
    #[derive(Clone, Copy, Debug, Serialize)]
    pub struct LevelSample {
        /// Churn wave at which the sample was taken.
        pub wave: u64,
        /// Sum of per-process communicator-table occupancy (`cid/table_used`).
        pub cid_table_used: i64,
        /// Sum of per-process PML handshake-cache entries (`pml/cache_entries`).
        pub pml_cache_entries: i64,
        /// Live psets in the namespace registry (`registry/pmix/psets_live`).
        pub psets_live: i64,
        /// Retained tombstones (`registry/pmix/psets_tombstoned`).
        pub psets_tombstoned: i64,
        /// Sum of per-shard server KVS entries (`pmix/kvs_entries`).
        pub kvs_entries: i64,
        /// Sum of per-server PGCID pool occupancy (`pmix/pgcid_pool_len`).
        pub pgcid_pool: i64,
    }

    /// The six lifecycle levels bound once as MPI_T pvar handles — the
    /// soak harness samples the runtime through the same tool surface an
    /// external MPI_T agent would use, and `PvarSession` reads are defined
    /// to agree with `Registry::export`, so the soak report and a tool
    /// watching the same run can never disagree.
    pub struct SoakPvars {
        session: obs::PvarSession,
        cid_table_used: obs::PvarHandle,
        pml_cache_entries: obs::PvarHandle,
        psets_live: obs::PvarHandle,
        psets_tombstoned: obs::PvarHandle,
        kvs_entries: obs::PvarHandle,
        pgcid_pool: obs::PvarHandle,
    }

    impl SoakPvars {
        /// Bind the level handles over `registry`.
        pub fn bind(registry: std::sync::Arc<obs::Registry>) -> Self {
            let mut session = obs::PvarSession::new(registry);
            let cid_table_used = session.bind_level_sum("cid", "table_used");
            let pml_cache_entries = session.bind_level_sum("pml", "cache_entries");
            let psets_live = session.bind_level("registry", "pmix", "psets_live");
            let psets_tombstoned = session.bind_level("registry", "pmix", "psets_tombstoned");
            let kvs_entries = session.bind_level_sum("pmix", "kvs_entries");
            let pgcid_pool = session.bind_level_sum("pmix", "pgcid_pool_len");
            Self {
                session,
                cid_table_used,
                pml_cache_entries,
                psets_live,
                psets_tombstoned,
                kvs_entries,
                pgcid_pool,
            }
        }

        /// Sample every bound level.
        pub fn sample(&self, wave: u64) -> LevelSample {
            LevelSample {
                wave,
                cid_table_used: self.session.read_i64(self.cid_table_used),
                pml_cache_entries: self.session.read_i64(self.pml_cache_entries),
                psets_live: self.session.read_i64(self.psets_live),
                psets_tombstoned: self.session.read_i64(self.psets_tombstoned),
                kvs_entries: self.session.read_i64(self.kvs_entries),
                pgcid_pool: self.session.read_i64(self.pgcid_pool),
            }
        }
    }

    /// Sample the current resource levels (one-shot convenience over
    /// [`SoakPvars`]).
    pub fn sample(obs: &std::sync::Arc<obs::Registry>, wave: u64) -> LevelSample {
        SoakPvars::bind(obs.clone()).sample(wave)
    }

    /// Per-component high-water marks (peak levels over the whole run),
    /// as `(label, peak)` rows for the soak report.
    pub fn high_water(obs: &obs::Registry) -> Vec<(String, i64)> {
        [
            ("cid/table_used", obs.sum_gauge_high_water("cid", "table_used")),
            ("pml/cache_entries", obs.sum_gauge_high_water("pml", "cache_entries")),
            ("registry/psets_live", obs.sum_gauge_high_water("pmix", "psets_live")),
            ("registry/psets_tombstoned", obs.sum_gauge_high_water("pmix", "psets_tombstoned")),
            ("server/kvs_entries", obs.sum_gauge_high_water("pmix", "kvs_entries")),
            ("server/pgcid_pool", obs.sum_gauge_high_water("pmix", "pgcid_pool_len")),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_owned(), v))
        .collect()
    }

    /// One leak-freedom check: a drained-state value against its bound.
    #[derive(Debug, Serialize)]
    pub struct LeakCheck {
        /// What is being bounded.
        pub what: &'static str,
        /// Observed value after the drain.
        pub value: i64,
        /// Largest value compatible with leak-freedom.
        pub bound: i64,
        /// Whether the check passed.
        pub ok: bool,
    }

    /// The leak-freedom verdict: every per-component level must return to
    /// its baseline once the churn drains.
    #[derive(Debug, Serialize)]
    pub struct LeakVerdict {
        /// Individual checks, all of which must pass.
        pub checks: Vec<LeakCheck>,
        /// Conjunction of all checks.
        pub passed: bool,
    }

    impl LeakVerdict {
        /// Render the verdict as an aligned table plus a PASS/FAIL line.
        pub fn render(&self) -> String {
            let mut out = String::new();
            out.push_str(&format!("{:>34} {:>10} {:>10} {:>6}\n", "check", "value", "bound", "ok"));
            for c in &self.checks {
                out.push_str(&format!(
                    "{:>34} {:>10} {:>10} {:>6}\n",
                    c.what,
                    c.value,
                    c.bound,
                    if c.ok { "ok" } else { "LEAK" }
                ));
            }
            out.push_str(&format!(
                "leak-freedom: {}\n",
                if self.passed { "PASS" } else { "FAIL" }
            ));
            out
        }
    }

    /// Judge a drained run: `baseline` was sampled at the quiet point
    /// before the churn started (launch-defined psets in place, no live
    /// sessions), `fin` after the last wave drained. Communicator tables
    /// and the PML cache must be empty, live psets and KVS entries back at
    /// baseline, and tombstones held under `tombstone_cap` by the GC.
    pub fn leak_verdict(
        baseline: &LevelSample,
        fin: &LevelSample,
        tombstone_cap: i64,
    ) -> LeakVerdict {
        let checks = vec![
            check("cid table drained", fin.cid_table_used, 0),
            check("pml handshake cache drained", fin.pml_cache_entries, 0),
            check("live psets at baseline", fin.psets_live, baseline.psets_live),
            check("tombstones under GC cap", fin.psets_tombstoned, tombstone_cap),
            check("server kvs at baseline", fin.kvs_entries, baseline.kvs_entries),
        ];
        let passed = checks.iter().all(|c| c.ok);
        LeakVerdict { checks, passed }
    }

    fn check(what: &'static str, value: i64, bound: i64) -> LeakCheck {
        LeakCheck { what, value, bound, ok: value <= bound }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn drained(wave: u64) -> LevelSample {
            LevelSample {
                wave,
                cid_table_used: 0,
                pml_cache_entries: 0,
                psets_live: 3,
                psets_tombstoned: 4,
                kvs_entries: 8,
                pgcid_pool: 16,
            }
        }

        #[test]
        fn verdict_passes_when_levels_return_to_baseline() {
            let v = leak_verdict(&drained(0), &drained(100), 32);
            assert!(v.passed, "{}", v.render());
            assert_eq!(v.checks.len(), 5);
        }

        #[test]
        fn verdict_fails_on_unreaped_tombstones_or_live_cids() {
            let mut leaky = drained(100);
            leaky.psets_tombstoned = 33;
            let v = leak_verdict(&drained(0), &leaky, 32);
            assert!(!v.passed);
            assert!(v.render().contains("LEAK"));

            let mut leaky = drained(100);
            leaky.cid_table_used = 2;
            assert!(!leak_verdict(&drained(0), &leaky, 32).passed);
        }
    }
}

/// Geometric mean of relative ratios (used for Fig. 5-style summaries).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Parse a comma-separated list of integers (`--nodes 1,2,4,8`).
pub fn parse_list(s: &str) -> Vec<u32> {
    s.split(',')
        .filter(|t| !t.is_empty())
        .map(|t| t.trim().parse().expect("integer list"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_ones_is_one() {
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 0.5]) - 1.0).abs() < 1e-12);
        assert!(geomean(&[]).is_nan());
    }

    #[test]
    fn parse_list_handles_spaces() {
        assert_eq!(parse_list("1, 2,4"), vec![1, 2, 4]);
    }

    #[test]
    fn metrics_sink_is_noop_without_flag() {
        let mut sink = MetricsSink::from_args(&["prog".to_string()]);
        assert!(!sink.enabled());
        sink.record("run", Value::U64(1));
        sink.finish(); // writes nothing, panics on nothing
    }

    #[test]
    fn metrics_sink_writes_labeled_runs() {
        let path = std::env::temp_dir().join("bench_metrics_sink_test.json");
        let args: Vec<String> = ["prog", "--metrics-out", path.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut sink = MetricsSink::from_args(&args);
        assert!(sink.enabled());
        sink.record("nodes2_sessions", Value::U64(7));
        sink.finish();
        let data = std::fs::read_to_string(&path).unwrap();
        assert!(data.contains("nodes2_sessions"));
        let _ = std::fs::remove_file(&path);
    }
}
