//! Shared plumbing for the figure regenerators.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's experiment index): it runs the workload on the
//! simulated testbed, prints the same rows/series the paper reports, and
//! can dump machine-readable JSON next to the human-readable table.

use serde::Serialize;
use std::path::PathBuf;

/// Standard location for JSON result dumps (`target/figures/`).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("target/figures");
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Write a JSON result record for a figure.
pub fn dump_json<T: Serialize>(figure: &str, value: &T) {
    let path = results_dir().join(format!("{figure}.json"));
    match serde_json::to_vec_pretty(value) {
        Ok(bytes) => {
            if let Err(e) = std::fs::write(&path, bytes) {
                eprintln!("warn: could not write {}: {e}", path.display());
            } else {
                eprintln!("(wrote {})", path.display());
            }
        }
        Err(e) => eprintln!("warn: could not serialize {figure}: {e}"),
    }
}

/// Geometric mean of relative ratios (used for Fig. 5-style summaries).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Parse a comma-separated list of integers (`--nodes 1,2,4,8`).
pub fn parse_list(s: &str) -> Vec<u32> {
    s.split(',')
        .filter(|t| !t.is_empty())
        .map(|t| t.trim().parse().expect("integer list"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_ones_is_one() {
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 0.5]) - 1.0).abs() < 1e-12);
        assert!(geomean(&[]).is_nan());
    }

    #[test]
    fn parse_list_handles_spaces() {
        assert_eq!(parse_list("1, 2,4"), vec![1, 2, 4]);
    }
}
