//! Elastic-session workload: rebuild latency through pset churn.
//!
//! The Sessions model makes process sets runtime-owned, so membership can
//! change while the job runs. This workload drives the full churn sequence
//! — grow 4→8 ranks, kill one, retire one gracefully, delete the pset —
//! and reports, per epoch, how long it takes **every** surviving rank to
//! come back with a rebuilt communicator (driver-observed wall time from
//! the mutation to the last collective ack on the new comm).
//!
//! Usage: `fig_elastic [--metrics-out <path>] [--trace-out <path>]`
//! (`--metrics-out` dumps the obs export — `session.rebuilds`,
//! `prrte.ranks_grown`/`ranks_retired`, `pml.cache_invalidated`;
//! `--trace-out` dumps the causal span DAG whose `pset.update →
//! session.rebuild` chains carry the rebuild critical path.)

use bench_harness::dump_json;
use mpi_sessions::{coll, ElasticComm, ErrHandler, Info, Rebuild, ReduceOp, Session, ThreadLevel};
use prrte::{JobSpec, Launcher};
use serde::Serialize;
use simnet::SimTestbed;
use std::sync::mpsc;
use std::time::{Duration, Instant};

const PSET: &str = "app://elastic";
const STEP: Duration = Duration::from_secs(30);

#[derive(Serialize)]
struct Row {
    phase: &'static str,
    epoch: u64,
    members: u32,
    rebuild_us: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let launcher = Launcher::new(SimTestbed::tiny(2, 4));
    let (tx, rx) = mpsc::channel::<(u32, u64, u32)>();
    let spec = JobSpec::new(4).with_pset(PSET, vec![0, 1, 2, 3]);
    let handle = launcher.spawn_named("elastic", spec, move |ctx| {
        let session =
            Session::init(&ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null())
                .expect("session init");
        let mut ec = ElasticComm::establish(&session, PSET, STEP).expect("establish");
        loop {
            // One allreduce per epoch: the ack proves this rank is on the
            // rebuilt communicator with the full epoch membership.
            let comm = ec.comm().expect("member has a communicator");
            let sum = coll::allreduce_t(comm, ReduceOp::Sum, &[1u32]).expect("allreduce")[0];
            tx.send((ctx.rank(), ec.epoch(), sum)).expect("ack");
            match ec.next_rebuild(STEP) {
                Ok(Rebuild::Rebuilt { .. }) => continue,
                Ok(Rebuild::Retired { .. }) | Ok(Rebuild::Deleted { .. }) => break,
                Err(e) => panic!("rank {} rebuild failed: {e}", ctx.rank()),
            }
        }
        session.finalize().expect("finalize");
    });
    let ctl = handle.ctl();

    let settle = |n: u32, epoch: u64| {
        let t0 = Instant::now();
        for _ in 0..n {
            let (rank, e, s) = rx.recv_timeout(STEP).expect("ack before timeout");
            assert_eq!((e, s), (epoch, n), "rank {rank} settled on the wrong epoch");
        }
        t0.elapsed().as_secs_f64() * 1e6
    };

    let mut rows = Vec::new();
    rows.push(Row { phase: "establish", epoch: 1, members: 4, rebuild_us: settle(4, 1) });
    ctl.spawn_ranks(4, Some(PSET));
    rows.push(Row { phase: "grow_4to8", epoch: 2, members: 8, rebuild_us: settle(8, 2) });
    handle.kill_rank(7);
    rows.push(Row { phase: "kill_rank7", epoch: 3, members: 7, rebuild_us: settle(7, 3) });
    ctl.retire_ranks(&[6], Some(PSET)).expect("retire");
    rows.push(Row { phase: "retire_rank6", epoch: 4, members: 6, rebuild_us: settle(6, 4) });
    launcher.universe().registry().undefine_pset(PSET);
    handle.join().expect("elastic job");

    println!("# Elastic sessions: time for every member to rejoin the rebuilt comm");
    println!("{:>14} {:>6} {:>8} {:>14}", "phase", "epoch", "members", "rebuild (us)");
    for r in &rows {
        println!("{:>14} {:>6} {:>8} {:>14.1}", r.phase, r.epoch, r.members, r.rebuild_us);
    }

    let registry = launcher.universe().fabric().obs();
    let rebuilds = registry.sum_counters("session", "rebuilds");
    let invalidated = registry.sum_counters("pml", "cache_invalidated");
    println!(
        "\n# {} communicator rebuilds across 4 epochs; {} handshake-cache entries \
         invalidated for departed peers",
        rebuilds, invalidated
    );
    assert_eq!(rebuilds, 4 + 8 + 7 + 6, "one rebuild per member per epoch");
    assert!(invalidated > 0, "departed peers must be evicted from the PML cache");
    // The killed and retired ranks must not ack the final epoch.
    assert!(
        rx.recv_timeout(Duration::from_millis(50)).is_err(),
        "no stragglers past the final epoch"
    );

    let mut sink = bench_harness::MetricsSink::from_args(&args);
    sink.record("elastic_churn", registry.export());
    sink.finish();
    let mut traces = bench_harness::TraceSink::from_args(&args);
    if traces.enabled() {
        traces.record(
            "elastic_churn",
            obs::analyze::analyze(&registry.spans_snapshot(), registry.spans_dropped()),
        );
    }
    traces.finish();
    dump_json("fig_elastic", &rows);
}
