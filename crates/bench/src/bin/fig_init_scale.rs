//! Lazy-init figure: eager (fence-collected) vs. lazy (fence-free)
//! session initialization across scale.
//!
//! For each (nodes, ppn) point the eager path runs the full Figure-1
//! sequence — business cards collected by a PMIx fence, exCID agreed by
//! the group-construct fan-in/fan-out — while the lazy path
//! (`init_mode=lazy`, DESIGN.md §14) publishes its card without a fence,
//! hashes the exCID locally, and returns. Besides wall time (hardware
//! noise) the figure reports two *deterministic* trace-derived columns:
//! the logical critical-path cost of the launch DAG and the number of
//! `group.fanout` stages on it. Lazy init must show **zero** fan-out
//! stages at every point, and a strictly shorter critical path wherever
//! np ≥ 4 (below that the eager fence is trivial and the lazy
//! publish+commit pair can cost a step more) — the binary exits nonzero
//! if either invariant fails, so the ci.sh smoke run doubles as a gate.
//!
//! Usage: `fig_init_scale [--nodes 1,2,4] [--ppn-list 1,4] [--reps 3]
//!                        [--load-cost-us 200] [--metrics-out <path>]
//!                        [--trace-out <path>]`
//! (`--trace-out` dumps each best run's span-DAG report; ci.sh feeds it
//! through `trace_check` and diffs the stage orderings against
//! `ci/golden_lazy_critical_path.txt`.)

use apps::osu::{osu_init_traced, InitResult};
use apps::{cli_opt, InitMode};
use bench_harness::{dump_json, parse_list, MetricsSink, TraceSink};
use serde::Serialize;
use serde_json::Value;
use simnet::SimTestbed;

#[derive(Serialize)]
struct Row {
    ppn: u32,
    nodes: u32,
    np: u32,
    eager_ms: f64,
    lazy_ms: f64,
    /// Logical critical-path cost of the launch DAG (deterministic).
    eager_path: u64,
    lazy_path: u64,
    /// `group.fanout` stage executions on the whole DAG (deterministic;
    /// must be 0 for lazy).
    eager_fanout: u64,
    lazy_fanout: u64,
}

fn best_of(
    reps: usize,
    f: impl Fn() -> (InitResult, Value, Value),
) -> (InitResult, Value, Value) {
    (0..reps.max(1))
        .map(|_| f())
        .min_by(|a, b| a.0.max.total_s.total_cmp(&b.0.max.total_s))
        .expect("at least one rep")
}

/// Max logical critical-path cost over the report's traces (the same
/// reduction bench_gate records).
fn critical_path_cost(report: &Value) -> u64 {
    report
        .as_object()
        .and_then(|r| r.get("traces"))
        .and_then(Value::as_array)
        .map(|traces| {
            traces
                .iter()
                .filter_map(|t| t.as_object()?.get("critical_path_cost")?.as_u64())
                .max()
                .unwrap_or(0)
        })
        .unwrap_or(0)
}

/// Execution count of one stage name across the whole DAG.
fn stage_count(report: &Value, stage: &str) -> u64 {
    report
        .as_object()
        .and_then(|r| r.get("stages"))
        .and_then(Value::as_object)
        .and_then(|s| s.get(stage))
        .and_then(Value::as_object)
        .and_then(|s| s.get("count"))
        .and_then(Value::as_u64)
        .unwrap_or(0)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nodes_list = parse_list(&cli_opt(&args, "--nodes").unwrap_or_else(|| "1,2,4".into()));
    let ppn_list = parse_list(&cli_opt(&args, "--ppn-list").unwrap_or_else(|| "1,4".into()));
    let reps: usize = cli_opt(&args, "--reps").and_then(|v| v.parse().ok()).unwrap_or(3);
    let load_us: u64 =
        cli_opt(&args, "--load-cost-us").and_then(|v| v.parse().ok()).unwrap_or(200);
    mpi_sessions::instance::set_subsystem_init_cost(std::time::Duration::from_micros(load_us));

    println!("# Lazy vs. eager session init across scale (fence-free startup, DESIGN.md §14)");
    println!("# per-subsystem component-load cost: {load_us} us (--load-cost-us)");
    let mut sink = MetricsSink::from_args(&args);
    let mut traces = TraceSink::from_args(&args);
    let mut rows = Vec::new();
    let mut failed = false;
    for &ppn in &ppn_list {
        println!("\n## {ppn} process(es) per node");
        println!(
            "{:>6} {:>6} {:>10} {:>10} {:>11} {:>11} {:>8} {:>8}",
            "nodes", "np", "eager(ms)", "lazy(ms)", "eager_path", "lazy_path", "e_fout", "l_fout"
        );
        for &nodes in &nodes_list {
            let mk_tb = || {
                let mut tb = SimTestbed::jupiter(nodes);
                tb.cluster.slots_per_node = ppn;
                tb
            };
            let np = nodes * ppn;
            // Traces are always wanted here: the deterministic columns
            // come from the span DAG, not the wall clock.
            let (eager, eager_metrics, eager_trace) =
                best_of(reps, || osu_init_traced(mk_tb(), np, InitMode::Sessions, true));
            let (lazy, lazy_metrics, lazy_trace) =
                best_of(reps, || osu_init_traced(mk_tb(), np, InitMode::Lazy, true));
            sink.record(&format!("ppn{ppn}_nodes{nodes}_eager"), eager_metrics);
            sink.record(&format!("ppn{ppn}_nodes{nodes}_lazy"), lazy_metrics);
            let row = Row {
                ppn,
                nodes,
                np,
                eager_ms: eager.max.total_s * 1e3,
                lazy_ms: lazy.max.total_s * 1e3,
                eager_path: critical_path_cost(&eager_trace),
                lazy_path: critical_path_cost(&lazy_trace),
                eager_fanout: stage_count(&eager_trace, "group.fanout"),
                lazy_fanout: stage_count(&lazy_trace, "group.fanout"),
            };
            traces.record(&format!("ppn{ppn}_nodes{nodes}_eager"), eager_trace);
            traces.record(&format!("ppn{ppn}_nodes{nodes}_lazy"), lazy_trace);
            println!(
                "{:>6} {:>6} {:>10.3} {:>10.3} {:>11} {:>11} {:>8} {:>8}",
                nodes,
                np,
                row.eager_ms,
                row.lazy_ms,
                row.eager_path,
                row.lazy_path,
                row.eager_fanout,
                row.lazy_fanout
            );
            if row.lazy_fanout != 0 {
                eprintln!(
                    "fig_init_scale: FAIL nodes={nodes} ppn={ppn}: lazy init ran {} \
                     group.fanout stage(s) — the fence-free path must not fan out",
                    row.lazy_fanout
                );
                failed = true;
            }
            if np >= 4 && row.lazy_path >= row.eager_path {
                eprintln!(
                    "fig_init_scale: FAIL nodes={nodes} ppn={ppn}: lazy critical path {} \
                     is not shorter than eager {}",
                    row.lazy_path, row.eager_path
                );
                failed = true;
            }
            rows.push(row);
        }
    }
    println!(
        "\n# Shape: the eager critical path grows with the group fan-in/fan-out tree; the \
         lazy path is flat per rank (publish + commit, no fence) and pays its peer \
         resolution later, on first contact."
    );
    dump_json("fig_init_scale", &rows);
    sink.finish();
    traces.finish();
    if failed {
        std::process::exit(1);
    }
}
