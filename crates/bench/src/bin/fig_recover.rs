//! Fault-recovery workload: settle latency of the checkpoint-free
//! allreduce loop across injected kills (DESIGN.md §15).
//!
//! Four ranks run [`apps::recover::run_rank_with_progress`] — a ring
//! allreduce over the widest available communicator, repaired through the
//! survivors pset on every observed fault. The driver kills rank 3, then
//! rank 2, and reports per episode how long it takes **every** survivor
//! to make fresh step progress on the repaired communicator
//! (driver-observed wall time from the kill to the last survivor's first
//! new step ack).
//!
//! Usage: `fig_recover [--metrics-out <path>] [--trace-out <path>]`

use apps::recover::{RankOutcome, RecoverConfig};
use bench_harness::dump_json;
use prrte::{JobSpec, Launcher};
use serde::Serialize;
use simnet::SimTestbed;
use std::sync::mpsc;
use std::time::{Duration, Instant};

const ACK_LIMIT: Duration = Duration::from_secs(60);

#[derive(Serialize)]
struct Row {
    phase: &'static str,
    members: u32,
    settle_us: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let launcher = Launcher::new(SimTestbed::tiny(2, 2));
    // Fast typed Timeout verdicts while repair epochs disagree
    // (docs/TUNING.md: pmix.group_timeout_ms).
    launcher.universe().set_group_timeout(Duration::from_secs(2));
    let cfg = RecoverConfig {
        steps: 12,
        step_wait: Duration::from_secs(2),
        repair_budget: Duration::from_secs(30),
    };
    let (tx, rx) = mpsc::channel::<(u32, u32)>();
    let handle = launcher.spawn_named("recover", JobSpec::new(4), {
        let cfg = cfg.clone();
        move |ctx| {
            let tx = tx.clone();
            let rank = ctx.rank();
            apps::recover::run_rank_with_progress(&ctx, &cfg, |step| {
                let _ = tx.send((rank, step));
            })
        }
    });

    // Highest step acked per rank. After a repair the step-agreement ring
    // may roll a survivor back to the last globally consistent step, so
    // "settled" means acking a step *beyond* the pre-kill high-water mark
    // — fresh progress, not a recomputation of old ground.
    let mut latest = [0u32; 4];
    let settle = |survivors: &[u32], latest: &mut [u32; 4]| {
        let snap = *latest;
        let t0 = Instant::now();
        while survivors.iter().any(|&r| latest[r as usize] <= snap[r as usize]) {
            let (rank, step) = rx.recv_timeout(ACK_LIMIT).expect("step progress before timeout");
            let slot = &mut latest[rank as usize];
            *slot = (*slot).max(step);
        }
        t0.elapsed().as_secs_f64() * 1e6
    };

    let mut rows = Vec::new();
    rows.push(Row {
        phase: "steady_4",
        members: 4,
        settle_us: settle(&[0, 1, 2, 3], &mut latest),
    });
    handle.kill_rank(3);
    rows.push(Row { phase: "kill_rank3", members: 3, settle_us: settle(&[0, 1, 2], &mut latest) });
    handle.kill_rank(2);
    rows.push(Row { phase: "kill_rank2", members: 2, settle_us: settle(&[0, 1], &mut latest) });
    let out = handle.join().expect("recover job");

    println!("# Checkpoint-free recovery: kill-to-fresh-progress settle latency");
    println!("{:>12} {:>8} {:>14}", "phase", "members", "settle (us)");
    for r in &rows {
        println!("{:>12} {:>8} {:>14.1}", r.phase, r.members, r.settle_us);
    }

    let mut repairs = 0u32;
    let mut stale_retries = 0u32;
    let mut step_faults = 0u32;
    for (rank, outcome) in out.iter().enumerate() {
        match (rank, outcome) {
            (2 | 3, RankOutcome::Removed { .. }) => {}
            (0 | 1, RankOutcome::Survivor(r)) => {
                assert_eq!(r.steps_done, cfg.steps, "rank {rank} must finish every step");
                assert_eq!(r.final_size, 2, "the final steps run over the two survivors");
                assert_eq!(r.sums.last(), Some(&2), "final sum is the surviving width");
                repairs += r.repairs;
                stale_retries += r.stale_retries;
                step_faults += r.step_faults;
            }
            _ => panic!("rank {rank} ended in the wrong state: {outcome:?}"),
        }
    }
    assert!(repairs >= 4, "two survivors x two kill episodes = at least 4 repairs");
    println!(
        "\n# survivors repaired {repairs} times ({stale_retries} stale-epoch retries, \
         {step_faults} typed step faults routed into repair)"
    );
    // Drain the tail of in-flight step acks (survivors kept stepping past
    // the last settle point); none may claim a step beyond the configured
    // count.
    while let Ok((rank, step)) = rx.recv_timeout(Duration::from_millis(50)) {
        assert!(step <= cfg.steps, "rank {rank} acked step {step} past the last step");
    }

    let registry = launcher.universe().fabric().obs();
    let mut sink = bench_harness::MetricsSink::from_args(&args);
    sink.record("recover", registry.export());
    sink.finish();
    let mut traces = bench_harness::TraceSink::from_args(&args);
    if traces.enabled() {
        traces.record(
            "recover",
            obs::analyze::analyze(&registry.spans_snapshot(), registry.spans_dropped()),
        );
    }
    traces.finish();
    dump_json("fig_recover", &rows);
}
