//! Ablation A1 (paper §IV-C2 discussion): how CID-space fragmentation
//! degrades the consensus algorithm while the exCID generator is immune.
//!
//! The benchmark skews one rank's communicator table by `frag` burned
//! slots, then measures (a) consensus rounds + time per dup, (b) exCID
//! derivation time per dup, and (c) exCID dup+free *churn* time, at each
//! fragmentation level. The churn column exercises the recycling path:
//! every free returns its subfield to the parent pool and the next dup
//! resumes it, so sustained churn neither consumes fresh derivations nor
//! slows down as the table fragments.
//!
//! Usage: `abl_cid_fragmentation [--np 4] [--frags 0,4,16,64] [--iters 8]`

use apps::cli_opt;
use bench_harness::{dump_json, parse_list};
use mpi_sessions::{Comm, ErrHandler, Info, Session, ThreadLevel};
use prrte::{JobSpec, Launcher};
use serde::Serialize;
use simnet::SimTestbed;
use std::time::Instant;

#[derive(Serialize)]
struct Row {
    frag: u32,
    consensus_rounds: u32,
    consensus_us: f64,
    excid_derive_us: f64,
    excid_churn_us: f64,
    subfields_recycled: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let np: u32 = cli_opt(&args, "--np").and_then(|v| v.parse().ok()).unwrap_or(4);
    let frags = parse_list(&cli_opt(&args, "--frags").unwrap_or_else(|| "0,4,16,64".into()));
    let iters: usize = cli_opt(&args, "--iters").and_then(|v| v.parse().ok()).unwrap_or(8);

    println!("# Ablation A1: consensus CID under fragmentation vs exCID derivation");
    println!(
        "{:>8} {:>18} {:>16} {:>18} {:>16} {:>10}",
        "frag", "consensus rounds", "consensus us", "excid derive us", "excid churn us", "recycled"
    );
    let mut rows = Vec::new();
    for &frag in &frags {
        let launcher = Launcher::new(SimTestbed::tiny(1, np));
        let mut per_rank = launcher
            .spawn(JobSpec::new(np), move |ctx| {
                let world = mpi_sessions::world::init(&ctx).expect("init");
                let session =
                    Session::init(&ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null())
                        .expect("session");
                // Fragment: rank (np-1) burns `frag` local CIDs.
                let mut burners = Vec::new();
                if ctx.rank() == ctx.size() - 1 {
                    let g = session.group_from_pset("mpi://self").expect("self pset");
                    for i in 0..frag {
                        burners.push(Comm::create_from_group(&g, &format!("burn{i}")).unwrap());
                    }
                }
                let rounds = world.comm().probe_consensus_rounds().expect("probe");

                // Consensus dup timing.
                let t0 = Instant::now();
                let mut dups = Vec::new();
                for _ in 0..iters {
                    dups.push(world.comm().dup_consensus().expect("dup"));
                }
                let consensus_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;
                for d in dups {
                    d.free().expect("free");
                }

                // exCID derivation dup timing (immune to fragmentation:
                // no agreement traffic at all).
                let g = session.group_from_pset("mpi://world").expect("world pset");
                let parent = Comm::create_from_group(&g, "abl-parent").expect("parent");
                let t0 = Instant::now();
                let mut dups = Vec::new();
                for _ in 0..iters {
                    dups.push(parent.dup().expect("derive"));
                }
                let excid_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;
                for d in dups {
                    d.free().expect("free");
                }

                // Dup+free churn: after the first cycle every dup resumes
                // a recycled subfield; fragmentation of the local table
                // cannot slow this down either (lowest-free CID claim is
                // the only table-dependent step, same as a fresh derive).
                let t0 = Instant::now();
                for _ in 0..iters {
                    parent.dup().expect("churn dup").free().expect("churn free");
                }
                let churn_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;
                parent.free().expect("free");
                for b in burners {
                    b.free().expect("free");
                }
                session.finalize().expect("fini");
                world.finalize().expect("fini");
                (rounds, consensus_us, excid_us, churn_us)
            })
            .join()
            .expect("ablation job");
        let (rounds, cons, exc, churn) =
            per_rank.drain(..).fold((0, 0.0f64, 0.0f64, 0.0f64), |acc, v| {
                (acc.0.max(v.0), acc.1.max(v.1), acc.2.max(v.2), acc.3.max(v.3))
            });
        // The churn loop's derivations after the first must all be served
        // from the freed list: at least (iters - 1) recycles per rank.
        let obs = launcher.universe().fabric().obs();
        let recycled = obs.sum_counters("cid", "subfields_recycled");
        assert!(
            recycled >= (np as u64) * (iters as u64 - 1),
            "churn must recycle freed subfields ({recycled} recycled)"
        );
        println!(
            "{:>8} {:>18} {:>16.2} {:>18.2} {:>16.2} {:>10}",
            frag, rounds, cons, exc, churn, recycled
        );
        rows.push(Row {
            frag,
            consensus_rounds: rounds,
            consensus_us: cons,
            excid_derive_us: exc,
            excid_churn_us: churn,
            subfields_recycled: recycled,
        });
    }
    println!("\n# Shape: consensus rounds (and time) grow with fragmentation;");
    println!("# exCID derivation is flat — it never searches the CID space —");
    println!("# and dup+free churn recycles subfields instead of consuming them.");
    dump_json("abl_cid_fragmentation", &rows);
}
