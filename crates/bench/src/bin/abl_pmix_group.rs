//! Ablation A3 (paper §III-A): PMIx group-construct cost vs. scale.
//!
//! Times `PMIx_Group_construct` (the three-stage hierarchical collective
//! plus PGCID acquisition) and `PMIx_Fence` over the same membership, so
//! the PGCID/group overhead on top of a plain fence is visible — this is
//! the substrate cost behind Figs. 3 and 4.
//!
//! Usage: `abl_pmix_group [--nodes 1,2,4,8] [--ppn 4] [--iters 8]
//!                        [--metrics-out <path>] [--trace-out <path>]`
//! (`--metrics-out` dumps per-topology observability exports: the
//! fan-in/exchange/fan-out stage counters, PGCID allocations, per-server
//! RPC processing-time histograms. `--trace-out` dumps per-topology causal
//! span-DAG traces of the fence and group-construct stage chains.)

use apps::cli_opt;
use bench_harness::{dump_json, parse_list, MetricsSink, TraceSink};
use pmix::{GroupDirectives, ProcId};
use prrte::{JobSpec, Launcher};
use serde::Serialize;
use simnet::SimTestbed;
use std::time::Instant;

#[derive(Serialize)]
struct Row {
    nodes: u32,
    np: u32,
    fence_us: f64,
    construct_us: f64,
    construct_no_pgcid_us: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nodes_list = parse_list(&cli_opt(&args, "--nodes").unwrap_or_else(|| "1,2,4".into()));
    let ppn: u32 = cli_opt(&args, "--ppn").and_then(|v| v.parse().ok()).unwrap_or(4);
    let iters: usize = cli_opt(&args, "--iters").and_then(|v| v.parse().ok()).unwrap_or(8);

    println!("# Ablation A3: PMIx collectives, {ppn} processes/node");
    println!(
        "{:>6} {:>6} {:>14} {:>16} {:>20}",
        "nodes", "np", "fence (us)", "construct (us)", "construct-noPGCID"
    );
    let mut sink = MetricsSink::from_args(&args);
    let mut traces = TraceSink::from_args(&args);
    let mut rows = Vec::new();
    for &nodes in &nodes_list {
        let mut tb = SimTestbed::jupiter(nodes);
        tb.cluster.slots_per_node = ppn;
        let np = nodes * ppn;
        let launcher = Launcher::new(tb);
        let per_rank = launcher
            .spawn(JobSpec::new(np), move |ctx| {
                let members: Vec<ProcId> = (0..ctx.size())
                    .map(|r| ProcId::new(ctx.proc().nspace(), r))
                    .collect();
                // Fence timing.
                let t0 = Instant::now();
                for _ in 0..iters {
                    ctx.pmix().fence(&members, false).expect("fence");
                }
                let fence_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;
                // Construct (+PGCID) timing.
                let t0 = Instant::now();
                for i in 0..iters {
                    let g = ctx
                        .pmix()
                        .group_construct(&format!("abl{i}"), &members, &GroupDirectives::for_mpi())
                        .expect("construct");
                    ctx.pmix().group_destruct(&g, None).expect("destruct");
                }
                let construct_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;
                // Construct without PGCID.
                let d = GroupDirectives::for_mpi().without_pgcid();
                let t0 = Instant::now();
                for i in 0..iters {
                    let g = ctx
                        .pmix()
                        .group_construct(&format!("ablnp{i}"), &members, &d)
                        .expect("construct");
                    ctx.pmix().group_destruct(&g, None).expect("destruct");
                }
                let nopgcid_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;
                (fence_us, construct_us, nopgcid_us)
            })
            .join()
            .expect("ablation job");
        let registry = launcher.universe().fabric().obs();
        if sink.enabled() {
            sink.record(&format!("nodes{nodes}_ppn{ppn}"), registry.export());
        }
        if traces.enabled() {
            traces.record(
                &format!("nodes{nodes}_ppn{ppn}"),
                obs::analyze::analyze(&registry.spans_snapshot(), registry.spans_dropped()),
            );
        }
        let (f, c, n) = per_rank.into_iter().fold((0.0f64, 0.0f64, 0.0f64), |acc, v| {
            (acc.0.max(v.0), acc.1.max(v.1), acc.2.max(v.2))
        });
        println!("{:>6} {:>6} {:>14.2} {:>16.2} {:>20.2}", nodes, np, f, c, n);
        rows.push(Row {
            nodes,
            np,
            fence_us: f,
            construct_us: c,
            construct_no_pgcid_us: n,
        });
    }
    println!("\n# Shape: construct ≥ fence (same all-to-all plus group bookkeeping);");
    println!("# the PGCID adds an RM round trip on top. Note construct includes a");
    println!("# paired destruct here, so compare trends rather than absolutes.");
    dump_json("abl_pmix_group", &rows);
    sink.finish();
    traces.finish();
}
