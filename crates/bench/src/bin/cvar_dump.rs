//! Enumerate the live tuning surface: every control variable (cvar) the
//! stack registers, plus the environment-knob table, as text or as the
//! checked-in `docs/TUNING.md` markdown.
//!
//! The dump is taken from a *running* universe — a tiny testbed is
//! booted and two ranks hold an open session while the registry is
//! enumerated — so the table is exactly what `Registry::cvars()` (or an
//! `introspect_dump` snapshot) would show a tool at runtime, not a
//! hand-maintained list. Per-process scopes are collapsed to the generic
//! `process` label so the output is deterministic; ci.sh regenerates the
//! markdown and diffs it against `docs/TUNING.md` to catch knobs that
//! were added without documenting them (or docs that drifted from code).
//!
//! Usage: `cvar_dump [--markdown] [--out <path>]`

use apps::{cli_flag, cli_opt};
use mpi_sessions::{ErrHandler, Info, Session, ThreadLevel};
use obs::{CvarInfo, ENV_KNOBS};
use prrte::{JobSpec, Launcher};
use simnet::SimTestbed;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Collapse a scope key to its class: per-process scopes are ProcId
/// strings (`nspace:rank`), everything else is a fixed label.
fn scope_class(scope: &str) -> &'static str {
    match scope {
        "universe" => "universe",
        "env" => "env",
        _ => "process",
    }
}

fn scope_rank(class: &str) -> u8 {
    match class {
        "universe" => 0,
        "process" => 1,
        _ => 2,
    }
}

/// Boot a minimal stack and enumerate its cvars while the ranks are
/// still alive (the registry prunes a process's cvars once it dies).
fn enumerate_live() -> Vec<CvarInfo> {
    let launcher = Launcher::new(SimTestbed::tiny(1, 2));
    let (tx, rx) = mpsc::channel::<u32>();
    let hold = Arc::new(AtomicBool::new(false));
    let release = Arc::clone(&hold);
    let handle = launcher.spawn(JobSpec::new(2), move |ctx| {
        let session = Session::init(&ctx, ThreadLevel::Single, ErrHandler::Return, &Info::new())
            .expect("session init");
        tx.send(ctx.rank()).unwrap();
        while !release.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(2));
        }
        session.finalize().expect("session fini");
    });
    for _ in 0..2 {
        rx.recv_timeout(Duration::from_secs(30)).expect("rank up");
    }
    let rows = launcher.universe().fabric().obs().cvars();
    hold.store(true, Ordering::Release);
    handle.join().expect("dump job");
    rows
}

/// Dedupe per-process registrations down to one row per (class, name);
/// every process registers the same knobs with the same defaults, and we
/// fail loudly if that ever stops being true.
fn collapse(rows: Vec<CvarInfo>) -> Vec<(&'static str, CvarInfo)> {
    let mut by_key: BTreeMap<(u8, String), (&'static str, CvarInfo)> = BTreeMap::new();
    for row in rows {
        let class = scope_class(&row.scope);
        let key = (scope_rank(class), row.name.clone());
        if let Some((_, seen)) = by_key.get(&key) {
            assert_eq!(
                (seen.writable, seen.value.to_string()),
                (row.writable, row.value.to_string()),
                "cvar {} differs across {} scopes — the dump would be nondeterministic",
                row.name,
                class,
            );
        } else {
            by_key.insert(key, (class, row));
        }
    }
    by_key.into_values().collect()
}

fn escape(s: &str) -> String {
    s.replace('|', "\\|")
}

/// Which bench/chaos gate exercises each knob. A knob missing here shows
/// up as `—` in the table — add its gate when you add the knob.
fn exercised_by(name: &str) -> &'static str {
    match name {
        "pmix.init_mode" => {
            "`bench_gate` `fig_init_lazy_np4` hard bound; ci.sh `INIT_MODE=lazy` chaos sweep"
        }
        "pmix.pgcid_block" => {
            "`bench_gate` pgcid-batching hard bound; `abl_cid_fragmentation`"
        }
        "pmix.group_timeout_ms" => {
            "chaos `partition_rebuild` scenario (cvar_write to 800 ms); \
             `fig_recover` / apps recovery tests via the legacy setter"
        }
        "pmix.server_shards" => "introspect gate (`introspect_dump` shard rows)",
        "pmix.epoch_retention_cap" => "`fig_soak` epoch ring-bound checks",
        "registry.gc_enabled" => "ci.sh `fig_soak --no-gc` negative run",
        "registry.gc_tombstone_threshold" => "`fig_soak` registry GC sampling",
        "core.stall_ticks" => "stall-watchdog tests; introspect gate `--chaos-fail` run",
        "pml.handshake_cache_cap" => "`bench_gate` `pml_cache_two_comms_np2`",
        "chaos.seeds" | "chaos.scenarios" => "ci.sh chaos sweep",
        "bench.tol" => "ci.sh bench gate (`bench_gate --check`)",
        "soak.waves" | "soak.sample_every" => "ci.sh soak smoke (`fig_soak`)",
        "session.init_mode" => "ci.sh lazy-mode sweep (chaos scenarios + `fig_init_scale` smoke)",
        _ => "—",
    }
}

fn render_markdown(rows: &[(&'static str, CvarInfo)]) -> String {
    let mut out = String::new();
    out.push_str("# Tuning guide\n\n");
    out.push_str(
        "<!-- Generated by `cargo run -q --offline -p bench-harness --bin cvar_dump -- \
         --markdown`.\n     Do not edit by hand: ci.sh regenerates this table and fails on \
         drift. -->\n\n",
    );
    out.push_str(
        "The stack exposes its knobs through an MPI_T-style control-variable\n\
         (cvar) registry (`obs::Registry`). A tool reads a knob with\n\
         `cvar_read(scope, name)` and changes it at runtime with\n\
         `cvar_write(scope, name, value)`; every successful write emits a\n\
         `cvar.changed` event carrying the old and new value, so tuning\n\
         actions land in the same trace as their effects. `introspect_dump`\n\
         snapshots include the full table below with live values.\n\n",
    );
    out.push_str("## Control variables\n\n");
    out.push_str("| Scope | Cvar | Writable | Default | Description | Exercised by |\n");
    out.push_str("|-------|------|----------|---------|-------------|--------------|\n");
    for (class, row) in rows.iter().filter(|(c, _)| *c != "env") {
        out.push_str(&format!(
            "| {} | `{}` | {} | `{}` | {} | {} |\n",
            class,
            row.name,
            if row.writable { "yes" } else { "no" },
            row.value,
            escape(row.description),
            exercised_by(&row.name),
        ));
    }
    out.push_str(
        "\nScope `universe` knobs are registered once at universe boot and\n\
         steer every job in it; scope `process` knobs are registered by each\n\
         MPI process under its own `nspace:rank` scope key (the table shows\n\
         the shared defaults — write to one process's scope to tune that\n\
         process alone). Read-only rows surface compile-time constants so\n\
         tools can discover the build's limits.\n\n",
    );
    out.push_str("## Environment knobs\n\n");
    out.push_str(
        "Read once at startup and mirrored read-only into the cvar registry\n\
         under the `env` scope (unset variables enumerate as `<unset>`), so\n\
         one dump records everything that shaped a run.\n\n",
    );
    out.push_str("| Env var | Cvar mirror | Description | Exercised by |\n");
    out.push_str("|---------|-------------|-------------|--------------|\n");
    for knob in ENV_KNOBS {
        out.push_str(&format!(
            "| `{}` | `env/{}` | {} | {} |\n",
            knob.env,
            knob.name,
            escape(knob.description),
            exercised_by(knob.name),
        ));
    }
    out
}

fn render_plain(rows: &[(&'static str, CvarInfo)]) -> String {
    let mut out = String::new();
    for (class, row) in rows {
        out.push_str(&format!(
            "{:<9} {:<32} {:<3} {:<12} {}\n",
            class,
            row.name,
            if row.writable { "rw" } else { "ro" },
            row.value.to_string(),
            row.description,
        ));
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let rows = collapse(enumerate_live());
    let text =
        if cli_flag(&args, "--markdown") { render_markdown(&rows) } else { render_plain(&rows) };
    match cli_opt(&args, "--out") {
        Some(path) => {
            std::fs::write(&path, &text).expect("write --out");
            eprintln!("cvar_dump: wrote {} row(s) to {path}", rows.len());
        }
        None => print!("{text}"),
    }
}
