//! Fig. 3 regenerator: MPI initialization time vs. node count, for
//! `MPI_Init` and the MPI Sessions sequence, at 1 process/node (Fig. 3a)
//! and many processes/node (Fig. 3b), including the session-phase
//! breakdown the paper quotes in §IV-C1.
//!
//! Usage: `fig3_init [--nodes 1,2,4,8] [--ppn-list 1,8] [--reps 3] [--paper]
//!                   [--metrics-out <path>] [--trace-out <path>]`
//! (`--paper` uses the full 28 processes/node of the Jupiter runs; heavy
//! on a small host. `--metrics-out` dumps each best run's observability
//! export — including the session-handle vs resource-init timing split.
//! `--trace-out` dumps each best run's causal span-DAG trace report with
//! its critical path, plus a flamegraph text rendering.)

use apps::osu::{osu_init_traced, InitResult};
use apps::{cli_flag, cli_opt, InitMode};
use bench_harness::{dump_json, parse_list, MetricsSink, TraceSink};
use serde::Serialize;
use simnet::SimTestbed;

#[derive(Serialize)]
struct Row {
    ppn: u32,
    nodes: u32,
    np: u32,
    wpm_ms: f64,
    sessions_ms: f64,
    ratio: f64,
    session_init_frac: f64,
    comm_create_frac: f64,
}

fn best_of(
    reps: usize,
    f: impl Fn() -> (InitResult, serde_json::Value, serde_json::Value),
) -> (InitResult, serde_json::Value, serde_json::Value) {
    (0..reps.max(1))
        .map(|_| f())
        .min_by(|a, b| a.0.max.total_s.total_cmp(&b.0.max.total_s))
        .expect("at least one rep")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nodes_list =
        parse_list(&cli_opt(&args, "--nodes").unwrap_or_else(|| "1,2,4,8".into()));
    let default_ppn = if cli_flag(&args, "--paper") { "1,28" } else { "1,8" };
    let ppn_list =
        parse_list(&cli_opt(&args, "--ppn-list").unwrap_or_else(|| default_ppn.into()));
    let reps: usize = cli_opt(&args, "--reps").and_then(|v| v.parse().ok()).unwrap_or(3);

    // Paper-like startup magnitudes: MPI_Init's absolute time was dominated
    // by loading components from slow NFS — model that as a per-subsystem
    // first-init cost (WPM initializes every subsystem eagerly; a bare
    // session initializes the minimal set).
    let load_us: u64 =
        cli_opt(&args, "--load-cost-us").and_then(|v| v.parse().ok()).unwrap_or(200);
    mpi_sessions::instance::set_subsystem_init_cost(std::time::Duration::from_micros(load_us));

    println!("# Fig. 3: MPI initialization times (simulated Jupiter cost model)");
    println!("# per-subsystem component-load cost: {load_us} us (NFS analog, --load-cost-us)");
    let mut sink = MetricsSink::from_args(&args);
    let mut traces = TraceSink::from_args(&args);
    let want_trace = traces.enabled();
    let mut rows = Vec::new();
    for &ppn in &ppn_list {
        println!("\n## {} process(es) per node (Fig. 3{})", ppn, if ppn == 1 { "a" } else { "b" });
        println!(
            "{:>6} {:>6} {:>12} {:>14} {:>8} {:>12} {:>12}",
            "nodes", "np", "MPI_Init(ms)", "Sessions(ms)", "ratio", "%sess_init", "%comm_create"
        );
        for &nodes in &nodes_list {
            let mk_tb = || {
                let mut tb = SimTestbed::jupiter(nodes);
                tb.cluster.slots_per_node = ppn;
                tb
            };
            let np = nodes * ppn;
            let (wpm, wpm_metrics, wpm_trace) =
                best_of(reps, || osu_init_traced(mk_tb(), np, InitMode::Wpm, want_trace));
            let (sess, sess_metrics, sess_trace) =
                best_of(reps, || osu_init_traced(mk_tb(), np, InitMode::Sessions, want_trace));
            sink.record(&format!("ppn{ppn}_nodes{nodes}_wpm"), wpm_metrics);
            sink.record(&format!("ppn{ppn}_nodes{nodes}_sessions"), sess_metrics);
            traces.record(&format!("ppn{ppn}_nodes{nodes}_wpm"), wpm_trace);
            traces.record(&format!("ppn{ppn}_nodes{nodes}_sessions"), sess_trace);
            let ratio = sess.max.total_s / wpm.max.total_s;
            let si_frac = sess.max.session_init_s / sess.max.total_s * 100.0;
            let cc_frac = sess.max.comm_create_s / sess.max.total_s * 100.0;
            println!(
                "{:>6} {:>6} {:>12.3} {:>14.3} {:>8.3} {:>11.1}% {:>11.1}%",
                nodes,
                np,
                wpm.max.total_s * 1e3,
                sess.max.total_s * 1e3,
                ratio,
                si_frac,
                cc_frac
            );
            rows.push(Row {
                ppn,
                nodes,
                np,
                wpm_ms: wpm.max.total_s * 1e3,
                sessions_ms: sess.max.total_s * 1e3,
                ratio,
                session_init_frac: si_frac,
                comm_create_frac: cc_frac,
            });
        }
    }
    println!(
        "\n# Paper shape: Sessions ≈ 1.1–1.3× MPI_Init; at high ppn a sizeable share of \
         the sessions time is the initial session-handle/resource init, the rest is \
         communicator construction (PMIx group + PGCID)."
    );
    dump_json("fig3_init", &rows);
    sink.finish();
    traces.finish();
}
