//! Fig. 5b/5c regenerator: relative bandwidth and message rate
//! (Sessions / MPI_Init) by message size, for 2 processes (5b) and many
//! processes (5c), with and without per-pair pre-synchronization.
//!
//! The 5c artifact: with multiple pairs, the barrier before the timing
//! loop does *not* complete the exCID→local-CID switchover for every
//! pair, so early timed sends still carry the extended header; the
//! `--presync`-style sendrecv equalizes the modes (paper §IV-C3).
//!
//! Usage: `fig5_mbw [--procs 2|16] [--max-size 65536] [--window 64]
//!                  [--iters 20] [--presync] [--both] [--metrics-out <path>]
//!                  [--trace-out <path>]`
//! (`--metrics-out` dumps per-run observability exports: the PML
//! eager/extended-header split behind the switchover artifact, fabric
//! on-node vs inter-node traffic. `--trace-out` dumps per-run causal
//! span-DAG traces with the exCID handshake spans.)

use apps::osu::{run_mbw_job_traced, size_sweep};
use apps::{cli_flag, cli_opt, InitMode};
use bench_harness::{dump_json, geomean, MetricsSink, TraceSink};
use serde::Serialize;
use simnet::SimTestbed;

#[derive(Serialize)]
struct Row {
    procs: u32,
    presync: bool,
    size: usize,
    wpm_mbs: f64,
    sessions_mbs: f64,
    rel_bw: f64,
    rel_mr: f64,
}

fn run_config(
    procs: u32,
    presync: bool,
    sizes: &[usize],
    window: usize,
    iters: usize,
    sink: &mut MetricsSink,
    traces: &mut TraceSink,
) -> Vec<Row> {
    let run = |mode| {
        run_mbw_job_traced(
            SimTestbed::tiny(1, procs),
            mode,
            procs,
            sizes.to_vec(),
            window,
            2,
            iters,
            presync,
            traces.enabled(),
        )
    };
    let (wpm, wpm_m, wpm_t) = run(InitMode::Wpm);
    let (sess, sess_m, sess_t) = run(InitMode::Sessions);
    sink.record(&format!("p{procs}_presync{presync}_wpm"), wpm_m);
    sink.record(&format!("p{procs}_presync{presync}_sessions"), sess_m);
    traces.record(&format!("p{procs}_presync{presync}_wpm"), wpm_t);
    traces.record(&format!("p{procs}_presync{presync}_sessions"), sess_t);
    sizes
        .iter()
        .enumerate()
        .map(|(i, &size)| Row {
            procs,
            presync,
            size,
            wpm_mbs: wpm[i].mb_per_s,
            sessions_mbs: sess[i].mb_per_s,
            rel_bw: sess[i].mb_per_s / wpm[i].mb_per_s,
            rel_mr: sess[i].msg_per_s / wpm[i].msg_per_s,
        })
        .collect()
}

fn print_rows(rows: &[Row]) {
    println!(
        "{:>10} {:>14} {:>14} {:>10} {:>10}",
        "Size", "MPI_Init MB/s", "Sessions MB/s", "rel BW", "rel MR"
    );
    for r in rows {
        println!(
            "{:>10} {:>14.2} {:>14.2} {:>10.3} {:>10.3}",
            r.size, r.wpm_mbs, r.sessions_mbs, r.rel_bw, r.rel_mr
        );
    }
    let g = geomean(&rows.iter().map(|r| r.rel_bw).collect::<Vec<_>>());
    println!("# geometric-mean relative bandwidth: {g:.3}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_size: usize =
        cli_opt(&args, "--max-size").and_then(|v| v.parse().ok()).unwrap_or(1 << 16);
    let window: usize = cli_opt(&args, "--window").and_then(|v| v.parse().ok()).unwrap_or(64);
    let iters: usize = cli_opt(&args, "--iters").and_then(|v| v.parse().ok()).unwrap_or(20);
    let sizes = size_sweep(max_size);

    let configs: Vec<(u32, bool)> = if cli_flag(&args, "--both") {
        vec![(2, false), (16, false), (16, true)]
    } else {
        let procs: u32 = cli_opt(&args, "--procs").and_then(|v| v.parse().ok()).unwrap_or(2);
        vec![(procs, cli_flag(&args, "--presync"))]
    };

    let mut sink = MetricsSink::from_args(&args);
    let mut traces = TraceSink::from_args(&args);
    let mut all = Vec::new();
    for (procs, presync) in configs {
        println!(
            "\n# Fig. 5{}: {} processes ({} pairs){}",
            if procs == 2 { "b" } else { "c" },
            procs,
            procs / 2,
            if presync { ", pre-synchronized (sendrecv before loop)" } else { "" }
        );
        let rows = run_config(procs, presync, &sizes, window, iters, &mut sink, &mut traces);
        print_rows(&rows);
        all.extend(rows);
    }
    println!("\n# Paper shape: 2-proc ≈ 1.0 (the pre-loop barrier completes the handshake);");
    println!("# multi-pair w/o presync dips below 1.0 at small sizes; presync restores ≈1.0.");
    dump_json("fig5_mbw", &all);
    sink.finish();
    traces.finish();
}
