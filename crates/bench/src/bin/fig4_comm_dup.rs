//! Fig. 4 regenerator: per-iteration `MPI_Comm_dup` time vs. node count
//! for the two initialization paths.
//!
//! * baseline (`MPI_Init`): the legacy consensus CID algorithm;
//! * sessions: the prototype behavior measured in the paper — each dup
//!   acquires a fresh PGCID through PMIx (`dup_via_group`);
//! * bonus column: the exCID local-derivation dup, the design the paper
//!   argues amortizes PGCID acquisition ("more communicators could be
//!   created before needing to request a new PGCID").
//!
//! Usage: `fig4_comm_dup [--nodes 1,2,4,8] [--ppn 8] [--iters 16] [--paper]
//!                       [--pgcid-block 8] [--nonblocking]
//!                       [--metrics-out <path>] [--trace-out <path>]`
//! (`--pgcid-block 1` disables the resource manager's PGCID block grants,
//! restoring the paper prototype's one-RM-round-trip-per-dup behavior;
//! the default block of 8 amortizes that trip and pulls the small-scale
//! sessions/consensus ratio under 1.)
//! (`--nonblocking` adds an overlapped column: all `iters` dups are issued
//! up front as `idup_via_group` setup requests and then claimed, so their
//! PGCID demands pipeline through the runtime's coalescer instead of
//! paying one serialized round trip each. Most interesting together with
//! `--pgcid-block 1`, where the blocking column pays the full per-dup trip
//! the overlap hides.)
//! (`--metrics-out` dumps per-run observability exports: `cid.refills` vs
//! `cid.derivations`, PMIx group stage counters, consensus rounds.
//! `--trace-out` dumps per-run causal span-DAG traces whose critical paths
//! show the consensus rounds vs the PMIx stage chain vs local derivation.)

use apps::{cli_flag, cli_opt, InitMode};
use bench_harness::{dump_json, parse_list, MetricsSink, TraceSink};
use prrte::{JobSpec, Launcher};
use serde::Serialize;
use simnet::SimTestbed;
use std::time::Instant;

#[derive(Serialize)]
struct Row {
    nodes: u32,
    np: u32,
    wpm_dup_us: f64,
    sessions_dup_us: f64,
    derived_dup_us: f64,
    ratio: f64,
    /// Overlapped `idup_via_group` column; `null` unless `--nonblocking`.
    nonblocking_dup_us: Option<f64>,
}

/// Time `iters` dup operations on a fresh job; returns µs per dup
/// (max across ranks).
fn time_dups(
    tb: SimTestbed,
    np: u32,
    mode: InitMode,
    iters: usize,
    derive: bool,
    want_trace: bool,
    pgcid_block: Option<u64>,
) -> (f64, serde_json::Value, serde_json::Value) {
    let launcher = Launcher::new(tb);
    if let Some(block) = pgcid_block {
        launcher.universe().set_pgcid_block(block);
    }
    let per_rank = launcher
        .spawn(JobSpec::new(np), move |ctx| {
            let (session, comm) = apps::osu::bench_comm(&ctx, mode, "fig4");
            let t0 = Instant::now();
            let mut dups = Vec::with_capacity(iters);
            for _ in 0..iters {
                let d = match (mode, derive) {
                    (InitMode::Wpm, _) => comm.dup().expect("consensus dup"),
                    (InitMode::Sessions | InitMode::Lazy, false) => {
                        comm.dup_via_group().expect("pgcid dup")
                    }
                    (InitMode::Sessions | InitMode::Lazy, true) => {
                        comm.dup().expect("derived dup")
                    }
                };
                dups.push(d);
            }
            let elapsed = t0.elapsed();
            for d in dups {
                d.free().expect("free");
            }
            comm.free().expect("free");
            if let Some(s) = session {
                s.finalize().expect("fini");
            }
            elapsed.as_secs_f64() * 1e6 / iters as f64
        })
        .join()
        .expect("fig4 job");
    let registry = launcher.universe().fabric().obs();
    let metrics = registry.export();
    let trace = if want_trace {
        obs::analyze::analyze(&registry.spans_snapshot(), registry.spans_dropped())
    } else {
        serde_json::Value::Null
    };
    (per_rank.into_iter().fold(0.0, f64::max), metrics, trace)
}

/// Time `iters` *overlapped* dups on a fresh job: every `idup_via_group`
/// request is issued before any is claimed, so the PGCID acquisitions
/// pipeline instead of serializing. Returns µs per dup (max across ranks).
fn time_idups(
    tb: SimTestbed,
    np: u32,
    iters: usize,
    want_trace: bool,
    pgcid_block: Option<u64>,
) -> (f64, serde_json::Value, serde_json::Value) {
    let launcher = Launcher::new(tb);
    if let Some(block) = pgcid_block {
        launcher.universe().set_pgcid_block(block);
    }
    let per_rank = launcher
        .spawn(JobSpec::new(np), move |ctx| {
            let (session, comm) = apps::osu::bench_comm(&ctx, InitMode::Sessions, "fig4-nb");
            let t0 = Instant::now();
            let reqs: Vec<_> =
                (0..iters).map(|_| comm.idup_via_group().expect("idup issue")).collect();
            let dups: Vec<_> =
                reqs.into_iter().map(|r| r.wait().expect("idup wait")).collect();
            let elapsed = t0.elapsed();
            for d in dups {
                d.free().expect("free");
            }
            comm.free().expect("free");
            if let Some(s) = session {
                s.finalize().expect("fini");
            }
            elapsed.as_secs_f64() * 1e6 / iters as f64
        })
        .join()
        .expect("fig4 nonblocking job");
    let registry = launcher.universe().fabric().obs();
    let metrics = registry.export();
    let trace = if want_trace {
        obs::analyze::analyze(&registry.spans_snapshot(), registry.spans_dropped())
    } else {
        serde_json::Value::Null
    };
    (per_rank.into_iter().fold(0.0, f64::max), metrics, trace)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nodes_list =
        parse_list(&cli_opt(&args, "--nodes").unwrap_or_else(|| "1,2,4,8".into()));
    let ppn: u32 = cli_opt(&args, "--ppn")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if cli_flag(&args, "--paper") { 28 } else { 8 });
    let iters: usize = cli_opt(&args, "--iters").and_then(|v| v.parse().ok()).unwrap_or(16);
    let pgcid_block: Option<u64> = cli_opt(&args, "--pgcid-block").and_then(|v| v.parse().ok());
    let nonblocking = cli_flag(&args, "--nonblocking");

    println!("# Fig. 4: MPI_Comm_dup time per iteration, {ppn} processes/node");
    if nonblocking {
        println!(
            "{:>6} {:>6} {:>16} {:>18} {:>18} {:>18} {:>8}",
            "nodes", "np", "MPI_Init (us)", "Sessions/PGCID", "Sessions/derived",
            "Sessions/overlap", "ratio"
        );
    } else {
        println!(
            "{:>6} {:>6} {:>16} {:>18} {:>18} {:>8}",
            "nodes", "np", "MPI_Init (us)", "Sessions/PGCID", "Sessions/derived", "ratio"
        );
    }
    let mut sink = MetricsSink::from_args(&args);
    let mut traces = TraceSink::from_args(&args);
    let want_trace = traces.enabled();
    let mut rows = Vec::new();
    for &nodes in &nodes_list {
        let mk_tb = || {
            let mut tb = SimTestbed::jupiter(nodes);
            tb.cluster.slots_per_node = ppn;
            tb
        };
        let np = nodes * ppn;
        let (wpm, wpm_m, wpm_t) =
            time_dups(mk_tb(), np, InitMode::Wpm, iters, false, want_trace, pgcid_block);
        let (sess, sess_m, sess_t) =
            time_dups(mk_tb(), np, InitMode::Sessions, iters, false, want_trace, pgcid_block);
        let (derived, derived_m, derived_t) =
            time_dups(mk_tb(), np, InitMode::Sessions, iters, true, want_trace, pgcid_block);
        let nb = nonblocking.then(|| {
            let (nb, nb_m, nb_t) = time_idups(mk_tb(), np, iters, want_trace, pgcid_block);
            sink.record(&format!("nodes{nodes}_sessions_overlap"), nb_m);
            traces.record(&format!("nodes{nodes}_sessions_overlap"), nb_t);
            nb
        });
        sink.record(&format!("nodes{nodes}_wpm_consensus"), wpm_m);
        sink.record(&format!("nodes{nodes}_sessions_pgcid"), sess_m);
        sink.record(&format!("nodes{nodes}_sessions_derived"), derived_m);
        traces.record(&format!("nodes{nodes}_wpm_consensus"), wpm_t);
        traces.record(&format!("nodes{nodes}_sessions_pgcid"), sess_t);
        traces.record(&format!("nodes{nodes}_sessions_derived"), derived_t);
        let ratio = sess / wpm;
        if let Some(nb) = nb {
            println!(
                "{:>6} {:>6} {:>16.2} {:>18.2} {:>18.2} {:>18.2} {:>8.2}",
                nodes, np, wpm, sess, derived, nb, ratio
            );
        } else {
            println!(
                "{:>6} {:>6} {:>16.2} {:>18.2} {:>18.2} {:>8.2}",
                nodes, np, wpm, sess, derived, ratio
            );
        }
        rows.push(Row {
            nodes,
            np,
            wpm_dup_us: wpm,
            sessions_dup_us: sess,
            derived_dup_us: derived,
            ratio,
            nonblocking_dup_us: nb,
        });
    }
    println!(
        "\n# Paper shape: sessions dup (one PGCID acquisition per dup) is slower than the\n\
         # consensus baseline and the gap grows with node count; exCID derivation\n\
         # (last column) removes the per-dup runtime round trip entirely."
    );
    if nonblocking {
        println!(
            "# Overlap column: issuing all {iters} dups as requests before claiming any\n\
             # pipelines the PGCID acquisitions through the runtime's coalescer — the\n\
             # round trips that serialize the blocking PGCID column overlap instead."
        );
    }
    dump_json("fig4_comm_dup", &rows);
    sink.finish();
    traces.finish();
}
