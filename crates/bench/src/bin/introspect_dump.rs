//! Flight-recorder dump: boot a small sessions stack, hold it at a known
//! live point, and emit the `introspect/v1` snapshot — the same artifact a
//! failing chaos run attaches automatically.
//!
//! Two modes:
//!
//! * **default** — four ranks each bring up a session and a world
//!   communicator, then park while the driver snapshots: the dump shows
//!   held CIDs, live subsystems, handshake-cache entries, server shard
//!   occupancy and the full cvar surface of a healthy runtime. CI
//!   validates this golden with `trace_check --introspect`.
//! * **`--chaos-fail`** — run a clean workload under the chaos harness,
//!   then plant a canary `req.stalled` event that nothing clears: the
//!   `stall-terminal` invariant must fire and the harness must attach a
//!   parseable flight-recorder artifact, which is written out. This is the
//!   CI proof that a *failing* chaos run always yields a usable
//!   post-mortem, exercising the exact code path a real failure takes.
//!
//! Usage: `introspect_dump [--out <path>] [--chaos-fail]`

use apps::cli_opt;
use chaos::{ChaosWorld, FaultPlan};
use mpi_sessions::{coll, introspect, Comm, ErrHandler, Info, ReduceOp, Session, ThreadLevel};
use prrte::{JobSpec, Launcher};
use simnet::SimTestbed;
use std::sync::{Arc, Barrier};

const NP: u32 = 4;

fn write_out(out: Option<String>, text: &str) {
    match out {
        Some(path) => {
            std::fs::write(&path, text).unwrap_or_else(|e| {
                eprintln!("introspect_dump: cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("introspect_dump: wrote {path}");
        }
        None => println!("{text}"),
    }
}

/// One wave of per-rank session + world-communicator setup.
fn bring_up(ctx: &prrte::ProcCtx, tag: &str) -> (Session, Comm) {
    let session = Session::init(ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null())
        .expect("session init");
    let group = session.group_from_pset("mpi://world").expect("world pset");
    let comm = Comm::create_from_group(&group, tag).expect("comm");
    coll::allreduce_t(&comm, ReduceOp::Sum, &[1u32]).expect("allreduce");
    (session, comm)
}

/// Default mode: snapshot a healthy stack at a held point.
fn dump_live(out: Option<String>) {
    let launcher = Launcher::new(SimTestbed::tiny(2, 2));
    let uni = launcher.universe().clone();
    // Two-phase rendezvous: every rank holds its session + communicator at
    // the first barrier while the driver snapshots, then the second
    // barrier releases teardown — the snapshot sees a stable, fully
    // quiesced held state.
    let hold = Arc::new(Barrier::new(NP as usize + 1));
    let release = Arc::new(Barrier::new(NP as usize + 1));
    let (h, r) = (hold.clone(), release.clone());
    let handle = launcher.spawn(JobSpec::new(NP), move |ctx| {
        let (session, comm) = bring_up(&ctx, "introspect-dump");
        h.wait();
        r.wait();
        comm.free().expect("free");
        session.finalize().expect("finalize");
    });
    hold.wait();
    let text = introspect::snapshot_string(&uni);
    release.wait();
    handle.join().expect("workload");
    write_out(out, &text);
}

/// `--chaos-fail` mode: prove a failing chaos run attaches the recorder.
fn dump_chaos_fail(out: Option<String>) {
    let world = ChaosWorld::new(SimTestbed::tiny(2, 2), FaultPlan::quiet(0xFA11));
    world
        .launcher()
        .spawn(JobSpec::new(NP), |ctx| {
            let (session, comm) = bring_up(&ctx, "introspect-canary");
            comm.free().expect("free");
            session.finalize().expect("finalize");
        })
        .join()
        .expect("workload");
    // The canary: a watchdog stall nothing ever clears or resolves. The
    // stall-terminal invariant must flag it, which makes finish() attach
    // the flight recorder exactly as it would for a real wedged run.
    world.universe().fabric().obs().event(
        "canary",
        "request",
        "req.stalled",
        vec![("id".into(), 1u64.into()), ("stage".into(), "group".into())],
    );
    let report = world.finish(None, Vec::new());
    assert!(
        report.violations.iter().any(|v| v.invariant == "stall-terminal"),
        "the canary stall must trip stall-terminal, got: {:?}",
        report.violations,
    );
    for v in &report.violations {
        eprintln!("introspect_dump: violation (deliberate): {v}");
    }
    let artifact =
        report.flight_recorder.expect("a failing run always attaches the flight recorder");
    write_out(out, &artifact);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out = cli_opt(&args, "--out");
    if args.iter().any(|a| a == "--chaos-fail") {
        dump_chaos_fail(out);
    } else {
        dump_live(out);
    }
}
