//! Table I analog: the simulated testbeds standing in for the paper's
//! Cray systems, with their cost-model parameters.

use simnet::SimTestbed;

fn describe(tb: &SimTestbed, stands_for: &str) {
    println!("## {} (stands in for {stands_for})", tb.name);
    println!("   nodes             : {}", tb.cluster.nodes);
    println!("   slots per node    : {}", tb.cluster.slots_per_node);
    println!("   intra-node latency: {:?} (direct queue handoff)", tb.cost.intra_node_latency);
    println!("   inter-node latency: {:?}", tb.cost.inter_node_latency);
    println!(
        "   inter-node bw     : {}",
        tb.cost
            .inter_node_bandwidth
            .map(|b| format!("{:.1} GiB/s", b as f64 / (1024.0 * 1024.0 * 1024.0)))
            .unwrap_or_else(|| "unbounded".into())
    );
    println!("   spawn cost        : {:?}", tb.cost.spawn_cost);
    println!();
}

fn main() {
    println!("# Table I analog: simulated testbeds");
    println!("# (the paper used real Cray XC40/XC30 systems with the Aries network;");
    println!("#  see DESIGN.md for why the latency/bandwidth model preserves the");
    println!("#  evaluation's shape)\n");
    describe(
        &SimTestbed::trinity(8),
        "Trinity: Cray XC40, 2x16-core E5-2698v3, 128 GB, Aries",
    );
    describe(
        &SimTestbed::jupiter(8),
        "Jupiter: Cray XC30, 2x14-core E5-2690v4, 64 GB, Aries",
    );
}
