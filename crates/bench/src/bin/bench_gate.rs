//! Deterministic perf-regression gate.
//!
//! Runs a fixed set of small workloads — one per paper figure family plus
//! the PMIx-collective ablation, the PML handshake-cache path, the
//! elastic pset-churn sequence and the session-churn soak — on tiny
//! simulated testbeds and reduces each run's obs trail to **deterministic
//! numbers only**: logical critical-path costs and span/stage counts from
//! the causal trace (work counters, never wall time) and an allowlist of
//! protocol counters. Two runs of the same binary produce byte-identical
//! JSON, so the committed baseline (`BENCH_PR10.json`) acts as a perf
//! fingerprint: a change that adds work to a hot path (an extra PGCID
//! round trip, a redundant handshake, a new fence stage) moves a number
//! and fails the gate instead of sliding silently into the trace.
//!
//! Usage:
//!   `bench_gate --out BENCH_PR10.json`         regenerate the baseline
//!   `bench_gate --check BENCH_PR10.json [--tol 0.05]`
//!                                             re-run and diff against it
//!
//! `--tol` is the per-leaf relative tolerance (ci.sh passes `BENCH_TOL`).
//! The binary additionally hard-enforces two acceptance bounds: the
//! Fig. 4 sessions workload (300 `dup_via_group`) must emit at most
//! `constructs / 4` `pgcid.request` spans, and the nonblocking overlap
//! workload (8 concurrent `icomm_create_from_group` with block grants
//! off) must take strictly fewer `pgcid.request` round trips and a
//! strictly shorter trace critical path than 8 blocking constructs.

use apps::{cli_opt, InitMode};
use mpi_sessions::Comm;
use pmix::{GroupDirectives, ProcId};
use prrte::{JobSpec, Launcher};
use serde_json::{Map, Value};
use simnet::SimTestbed;

/// Schema stamp for the gate report.
const SCHEMA: &str = "bench-gate-v1";

/// Deterministic protocol counters exported per workload (summed across
/// processes). Wall-clock-derived metrics (RPC latency histograms, message
/// timing) are deliberately absent.
const COUNTERS: &[(&str, &str)] = &[
    ("pmix", "stage_fanin"),
    ("pmix", "stage_xchg"),
    ("pmix", "stage_fanout"),
    ("pmix", "fence_completed"),
    ("pmix", "group_construct_completed"),
    ("pmix", "group_destruct_completed"),
    ("pmix", "pgcid_allocated"),
    ("pmix", "pgcid_pool_hits"),
    ("pml", "eager_sent"),
    ("pml", "ext_sent"),
    ("pml", "acks_sent"),
    ("pml", "handshakes"),
    ("pml", "ext_fallback"),
    ("pml", "adverts_sent"),
    ("pml", "advert_hits"),
    ("cid", "refills"),
    ("cid", "derivations"),
    ("cid", "refill_coalesced"),
    ("cid", "consensus_agreements"),
    ("cid", "subfield_exhausted"),
    ("pml", "cache_invalidated"),
    ("session", "rebuilds"),
    ("prrte", "ranks_grown"),
    ("prrte", "ranks_retired"),
    ("cid", "released"),
    ("cid", "subfields_returned"),
    ("cid", "subfields_recycled"),
    ("pml", "cache_evicted"),
    ("pmix", "pgcid_recycled"),
    ("pmix", "psets_gced"),
    ("pmix", "kvs_purged"),
    ("pmix", "epochs_evicted"),
    ("instance", "cids_leaked_at_teardown"),
];

/// Reduce one finished run's registry to the gate's deterministic record.
fn extract(registry: &std::sync::Arc<obs::Registry>) -> Value {
    let dropped = registry.spans_dropped();
    assert_eq!(dropped, 0, "gate workload overflowed the span buffer");
    let report = obs::analyze::analyze(&registry.spans_snapshot(), dropped);
    let rep = report.as_object().expect("report object");
    let mut out = Map::new();
    out.insert("span_count".into(), rep["span_count"].clone());
    let critical = rep["traces"]
        .as_array()
        .expect("traces")
        .iter()
        .filter_map(|t| t.as_object()?.get("critical_path_cost")?.as_u64())
        .max()
        .unwrap_or(0);
    out.insert("critical_path_cost".into(), Value::U64(critical));
    let mut stages = Map::new();
    for (name, s) in rep["stages"].as_object().expect("stages") {
        let so = s.as_object().expect("stage");
        let mut m = Map::new();
        m.insert("count".into(), so["count"].clone());
        m.insert("exclusive".into(), so["exclusive"].clone());
        stages.insert(name.clone(), Value::Object(m));
    }
    out.insert("stages".into(), Value::Object(stages));
    // Counters are sampled through an MPI_T pvar session rather than the
    // registry directly: the gate's fingerprint is, by construction, what
    // any tool bound to the same pvars would read.
    let mut session = obs::PvarSession::new(registry.clone());
    let handles: Vec<obs::PvarHandle> =
        COUNTERS.iter().map(|&(c, n)| session.bind_counter_sum(c, n)).collect();
    let mut counters = Map::new();
    for (&(comp, name), h) in COUNTERS.iter().zip(handles) {
        counters.insert(format!("{comp}.{name}"), Value::U64(session.read_u64(h)));
    }
    out.insert("counters".into(), Value::Object(counters));
    Value::Object(out)
}

/// Fig. 3 shape: session/WPM init through first-communicator teardown.
fn run_init(mode: InitMode) -> Value {
    let launcher = Launcher::new(SimTestbed::tiny(2, 2));
    launcher
        .spawn(JobSpec::new(4), move |ctx| {
            let (session, comm) = apps::osu::bench_comm(&ctx, mode, "gate-init");
            comm.free().expect("free");
            if let Some(s) = session {
                s.finalize().expect("fini");
            }
        })
        .join()
        .expect("init workload");
    extract(&launcher.universe().fabric().obs())
}

/// Which dup flavor a Fig. 4 gate point exercises.
#[derive(Clone, Copy)]
enum DupKind {
    /// WPM comm, consensus CID agreement per dup.
    Consensus,
    /// Sessions comm, one PMIx group construct (PGCID) per dup.
    PgcidPerDup,
    /// Sessions comm, exCIDs derived from the parent's block.
    Derived,
}

/// Fig. 4 shape: a dup chain on one communicator.
fn run_dups(kind: DupKind, iters: usize) -> Value {
    let mode = match kind {
        DupKind::Consensus => InitMode::Wpm,
        _ => InitMode::Sessions,
    };
    let launcher = Launcher::new(SimTestbed::tiny(2, 2));
    launcher
        .spawn(JobSpec::new(4), move |ctx| {
            let (session, comm) = apps::osu::bench_comm(&ctx, mode, "gate-dup");
            let dups: Vec<Comm> = (0..iters)
                .map(|_| match kind {
                    DupKind::PgcidPerDup => comm.dup_via_group().expect("pgcid dup"),
                    _ => comm.dup().expect("dup"),
                })
                .collect();
            for d in dups {
                d.free().expect("free");
            }
            comm.free().expect("free");
            if let Some(s) = session {
                s.finalize().expect("fini");
            }
        })
        .join()
        .expect("dup workload");
    extract(&launcher.universe().fabric().obs())
}

/// Fig. 5 shape: a tiny pre-synchronized multi-pair `osu_mbw_mr`.
fn run_mbw() -> Value {
    let launcher = Launcher::new(SimTestbed::tiny(2, 2));
    launcher
        .spawn(JobSpec::new(4), move |ctx| {
            let (session, comm) = apps::osu::bench_comm(&ctx, InitMode::Sessions, "gate-mbw");
            apps::osu::osu_mbw_mr(&comm, &[256], 8, 1, 2, true);
            comm.free().expect("free");
            if let Some(s) = session {
                s.finalize().expect("fini");
            }
        })
        .join()
        .expect("mbw workload");
    extract(&launcher.universe().fabric().obs())
}

/// Ablation shape: PMIx fences and group construct/destruct, with and
/// without PGCID, over the full membership.
fn run_group_ablation(iters: usize) -> Value {
    let launcher = Launcher::new(SimTestbed::tiny(2, 2));
    launcher
        .spawn(JobSpec::new(4), move |ctx| {
            let members: Vec<ProcId> =
                (0..ctx.size()).map(|r| ProcId::new(ctx.proc().nspace(), r)).collect();
            for _ in 0..iters {
                ctx.pmix().fence(&members, false).expect("fence");
            }
            for i in 0..iters {
                let g = ctx
                    .pmix()
                    .group_construct(&format!("gate{i}"), &members, &GroupDirectives::for_mpi())
                    .expect("construct");
                ctx.pmix().group_destruct(&g, None).expect("destruct");
            }
            let d = GroupDirectives::for_mpi().without_pgcid();
            for i in 0..iters {
                let g = ctx
                    .pmix()
                    .group_construct(&format!("gatenp{i}"), &members, &d)
                    .expect("construct");
                ctx.pmix().group_destruct(&g, None).expect("destruct");
            }
        })
        .join()
        .expect("ablation workload");
    extract(&launcher.universe().fabric().obs())
}

/// Handshake-cache shape: two communicators over the same group; the
/// second one's CID exchange rides `CidAdvert`s from the cache.
fn run_pml_cache() -> Value {
    let launcher = Launcher::new(SimTestbed::tiny(2, 1));
    launcher
        .spawn(JobSpec::new(2), move |ctx| {
            let (session, c1) = apps::osu::bench_comm(&ctx, InitMode::Sessions, "gate-cache1");
            let peer = 1 - c1.rank();
            c1.sendrecv(peer, 1, b"one", peer as i32, 1).expect("comm1 exchange");
            let group = c1.group();
            let c2 = Comm::create_from_group(&group, "gate-cache2").expect("comm2");
            c2.sendrecv(peer, 2, b"two", peer as i32, 2).expect("comm2 exchange");
            c2.free().expect("free");
            c1.free().expect("free");
            if let Some(s) = session {
                s.finalize().expect("fini");
            }
        })
        .join()
        .expect("cache workload");
    extract(&launcher.universe().fabric().obs())
}

/// Elastic shape: pset churn (grow 4→8, kill one, retire one, delete) with
/// every member rebuilding its communicator per epoch. Driver-sequenced
/// (each mutation waits for all acks of the previous epoch), so span and
/// counter totals are deterministic.
fn run_elastic() -> Value {
    use mpi_sessions::{ElasticComm, Rebuild};
    use std::sync::mpsc;
    use std::time::Duration;

    const PSET: &str = "app://gate-elastic";
    const STEP: Duration = Duration::from_secs(30);
    let launcher = Launcher::new(SimTestbed::tiny(2, 4));
    let (tx, rx) = mpsc::channel::<(u32, u64, u32)>();
    let spec = JobSpec::new(4).with_pset(PSET, vec![0, 1, 2, 3]);
    let handle = launcher.spawn_named("gate-elastic", spec, move |ctx| {
        let session = mpi_sessions::Session::init(
            &ctx,
            mpi_sessions::ThreadLevel::Single,
            mpi_sessions::ErrHandler::Return,
            &mpi_sessions::Info::null(),
        )
        .expect("session init");
        let mut ec = ElasticComm::establish(&session, PSET, STEP).expect("establish");
        loop {
            let comm = ec.comm().expect("member has a communicator");
            let sum = mpi_sessions::coll::allreduce_t(
                comm,
                mpi_sessions::ReduceOp::Sum,
                &[1u32],
            )
            .expect("allreduce")[0];
            tx.send((ctx.rank(), ec.epoch(), sum)).expect("ack");
            match ec.next_rebuild(STEP) {
                Ok(Rebuild::Rebuilt { .. }) => continue,
                Ok(Rebuild::Retired { .. }) | Ok(Rebuild::Deleted { .. }) => break,
                Err(e) => panic!("rank {} rebuild failed: {e}", ctx.rank()),
            }
        }
        session.finalize().expect("finalize");
    });
    let ctl = handle.ctl();
    let settle = |n: u32, epoch: u64| {
        for _ in 0..n {
            let (rank, e, s) = rx.recv_timeout(STEP).expect("ack before timeout");
            assert_eq!((e, s), (epoch, n), "rank {rank} settled on the wrong epoch");
        }
    };
    settle(4, 1);
    ctl.spawn_ranks(4, Some(PSET));
    settle(8, 2);
    handle.kill_rank(7);
    settle(7, 3);
    ctl.retire_ranks(&[6], Some(PSET)).expect("retire");
    settle(6, 4);
    launcher.universe().registry().undefine_pset(PSET);
    handle.join().expect("elastic workload");
    // Whether a given data-plane send goes out eager or carries the
    // extended header races against handshake completion across rebuild
    // epochs: the split varies run to run while the total is fixed by the
    // protocol. Fold the racy pair into its deterministic sum.
    fold_racy_data_split(extract(&launcher.universe().fabric().obs()))
}

/// Soak shape: driver-paced session/comm/pset churn waves against one
/// persistent runtime, fully drained — fingerprints the resource-lifecycle
/// hot path (CID release, subfield + PGCID recycling, tombstone GC). The
/// eager/ext data split and the handshake/advert race vary run to run
/// while their totals are protocol-fixed, so the racy pairs are folded
/// exactly as in the elastic workload.
fn run_soak(waves: u64) -> Value {
    use std::sync::mpsc;
    use std::time::Duration;

    let launcher = Launcher::new(SimTestbed::tiny(2, 2));
    let registry = launcher.universe().registry();
    let (tx, rx) = mpsc::channel::<u32>();
    let handle = launcher.spawn_named("gate-soak", JobSpec::new(4), move |ctx| {
        for wave in 0..waves {
            let (session, comm) = apps::osu::bench_comm(&ctx, InitMode::Sessions, &format!("gate-soak-w{wave}"));
            let d1 = comm.dup().expect("dup");
            d1.free().expect("free d1");
            let d2 = comm.dup().expect("dup recycled");
            d2.free().expect("free d2");
            comm.free().expect("free");
            if let Some(s) = session {
                s.finalize().expect("fini");
            }
            tx.send(ctx.rank()).expect("ack");
        }
    });
    for wave in 0..waves {
        for _ in 0..4 {
            rx.recv_timeout(Duration::from_secs(120)).expect("wave ack");
        }
        let name = format!("gate-soak://w{wave}");
        registry.define_pset(&name, vec![]);
        registry.undefine_pset(&name);
    }
    handle.join().expect("soak workload");
    fold_racy_data_split(extract(&launcher.universe().fabric().obs()))
}

/// Recovery shape: the fault protocol's fixed-cost path — one kill, the
/// survivors pset prunes, every survivor repairs at the settled epoch
/// (`Comm::repair_via_pset`) and resumes collectives at the shrunk width.
/// The kill is driver-paced against parked survivors (blocked in the
/// fault watcher, generating no traffic), so no request ever times out or
/// retries: the fingerprint is the protocol's deterministic recovery cost
/// — death fanout, pset prune, epoch-pinned rebuild — not a racy settle
/// path. The eager/ext data split folds as in the other workloads.
fn run_recover() -> Value {
    use mpi_sessions::{coll, ReduceOp};
    use std::sync::mpsc;
    use std::time::Duration;

    let launcher = Launcher::new(SimTestbed::tiny(2, 2));
    let (tx, rx) = mpsc::channel::<(u32, u32)>();
    let handle = launcher.spawn_named("gate-recover", JobSpec::new(4), move |ctx| {
        let session = mpi_sessions::Session::init(
            &ctx,
            mpi_sessions::ThreadLevel::Single,
            mpi_sessions::ErrHandler::Return,
            &mpi_sessions::Info::null(),
        )
        .expect("session init");
        let pset = session.track_faults().expect("track_faults");
        let mut faults = session.watch_faults().expect("watch_faults");
        let world = session
            .group_from_pset(mpi_sessions::session::PSET_WORLD)
            .expect("world group");
        let comm = Comm::create_from_group(&world, "gate-recover").expect("comm");
        let sum = coll::allreduce_t(&comm, ReduceOp::Sum, &[1u32]).expect("allreduce")[0];
        tx.send((ctx.rank(), sum)).expect("ack");
        if ctx.rank() == 3 {
            // Victim: park (registry reads only) until the kill lands.
            for _ in 0..1000 {
                let sg = session.surviving_group(mpi_sessions::session::PSET_WORLD).unwrap();
                if sg.iter().all(|m| m.proc.rank() != 3) {
                    comm.abandon();
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            panic!("victim never observed its own failure");
        }
        let dead = faults.next_timeout(Duration::from_secs(30)).expect("death event");
        assert_eq!(dead.rank(), 3);
        let registry = mpi_sessions::instance::MpiProcess::obtain(&ctx)
            .universe()
            .registry()
            .clone();
        // Wait for the bridge to prune the corpse, then repair one-shot at
        // the settled epoch: no Stale/ProcTerminated/Timeout retries, so
        // the message counts stay protocol-fixed.
        let epoch = loop {
            let (epoch, members) =
                registry.pset_members_versioned(&pset).expect("survivors pset");
            if members.len() == 3 {
                break epoch;
            }
            std::thread::sleep(Duration::from_millis(2));
        };
        let repaired = comm.repair_via_pset(&session, &pset, epoch).expect("repair");
        let sum = coll::allreduce_t(&repaired, ReduceOp::Sum, &[1u32]).expect("allreduce")[0];
        tx.send((ctx.rank(), sum)).expect("ack");
        repaired.free().expect("free repaired");
        comm.abandon();
        session.finalize().expect("finalize");
    });
    for _ in 0..4 {
        let (rank, sum) = rx.recv_timeout(Duration::from_secs(60)).expect("world ack");
        assert_eq!(sum, 4, "rank {rank} saw the wrong world width");
    }
    handle.kill_rank(3);
    for _ in 0..3 {
        let (rank, sum) = rx.recv_timeout(Duration::from_secs(60)).expect("repair ack");
        assert_eq!(sum, 3, "rank {rank} settled at the wrong width");
    }
    handle.join().expect("recover workload");
    fold_racy_data_split(extract(&launcher.universe().fabric().obs()))
}

/// Nonblocking-overlap shape: K communicator constructions from one world
/// group, once as sequential blocking calls and once issued concurrently
/// as setup requests, both with PGCID block grants disabled so every
/// construct demands its own runtime round trip. Issuing the requests up
/// front puts every PMIx fan-in on the wire at once, so the server's
/// PGCID coalescer batches the demands: the overlapped run must take
/// **strictly fewer** `pgcid.request` round trips than both the blocking
/// run and K, and its *serialized* critical path must be **strictly
/// shorter** — hard acceptance bounds (exit 2), mirroring the batching
/// bound below. The serialized critical path is the structural trace
/// critical path plus the total exclusive cost of the `pgcid.request` /
/// `pgcid.alloc` spans: the PGCID controller admits one request at a
/// time, so that work is end-to-end serialized even though the span DAG
/// records no edge for the admission order.
/// How far the overlapped run coalesces depends on thread scheduling, so
/// the recorded fingerprint keeps the deterministic blocking-run record
/// plus the pass bits (1), never the racy overlapped counts.
fn run_overlap_icomm(k: usize) -> Value {
    let run = |overlap: bool| -> Value {
        let launcher = Launcher::new(SimTestbed::tiny(2, 1));
        launcher.universe().set_pgcid_block(1);
        launcher
            .spawn(JobSpec::new(2), move |ctx| {
                let session = mpi_sessions::Session::init(
                    &ctx,
                    mpi_sessions::ThreadLevel::Single,
                    mpi_sessions::ErrHandler::Return,
                    &mpi_sessions::Info::null(),
                )
                .expect("session init");
                let group = session.group_from_pset("mpi://world").expect("world pset");
                let comms: Vec<Comm> = if overlap {
                    let reqs: Vec<_> = (0..k)
                        .map(|i| {
                            Comm::icomm_create_from_group(&group, &format!("gate-ov{i}"))
                                .expect("icomm issue")
                        })
                        .collect();
                    reqs.into_iter().map(|r| r.wait().expect("icomm wait")).collect()
                } else {
                    (0..k)
                        .map(|i| {
                            Comm::create_from_group(&group, &format!("gate-ov{i}"))
                                .expect("comm")
                        })
                        .collect()
                };
                for c in comms {
                    c.free().expect("free");
                }
                session.finalize().expect("fini");
            })
            .join()
            .expect("overlap workload");
        extract(&launcher.universe().fabric().obs())
    };
    let seq = run(false);
    let pipe = run(true);
    let stage = |v: &Value, name: &str, field: &str| -> u64 {
        v.as_object().expect("record")["stages"]
            .as_object()
            .and_then(|s| s.get(name)?.as_object()?.get(field)?.as_u64())
            .unwrap_or(0)
    };
    let serialized_cp = |v: &Value| -> u64 {
        v.as_object().expect("record")["critical_path_cost"].as_u64().unwrap_or(0)
            + stage(v, "pgcid.request", "exclusive")
            + stage(v, "pgcid.alloc", "exclusive")
    };
    let (seq_reqs, pipe_reqs) =
        (stage(&seq, "pgcid.request", "count"), stage(&pipe, "pgcid.request", "count"));
    let (seq_cp, pipe_cp) = (serialized_cp(&seq), serialized_cp(&pipe));
    if seq_reqs < k as u64
        || pipe_reqs == 0
        || pipe_reqs >= seq_reqs
        || pipe_reqs >= k as u64
        || pipe_cp >= seq_cp
    {
        eprintln!(
            "bench_gate: FAIL nonblocking overlap acceptance: {k} concurrent icomms took \
             {pipe_reqs} pgcid.request spans / serialized critical path {pipe_cp} vs \
             blocking {seq_reqs} spans / {seq_cp} (need nonzero, strictly fewer spans \
             than both the blocking run and k, and a strictly shorter path)"
        );
        std::process::exit(2);
    }
    eprintln!(
        "bench_gate: nonblocking overlap ok ({pipe_reqs} vs {seq_reqs} pgcid requests, \
         serialized critical path {pipe_cp} vs {seq_cp}, {k} constructs)"
    );
    let mut out = Map::new();
    out.insert("k".into(), Value::U64(k as u64));
    out.insert("blocking".into(), seq);
    out.insert("overlap_fewer_pgcid_requests".into(), Value::U64(1));
    out.insert("overlap_fewer_than_k".into(), Value::U64(1));
    out.insert("overlap_shorter_serialized_critical_path".into(), Value::U64(1));
    Value::Object(out)
}

/// Fold the legitimately racy eager/ext counter pair and the
/// eager/handshake stage pair into their deterministic sums (see
/// `run_elastic`: which flavor a data send takes races against handshake
/// completion; the totals are fixed by the protocol).
fn fold_racy_data_split(mut record: Value) -> Value {
    if let Value::Object(w) = &mut record {
        if let Some(Value::Object(c)) = w.get_mut("counters") {
            let eager = c.remove("pml.eager_sent").and_then(|v| v.as_u64()).unwrap_or(0);
            let ext = c.remove("pml.ext_sent").and_then(|v| v.as_u64()).unwrap_or(0);
            c.insert("pml.data_sent".into(), Value::U64(eager + ext));
        }
        if let Some(Value::Object(s)) = w.get_mut("stages") {
            let mut take = |name: &str| match s.remove(name) {
                Some(Value::Object(m)) => (
                    m.get("count").and_then(|v| v.as_u64()).unwrap_or(0),
                    m.get("exclusive").and_then(|v| v.as_u64()).unwrap_or(0),
                ),
                _ => (0, 0),
            };
            let (ec, ee) = take("pml.eager");
            let (hc, he) = take("pml.handshake");
            let mut merged = Map::new();
            merged.insert("count".into(), Value::U64(ec + hc));
            merged.insert("exclusive".into(), Value::U64(ee + he));
            s.insert("pml.data".into(), Value::Object(merged));
        }
    }
    record
}

/// Recursively compare `got` against the baseline `want`; numeric leaves
/// must agree within relative tolerance `tol`, everything else exactly.
fn compare(path: &str, want: &Value, got: &Value, tol: f64, violations: &mut Vec<String>) {
    match (want, got) {
        (Value::Object(w), Value::Object(g)) => {
            for (k, wv) in w {
                match g.get(k) {
                    Some(gv) => compare(&format!("{path}/{k}"), wv, gv, tol, violations),
                    None => violations.push(format!("{path}/{k}: missing from current run")),
                }
            }
            for k in g.keys() {
                if !w.contains_key(k) {
                    violations.push(format!("{path}/{k}: not in baseline (regenerate it)"));
                }
            }
        }
        (Value::Array(w), Value::Array(g)) => {
            if w.len() != g.len() {
                violations.push(format!("{path}: length {} vs baseline {}", g.len(), w.len()));
                return;
            }
            for (i, (wv, gv)) in w.iter().zip(g).enumerate() {
                compare(&format!("{path}[{i}]"), wv, gv, tol, violations);
            }
        }
        _ => {
            let (Some(w), Some(g)) = (want.as_f64(), got.as_f64()) else {
                if want != got {
                    violations.push(format!("{path}: {got:?} vs baseline {want:?}"));
                }
                return;
            };
            let rel = (g - w).abs() / w.abs().max(1.0);
            if rel > tol {
                violations
                    .push(format!("{path}: {g} vs baseline {w} (rel {rel:.3} > tol {tol})"));
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    const DUPS: usize = 300;
    const CONSENSUS_DUPS: usize = 40;

    let mut workloads = Map::new();
    eprintln!("bench_gate: fig3 init points");
    workloads.insert("fig3_wpm_2x2".into(), run_init(InitMode::Wpm));
    workloads.insert("fig3_sessions_2x2".into(), run_init(InitMode::Sessions));
    eprintln!("bench_gate: lazy init point");
    workloads.insert("fig_init_lazy_np4".into(), run_init(InitMode::Lazy));
    eprintln!("bench_gate: fig4 dup points");
    workloads.insert(
        "fig4_wpm_consensus_np4".into(),
        run_dups(DupKind::Consensus, CONSENSUS_DUPS),
    );
    workloads.insert("fig4_sessions_pgcid_np4".into(), run_dups(DupKind::PgcidPerDup, DUPS));
    workloads.insert("fig4_sessions_derived_np4".into(), run_dups(DupKind::Derived, DUPS));
    eprintln!("bench_gate: fig5 mbw point");
    workloads.insert("fig5_mbw_presync_np4".into(), run_mbw());
    eprintln!("bench_gate: pmix group ablation point");
    workloads.insert("abl_pmix_group_2x2".into(), run_group_ablation(4));
    eprintln!("bench_gate: pml handshake-cache point");
    workloads.insert("pml_cache_two_comms_np2".into(), run_pml_cache());
    eprintln!("bench_gate: elastic churn point");
    workloads.insert("fig_elastic_churn_2x4".into(), run_elastic());
    eprintln!("bench_gate: soak churn point");
    workloads.insert("fig_soak_churn_2x2".into(), run_soak(8));
    eprintln!("bench_gate: fault recovery point");
    workloads.insert("fig_recover_kill_2x2".into(), run_recover());
    eprintln!("bench_gate: nonblocking overlap point");
    workloads.insert("async_overlap_icomm_np2".into(), run_overlap_icomm(8));
    let n_workloads = workloads.len();

    // Hard acceptance bound for PGCID batching: 301 PGCID-bearing group
    // constructs (parent + 300 dups) must need at most a quarter as many
    // `pgcid.request` round trips.
    let requests = workloads["fig4_sessions_pgcid_np4"]
        .as_object()
        .and_then(|w| w.get("stages")?.as_object()?.get("pgcid.request")?.as_object())
        .and_then(|s| s.get("count")?.as_u64())
        .unwrap_or(0);
    let bound = (DUPS as u64 + 1) / 4;
    if requests == 0 || requests > bound {
        eprintln!(
            "bench_gate: FAIL pgcid batching acceptance: {requests} pgcid.request spans \
             for {} constructs (bound {bound}, must be nonzero)",
            DUPS + 1
        );
        std::process::exit(2);
    }
    eprintln!("bench_gate: pgcid batching ok ({requests} requests for {} constructs)", DUPS + 1);

    // Hard acceptance bound for lazy init (DESIGN.md §14): the fence-free
    // record must contain zero group fan-in/fan-out stages and strictly
    // fewer logical steps — a shorter critical path — than the eager
    // sessions record at the same np=4 scale.
    let stage_count = |wl: &str, stage: &str| {
        workloads[wl]
            .as_object()
            .and_then(|w| w.get("stages")?.as_object()?.get(stage)?.as_object())
            .and_then(|s| s.get("count")?.as_u64())
            .unwrap_or(0)
    };
    let critical = |wl: &str| {
        workloads[wl]
            .as_object()
            .and_then(|w| w.get("critical_path_cost")?.as_u64())
            .unwrap_or(0)
    };
    let lazy_fanin = stage_count("fig_init_lazy_np4", "group.fanin");
    let lazy_fanout = stage_count("fig_init_lazy_np4", "group.fanout");
    let lazy_publishes = stage_count("fig_init_lazy_np4", "session.publish");
    let (lazy_cp, eager_cp) = (critical("fig_init_lazy_np4"), critical("fig3_sessions_2x2"));
    if lazy_fanin != 0 || lazy_fanout != 0 || lazy_publishes == 0 || lazy_cp >= eager_cp {
        eprintln!(
            "bench_gate: FAIL lazy-init acceptance: {lazy_fanin} group.fanin / {lazy_fanout} \
             group.fanout stage(s) (both must be 0), {lazy_publishes} session.publish stage(s) \
             (must be nonzero), critical path {lazy_cp} vs eager {eager_cp} (must be shorter)"
        );
        std::process::exit(2);
    }
    eprintln!(
        "bench_gate: lazy init ok (fence-free, critical path {lazy_cp} < eager {eager_cp})"
    );

    let mut root = Map::new();
    root.insert("schema".into(), Value::Str(SCHEMA.into()));
    root.insert("workloads".into(), Value::Object(workloads));
    let report = Value::Object(root);

    if let Some(baseline_path) = cli_opt(&args, "--check") {
        let tol: f64 = cli_opt(&args, "--tol").and_then(|v| v.parse().ok()).unwrap_or(0.05);
        let baseline: Value = serde_json::from_str(
            &std::fs::read_to_string(&baseline_path)
                .unwrap_or_else(|e| panic!("read {baseline_path}: {e}")),
        )
        .expect("parse baseline");
        let mut violations = Vec::new();
        compare("", &baseline, &report, tol, &mut violations);
        if violations.is_empty() {
            println!("bench_gate: OK ({n_workloads} workloads within tol {tol})");
        } else {
            eprintln!("bench_gate: FAIL vs {baseline_path} (tol {tol}):");
            for v in &violations {
                eprintln!("  {v}");
            }
            std::process::exit(1);
        }
    } else if let Some(out) = cli_opt(&args, "--out") {
        let mut bytes = serde_json::to_vec_pretty(&report).expect("serialize");
        bytes.push(b'\n');
        std::fs::write(&out, bytes).unwrap_or_else(|e| panic!("write {out}: {e}"));
        eprintln!("bench_gate: wrote {out}");
    } else {
        println!("{}", serde_json::to_string_pretty(&report).expect("serialize"));
    }
}
