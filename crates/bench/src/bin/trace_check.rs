//! Golden-trace gate: validate a `--trace-out` report file against the
//! checked-in schema subset and print its critical-path stage orderings.
//!
//! Two jobs, both offline (no network, vendored JSON parser only):
//!
//! 1. **Schema check** — every run label in the file must hold a report
//!    matching `ci/trace_schema.json`: required keys with the right JSON
//!    types, the exact `schema` version string, zero dropped spans, and a
//!    referentially closed DAG (every `parent` / `links` / critical-path
//!    entry names a span that exists in the same report).
//! 2. **Stage ordering** — for each run and each trace root, print the
//!    critical path as span *names only* (no costs, no canonical ids), one
//!    line per trace. CI diffs this against a committed golden file, so
//!    the gate catches reordered or vanished stages but not cost drift.
//!
//! A third job rides on the same machinery: `--introspect <file>` switches
//! to validating a flight-recorder snapshot (`introspect_dump` output, or
//! the artifact a failing chaos run attaches) against
//! `ci/introspect_schema.json` — every process, request, server-shard and
//! cvar row must carry its required fields with the right types.
//!
//! Usage: `trace_check <trace.json> [--schema ci/trace_schema.json]`
//!        `trace_check --introspect <snapshot.json> [--schema <schema.json>]`
//! Exits nonzero on the first violation.

use apps::cli_opt;
use serde_json::{parse_value, Map, Value};

fn fail(msg: &str) -> ! {
    eprintln!("trace_check: {msg}");
    std::process::exit(1);
}

fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    parse_value(&text).unwrap_or_else(|e| fail(&format!("cannot parse {path}: {e}")))
}

/// True when `v` matches a schema type tag ("string" | "u64" | "array" |
/// "object").
fn type_ok(v: &Value, ty: &str) -> bool {
    match ty {
        "string" => v.as_str().is_some(),
        "u64" => v.as_u64().is_some(),
        "bool" => v.as_bool().is_some(),
        "array" => v.as_array().is_some(),
        "object" => v.as_object().is_some(),
        _ => false,
    }
}

/// Check that `obj` has every key of the `required` spec with the right
/// type; `where_` names the location for error messages.
fn check_required(obj: &Map, required: &Map, where_: &str) {
    for (field, ty) in required {
        let ty = ty.as_str().unwrap_or_else(|| fail("schema types must be strings"));
        match obj.get(field) {
            None => fail(&format!("{where_}: missing required field '{field}'")),
            Some(v) if !type_ok(v, ty) => {
                fail(&format!("{where_}: field '{field}' is not a {ty}"))
            }
            Some(_) => {}
        }
    }
}

fn required_spec<'a>(schema: &'a Map, key: &str) -> &'a Map {
    schema
        .get(key)
        .and_then(Value::as_object)
        .unwrap_or_else(|| fail(&format!("schema file is missing '{key}'")))
}

/// `--introspect` mode: validate one flight-recorder snapshot against the
/// introspect schema. Walks every nested collection — processes (and their
/// requests, PGCID families, cache), registry, servers (and their shards),
/// cvar rows — checking required fields and types.
fn check_introspect(snapshot_path: &str, schema_path: &str) {
    let schema = load(schema_path);
    let schema = schema.as_object().unwrap_or_else(|| fail("schema file must be an object"));
    let version = schema
        .get("schema")
        .and_then(Value::as_str)
        .unwrap_or_else(|| fail("schema file is missing 'schema' version string"));
    let root_req = required_spec(schema, "root_required");
    let proc_req = required_spec(schema, "process_required");
    let cache_req = required_spec(schema, "pml_cache_required");
    let request_req = required_spec(schema, "request_required");
    let family_req = required_spec(schema, "pgcid_family_required");
    let registry_req = required_spec(schema, "registry_required");
    let server_req = required_spec(schema, "server_required");
    let shards_req = required_spec(schema, "shards_required");
    let cvar_req = required_spec(schema, "cvar_required");

    let snap = load(snapshot_path);
    let root = snap.as_object().unwrap_or_else(|| fail("snapshot must be an object"));
    check_required(root, root_req, "snapshot");
    let got = root.get("schema").and_then(Value::as_str).unwrap();
    if got != version {
        fail(&format!("snapshot schema '{got}', expected '{version}'"));
    }

    let procs = root.get("processes").and_then(Value::as_array).unwrap();
    for p in procs {
        let p = p.as_object().unwrap_or_else(|| fail("process entry is not an object"));
        check_required(p, proc_req, "process");
        let name = p.get("proc").and_then(Value::as_str).unwrap();
        let cache = p.get("pml_cache").and_then(Value::as_object).unwrap();
        check_required(cache, cache_req, &format!("process '{name}' pml_cache"));
        for r in p.get("requests").and_then(Value::as_array).unwrap() {
            let r = r
                .as_object()
                .unwrap_or_else(|| fail(&format!("process '{name}': request is not an object")));
            check_required(r, request_req, &format!("process '{name}' request"));
        }
        for f in p.get("pgcid_families").and_then(Value::as_array).unwrap() {
            let f = f
                .as_object()
                .unwrap_or_else(|| fail(&format!("process '{name}': family is not an object")));
            check_required(f, family_req, &format!("process '{name}' pgcid family"));
        }
    }

    let registry = root.get("registry").and_then(Value::as_object).unwrap();
    check_required(registry, registry_req, "registry");

    let servers = root.get("servers").and_then(Value::as_array).unwrap();
    if servers.is_empty() {
        fail("snapshot lists no servers (a universe always has the RM daemon)");
    }
    for s in servers {
        let s = s.as_object().unwrap_or_else(|| fail("server entry is not an object"));
        check_required(s, server_req, "server");
        let shards = s.get("shards").and_then(Value::as_object).unwrap();
        check_required(shards, shards_req, "server shards");
    }

    for c in root.get("cvars").and_then(Value::as_array).unwrap() {
        let c = c.as_object().unwrap_or_else(|| fail("cvar row is not an object"));
        check_required(c, cvar_req, "cvar");
        if c.get("value").is_none() {
            fail("cvar row is missing 'value'");
        }
    }

    eprintln!(
        "trace_check: introspect OK ({} process(es), {} server(s), {} cvar(s))",
        procs.len(),
        servers.len(),
        root.get("cvars").and_then(Value::as_array).unwrap().len(),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(snapshot_path) = cli_opt(&args, "--introspect") {
        let schema_path =
            cli_opt(&args, "--schema").unwrap_or_else(|| "ci/introspect_schema.json".into());
        check_introspect(&snapshot_path, &schema_path);
        return;
    }
    let trace_path = args
        .iter()
        .skip(1)
        .find(|a| !a.starts_with("--") && Some(a.as_str()) != cli_opt(&args, "--schema").as_deref())
        .unwrap_or_else(|| fail("usage: trace_check <trace.json> [--schema <schema.json>]"));
    let schema_path = cli_opt(&args, "--schema").unwrap_or_else(|| "ci/trace_schema.json".into());

    let schema = load(&schema_path);
    let schema = schema.as_object().unwrap_or_else(|| fail("schema file must be an object"));
    let version = schema
        .get("schema")
        .and_then(Value::as_str)
        .unwrap_or_else(|| fail("schema file is missing 'schema' version string"));
    let report_req = required_spec(schema, "report_required");
    let span_req = required_spec(schema, "span_required");
    let trace_req = required_spec(schema, "trace_required");
    let cp_req = required_spec(schema, "critical_path_entry_required");
    let stage_req = required_spec(schema, "stage_required");

    let file = load(trace_path);
    let runs = file
        .as_object()
        .unwrap_or_else(|| fail("trace file must be an object of {label: report}"));
    if runs.is_empty() {
        fail("trace file has no runs (was the figure binary given --trace-out?)");
    }

    // Map is a BTreeMap, so labels and output ordering are deterministic.
    for (label, report) in runs {
        let report = report
            .as_object()
            .unwrap_or_else(|| fail(&format!("run '{label}': report is not an object")));
        check_required(report, report_req, &format!("run '{label}'"));
        let got = report.get("schema").and_then(Value::as_str).unwrap();
        if got != version {
            fail(&format!("run '{label}': schema '{got}', expected '{version}'"));
        }
        if report.get("spans_dropped").and_then(Value::as_u64).unwrap() != 0 {
            fail(&format!("run '{label}': report has dropped spans"));
        }

        // Span table: required fields plus a referentially closed DAG.
        let spans = report.get("spans").and_then(Value::as_array).unwrap();
        let mut ids: Vec<&str> = Vec::with_capacity(spans.len());
        for span in spans {
            let span = span
                .as_object()
                .unwrap_or_else(|| fail(&format!("run '{label}': span is not an object")));
            check_required(span, span_req, &format!("run '{label}' span"));
            let id = span.get("id").and_then(Value::as_str).unwrap();
            let start = span.get("logical_start").and_then(Value::as_u64).unwrap();
            let end = span.get("logical_end").and_then(Value::as_u64).unwrap();
            if start > end {
                fail(&format!("run '{label}' span '{id}': logical_start > logical_end"));
            }
            ids.push(id);
        }
        ids.sort_unstable();
        let known = |id: &str| ids.binary_search(&id).is_ok();
        for span in spans {
            let span = span.as_object().unwrap();
            let id = span.get("id").and_then(Value::as_str).unwrap();
            if let Some(p) = span.get("parent") {
                let p = p
                    .as_str()
                    .unwrap_or_else(|| fail(&format!("run '{label}' span '{id}': parent not a string")));
                if !known(p) {
                    fail(&format!("run '{label}' span '{id}': dangling parent '{p}'"));
                }
            }
            for l in span.get("links").and_then(Value::as_array).unwrap() {
                let l = l
                    .as_str()
                    .unwrap_or_else(|| fail(&format!("run '{label}' span '{id}': link not a string")));
                if !known(l) {
                    fail(&format!("run '{label}' span '{id}': dangling link '{l}'"));
                }
            }
        }
        let span_count = report.get("span_count").and_then(Value::as_u64).unwrap();
        if span_count != spans.len() as u64 {
            fail(&format!(
                "run '{label}': span_count {span_count} != {} spans listed",
                spans.len()
            ));
        }

        // Stage summary objects.
        for (stage, summary) in report.get("stages").and_then(Value::as_object).unwrap() {
            let summary = summary
                .as_object()
                .unwrap_or_else(|| fail(&format!("run '{label}' stage '{stage}': not an object")));
            check_required(summary, stage_req, &format!("run '{label}' stage '{stage}'"));
        }

        // Per-trace critical paths; print the stage ordering lines.
        for trace in report.get("traces").and_then(Value::as_array).unwrap() {
            let trace = trace
                .as_object()
                .unwrap_or_else(|| fail(&format!("run '{label}': trace is not an object")));
            check_required(trace, trace_req, &format!("run '{label}' trace"));
            let root = trace.get("root").and_then(Value::as_str).unwrap();
            if !known(root) {
                fail(&format!("run '{label}': trace root '{root}' is not a listed span"));
            }
            let mut names: Vec<&str> = Vec::new();
            for entry in trace.get("critical_path").and_then(Value::as_array).unwrap() {
                let entry = entry.as_object().unwrap_or_else(|| {
                    fail(&format!("run '{label}': critical-path entry is not an object"))
                });
                check_required(entry, cp_req, &format!("run '{label}' critical-path entry"));
                let span = entry.get("span").and_then(Value::as_str).unwrap();
                if !known(span) {
                    fail(&format!("run '{label}': critical path names unknown span '{span}'"));
                }
                names.push(entry.get("name").and_then(Value::as_str).unwrap());
            }
            println!("{label} {root}: {}", names.join(" -> "));
        }
    }
    eprintln!("trace_check: OK ({} run(s))", runs.len());
}
