//! Sessions-as-a-service soak: sustained session/communicator/pset churn
//! against one persistent runtime, with leak-freedom gates.
//!
//! Every wave, each of the four ranks initializes a session, builds a
//! world communicator, derives (and recycles) a child exCID, runs an
//! allreduce and tears everything back down, while the driver churns one
//! short-lived pset per wave through the namespace registry. The runtime
//! itself never restarts — exactly the "service" shape where a leaked CID
//! slot, cache entry, tombstone or PGCID eventually kills the job.
//!
//! The harness samples the per-component resource levels as the churn
//! runs, reports throughput plus per-component high-water marks, and ends
//! with the leak-freedom verdict: all levels must return to the pre-churn
//! baseline (exit code 1 otherwise). `--no-gc` disables tombstone GC in
//! the registry to demonstrate the failure mode the GC exists to prevent:
//! any run of more than `GC_TOMBSTONE_THRESHOLD` waves then FAILs.
//!
//! `--abandon` adds one in-flight `idup_via_group` setup request per rank
//! per wave and *drops* it mid-flight on every 10th wave instead of
//! claiming it: collective cancellation must still drive the request to
//! completion and release its PGCID-backed CID, or the leak verdict (and
//! the teardown audit) fails. This is the service-shape proof that
//! abandoning nonblocking setup never strands resources.
//!
//! Usage: `fig_soak [--waves 200] [--sample-every N] [--no-gc] [--abandon]
//!                  [--metrics-out <path>]`

use apps::cli_opt;
use bench_harness::{dump_json, soak};
use mpi_sessions::{coll, Comm, ErrHandler, Info, ReduceOp, Session, ThreadLevel};
use pmix::nspace::GC_TOMBSTONE_THRESHOLD;
use prrte::{JobSpec, Launcher};
use serde::Serialize;
use simnet::SimTestbed;
use std::sync::mpsc;
use std::time::{Duration, Instant};

const NP: u32 = 4;

#[derive(Serialize)]
struct Report {
    waves: u64,
    gc_enabled: bool,
    abandoned_idups: u64,
    elapsed_s: f64,
    sessions_per_s: f64,
    samples: Vec<soak::LevelSample>,
    high_water: Vec<(String, i64)>,
    verdict: soak::LeakVerdict,
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // Flags win; SOAK_WAVES / SOAK_SAMPLE_EVERY env knobs are the fallback
    // (both surface as read-only `env` cvars in the introspection dump).
    let waves: u64 = cli_opt(&args, "--waves")
        .and_then(|v| v.parse().ok())
        .or_else(|| env_u64("SOAK_WAVES"))
        .unwrap_or(200);
    let no_gc = args.iter().any(|a| a == "--no-gc");
    let abandon = args.iter().any(|a| a == "--abandon");
    let sample_every: u64 = cli_opt(&args, "--sample-every")
        .and_then(|v| v.parse().ok())
        .or_else(|| env_u64("SOAK_SAMPLE_EVERY"))
        .unwrap_or_else(|| (waves / 16).max(1));

    let launcher = Launcher::new(SimTestbed::tiny(2, 2));
    let registry = launcher.universe().registry();
    let obs = launcher.universe().fabric().obs();
    if no_gc {
        // Through the cvar registry: behavior-identical to the legacy
        // `set_gc_enabled(false)` setter it absorbed.
        obs.cvar_write("universe", "registry.gc_enabled", obs::CvarValue::Bool(false))
            .expect("gc_enabled cvar");
    }

    let (tx, rx) = mpsc::channel::<(u32, u64)>();
    let handle = launcher.spawn_named("soak", JobSpec::new(NP), move |ctx| {
        for wave in 0..waves {
            let session =
                Session::init(&ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null())
                    .expect("session init");
            let group = session.group_from_pset("mpi://world").expect("world pset");
            let comm =
                Comm::create_from_group(&group, &format!("soak-w{wave}")).expect("comm");
            // Abandon variant: one nonblocking PGCID dup rides in flight
            // across the whole wave's churn (issued here, resolved after
            // the allreduce below).
            let inflight = abandon.then(|| comm.idup_via_group().expect("idup issue"));
            // Derive a child, free it, derive again: the second derivation
            // must resume the recycled subfield, exercising the freed-list
            // path every single wave.
            let d1 = comm.dup().expect("dup");
            d1.free().expect("free d1");
            let d2 = comm.dup().expect("dup recycled");
            let sum = coll::allreduce_t(&d2, ReduceOp::Sum, &[1u32]).expect("allreduce")[0];
            assert_eq!(sum, NP, "wave {wave}: collective saw wrong membership");
            d2.free().expect("free d2");
            if let Some(req) = inflight {
                if wave % 10 == 0 {
                    // Every 10th wave the request is dropped instead of
                    // claimed: cancellation frees the comm it produced, so
                    // the lifecycle counters and the leak verdict see the
                    // same drained world as a claimed-and-freed wave.
                    drop(req);
                } else {
                    req.wait().expect("idup wait").free().expect("free idup");
                }
            }
            comm.free().expect("free comm");
            session.finalize().expect("finalize");
            tx.send((ctx.rank(), wave)).expect("ack");
        }
    });
    // Quiet-point baseline: launch-defined psets registered, no live
    // sessions yet (ranks only start churning after this read races at
    // worst with wave 0 — which cannot touch psets or the KVS). All
    // sampling goes through one bound pvar session.
    let pvars = soak::SoakPvars::bind(obs.clone());
    let baseline = pvars.sample(0);

    let t0 = Instant::now();
    let mut samples = Vec::new();
    for wave in 0..waves {
        for _ in 0..NP {
            let (rank, w) = rx.recv_timeout(Duration::from_secs(120)).expect("wave ack");
            assert!(w >= wave, "rank {rank} acked stale wave {w}");
        }
        // Driver-side registry churn: one short-lived pset per wave. With
        // GC on, tombstones stay bounded; with --no-gc they pile up.
        let name = format!("soak://w{wave}");
        registry.define_pset(&name, vec![]);
        registry.undefine_pset(&name);
        if wave % sample_every == 0 {
            samples.push(pvars.sample(wave));
        }
    }
    handle.join().expect("soak job");
    let elapsed = t0.elapsed().as_secs_f64();
    let fin = pvars.sample(waves);
    samples.push(fin);

    let sessions = waves * NP as u64;
    println!(
        "# Soak: {waves} waves x {NP} ranks ({sessions} sessions) in {elapsed:.2}s \
         = {:.0} sessions/s (gc {})",
        sessions as f64 / elapsed,
        if no_gc { "OFF" } else { "on" },
    );

    println!("\n# Resource levels over the churn (sampled every {sample_every} waves)");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>12} {:>10} {:>10}",
        "wave", "cid_used", "pml_cache", "psets", "tombstones", "kvs", "pgcid_pool"
    );
    for s in &samples {
        println!(
            "{:>8} {:>10} {:>10} {:>10} {:>12} {:>10} {:>10}",
            s.wave,
            s.cid_table_used,
            s.pml_cache_entries,
            s.psets_live,
            s.psets_tombstoned,
            s.kvs_entries,
            s.pgcid_pool
        );
    }

    let high_water = soak::high_water(&obs);
    println!("\n# Per-component high-water marks");
    for (what, peak) in &high_water {
        println!("{what:>28} {peak:>8}");
    }

    // Activity gates: a soak that silently stopped exercising the
    // recycle/GC machinery would pass the leak checks vacuously.
    let released = obs.sum_counters("cid", "released");
    let recycled = obs.sum_counters("cid", "subfields_recycled");
    let pgcid_recycled = obs.sum_counters("pmix", "pgcid_recycled");
    let gced = obs.sum_counters("pmix", "psets_gced");
    let leaked = obs.sum_counters("instance", "cids_leaked_at_teardown");
    let cancelled = obs.sum_counters("req", "cancelled");
    println!(
        "\n# Lifecycle counters: {released} CIDs released, {recycled} subfields recycled, \
         {pgcid_recycled} PGCIDs recycled, {gced} tombstones GCed, {leaked} leaked at \
         teardown, {cancelled} setup requests cancelled"
    );
    let frees_per_wave = if abandon { 4 } else { 3 };
    assert_eq!(
        released,
        sessions * frees_per_wave,
        "{frees_per_wave} frees per rank per wave (cancellation counts as a free)"
    );
    assert_eq!(recycled, sessions, "one recycled derivation per rank per wave");
    assert!(pgcid_recycled > 0, "comm frees must recycle PGCIDs");
    assert_eq!(leaked, 0, "teardown audit found live CIDs");
    // 10% of the in-flight idups (every 10th wave, all ranks) are dropped
    // mid-flight; each drop must surface as exactly one cancellation.
    let abandoned = if abandon { waves.div_ceil(10) * NP as u64 } else { 0 };
    assert_eq!(cancelled, abandoned, "every abandoned idup must be cancelled, nothing else");
    if !no_gc && waves > GC_TOMBSTONE_THRESHOLD as u64 {
        assert!(gced > 0, "churn past the threshold must trigger GC");
    }

    let verdict = soak::leak_verdict(&baseline, &fin, GC_TOMBSTONE_THRESHOLD as i64);
    println!("\n{}", verdict.render());

    let mut sink = bench_harness::MetricsSink::from_args(&args);
    sink.record("soak_churn", obs.export());
    sink.finish();
    let passed = verdict.passed;
    dump_json(
        "fig_soak",
        &Report {
            waves,
            gc_enabled: !no_gc,
            abandoned_idups: abandoned,
            elapsed_s: elapsed,
            sessions_per_s: sessions as f64 / elapsed,
            samples,
            high_water,
            verdict,
        },
    );
    if !passed {
        std::process::exit(1);
    }
}
