//! Fig. 6 regenerator: HPCC 8-byte random- and natural-order ring latency
//! vs. node count, baseline vs. sessions-modified benchmark.
//!
//! Usage: `fig6_hpcc [--nodes 1,2,4,8] [--ppn 8] [--iters 50] [--paper]`

use apps::hpcc::run_hpcc_rings;
use apps::{cli_flag, cli_opt, InitMode};
use bench_harness::{dump_json, parse_list};
use serde::Serialize;
use simnet::SimTestbed;

#[derive(Serialize)]
struct Row {
    nodes: u32,
    np: u32,
    natural_wpm_us: f64,
    natural_sessions_us: f64,
    random_wpm_us: f64,
    random_sessions_us: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nodes_list =
        parse_list(&cli_opt(&args, "--nodes").unwrap_or_else(|| "1,2,4".into()));
    let ppn: u32 = cli_opt(&args, "--ppn")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if cli_flag(&args, "--paper") { 28 } else { 8 });
    let iters: usize = cli_opt(&args, "--iters").and_then(|v| v.parse().ok()).unwrap_or(50);
    let reps: usize = cli_opt(&args, "--reps").and_then(|v| v.parse().ok()).unwrap_or(3);

    println!("# Fig. 6: HPCC 8-byte ring latencies, {ppn} processes/node");
    println!(
        "{:>6} {:>6} | {:>14} {:>14} | {:>14} {:>14}",
        "nodes", "np", "nat/Init(us)", "nat/Sess(us)", "rnd/Init(us)", "rnd/Sess(us)"
    );
    let mut rows = Vec::new();
    for &nodes in &nodes_list {
        let mk_tb = || {
            let mut tb = SimTestbed::jupiter(nodes);
            tb.cluster.slots_per_node = ppn;
            tb
        };
        let np = nodes * ppn;
        // Best-of-reps per mode: single-core scheduler noise dwarfs the
        // per-hop latencies otherwise.
        let best = |mode: InitMode| {
            (0..reps)
                .map(|_| run_hpcc_rings(mk_tb(), np, mode, 5, iters))
                .min_by(|a, b| (a[0].usec + a[1].usec).total_cmp(&(b[0].usec + b[1].usec)))
                .expect("at least one rep")
        };
        let wpm = best(InitMode::Wpm);
        let sess = best(InitMode::Sessions);
        println!(
            "{:>6} {:>6} | {:>14.3} {:>14.3} | {:>14.3} {:>14.3}",
            nodes, np, wpm[0].usec, sess[0].usec, wpm[1].usec, sess[1].usec
        );
        rows.push(Row {
            nodes,
            np,
            natural_wpm_us: wpm[0].usec,
            natural_sessions_us: sess[0].usec,
            random_wpm_us: wpm[1].usec,
            random_sessions_us: sess[1].usec,
        });
    }
    println!("\n# Paper shape: sessions ≈ baseline for both orderings at every node count");
    println!("# (the component-local session changes only how the communicator was built).");
    dump_json("fig6_hpcc", &rows);
}
