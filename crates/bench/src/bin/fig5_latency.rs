//! Fig. 5a regenerator: relative on-node latency (Sessions / MPI_Init) by
//! message size, 2 processes on a single node.
//!
//! Usage: `fig5_latency [--max-size 1048576] [--iters 200] [--reps 3]`

use apps::osu::{run_latency_job, size_sweep};
use apps::{cli_opt, InitMode};
use bench_harness::{dump_json, geomean};
use serde::Serialize;
use simnet::SimTestbed;

#[derive(Serialize)]
struct Row {
    size: usize,
    wpm_us: f64,
    sessions_us: f64,
    relative: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_size: usize =
        cli_opt(&args, "--max-size").and_then(|v| v.parse().ok()).unwrap_or(1 << 20);
    let iters: usize = cli_opt(&args, "--iters").and_then(|v| v.parse().ok()).unwrap_or(200);
    let reps: usize = cli_opt(&args, "--reps").and_then(|v| v.parse().ok()).unwrap_or(5);
    let sizes = size_sweep(max_size);

    let run_mode = |mode| -> Vec<f64> {
        // Best-of-reps per size to tame single-core scheduler noise.
        let mut best = vec![f64::INFINITY; sizes.len()];
        for _ in 0..reps {
            let samples = run_latency_job(
                SimTestbed::tiny(1, 2),
                mode,
                sizes.clone(),
                10,
                iters,
            );
            for (i, s) in samples.iter().enumerate() {
                best[i] = best[i].min(s.usec);
            }
        }
        best
    };

    println!("# Fig. 5a: relative on-node latency, Sessions vs MPI_Init (2 procs)");
    let wpm = run_mode(InitMode::Wpm);
    let sess = run_mode(InitMode::Sessions);
    println!("{:>10} {:>14} {:>14} {:>10}", "Size", "MPI_Init(us)", "Sessions(us)", "relative");
    let mut rows = Vec::new();
    for (i, &size) in sizes.iter().enumerate() {
        let rel = sess[i] / wpm[i];
        println!("{:>10} {:>14.3} {:>14.3} {:>10.3}", size, wpm[i], sess[i], rel);
        rows.push(Row { size, wpm_us: wpm[i], sessions_us: sess[i], relative: rel });
    }
    let g = geomean(&rows.iter().map(|r| r.relative).collect::<Vec<_>>());
    println!("\n# geometric-mean relative latency: {g:.3}");
    println!("# Paper shape: ≈1.0 across sizes — the exCID handshake affects only the");
    println!("# first message; steady-state matching uses the compact header.");
    dump_json("fig5_latency", &rows);
}
