//! Fig. 7 regenerator: normalized mini-2MESH execution times, Baseline
//! (native QUO quiescence) vs Sessions (session-aware ibarrier+nanosleep),
//! for three problems P1/P2/P3.
//!
//! The paper ran P1/P2 at 256 and P3 at 1,024 processes on 32-core Trinity
//! nodes; the simulated problems keep the same *structure* (P3 = larger
//! job) at host-appropriate scale. `--paper` restores the full counts.
//!
//! Usage: `fig7_mesh2 [--reps 3] [--paper]`

use apps::mesh2::{run_mesh2_median, Mesh2Config};
use apps::{cli_flag, cli_opt};
use bench_harness::dump_json;
use quo::QuoBackend;
use serde::Serialize;
use simnet::SimTestbed;

#[derive(Serialize)]
struct Row {
    problem: String,
    np: u32,
    baseline_s: f64,
    sessions_s: f64,
    normalized: f64,
}

struct Problem {
    name: &'static str,
    nodes: u32,
    ppn: u32,
    cfg: Mesh2Config,
}

fn problems(paper_scale: bool) -> Vec<Problem> {
    let (n1, p1, n3, p3) = if paper_scale { (8, 32, 32, 32) } else { (2, 4, 4, 4) };
    let base = Mesh2Config {
        cells_per_rank: 4096,
        l0_iters: 20,
        l1_iters: 6,
        phases: 4,
        workers_per_node: 1,
        threads_per_worker: 4,
    };
    vec![
        Problem { name: "P1", nodes: n1, ppn: p1, cfg: base.clone() },
        Problem {
            name: "P2",
            nodes: n1,
            ppn: p1,
            cfg: Mesh2Config { l0_iters: 10, l1_iters: 12, ..base.clone() },
        },
        Problem { name: "P3", nodes: n3, ppn: p3, cfg: base },
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let reps: usize = cli_opt(&args, "--reps").and_then(|v| v.parse().ok()).unwrap_or(3);
    let paper = cli_flag(&args, "--paper");

    println!("# Fig. 7: normalized mini-2MESH execution times (Trinity cost model)");
    println!(
        "{:<8} {:>6} {:>14} {:>14} {:>12}",
        "problem", "np", "Baseline (s)", "Sessions (s)", "normalized"
    );
    let mut rows = Vec::new();
    for p in problems(paper) {
        let mut tb = SimTestbed::trinity(p.nodes);
        tb.cluster.slots_per_node = p.ppn;
        let np = p.nodes * p.ppn;
        let base = run_mesh2_median(tb.clone(), np, p.cfg.clone(), QuoBackend::Native, reps);
        let sess = run_mesh2_median(tb, np, p.cfg, QuoBackend::Sessions, reps);
        let norm = sess.elapsed_s / base.elapsed_s;
        println!(
            "{:<8} {:>6} {:>14.4} {:>14.4} {:>12.3}",
            p.name, np, base.elapsed_s, sess.elapsed_s, norm
        );
        rows.push(Row {
            problem: p.name.into(),
            np,
            baseline_s: base.elapsed_s,
            sessions_s: sess.elapsed_s,
            normalized: norm,
        });
    }
    println!("\n# Paper shape: Sessions within a few percent of Baseline for all problems,");
    println!("# the delta attributable to the emulated ibarrier+nanosleep quiescence.");
    dump_json("fig7_mesh2", &rows);
}
