//! Failure events and watchers.
//!
//! The paper's Section II-C motivates MPI Sessions as fault-isolation
//! domains: PMIx group construction must be able to report process failures,
//! and sessions must be re-initializable after a failure. The fabric is the
//! root source of truth for "process X died"; this module carries that fact
//! to subscribers (PMIx servers, tests).

use crate::endpoint::EndpointId;
use crate::topology::NodeId;
use crossbeam::channel::{Receiver, RecvTimeoutError, TryRecvError};
use std::time::Duration;

/// A process (endpoint) death notification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureEvent {
    /// The endpoint that died.
    pub endpoint: EndpointId,
    /// The node it lived on.
    pub node: NodeId,
}

/// A subscription to fabric failure events.
pub struct FailureWatcher {
    rx: Receiver<FailureEvent>,
}

impl FailureWatcher {
    pub(crate) fn new(rx: Receiver<FailureEvent>) -> Self {
        Self { rx }
    }

    /// Block until the next failure event (or the fabric shuts down).
    pub fn recv(&mut self) -> Option<FailureEvent> {
        self.rx.recv().ok()
    }

    /// Wait up to `timeout` for a failure event.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Option<FailureEvent> {
        match self.rx.recv_timeout(timeout) {
            Ok(ev) => Some(ev),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Poll for a failure event without blocking.
    pub fn try_recv(&mut self) -> Option<FailureEvent> {
        match self.rx.try_recv() {
            Ok(ev) => Some(ev),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::cost::CostModel;
    use crate::fabric::Fabric;
    use crate::topology::NodeId;
    use std::time::Duration;

    #[test]
    fn watcher_sees_multiple_failures_in_order() {
        let fabric = Fabric::new(CostModel::zero());
        let a = fabric.register(NodeId(0));
        let b = fabric.register(NodeId(1));
        let mut w = fabric.watch_failures();
        fabric.kill(a.id());
        fabric.kill(b.id());
        assert_eq!(w.recv_timeout(Duration::from_secs(1)).unwrap().endpoint, a.id());
        assert_eq!(w.recv_timeout(Duration::from_secs(1)).unwrap().endpoint, b.id());
        assert!(w.try_recv().is_none());
    }

    #[test]
    fn late_watcher_replays_earlier_failures() {
        let fabric = Fabric::new(CostModel::zero());
        let a = fabric.register(NodeId(0));
        let b = fabric.register(NodeId(1));
        fabric.kill(b.id());
        fabric.kill(a.id());
        // A watcher subscribing after the deaths still learns about them:
        // the fabric replays the dead set (in endpoint-id order) on
        // subscription, so late subscribers converge with early ones.
        let mut w = fabric.watch_failures();
        let first = w.try_recv().expect("first death replayed");
        let second = w.try_recv().expect("second death replayed");
        assert_eq!(first.endpoint, a.id());
        assert_eq!(first.node, NodeId(0));
        assert_eq!(second.endpoint, b.id());
        assert_eq!(second.node, NodeId(1));
        assert!(w.try_recv().is_none());
        assert!(fabric.was_killed(a.id()));
    }

    #[test]
    fn replayed_and_live_failures_are_each_seen_once() {
        let fabric = Fabric::new(CostModel::zero());
        let a = fabric.register(NodeId(0));
        let b = fabric.register(NodeId(0));
        fabric.kill(a.id());
        let mut w = fabric.watch_failures();
        fabric.kill(b.id());
        // Replay of the earlier death, then the live broadcast — no
        // duplicates of either.
        assert_eq!(w.recv_timeout(Duration::from_secs(1)).unwrap().endpoint, a.id());
        assert_eq!(w.recv_timeout(Duration::from_secs(1)).unwrap().endpoint, b.id());
        assert!(w.try_recv().is_none());
    }
}
