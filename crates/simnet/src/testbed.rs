//! Calibrated testbed presets.
//!
//! Table I of the paper describes the two evaluation systems. We cannot
//! reproduce Cray hardware; instead each preset pairs a [`ClusterSpec`] with
//! a [`CostModel`] whose latency/bandwidth ratios follow the same ordering
//! (on-node ≪ off-node; Aries-class bandwidth) scaled up so that injected
//! `thread::sleep` delays dominate single-core scheduler noise.

use crate::cost::CostModel;
use crate::topology::ClusterSpec;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// A named simulated testbed: topology plus cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimTestbed {
    /// Human-readable name, referenced by EXPERIMENTS.md.
    pub name: String,
    /// Node/slot layout.
    pub cluster: ClusterSpec,
    /// Communication cost model.
    pub cost: CostModel,
}

impl SimTestbed {
    /// Analog of Trinity (Cray XC40, 32-core nodes, Aries).
    ///
    /// `nodes` controls the allocation size; the paper used up to 32 nodes
    /// for the 2MESH runs (1,024 processes at 32 per node).
    pub fn trinity(nodes: u32) -> Self {
        Self {
            name: format!("trinity-{nodes}n"),
            cluster: ClusterSpec::new(nodes, 32),
            cost: CostModel {
                intra_node_latency: Duration::ZERO,
                inter_node_latency: Duration::from_micros(150),
                intra_node_bandwidth: None,
                inter_node_bandwidth: Some(8 * 1024 * 1024 * 1024),
                send_overhead: Duration::ZERO,
                rpc_processing: Duration::from_micros(100),
                spawn_cost: Duration::ZERO,
            },
        }
    }

    /// Analog of Jupiter (Cray XC30, 28-core nodes, Aries). The paper ran
    /// its microbenchmarks here at 28 processes per node.
    pub fn jupiter(nodes: u32) -> Self {
        Self {
            name: format!("jupiter-{nodes}n"),
            cluster: ClusterSpec::new(nodes, 28),
            cost: CostModel {
                intra_node_latency: Duration::ZERO,
                inter_node_latency: Duration::from_micros(150),
                intra_node_bandwidth: None,
                inter_node_bandwidth: Some(8 * 1024 * 1024 * 1024),
                send_overhead: Duration::ZERO,
                rpc_processing: Duration::from_micros(100),
                spawn_cost: Duration::ZERO,
            },
        }
    }

    /// A tiny testbed with zero injected cost for unit/integration tests:
    /// fast and deterministic.
    pub fn tiny(nodes: u32, slots_per_node: u32) -> Self {
        Self {
            name: format!("tiny-{nodes}x{slots_per_node}"),
            cluster: ClusterSpec::new(nodes, slots_per_node),
            cost: CostModel::zero(),
        }
    }

    /// Variant of an existing testbed with an NFS-slow spawn cost, mirroring
    /// the paper's note that startup time was dominated by loading binaries
    /// from a slow NFS mount.
    pub fn with_spawn_cost(mut self, cost: Duration) -> Self {
        self.cost.spawn_cost = cost;
        self.name.push_str("-nfs");
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trinity_has_32_slots_per_node() {
        let t = SimTestbed::trinity(4);
        assert_eq!(t.cluster.slots_per_node, 32);
        assert_eq!(t.cluster.total_slots(), 128);
    }

    #[test]
    fn jupiter_has_28_slots_per_node() {
        let j = SimTestbed::jupiter(2);
        assert_eq!(j.cluster.slots_per_node, 28);
    }

    #[test]
    fn tiny_model_is_free() {
        let t = SimTestbed::tiny(2, 2);
        assert_eq!(t.cost, CostModel::zero());
    }

    #[test]
    fn spawn_cost_variant_renames() {
        let t = SimTestbed::trinity(1).with_spawn_cost(Duration::from_millis(5));
        assert!(t.name.ends_with("-nfs"));
        assert_eq!(t.cost.spawn_cost, Duration::from_millis(5));
    }

    #[test]
    fn testbed_serializes_roundtrip() {
        let t = SimTestbed::jupiter(8);
        let json = serde_json::to_string(&t).unwrap();
        let back: SimTestbed = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
