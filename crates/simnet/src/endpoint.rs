//! Endpoints: per-process mailboxes attached to the fabric.

use crate::fabric::FabricCore;
use crate::message::Envelope;
use crate::topology::NodeId;
use bytes::Bytes;
use crossbeam::channel::{Receiver, RecvTimeoutError, TryRecvError};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Duration;

/// Fabric-unique identifier of an endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EndpointId(pub u64);

impl std::fmt::Display for EndpointId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ep{}", self.0)
    }
}

/// Errors surfaced by the receive side of an endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// No message available right now (only from `try_recv`).
    Empty,
    /// The wait deadline elapsed (only from `recv_timeout`).
    Timeout,
    /// This endpoint has been killed or the fabric has shut down.
    Disconnected,
}

/// Errors surfaced by the send side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The destination endpoint does not exist or has been killed.
    PeerDead(EndpointId),
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::PeerDead(ep) => write!(f, "destination endpoint {ep} is dead"),
        }
    }
}

impl std::error::Error for SendError {}

/// A process's attachment point to the fabric: an id, a home node and a
/// mailbox of incoming [`Envelope`]s.
///
/// `Endpoint` is `Send` (it can be moved into the thread that plays the
/// simulated process) but receiving is single-consumer: exactly one thread
/// should drain it, which is exactly the MPI progress-engine discipline.
pub struct Endpoint {
    id: EndpointId,
    node: NodeId,
    rx: Receiver<Envelope>,
    fabric: Arc<FabricCore>,
}

impl Endpoint {
    pub(crate) fn new(
        id: EndpointId,
        node: NodeId,
        rx: Receiver<Envelope>,
        fabric: Arc<FabricCore>,
    ) -> Self {
        Self { id, node, rx, fabric }
    }

    /// This endpoint's fabric-unique id.
    pub fn id(&self) -> EndpointId {
        self.id
    }

    /// The node this endpoint lives on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// A cloneable handle to the fabric this endpoint is attached to.
    pub fn fabric(&self) -> crate::fabric::Fabric {
        crate::fabric::Fabric::from_core(self.fabric.clone())
    }

    /// The observability registry of the fabric this endpoint lives on.
    pub fn obs(&self) -> Arc<obs::Registry> {
        self.fabric.obs().clone()
    }

    /// Send `payload` to `dst`, applying the fabric's cost model.
    ///
    /// Sends are asynchronous: the call returns once the message is scheduled
    /// for delivery. Per-(src,dst) ordering is guaranteed even when delays
    /// differ by message size.
    ///
    /// The sending thread's current trace context (entered span or ambient)
    /// is piggybacked on the envelope automatically, so receivers can link
    /// the causal predecessor without any wire-format change.
    pub fn send(&self, dst: EndpointId, payload: Bytes) -> Result<(), SendError> {
        self.send_ctx(dst, payload, obs::trace::current_context())
    }

    /// Send with an explicit piggybacked trace context (overriding the
    /// thread-current one) — used where the logically-owning span is held
    /// in protocol state rather than entered on the calling thread.
    pub fn send_ctx(
        &self,
        dst: EndpointId,
        payload: Bytes,
        ctx: Option<obs::TraceContext>,
    ) -> Result<(), SendError> {
        self.fabric.send(Envelope::with_ctx(self.id, dst, payload, ctx))
    }

    /// Blocking receive. Returns `Disconnected` once this endpoint is killed
    /// (and its queue fully drained) or the fabric is gone.
    pub fn recv(&self) -> Result<Envelope, RecvError> {
        self.rx.recv().map_err(|_| RecvError::Disconnected)
    }

    /// Receive with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, RecvError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => RecvError::Timeout,
            RecvTimeoutError::Disconnected => RecvError::Disconnected,
        })
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<Envelope, RecvError> {
        self.rx.try_recv().map_err(|e| match e {
            TryRecvError::Empty => RecvError::Empty,
            TryRecvError::Disconnected => RecvError::Disconnected,
        })
    }

    /// Number of messages currently queued in the mailbox.
    pub fn queued(&self) -> usize {
        self.rx.len()
    }

    /// A cloneable send-only handle for this endpoint, usable from threads
    /// that do not own the mailbox (e.g. a server's worker threads).
    pub fn sender(&self) -> EndpointSender {
        EndpointSender { id: self.id, node: self.node, fabric: self.fabric.clone() }
    }
}

/// Send-only handle to the fabric on behalf of an endpoint.
#[derive(Clone)]
pub struct EndpointSender {
    id: EndpointId,
    node: NodeId,
    fabric: Arc<FabricCore>,
}

impl EndpointSender {
    /// The endpoint this sender sends as.
    pub fn id(&self) -> EndpointId {
        self.id
    }

    /// The node the owning endpoint lives on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Send `payload` to `dst` as the owning endpoint. The sending thread's
    /// current trace context is piggybacked, as with [`Endpoint::send`].
    pub fn send(&self, dst: EndpointId, payload: Bytes) -> Result<(), SendError> {
        self.send_ctx(dst, payload, obs::trace::current_context())
    }

    /// Send with an explicit piggybacked trace context, as with
    /// [`Endpoint::send_ctx`].
    pub fn send_ctx(
        &self,
        dst: EndpointId,
        payload: Bytes,
        ctx: Option<obs::TraceContext>,
    ) -> Result<(), SendError> {
        self.fabric.send(Envelope::with_ctx(self.id, dst, payload, ctx))
    }

    /// The observability registry of the fabric this sender sends on.
    pub fn obs(&self) -> Arc<obs::Registry> {
        self.fabric.obs().clone()
    }

    /// A cloneable handle to the fabric this sender sends on (quiescence
    /// probes for logical-time deadlines).
    pub fn fabric(&self) -> crate::fabric::Fabric {
        crate::fabric::Fabric::from_core(self.fabric.clone())
    }
}

impl std::fmt::Debug for EndpointSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EndpointSender").field("id", &self.id).finish()
    }
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("id", &self.id)
            .field("node", &self.node)
            .field("queued", &self.rx.len())
            .finish()
    }
}
