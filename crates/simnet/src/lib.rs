//! # simnet — a simulated cluster fabric
//!
//! This crate is the hardware substrate for the MPI Sessions reproduction.
//! The paper ran on two Cray XC systems (Aries interconnect); we have no such
//! hardware, so we simulate the *relevant* properties of a cluster:
//!
//! * a set of **nodes**, each hosting a fixed number of **slots** (cores);
//! * **endpoints** (one per simulated process or daemon) that exchange
//!   reliable, ordered, unbounded point-to-point byte messages;
//! * a **cost model** that makes on-node communication cheap (shared-memory
//!   analog: direct queue handoff, no injected delay) and off-node
//!   communication expensive (injected latency plus per-byte bandwidth delay);
//! * **failure injection**: an endpoint can be killed; in-flight and future
//!   messages to it are dropped and interested parties are notified.
//!
//! All effects the paper measures are *algorithmic* (extra RPC round trips,
//! extra protocol messages, more reduction rounds), so a
//! latency/bandwidth-parameterized fabric preserves the shape of every
//! experiment even though absolute numbers differ from Aries hardware.
//!
//! The fabric is intentionally neutral: it knows nothing about PMIx or MPI.
//! Higher layers (the `pmix`, `prrte` and `mpi-sessions` crates) build their
//! wire protocols on top of [`Endpoint`] and [`Fabric`].

pub mod cost;
pub mod endpoint;
pub mod fabric;
pub mod failure;
pub mod inject;
pub mod message;
pub mod testbed;
pub mod topology;

pub use cost::CostModel;
pub use endpoint::{Endpoint, EndpointId, EndpointSender, RecvError, SendError};
pub use fabric::Fabric;
pub use failure::{FailureEvent, FailureWatcher};
pub use inject::{FaultAction, FaultHook, FaultVerdict, MsgView};
pub use message::Envelope;
pub use testbed::SimTestbed;
pub use topology::{ClusterSpec, NodeId};
