//! Fault-injection hook points.
//!
//! A [`FaultHook`] installed on a fabric is consulted for every message the
//! fabric accepts, *before* routing. The hook sees a [`MsgView`] — src/dst
//! endpoints (both raw and normalized relative to the fabric's first
//! registered endpoint), their nodes, the per-(src,dst) message sequence
//! number and the payload length — and returns a [`FaultVerdict`]: what to do
//! with the message plus any endpoints to kill as a side effect.
//!
//! The view deliberately exposes only *deterministic* inputs: normalized
//! endpoint ids and per-pair sequence numbers are stable across runs of the
//! same workload, while raw endpoint ids and wall-clock time are not (the
//! endpoint id counter is process-global and shifts under parallel tests).
//! A hook that decides purely from `rel_src`/`rel_dst`/`pair_seq` and a seed
//! reproduces the same fault schedule on every run — the property the chaos
//! harness is built on.

use crate::endpoint::EndpointId;
use crate::topology::NodeId;
use std::time::Duration;

/// What the fabric should do with one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver normally.
    Deliver,
    /// Drop silently. The sender still observes a successful send — exactly
    /// the semantics of a lost packet on a real fabric.
    Drop,
    /// Deliver after an extra delay on top of the cost model.
    Delay(Duration),
    /// Deliver twice (models a retransmission duplicate). Only meaningful
    /// against idempotent receivers.
    Duplicate,
}

/// A hook's decision for one message.
#[derive(Debug, Clone)]
pub struct FaultVerdict {
    /// What to do with the message itself.
    pub action: FaultAction,
    /// Endpoints to kill as a side effect (applied before the message is
    /// routed, so a `kill` of the destination makes this very message the
    /// first casualty).
    pub kills: Vec<EndpointId>,
}

impl FaultVerdict {
    /// Deliver, no side effects.
    pub fn deliver() -> Self {
        Self { action: FaultAction::Deliver, kills: Vec::new() }
    }
}

impl From<FaultAction> for FaultVerdict {
    fn from(action: FaultAction) -> Self {
        Self { action, kills: Vec::new() }
    }
}

/// The fabric's view of one message offered to a [`FaultHook`].
#[derive(Debug, Clone, Copy)]
pub struct MsgView {
    /// Raw source endpoint id.
    pub src: EndpointId,
    /// Raw destination endpoint id.
    pub dst: EndpointId,
    /// Source id normalized to the fabric's first registered endpoint
    /// (first endpoint = 0). Stable across runs of the same workload.
    pub rel_src: u64,
    /// Destination id, normalized like `rel_src`.
    pub rel_dst: u64,
    /// Node the source lives on (`None` if the sender already died).
    pub src_node: Option<NodeId>,
    /// Node the destination lives on (`None` if it is already dead).
    pub dst_node: Option<NodeId>,
    /// 0-based sequence number of this message on the (src, dst) pair.
    /// Counted only while a hook is installed.
    pub pair_seq: u64,
    /// Payload length in bytes.
    pub len: usize,
}

/// Per-message fault decision callback, installed via
/// [`Fabric::set_fault_hook`](crate::fabric::Fabric::set_fault_hook).
///
/// Called on the *sending* thread with no fabric locks held, so a hook may
/// freely request kills (which take the registry write lock). Hooks must be
/// cheap and deterministic: no wall-clock reads, no global mutable state
/// outside the hook itself.
pub trait FaultHook: Send + Sync {
    /// Decide the fate of one message.
    fn on_message(&self, msg: &MsgView) -> FaultVerdict;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_from_action_has_no_kills() {
        let v: FaultVerdict = FaultAction::Drop.into();
        assert_eq!(v.action, FaultAction::Drop);
        assert!(v.kills.is_empty());
        assert_eq!(FaultVerdict::deliver().action, FaultAction::Deliver);
    }
}
