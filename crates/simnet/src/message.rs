//! The message envelope carried by the fabric.

use crate::endpoint::EndpointId;
use bytes::Bytes;

/// A message as delivered to a destination endpoint's mailbox.
///
/// The fabric is payload-agnostic: higher layers serialize their own wire
/// headers into `payload`. `Bytes` is used so that large payloads are
/// reference-counted rather than copied on every hop.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sending endpoint.
    pub src: EndpointId,
    /// Destination endpoint.
    pub dst: EndpointId,
    /// Opaque payload owned by the protocol layered above the fabric.
    pub payload: Bytes,
}

impl Envelope {
    /// Construct an envelope.
    pub fn new(src: EndpointId, dst: EndpointId, payload: Bytes) -> Self {
        Self { src, dst, payload }
    }

    /// Total payload length in bytes (what the cost model charges for).
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_reports_len() {
        let e = Envelope::new(EndpointId(1), EndpointId(2), Bytes::from_static(b"abcd"));
        assert_eq!(e.len(), 4);
        assert!(!e.is_empty());
        assert!(Envelope::new(EndpointId(1), EndpointId(2), Bytes::new()).is_empty());
    }

    #[test]
    fn envelope_clone_shares_payload() {
        let payload = Bytes::from(vec![0u8; 1024]);
        let e = Envelope::new(EndpointId(1), EndpointId(2), payload.clone());
        let f = e.clone();
        // Bytes clones share the same backing storage.
        assert_eq!(f.payload.as_ptr(), payload.as_ptr());
    }
}
