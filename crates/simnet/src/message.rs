//! The message envelope carried by the fabric.

use crate::endpoint::EndpointId;
use bytes::Bytes;
use obs::TraceContext;

/// A message as delivered to a destination endpoint's mailbox.
///
/// The fabric is payload-agnostic: higher layers serialize their own wire
/// headers into `payload`. `Bytes` is used so that large payloads are
/// reference-counted rather than copied on every hop.
///
/// Besides the payload, an envelope can piggyback the sender's current
/// [`TraceContext`] — a 24-byte `(trace, span, clock)` triple — so causal
/// tracing crosses process boundaries. The context is metadata: it is
/// excluded from `len()` (the cost model charges payload only) and from
/// equality (the fabric's delivery bookkeeping compares src/dst/payload).
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sending endpoint.
    pub src: EndpointId,
    /// Destination endpoint.
    pub dst: EndpointId,
    /// Opaque payload owned by the protocol layered above the fabric.
    pub payload: Bytes,
    /// Piggybacked trace context of the sender's current span, if any.
    pub ctx: Option<TraceContext>,
}

impl Envelope {
    /// Construct an envelope carrying no trace context.
    pub fn new(src: EndpointId, dst: EndpointId, payload: Bytes) -> Self {
        Self { src, dst, payload, ctx: None }
    }

    /// Construct an envelope with an explicit piggybacked trace context.
    pub fn with_ctx(
        src: EndpointId,
        dst: EndpointId,
        payload: Bytes,
        ctx: Option<TraceContext>,
    ) -> Self {
        Self { src, dst, payload, ctx }
    }

    /// Total payload length in bytes (what the cost model charges for).
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_reports_len() {
        let e = Envelope::new(EndpointId(1), EndpointId(2), Bytes::from_static(b"abcd"));
        assert_eq!(e.len(), 4);
        assert!(!e.is_empty());
        assert!(Envelope::new(EndpointId(1), EndpointId(2), Bytes::new()).is_empty());
    }

    #[test]
    fn envelope_clone_shares_payload() {
        let payload = Bytes::from(vec![0u8; 1024]);
        let e = Envelope::new(EndpointId(1), EndpointId(2), payload.clone());
        let f = e.clone();
        // Bytes clones share the same backing storage.
        assert_eq!(f.payload.as_ptr(), payload.as_ptr());
    }
}
