//! The fabric: endpoint registry, cost-model application and the delayed
//! delivery pump.
//!
//! Zero-delay messages (the on-node shared-memory path under the default
//! cost model) are handed directly to the destination mailbox by the sending
//! thread — this is the fast path that the latency microbenchmarks (paper
//! Fig. 5) exercise. Delayed messages go through a single pump thread that
//! sleeps until each message's delivery time. Per-(src,dst) FIFO order is
//! enforced by never scheduling a delivery earlier than the pair's previous
//! one, matching the ordered-delivery guarantee MPI point-to-point relies on.

use crate::cost::CostModel;
use crate::endpoint::{Endpoint, EndpointId, SendError};
use crate::failure::{FailureEvent, FailureWatcher};
use crate::message::Envelope;
use crate::topology::NodeId;
use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Aggregate traffic counters for a fabric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Messages accepted by `send` (including ones later dropped because the
    /// destination died first).
    pub msgs_sent: u64,
    /// Payload bytes accepted by `send`.
    pub bytes_sent: u64,
    /// Messages that took the delayed (pump) path rather than direct handoff.
    pub msgs_delayed: u64,
}

struct Entry {
    tx: Sender<Envelope>,
    node: NodeId,
}

struct Registry {
    map: RwLock<HashMap<EndpointId, Entry>>,
    dead: RwLock<HashSet<EndpointId>>,
}

/// Endpoint ids are unique across *all* fabrics in the OS process, so
/// higher layers may key per-process state by endpoint id even when many
/// simulated universes coexist (e.g. parallel tests).
static NEXT_ENDPOINT_ID: AtomicU64 = AtomicU64::new(1);

#[derive(Eq, PartialEq)]
struct Scheduled {
    deliver_at: Instant,
    seq: u64,
    env: Envelope,
}

// BinaryHeap is a max-heap; invert so the earliest delivery pops first.
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .deliver_at
            .cmp(&self.deliver_at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl PartialEq for Envelope {
    fn eq(&self, other: &Self) -> bool {
        self.src == other.src && self.dst == other.dst && self.payload == other.payload
    }
}
impl Eq for Envelope {}

struct PumpState {
    queue: BinaryHeap<Scheduled>,
    // Last scheduled delivery instant per (src, dst): preserves FIFO order
    // even when a small message's bandwidth delay would let it overtake a
    // large predecessor.
    pair_last: HashMap<(EndpointId, EndpointId), Instant>,
    seq: u64,
    shutdown: bool,
}

struct Pump {
    state: Mutex<PumpState>,
    cv: Condvar,
}

/// Hot-path counter handles resolved once at fabric construction; `send`
/// touches nothing but these atomics (plus the registry read lock it
/// already needed for routing).
struct FabricMetrics {
    msgs_on_node: obs::Counter,
    msgs_inter_node: obs::Counter,
    bytes_on_node: obs::Counter,
    bytes_inter_node: obs::Counter,
    msgs_delayed: obs::Counter,
    delay_ns_total: obs::Counter,
}

impl FabricMetrics {
    fn new(obs: &obs::Registry) -> Self {
        let c = |name| obs.counter("fabric", "fabric", name);
        Self {
            msgs_on_node: c("msgs_on_node"),
            msgs_inter_node: c("msgs_inter_node"),
            bytes_on_node: c("bytes_on_node"),
            bytes_inter_node: c("bytes_inter_node"),
            msgs_delayed: c("msgs_delayed"),
            delay_ns_total: c("delay_ns_total"),
        }
    }
}

/// Shared core of a fabric. Users interact through the cheap [`Fabric`]
/// handle.
pub struct FabricCore {
    registry: Registry,
    pump: Arc<Pump>,
    cost: CostModel,
    watchers: Mutex<Vec<Sender<FailureEvent>>>,
    obs: Arc<obs::Registry>,
    metrics: FabricMetrics,
    pump_thread: Mutex<Option<JoinHandle<()>>>,
}

impl FabricCore {
    /// The observability registry every layer running on this fabric
    /// shares.
    pub fn obs(&self) -> &Arc<obs::Registry> {
        &self.obs
    }

    pub(crate) fn send(&self, env: Envelope) -> Result<(), SendError> {
        if !self.cost.send_overhead.is_zero() {
            std::thread::sleep(self.cost.send_overhead);
        }

        let map = self.registry.map.read();
        let (src_node, dst_entry) = {
            let src_node = map.get(&env.src).map(|e| e.node);
            let dst = map.get(&env.dst);
            (src_node, dst)
        };
        // A killed sender may still be draining its own logic; treat an
        // unknown src (or dead dst) as off-node for costing purposes.
        let same_node = match (src_node, &dst_entry) {
            (Some(s), Some(d)) => s == d.node,
            _ => false,
        };
        // Accepted traffic is counted even when the destination died first
        // (the message was injected; it is dropped in flight).
        if same_node {
            self.metrics.msgs_on_node.inc();
            self.metrics.bytes_on_node.add(env.len() as u64);
        } else {
            self.metrics.msgs_inter_node.inc();
            self.metrics.bytes_inter_node.add(env.len() as u64);
        }
        let dst_entry = match dst_entry {
            Some(e) => e,
            None => return Err(SendError::PeerDead(env.dst)),
        };
        let delay = self.cost.delivery_delay(same_node, env.len());

        if delay.is_zero() {
            // Fast path: direct handoff, no pump involvement. Ordering per
            // pair holds because channel sends from one thread are ordered
            // and the pump path is never used for this pair under a
            // zero-delay model. (Mixed-path pairs are handled below by
            // forcing the pump when the pair has pending delayed traffic.)
            let has_pending = {
                let st = self.pump.state.lock();
                st.pair_last.contains_key(&(env.src, env.dst)) && !st.queue.is_empty()
            };
            if !has_pending {
                let _ = dst_entry.tx.send(env);
                return Ok(());
            }
        }

        self.metrics.msgs_delayed.inc();
        self.metrics.delay_ns_total.add(delay.as_nanos().min(u64::MAX as u128) as u64);
        let mut st = self.pump.state.lock();
        let now = Instant::now();
        let mut at = now + delay;
        if let Some(prev) = st.pair_last.get(&(env.src, env.dst)) {
            if at < *prev {
                at = *prev;
            }
        }
        st.pair_last.insert((env.src, env.dst), at);
        let seq = st.seq;
        st.seq += 1;
        st.queue.push(Scheduled { deliver_at: at, seq, env });
        drop(st);
        self.cv_notify();
        Ok(())
    }

    fn cv_notify(&self) {
        self.pump.cv.notify_one();
    }
}

/// A cheap, cloneable handle to a simulated fabric.
#[derive(Clone)]
pub struct Fabric(Arc<FabricCore>);

impl Fabric {
    /// Create a fabric with the given cost model and start its delivery pump.
    pub fn new(cost: CostModel) -> Self {
        let pump = Arc::new(Pump {
            state: Mutex::new(PumpState {
                queue: BinaryHeap::new(),
                pair_last: HashMap::new(),
                seq: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let obs = Arc::new(obs::Registry::new());
        let metrics = FabricMetrics::new(&obs);
        let core = Arc::new(FabricCore {
            registry: Registry {
                map: RwLock::new(HashMap::new()),
                dead: RwLock::new(HashSet::new()),
            },
            pump: pump.clone(),
            cost,
            watchers: Mutex::new(Vec::new()),
            obs,
            metrics,
            pump_thread: Mutex::new(None),
        });

        let pump_core = Arc::downgrade(&core);
        let handle = std::thread::Builder::new()
            .name("simnet-pump".into())
            .spawn(move || pump_loop(pump, pump_core))
            .expect("failed to spawn fabric pump thread");
        *core.pump_thread.lock() = Some(handle);
        Fabric(core)
    }

    /// Create a fabric with the default (Aries-like) cost model.
    pub fn with_defaults() -> Self {
        Self::new(CostModel::default())
    }

    pub(crate) fn from_core(core: Arc<FabricCore>) -> Self {
        Fabric(core)
    }

    /// The fabric's cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.0.cost
    }

    /// Register a new endpoint on `node` and return its mailbox.
    pub fn register(&self, node: NodeId) -> Endpoint {
        let id = EndpointId(NEXT_ENDPOINT_ID.fetch_add(1, Ordering::Relaxed));
        let (tx, rx) = unbounded();
        self.0.registry.map.write().insert(id, Entry { tx, node });
        Endpoint::new(id, node, rx, self.0.clone())
    }

    /// True if `id` refers to a live endpoint.
    pub fn is_alive(&self, id: EndpointId) -> bool {
        self.0.registry.map.read().contains_key(&id)
    }

    /// True if `id` was explicitly killed (as opposed to never registered).
    pub fn was_killed(&self, id: EndpointId) -> bool {
        self.0.registry.dead.read().contains(&id)
    }

    /// Node an endpoint lives on, if it is alive.
    pub fn node_of(&self, id: EndpointId) -> Option<NodeId> {
        self.0.registry.map.read().get(&id).map(|e| e.node)
    }

    /// Kill an endpoint: its mailbox is closed (readers see `Disconnected`
    /// after draining), future sends to it fail, and failure watchers are
    /// notified. Idempotent.
    pub fn kill(&self, id: EndpointId) {
        let removed = self.0.registry.map.write().remove(&id);
        let Some(entry) = removed else { return };
        self.0.registry.dead.write().insert(id);
        let event = FailureEvent { endpoint: id, node: entry.node };
        let mut watchers = self.0.watchers.lock();
        watchers.retain(|w| w.send(event).is_ok());
    }

    /// Subscribe to failure events.
    pub fn watch_failures(&self) -> FailureWatcher {
        let (tx, rx) = unbounded();
        self.0.watchers.lock().push(tx);
        FailureWatcher::new(rx)
    }

    /// The observability registry shared by every layer on this fabric.
    pub fn obs(&self) -> Arc<obs::Registry> {
        self.0.obs.clone()
    }

    /// Traffic counters, re-derived from the observability registry (the
    /// on-node/inter-node split is available there; this keeps the legacy
    /// aggregate view).
    pub fn stats(&self) -> FabricStats {
        let m = &self.0.metrics;
        FabricStats {
            msgs_sent: m.msgs_on_node.get() + m.msgs_inter_node.get(),
            bytes_sent: m.bytes_on_node.get() + m.bytes_inter_node.get(),
            msgs_delayed: m.msgs_delayed.get(),
        }
    }

    /// Block until the pump queue is empty (useful in tests).
    pub fn quiesce(&self) {
        loop {
            {
                let st = self.0.pump.state.lock();
                if st.queue.is_empty() {
                    return;
                }
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

impl Drop for FabricCore {
    fn drop(&mut self) {
        {
            let mut st = self.pump.state.lock();
            st.shutdown = true;
        }
        self.pump.cv.notify_all();
        if let Some(h) = self.pump_thread.lock().take() {
            let _ = h.join();
        }
    }
}

fn pump_loop(pump: Arc<Pump>, core: std::sync::Weak<FabricCore>) {
    loop {
        // Pull the next due message, or sleep until one is due.
        let env = {
            let mut st = pump.state.lock();
            loop {
                if st.shutdown {
                    return;
                }
                match st.queue.peek() {
                    None => {
                        pump.cv.wait(&mut st);
                    }
                    Some(next) => {
                        let now = Instant::now();
                        if next.deliver_at <= now {
                            let sched = st.queue.pop().expect("peeked");
                            break sched.env;
                        }
                        let at = next.deliver_at;
                        pump.cv.wait_until(&mut st, at);
                    }
                }
            }
        };
        // Deliver outside the lock. Dead destinations drop silently: the
        // failure event already told interested parties.
        if let Some(core) = core.upgrade() {
            let map = core.registry.map.read();
            if let Some(entry) = map.get(&env.dst) {
                let _ = entry.tx.send(env);
            }
        } else {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn payload(n: usize) -> Bytes {
        Bytes::from(vec![0xabu8; n])
    }

    #[test]
    fn direct_handoff_on_node() {
        let fabric = Fabric::new(CostModel::zero());
        let a = fabric.register(NodeId(0));
        let b = fabric.register(NodeId(0));
        a.send(b.id(), payload(8)).unwrap();
        let env = b.recv().unwrap();
        assert_eq!(env.src, a.id());
        assert_eq!(env.len(), 8);
        assert_eq!(fabric.stats().msgs_delayed, 0);
    }

    #[test]
    fn delayed_delivery_off_node() {
        let cost = CostModel {
            inter_node_latency: Duration::from_millis(5),
            ..CostModel::zero()
        };
        let fabric = Fabric::new(cost);
        let a = fabric.register(NodeId(0));
        let b = fabric.register(NodeId(1));
        let t0 = Instant::now();
        a.send(b.id(), payload(1)).unwrap();
        let _ = b.recv().unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(5));
        assert_eq!(fabric.stats().msgs_delayed, 1);
    }

    #[test]
    fn fifo_order_preserved_across_message_sizes() {
        // A big slow message followed by a tiny fast one must not reorder.
        let cost = CostModel {
            inter_node_latency: Duration::from_micros(100),
            inter_node_bandwidth: Some(1_000_000), // 1 MB/s: 100 KB takes 100 ms
            ..CostModel::zero()
        };
        let fabric = Fabric::new(cost);
        let a = fabric.register(NodeId(0));
        let b = fabric.register(NodeId(1));
        a.send(b.id(), payload(100_000)).unwrap();
        a.send(b.id(), payload(1)).unwrap();
        let first = b.recv().unwrap();
        let second = b.recv().unwrap();
        assert_eq!(first.len(), 100_000);
        assert_eq!(second.len(), 1);
    }

    #[test]
    fn kill_disconnects_receiver_and_fails_senders() {
        let fabric = Fabric::new(CostModel::zero());
        let a = fabric.register(NodeId(0));
        let b = fabric.register(NodeId(0));
        let mut watcher = fabric.watch_failures();
        fabric.kill(b.id());
        assert!(!fabric.is_alive(b.id()));
        assert!(fabric.was_killed(b.id()));
        assert_eq!(
            a.send(b.id(), payload(1)),
            Err(SendError::PeerDead(b.id()))
        );
        assert_eq!(b.recv(), Err(crate::endpoint::RecvError::Disconnected));
        let ev = watcher.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(ev.endpoint, b.id());
    }

    #[test]
    fn kill_is_idempotent() {
        let fabric = Fabric::new(CostModel::zero());
        let b = fabric.register(NodeId(0));
        fabric.kill(b.id());
        fabric.kill(b.id());
        assert!(fabric.was_killed(b.id()));
    }

    #[test]
    fn queued_messages_drain_before_disconnect() {
        let fabric = Fabric::new(CostModel::zero());
        let a = fabric.register(NodeId(0));
        let b = fabric.register(NodeId(0));
        a.send(b.id(), payload(3)).unwrap();
        fabric.kill(b.id());
        // The already-delivered message is still readable.
        assert_eq!(b.recv().unwrap().len(), 3);
        assert_eq!(b.recv(), Err(crate::endpoint::RecvError::Disconnected));
    }

    #[test]
    fn many_endpoints_many_messages() {
        let fabric = Fabric::new(CostModel::zero());
        let eps: Vec<_> = (0..16).map(|i| fabric.register(NodeId(i % 4))).collect();
        // Everyone sends to endpoint 0 (same node => still direct since zero model).
        for ep in &eps[1..] {
            for _ in 0..10 {
                ep.send(eps[0].id(), payload(4)).unwrap();
            }
        }
        let mut got = 0;
        while got < 150 {
            eps[0].recv_timeout(Duration::from_secs(1)).unwrap();
            got += 1;
        }
        assert_eq!(fabric.stats().msgs_sent, 150);
        assert_eq!(fabric.stats().bytes_sent, 600);
    }

    #[test]
    fn obs_splits_on_node_and_inter_node_traffic() {
        let fabric = Fabric::new(CostModel::zero());
        let a = fabric.register(NodeId(0));
        let b = fabric.register(NodeId(0));
        let c = fabric.register(NodeId(1));
        a.send(b.id(), payload(10)).unwrap();
        a.send(c.id(), payload(7)).unwrap();
        a.send(c.id(), payload(7)).unwrap();
        let obs = fabric.obs();
        assert_eq!(obs.counter_value("fabric", "fabric", "msgs_on_node"), 1);
        assert_eq!(obs.counter_value("fabric", "fabric", "bytes_on_node"), 10);
        assert_eq!(obs.counter_value("fabric", "fabric", "msgs_inter_node"), 2);
        assert_eq!(obs.counter_value("fabric", "fabric", "bytes_inter_node"), 14);
        // Legacy aggregate view stays consistent.
        assert_eq!(fabric.stats().msgs_sent, 3);
        assert_eq!(fabric.stats().bytes_sent, 24);
    }

    #[test]
    fn obs_accumulates_injected_delay() {
        let cost = CostModel {
            inter_node_latency: Duration::from_millis(2),
            ..CostModel::zero()
        };
        let fabric = Fabric::new(cost);
        let a = fabric.register(NodeId(0));
        let b = fabric.register(NodeId(1));
        a.send(b.id(), payload(1)).unwrap();
        let _ = b.recv().unwrap();
        let obs = fabric.obs();
        assert_eq!(obs.counter_value("fabric", "fabric", "msgs_delayed"), 1);
        assert_eq!(obs.counter_value("fabric", "fabric", "delay_ns_total"), 2_000_000);
    }

    #[test]
    fn stats_count_bytes() {
        let fabric = Fabric::new(CostModel::zero());
        let a = fabric.register(NodeId(0));
        let b = fabric.register(NodeId(0));
        a.send(b.id(), payload(123)).unwrap();
        assert_eq!(fabric.stats().bytes_sent, 123);
    }

    #[test]
    fn fabric_drop_terminates_pump() {
        let fabric = Fabric::new(CostModel::default());
        let a = fabric.register(NodeId(0));
        let b = fabric.register(NodeId(1));
        a.send(b.id(), payload(1)).unwrap();
        let _ = b.recv_timeout(Duration::from_secs(2)).unwrap();
        drop(a);
        drop(b);
        drop(fabric); // must not hang
    }

    #[test]
    fn send_to_unregistered_endpoint_fails() {
        let fabric = Fabric::new(CostModel::zero());
        let a = fabric.register(NodeId(0));
        assert!(a.send(EndpointId(9999), payload(1)).is_err());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use bytes::Bytes;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        /// Per-(src,dst) FIFO holds for any interleaving of message sizes,
        /// even when bandwidth delays differ per message.
        #[test]
        fn prop_fifo_order_any_sizes(sizes in proptest::collection::vec(0usize..40_000, 1..20)) {
            let cost = CostModel {
                inter_node_latency: Duration::from_micros(200),
                inter_node_bandwidth: Some(50_000_000), // 50 MB/s: size matters
                ..CostModel::zero()
            };
            let fabric = Fabric::new(cost);
            let a = fabric.register(NodeId(0));
            let b = fabric.register(NodeId(1));
            for (i, &len) in sizes.iter().enumerate() {
                let mut payload = vec![0u8; len.max(4)];
                payload[..4].copy_from_slice(&(i as u32).to_le_bytes());
                a.send(b.id(), Bytes::from(payload)).unwrap();
            }
            for i in 0..sizes.len() {
                let env = b.recv_timeout(Duration::from_secs(10)).expect("delivered");
                let tag = u32::from_le_bytes(env.payload[..4].try_into().unwrap());
                prop_assert_eq!(tag as usize, i, "message overtook a predecessor");
            }
        }

        /// Every sent message is delivered exactly once when the receiver
        /// outlives the senders (no loss, no duplication).
        #[test]
        fn prop_exactly_once_delivery(counts in proptest::collection::vec(1usize..12, 1..6)) {
            let fabric = Fabric::new(CostModel {
                inter_node_latency: Duration::from_micros(100),
                ..CostModel::zero()
            });
            let dst = fabric.register(NodeId(0));
            let total: usize = counts.iter().sum();
            let mut senders = Vec::new();
            for (s, &n) in counts.iter().enumerate() {
                let ep = fabric.register(NodeId(1 + s as u32));
                for k in 0..n {
                    let mut payload = vec![0u8; 8];
                    payload[..4].copy_from_slice(&(s as u32).to_le_bytes());
                    payload[4..].copy_from_slice(&(k as u32).to_le_bytes());
                    ep.send(dst.id(), Bytes::from(payload)).unwrap();
                }
                senders.push(ep);
            }
            let mut seen = std::collections::HashSet::new();
            for _ in 0..total {
                let env = dst.recv_timeout(Duration::from_secs(10)).expect("delivered");
                prop_assert!(seen.insert(env.payload.to_vec()), "duplicate delivery");
            }
            prop_assert!(dst.try_recv().is_err(), "spurious extra message");
        }
    }
}
