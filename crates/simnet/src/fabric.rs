//! The fabric: endpoint registry, cost-model application and the delayed
//! delivery pump.
//!
//! Zero-delay messages (the on-node shared-memory path under the default
//! cost model) are handed directly to the destination mailbox by the sending
//! thread — this is the fast path that the latency microbenchmarks (paper
//! Fig. 5) exercise. Delayed messages go through a single pump thread that
//! sleeps until each message's delivery time. Per-(src,dst) FIFO order is
//! enforced by never scheduling a delivery earlier than the pair's previous
//! one, matching the ordered-delivery guarantee MPI point-to-point relies on.

use crate::cost::CostModel;
use crate::endpoint::{Endpoint, EndpointId, SendError};
use crate::failure::{FailureEvent, FailureWatcher};
use crate::inject::{FaultAction, FaultHook, MsgView};
use crate::message::Envelope;
use crate::topology::NodeId;
use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Aggregate traffic counters for a fabric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Messages accepted by `send` (including ones later dropped because the
    /// destination died first).
    pub msgs_sent: u64,
    /// Payload bytes accepted by `send`.
    pub bytes_sent: u64,
    /// Messages that took the delayed (pump) path rather than direct handoff.
    pub msgs_delayed: u64,
}

struct Entry {
    tx: Sender<Envelope>,
    node: NodeId,
}

struct Registry {
    map: RwLock<HashMap<EndpointId, Entry>>,
    // Killed endpoints with the node they lived on, kept so late failure
    // watchers can be brought up to date (see `watch_failures`).
    dead: RwLock<HashMap<EndpointId, NodeId>>,
}

/// Endpoint ids are unique across *all* fabrics in the OS process, so
/// higher layers may key per-process state by endpoint id even when many
/// simulated universes coexist (e.g. parallel tests).
static NEXT_ENDPOINT_ID: AtomicU64 = AtomicU64::new(1);

#[derive(Eq, PartialEq)]
struct Scheduled {
    deliver_at: Instant,
    seq: u64,
    env: Envelope,
}

// BinaryHeap is a max-heap; invert so the earliest delivery pops first.
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .deliver_at
            .cmp(&self.deliver_at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl PartialEq for Envelope {
    fn eq(&self, other: &Self) -> bool {
        self.src == other.src && self.dst == other.dst && self.payload == other.payload
    }
}
impl Eq for Envelope {}

struct PumpState {
    queue: BinaryHeap<Scheduled>,
    // Last scheduled delivery instant per (src, dst): preserves FIFO order
    // even when a small message's bandwidth delay would let it overtake a
    // large predecessor.
    pair_last: HashMap<(EndpointId, EndpointId), Instant>,
    seq: u64,
    shutdown: bool,
}

struct Pump {
    state: Mutex<PumpState>,
    cv: Condvar,
}

/// Hot-path counter handles resolved once at fabric construction; `send`
/// touches nothing but these atomics (plus the registry read lock it
/// already needed for routing).
struct FabricMetrics {
    msgs_on_node: obs::Counter,
    msgs_inter_node: obs::Counter,
    bytes_on_node: obs::Counter,
    bytes_inter_node: obs::Counter,
    msgs_delayed: obs::Counter,
    delay_ns_total: obs::Counter,
    faults_dropped: obs::Counter,
    faults_delayed: obs::Counter,
    faults_duplicated: obs::Counter,
}

impl FabricMetrics {
    fn new(obs: &obs::Registry) -> Self {
        let c = |name| obs.counter("fabric", "fabric", name);
        Self {
            msgs_on_node: c("msgs_on_node"),
            msgs_inter_node: c("msgs_inter_node"),
            bytes_on_node: c("bytes_on_node"),
            bytes_inter_node: c("bytes_inter_node"),
            msgs_delayed: c("msgs_delayed"),
            delay_ns_total: c("delay_ns_total"),
            faults_dropped: c("faults_dropped"),
            faults_delayed: c("faults_delayed"),
            faults_duplicated: c("faults_duplicated"),
        }
    }
}

/// Shared core of a fabric. Users interact through the cheap [`Fabric`]
/// handle.
pub struct FabricCore {
    registry: Registry,
    pump: Arc<Pump>,
    cost: CostModel,
    watchers: Mutex<Vec<Sender<FailureEvent>>>,
    obs: Arc<obs::Registry>,
    metrics: FabricMetrics,
    pump_thread: Mutex<Option<JoinHandle<()>>>,
    // Fault injection: optional per-message hook plus the per-(src,dst)
    // sequence counters it keys decisions on. Counters advance only while a
    // hook is installed, so fault-free runs pay nothing but one RwLock read.
    hook: RwLock<Option<Arc<dyn FaultHook>>>,
    hook_seq: Mutex<HashMap<(EndpointId, EndpointId), u64>>,
    // Id of the first endpoint registered on this fabric (0 = none yet).
    // `NEXT_ENDPOINT_ID` is process-global, so raw ids shift between runs
    // when other fabrics coexist; ids relative to this base do not.
    base_endpoint: AtomicU64,
    // Logical-activity clock: ticks on every accepted send and every
    // completed delivery (including pump deliveries to dead destinations).
    // Protocol-level deadlines poll it together with `in_flight` to decide
    // "the fabric has quiesced" without consulting the wall clock.
    activity: AtomicU64,
}

impl FabricCore {
    /// The observability registry every layer running on this fabric
    /// shares.
    pub fn obs(&self) -> &Arc<obs::Registry> {
        &self.obs
    }

    pub(crate) fn send(&self, env: Envelope) -> Result<(), SendError> {
        self.activity.fetch_add(1, Ordering::Relaxed);
        if !self.cost.send_overhead.is_zero() {
            std::thread::sleep(self.cost.send_overhead);
        }

        let (src_node, dst_node) = {
            let map = self.registry.map.read();
            (map.get(&env.src).map(|e| e.node), map.get(&env.dst).map(|e| e.node))
        };

        // Consult the fault hook with no registry lock held: verdict kills
        // need the registry write lock.
        let hook = self.hook.read().clone();
        let action = match hook {
            None => FaultAction::Deliver,
            Some(h) => {
                let pair_seq = {
                    let mut seqs = self.hook_seq.lock();
                    let c = seqs.entry((env.src, env.dst)).or_insert(0);
                    let s = *c;
                    *c += 1;
                    s
                };
                let base = self.base_endpoint.load(Ordering::Relaxed);
                let view = MsgView {
                    src: env.src,
                    dst: env.dst,
                    rel_src: env.src.0.saturating_sub(base),
                    rel_dst: env.dst.0.saturating_sub(base),
                    src_node,
                    dst_node,
                    pair_seq,
                    len: env.len(),
                };
                let verdict = h.on_message(&view);
                // The hook runs on the *sending* thread, so the thread's
                // current span is exactly the operation this fault
                // interrupts (e.g. the fence a kill rule fired inside) —
                // annotate it before applying the verdict. Labels use
                // normalized endpoint ids so traces stay run-stable.
                match verdict.action {
                    FaultAction::Drop => {
                        obs::trace::fault_current("fault:drop");
                    }
                    FaultAction::Delay(_) => {
                        obs::trace::fault_current("fault:delay");
                    }
                    FaultAction::Duplicate => {
                        obs::trace::fault_current("fault:duplicate");
                    }
                    FaultAction::Deliver => {}
                }
                for id in verdict.kills {
                    obs::trace::fault_current(&format!(
                        "fault:kill(rel={})",
                        id.0.saturating_sub(base)
                    ));
                    self.kill(id);
                }
                verdict.action
            }
        };

        // A killed sender may still be draining its own logic; treat an
        // unknown src (or dead dst) as off-node for costing purposes.
        let same_node = matches!((src_node, dst_node), (Some(s), Some(d)) if s == d);
        // Accepted traffic is counted even when the destination died first
        // or the hook drops it (the message was injected; it is lost in
        // flight).
        if same_node {
            self.metrics.msgs_on_node.inc();
            self.metrics.bytes_on_node.add(env.len() as u64);
        } else {
            self.metrics.msgs_inter_node.inc();
            self.metrics.bytes_inter_node.add(env.len() as u64);
        }

        if action == FaultAction::Drop {
            self.metrics.faults_dropped.inc();
            return Ok(());
        }

        // Route. The destination is re-checked *after* hook kills so a
        // verdict that kills the destination claims this very message as its
        // first casualty.
        let dst_tx = match self.registry.map.read().get(&env.dst) {
            Some(e) => e.tx.clone(),
            None => return Err(SendError::PeerDead(env.dst)),
        };

        let (extra, copies) = match action {
            FaultAction::Delay(d) => {
                self.metrics.faults_delayed.inc();
                (d, 1u32)
            }
            FaultAction::Duplicate => {
                self.metrics.faults_duplicated.inc();
                (Duration::ZERO, 2)
            }
            _ => (Duration::ZERO, 1),
        };
        let delay = self.cost.delivery_delay(same_node, env.len()) + extra;

        if delay.is_zero() {
            // Fast path: direct handoff, no pump involvement. Ordering per
            // pair holds because channel sends from one thread are ordered
            // and the pump path is never used for this pair under a
            // zero-delay model. (Mixed-path pairs are handled below by
            // forcing the pump when the pair has pending delayed traffic.)
            let has_pending = {
                let st = self.pump.state.lock();
                st.pair_last.contains_key(&(env.src, env.dst)) && !st.queue.is_empty()
            };
            if !has_pending {
                for _ in 0..copies {
                    let _ = dst_tx.send(env.clone());
                    self.activity.fetch_add(1, Ordering::Relaxed);
                }
                return Ok(());
            }
        }

        self.metrics.msgs_delayed.inc();
        self.metrics.delay_ns_total.add(delay.as_nanos().min(u64::MAX as u128) as u64);
        let mut st = self.pump.state.lock();
        let now = Instant::now();
        let mut at = now + delay;
        if let Some(prev) = st.pair_last.get(&(env.src, env.dst)) {
            if at < *prev {
                at = *prev;
            }
        }
        st.pair_last.insert((env.src, env.dst), at);
        for _ in 0..copies {
            let seq = st.seq;
            st.seq += 1;
            st.queue.push(Scheduled { deliver_at: at, seq, env: env.clone() });
        }
        drop(st);
        self.cv_notify();
        Ok(())
    }

    pub(crate) fn kill(&self, id: EndpointId) {
        let removed = self.registry.map.write().remove(&id);
        let Some(entry) = removed else { return };
        let event = FailureEvent { endpoint: id, node: entry.node };
        // Take the watcher list lock *before* recording the death: a
        // concurrently subscribing watcher (which holds the same lock across
        // its replay) then sees this death exactly once — via replay or via
        // the live broadcast, never both.
        let mut watchers = self.watchers.lock();
        self.registry.dead.write().insert(id, entry.node);
        watchers.retain(|w| w.send(event).is_ok());
    }

    fn cv_notify(&self) {
        self.pump.cv.notify_one();
    }
}

/// A cheap, cloneable handle to a simulated fabric.
#[derive(Clone)]
pub struct Fabric(Arc<FabricCore>);

impl Fabric {
    /// Create a fabric with the given cost model and start its delivery pump.
    pub fn new(cost: CostModel) -> Self {
        let pump = Arc::new(Pump {
            state: Mutex::new(PumpState {
                queue: BinaryHeap::new(),
                pair_last: HashMap::new(),
                seq: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let obs = Arc::new(obs::Registry::new());
        let metrics = FabricMetrics::new(&obs);
        let core = Arc::new(FabricCore {
            registry: Registry {
                map: RwLock::new(HashMap::new()),
                dead: RwLock::new(HashMap::new()),
            },
            pump: pump.clone(),
            cost,
            watchers: Mutex::new(Vec::new()),
            obs,
            metrics,
            pump_thread: Mutex::new(None),
            hook: RwLock::new(None),
            hook_seq: Mutex::new(HashMap::new()),
            base_endpoint: AtomicU64::new(0),
            activity: AtomicU64::new(0),
        });

        let pump_core = Arc::downgrade(&core);
        let handle = std::thread::Builder::new()
            .name("simnet-pump".into())
            .spawn(move || pump_loop(pump, pump_core))
            .expect("failed to spawn fabric pump thread");
        *core.pump_thread.lock() = Some(handle);
        Fabric(core)
    }

    /// Create a fabric with the default (Aries-like) cost model.
    pub fn with_defaults() -> Self {
        Self::new(CostModel::default())
    }

    pub(crate) fn from_core(core: Arc<FabricCore>) -> Self {
        Fabric(core)
    }

    /// The fabric's cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.0.cost
    }

    /// Register a new endpoint on `node` and return its mailbox.
    pub fn register(&self, node: NodeId) -> Endpoint {
        let id = EndpointId(NEXT_ENDPOINT_ID.fetch_add(1, Ordering::Relaxed));
        let _ = self.0.base_endpoint.compare_exchange(
            0,
            id.0,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
        let (tx, rx) = unbounded();
        self.0.registry.map.write().insert(id, Entry { tx, node });
        Endpoint::new(id, node, rx, self.0.clone())
    }

    /// True if `id` refers to a live endpoint.
    pub fn is_alive(&self, id: EndpointId) -> bool {
        self.0.registry.map.read().contains_key(&id)
    }

    /// True if `id` was explicitly killed (as opposed to never registered).
    pub fn was_killed(&self, id: EndpointId) -> bool {
        self.0.registry.dead.read().contains_key(&id)
    }

    /// Node an endpoint lives on, if it is alive.
    pub fn node_of(&self, id: EndpointId) -> Option<NodeId> {
        self.0.registry.map.read().get(&id).map(|e| e.node)
    }

    /// Kill an endpoint: its mailbox is closed (readers see `Disconnected`
    /// after draining), future sends to it fail, and failure watchers are
    /// notified. Idempotent.
    pub fn kill(&self, id: EndpointId) {
        self.0.kill(id);
    }

    /// Subscribe to failure events.
    ///
    /// Deaths that happened *before* the subscription are replayed into the
    /// watcher immediately (in endpoint-id order — the fabric does not record
    /// kill order, and replay order must at least be deterministic), so a
    /// late subscriber converges on the same failure knowledge as one that
    /// watched from the start.
    pub fn watch_failures(&self) -> FailureWatcher {
        let (tx, rx) = unbounded();
        // Hold the watcher list lock across the replay: `kill` broadcasts
        // under the same lock, so a concurrent death is either already in
        // `dead` (replayed here) or broadcast after this watcher registers.
        let mut watchers = self.0.watchers.lock();
        let mut past: Vec<FailureEvent> = self
            .0
            .registry
            .dead
            .read()
            .iter()
            .map(|(ep, node)| FailureEvent { endpoint: *ep, node: *node })
            .collect();
        past.sort_by_key(|e| e.endpoint);
        for ev in past {
            let _ = tx.send(ev);
        }
        watchers.push(tx);
        FailureWatcher::new(rx)
    }

    /// Install (or replace) the fault-injection hook consulted for every
    /// subsequent send. Pass `None` to restore fault-free delivery.
    pub fn set_fault_hook(&self, hook: Option<Arc<dyn FaultHook>>) {
        *self.0.hook.write() = hook;
    }

    /// Id of the first endpoint registered on this fabric — the base that
    /// [`MsgView`](crate::inject::MsgView) normalizes `rel_src`/`rel_dst`
    /// against. Returns 0 before the first registration.
    pub fn base_endpoint_id(&self) -> u64 {
        self.0.base_endpoint.load(Ordering::Relaxed)
    }

    /// The observability registry shared by every layer on this fabric.
    pub fn obs(&self) -> Arc<obs::Registry> {
        self.0.obs.clone()
    }

    /// Traffic counters, re-derived from the observability registry (the
    /// on-node/inter-node split is available there; this keeps the legacy
    /// aggregate view).
    pub fn stats(&self) -> FabricStats {
        let m = &self.0.metrics;
        FabricStats {
            msgs_sent: m.msgs_on_node.get() + m.msgs_inter_node.get(),
            bytes_sent: m.bytes_on_node.get() + m.bytes_inter_node.get(),
            msgs_delayed: m.msgs_delayed.get(),
        }
    }

    /// Monotonic logical-activity clock: ticks on every accepted send and
    /// every completed delivery. Two equal readings with [`Fabric::in_flight`]
    /// at zero between them mean no message moved in the interval — the
    /// quiescence test protocol deadlines use instead of wall time.
    pub fn activity(&self) -> u64 {
        self.0.activity.load(Ordering::Relaxed)
    }

    /// Number of messages currently held by the delivery pump (scheduled,
    /// chaos-delayed or bandwidth-delayed, not yet handed to a mailbox).
    pub fn in_flight(&self) -> usize {
        self.0.pump.state.lock().queue.len()
    }

    /// Block until the pump queue is empty (useful in tests).
    pub fn quiesce(&self) {
        loop {
            {
                let st = self.0.pump.state.lock();
                if st.queue.is_empty() {
                    return;
                }
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

impl Drop for FabricCore {
    fn drop(&mut self) {
        {
            let mut st = self.pump.state.lock();
            st.shutdown = true;
        }
        self.pump.cv.notify_all();
        if let Some(h) = self.pump_thread.lock().take() {
            let _ = h.join();
        }
    }
}

fn pump_loop(pump: Arc<Pump>, core: std::sync::Weak<FabricCore>) {
    loop {
        // Pull the next due message, or sleep until one is due.
        let env = {
            let mut st = pump.state.lock();
            loop {
                if st.shutdown {
                    return;
                }
                match st.queue.peek() {
                    None => {
                        pump.cv.wait(&mut st);
                    }
                    Some(next) => {
                        let now = Instant::now();
                        if next.deliver_at <= now {
                            let sched = st.queue.pop().expect("peeked");
                            break sched.env;
                        }
                        let at = next.deliver_at;
                        pump.cv.wait_until(&mut st, at);
                    }
                }
            }
        };
        // Deliver outside the lock. Dead destinations drop silently: the
        // failure event already told interested parties. Either way the
        // message leaves the in-flight set, which is an activity tick.
        if let Some(core) = core.upgrade() {
            {
                let map = core.registry.map.read();
                if let Some(entry) = map.get(&env.dst) {
                    let _ = entry.tx.send(env);
                }
            }
            core.activity.fetch_add(1, Ordering::Relaxed);
        } else {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn payload(n: usize) -> Bytes {
        Bytes::from(vec![0xabu8; n])
    }

    #[test]
    fn direct_handoff_on_node() {
        let fabric = Fabric::new(CostModel::zero());
        let a = fabric.register(NodeId(0));
        let b = fabric.register(NodeId(0));
        a.send(b.id(), payload(8)).unwrap();
        let env = b.recv().unwrap();
        assert_eq!(env.src, a.id());
        assert_eq!(env.len(), 8);
        assert_eq!(fabric.stats().msgs_delayed, 0);
    }

    #[test]
    fn delayed_delivery_off_node() {
        let cost = CostModel {
            inter_node_latency: Duration::from_millis(5),
            ..CostModel::zero()
        };
        let fabric = Fabric::new(cost);
        let a = fabric.register(NodeId(0));
        let b = fabric.register(NodeId(1));
        let t0 = Instant::now();
        a.send(b.id(), payload(1)).unwrap();
        let _ = b.recv().unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(5));
        assert_eq!(fabric.stats().msgs_delayed, 1);
    }

    #[test]
    fn fifo_order_preserved_across_message_sizes() {
        // A big slow message followed by a tiny fast one must not reorder.
        let cost = CostModel {
            inter_node_latency: Duration::from_micros(100),
            inter_node_bandwidth: Some(1_000_000), // 1 MB/s: 100 KB takes 100 ms
            ..CostModel::zero()
        };
        let fabric = Fabric::new(cost);
        let a = fabric.register(NodeId(0));
        let b = fabric.register(NodeId(1));
        a.send(b.id(), payload(100_000)).unwrap();
        a.send(b.id(), payload(1)).unwrap();
        let first = b.recv().unwrap();
        let second = b.recv().unwrap();
        assert_eq!(first.len(), 100_000);
        assert_eq!(second.len(), 1);
    }

    #[test]
    fn kill_disconnects_receiver_and_fails_senders() {
        let fabric = Fabric::new(CostModel::zero());
        let a = fabric.register(NodeId(0));
        let b = fabric.register(NodeId(0));
        let mut watcher = fabric.watch_failures();
        fabric.kill(b.id());
        assert!(!fabric.is_alive(b.id()));
        assert!(fabric.was_killed(b.id()));
        assert_eq!(
            a.send(b.id(), payload(1)),
            Err(SendError::PeerDead(b.id()))
        );
        assert_eq!(b.recv(), Err(crate::endpoint::RecvError::Disconnected));
        let ev = watcher.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(ev.endpoint, b.id());
    }

    #[test]
    fn kill_is_idempotent() {
        let fabric = Fabric::new(CostModel::zero());
        let b = fabric.register(NodeId(0));
        fabric.kill(b.id());
        fabric.kill(b.id());
        assert!(fabric.was_killed(b.id()));
    }

    #[test]
    fn queued_messages_drain_before_disconnect() {
        let fabric = Fabric::new(CostModel::zero());
        let a = fabric.register(NodeId(0));
        let b = fabric.register(NodeId(0));
        a.send(b.id(), payload(3)).unwrap();
        fabric.kill(b.id());
        // The already-delivered message is still readable.
        assert_eq!(b.recv().unwrap().len(), 3);
        assert_eq!(b.recv(), Err(crate::endpoint::RecvError::Disconnected));
    }

    #[test]
    fn many_endpoints_many_messages() {
        let fabric = Fabric::new(CostModel::zero());
        let eps: Vec<_> = (0..16).map(|i| fabric.register(NodeId(i % 4))).collect();
        // Everyone sends to endpoint 0 (same node => still direct since zero model).
        for ep in &eps[1..] {
            for _ in 0..10 {
                ep.send(eps[0].id(), payload(4)).unwrap();
            }
        }
        let mut got = 0;
        while got < 150 {
            eps[0].recv_timeout(Duration::from_secs(1)).unwrap();
            got += 1;
        }
        assert_eq!(fabric.stats().msgs_sent, 150);
        assert_eq!(fabric.stats().bytes_sent, 600);
    }

    #[test]
    fn obs_splits_on_node_and_inter_node_traffic() {
        let fabric = Fabric::new(CostModel::zero());
        let a = fabric.register(NodeId(0));
        let b = fabric.register(NodeId(0));
        let c = fabric.register(NodeId(1));
        a.send(b.id(), payload(10)).unwrap();
        a.send(c.id(), payload(7)).unwrap();
        a.send(c.id(), payload(7)).unwrap();
        let obs = fabric.obs();
        assert_eq!(obs.counter_value("fabric", "fabric", "msgs_on_node"), 1);
        assert_eq!(obs.counter_value("fabric", "fabric", "bytes_on_node"), 10);
        assert_eq!(obs.counter_value("fabric", "fabric", "msgs_inter_node"), 2);
        assert_eq!(obs.counter_value("fabric", "fabric", "bytes_inter_node"), 14);
        // Legacy aggregate view stays consistent.
        assert_eq!(fabric.stats().msgs_sent, 3);
        assert_eq!(fabric.stats().bytes_sent, 24);
    }

    #[test]
    fn obs_accumulates_injected_delay() {
        let cost = CostModel {
            inter_node_latency: Duration::from_millis(2),
            ..CostModel::zero()
        };
        let fabric = Fabric::new(cost);
        let a = fabric.register(NodeId(0));
        let b = fabric.register(NodeId(1));
        a.send(b.id(), payload(1)).unwrap();
        let _ = b.recv().unwrap();
        let obs = fabric.obs();
        assert_eq!(obs.counter_value("fabric", "fabric", "msgs_delayed"), 1);
        assert_eq!(obs.counter_value("fabric", "fabric", "delay_ns_total"), 2_000_000);
    }

    #[test]
    fn sender_context_piggybacks_on_envelopes() {
        let fabric = Fabric::new(CostModel::zero());
        let a = fabric.register(NodeId(0));
        let b = fabric.register(NodeId(0));
        // No current span: nothing attached.
        a.send(b.id(), payload(1)).unwrap();
        assert!(b.recv().unwrap().ctx.is_none());
        // An entered span rides along automatically.
        let span = fabric.obs().span("p0", "op", "");
        let g = span.enter();
        a.send(b.id(), payload(1)).unwrap();
        drop(g);
        let env = b.recv().unwrap();
        assert_eq!(env.ctx.expect("context piggybacked").span, span.id());
        // An explicit context overrides the thread-current one.
        a.send_ctx(b.id(), payload(1), None).unwrap();
        assert!(b.recv().unwrap().ctx.is_none());
    }

    #[test]
    fn stats_count_bytes() {
        let fabric = Fabric::new(CostModel::zero());
        let a = fabric.register(NodeId(0));
        let b = fabric.register(NodeId(0));
        a.send(b.id(), payload(123)).unwrap();
        assert_eq!(fabric.stats().bytes_sent, 123);
    }

    #[test]
    fn fabric_drop_terminates_pump() {
        let fabric = Fabric::new(CostModel::default());
        let a = fabric.register(NodeId(0));
        let b = fabric.register(NodeId(1));
        a.send(b.id(), payload(1)).unwrap();
        let _ = b.recv_timeout(Duration::from_secs(2)).unwrap();
        drop(a);
        drop(b);
        drop(fabric); // must not hang
    }

    #[test]
    fn send_to_unregistered_endpoint_fails() {
        let fabric = Fabric::new(CostModel::zero());
        let a = fabric.register(NodeId(0));
        assert!(a.send(EndpointId(9999), payload(1)).is_err());
    }

    mod fault_hooks {
        use super::*;
        use crate::inject::{FaultAction, FaultHook, FaultVerdict, MsgView};

        /// Applies one fixed action to every message and records the views
        /// it was shown.
        struct FixedHook {
            action: FaultAction,
            kills: Mutex<Vec<EndpointId>>,
            seen: Mutex<Vec<MsgView>>,
        }

        impl FixedHook {
            fn new(action: FaultAction) -> Arc<Self> {
                Arc::new(Self {
                    action,
                    kills: Mutex::new(Vec::new()),
                    seen: Mutex::new(Vec::new()),
                })
            }
        }

        impl FaultHook for FixedHook {
            fn on_message(&self, msg: &MsgView) -> FaultVerdict {
                self.seen.lock().push(*msg);
                FaultVerdict { action: self.action, kills: self.kills.lock().drain(..).collect() }
            }
        }

        #[test]
        fn drop_verdict_loses_message_silently() {
            let fabric = Fabric::new(CostModel::zero());
            let a = fabric.register(NodeId(0));
            let b = fabric.register(NodeId(0));
            fabric.set_fault_hook(Some(FixedHook::new(FaultAction::Drop)));
            // The sender sees success — the loss is in flight.
            a.send(b.id(), payload(5)).unwrap();
            assert!(b.try_recv().is_err());
            assert_eq!(fabric.obs().counter_value("fabric", "fabric", "faults_dropped"), 1);
            fabric.set_fault_hook(None);
            a.send(b.id(), payload(5)).unwrap();
            assert_eq!(b.recv().unwrap().len(), 5);
        }

        #[test]
        fn delay_verdict_defers_delivery() {
            let fabric = Fabric::new(CostModel::zero());
            let a = fabric.register(NodeId(0));
            let b = fabric.register(NodeId(0));
            fabric.set_fault_hook(Some(FixedHook::new(FaultAction::Delay(
                Duration::from_millis(20),
            ))));
            let t0 = Instant::now();
            a.send(b.id(), payload(1)).unwrap();
            let _ = b.recv().unwrap();
            assert!(t0.elapsed() >= Duration::from_millis(20));
            assert_eq!(fabric.obs().counter_value("fabric", "fabric", "faults_delayed"), 1);
        }

        #[test]
        fn duplicate_verdict_delivers_twice_in_order() {
            let fabric = Fabric::new(CostModel::zero());
            let a = fabric.register(NodeId(0));
            let b = fabric.register(NodeId(0));
            fabric.set_fault_hook(Some(FixedHook::new(FaultAction::Duplicate)));
            a.send(b.id(), payload(9)).unwrap();
            assert_eq!(b.recv().unwrap().len(), 9);
            assert_eq!(b.recv().unwrap().len(), 9);
            assert_eq!(fabric.obs().counter_value("fabric", "fabric", "faults_duplicated"), 1);
        }

        #[test]
        fn kill_verdict_claims_the_triggering_message() {
            let fabric = Fabric::new(CostModel::zero());
            let a = fabric.register(NodeId(0));
            let b = fabric.register(NodeId(0));
            let hook = FixedHook::new(FaultAction::Deliver);
            hook.kills.lock().push(b.id());
            fabric.set_fault_hook(Some(hook));
            let mut w = fabric.watch_failures();
            // The hook kills b while this very message is in flight: the
            // sender gets PeerDead and watchers are notified.
            assert_eq!(a.send(b.id(), payload(1)), Err(SendError::PeerDead(b.id())));
            assert!(!fabric.is_alive(b.id()));
            assert_eq!(w.recv_timeout(Duration::from_secs(1)).unwrap().endpoint, b.id());
        }

        #[test]
        fn fault_verdicts_annotate_the_senders_current_span() {
            let fabric = Fabric::new(CostModel::zero());
            let a = fabric.register(NodeId(0));
            let b = fabric.register(NodeId(0));
            fabric.set_fault_hook(Some(FixedHook::new(FaultAction::Drop)));
            let span = fabric.obs().span("p0", "fence", "0");
            let g = span.enter();
            a.send(b.id(), payload(1)).unwrap();
            drop(g);
            span.end();
            fabric.set_fault_hook(None);
            let spans = fabric.obs().spans_snapshot();
            let rec = spans.iter().find(|s| s.name == "fence").unwrap();
            assert_eq!(rec.faults, vec!["fault:drop".to_string()]);
        }

        #[test]
        fn hook_sees_normalized_ids_and_pair_seq() {
            let fabric = Fabric::new(CostModel::zero());
            let a = fabric.register(NodeId(0));
            let b = fabric.register(NodeId(1));
            let hook = FixedHook::new(FaultAction::Deliver);
            fabric.set_fault_hook(Some(hook.clone()));
            a.send(b.id(), payload(1)).unwrap();
            a.send(b.id(), payload(2)).unwrap();
            b.send(a.id(), payload(3)).unwrap();
            let seen = hook.seen.lock();
            assert_eq!(seen.len(), 3);
            // a was registered first: rel ids are offsets from a.
            assert_eq!(seen[0].rel_src, 0);
            assert_eq!(seen[0].rel_dst, 1);
            assert_eq!(seen[0].pair_seq, 0);
            assert_eq!(seen[1].pair_seq, 1);
            // The reverse direction is a distinct pair with its own counter.
            assert_eq!(seen[2].pair_seq, 0);
            assert_eq!(seen[2].src_node, Some(NodeId(1)));
            assert_eq!(fabric.base_endpoint_id(), a.id().0);
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use bytes::Bytes;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        /// Per-(src,dst) FIFO holds for any interleaving of message sizes,
        /// even when bandwidth delays differ per message.
        #[test]
        fn prop_fifo_order_any_sizes(sizes in proptest::collection::vec(0usize..40_000, 1..20)) {
            let cost = CostModel {
                inter_node_latency: Duration::from_micros(200),
                inter_node_bandwidth: Some(50_000_000), // 50 MB/s: size matters
                ..CostModel::zero()
            };
            let fabric = Fabric::new(cost);
            let a = fabric.register(NodeId(0));
            let b = fabric.register(NodeId(1));
            for (i, &len) in sizes.iter().enumerate() {
                let mut payload = vec![0u8; len.max(4)];
                payload[..4].copy_from_slice(&(i as u32).to_le_bytes());
                a.send(b.id(), Bytes::from(payload)).unwrap();
            }
            for i in 0..sizes.len() {
                let env = b.recv_timeout(Duration::from_secs(10)).expect("delivered");
                let tag = u32::from_le_bytes(env.payload[..4].try_into().unwrap());
                prop_assert_eq!(tag as usize, i, "message overtook a predecessor");
            }
        }

        /// Every sent message is delivered exactly once when the receiver
        /// outlives the senders (no loss, no duplication).
        #[test]
        fn prop_exactly_once_delivery(counts in proptest::collection::vec(1usize..12, 1..6)) {
            let fabric = Fabric::new(CostModel {
                inter_node_latency: Duration::from_micros(100),
                ..CostModel::zero()
            });
            let dst = fabric.register(NodeId(0));
            let total: usize = counts.iter().sum();
            let mut senders = Vec::new();
            for (s, &n) in counts.iter().enumerate() {
                let ep = fabric.register(NodeId(1 + s as u32));
                for k in 0..n {
                    let mut payload = vec![0u8; 8];
                    payload[..4].copy_from_slice(&(s as u32).to_le_bytes());
                    payload[4..].copy_from_slice(&(k as u32).to_le_bytes());
                    ep.send(dst.id(), Bytes::from(payload)).unwrap();
                }
                senders.push(ep);
            }
            let mut seen = std::collections::HashSet::new();
            for _ in 0..total {
                let env = dst.recv_timeout(Duration::from_secs(10)).expect("delivered");
                prop_assert!(seen.insert(env.payload.to_vec()), "duplicate delivery");
            }
            prop_assert!(dst.try_recv().is_err(), "spurious extra message");
        }
    }
}
