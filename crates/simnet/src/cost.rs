//! Communication cost model.
//!
//! The model splits every message cost into three parts, mirroring the usual
//! latency/bandwidth (Hockney) model used to characterize interconnects such
//! as Aries:
//!
//! * a fixed **latency** per message, different for on-node (shared memory)
//!   and off-node (network) paths;
//! * a **per-byte** cost derived from the path bandwidth;
//! * an optional fixed **software overhead** applied on the *sender* side,
//!   modelling per-call injection cost.
//!
//! On the single-core CI host, injected delays are realized with
//! `thread::sleep`, whose practical granularity is tens of microseconds.
//! Default inter-node latencies are therefore scaled up relative to real
//! Aries (~1 µs) so that the *ratios* between experiment configurations stay
//! meaningful; see `SimTestbed` for the calibrated presets.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Latency/bandwidth cost model for the simulated fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Fixed delivery delay for messages between endpoints on the same node.
    /// Zero by default: the shared-memory fast path is a direct queue handoff.
    pub intra_node_latency: Duration,
    /// Fixed delivery delay for messages crossing nodes.
    pub inter_node_latency: Duration,
    /// Bandwidth of the on-node path, in bytes per second. `None` = infinite.
    pub intra_node_bandwidth: Option<u64>,
    /// Bandwidth of the off-node path, in bytes per second. `None` = infinite.
    pub inter_node_bandwidth: Option<u64>,
    /// Fixed sender-side software overhead per message (applied by the
    /// caller's thread, not the delivery pump).
    pub send_overhead: Duration,
    /// Per-message processing cost of a control-plane (PMIx server) RPC.
    ///
    /// The PMIx/PRRTE path is an event-looped, generality-first software
    /// stack — far slower per message than the MPI fast path. This is what
    /// makes PGCID acquisition "relatively expensive" (paper §III-B3).
    /// Applied by the PMIx server for each message it handles.
    pub rpc_processing: Duration,
    /// One-time cost charged when a simulated process is spawned.
    ///
    /// The paper attributes its high absolute `MPI_Init` times to binaries
    /// loaded from a slow NFS filesystem; this knob is the analog of that
    /// environmental cost. Default zero.
    pub spawn_cost: Duration,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            intra_node_latency: Duration::ZERO,
            inter_node_latency: Duration::from_micros(100),
            intra_node_bandwidth: None,
            inter_node_bandwidth: Some(8 * 1024 * 1024 * 1024), // ~8 GiB/s, Aries-class
            send_overhead: Duration::ZERO,
            rpc_processing: Duration::from_micros(100),
            spawn_cost: Duration::ZERO,
        }
    }
}

impl CostModel {
    /// A model with zero injected cost everywhere — useful for unit tests
    /// and for on-node microbenchmarks where real queue handoff time is the
    /// quantity of interest.
    pub fn zero() -> Self {
        Self {
            intra_node_latency: Duration::ZERO,
            inter_node_latency: Duration::ZERO,
            intra_node_bandwidth: None,
            inter_node_bandwidth: None,
            send_overhead: Duration::ZERO,
            rpc_processing: Duration::ZERO,
            spawn_cost: Duration::ZERO,
        }
    }

    /// Delivery delay for a message of `len` bytes between `src` and `dst`
    /// nodes (fixed latency plus serialization time at path bandwidth).
    pub fn delivery_delay(&self, same_node: bool, len: usize) -> Duration {
        let (lat, bw) = if same_node {
            (self.intra_node_latency, self.intra_node_bandwidth)
        } else {
            (self.inter_node_latency, self.inter_node_bandwidth)
        };
        lat + Self::serialization(bw, len)
    }

    fn serialization(bandwidth: Option<u64>, len: usize) -> Duration {
        match bandwidth {
            None => Duration::ZERO,
            Some(bps) => {
                debug_assert!(bps > 0);
                // nanos = len / bps * 1e9, computed without overflow for
                // realistic message sizes (< 2^53 bytes).
                let nanos = (len as u128 * 1_000_000_000u128) / bps as u128;
                Duration::from_nanos(nanos as u64)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_has_no_delay() {
        let m = CostModel::zero();
        assert_eq!(m.delivery_delay(true, 1 << 20), Duration::ZERO);
        assert_eq!(m.delivery_delay(false, 1 << 20), Duration::ZERO);
    }

    #[test]
    fn intra_node_default_is_free() {
        let m = CostModel::default();
        assert_eq!(m.delivery_delay(true, 4096), Duration::ZERO);
    }

    #[test]
    fn inter_node_delay_includes_latency_and_bandwidth() {
        let m = CostModel {
            inter_node_latency: Duration::from_micros(10),
            inter_node_bandwidth: Some(1_000_000_000), // 1 GB/s
            ..CostModel::zero()
        };
        // 1 MB at 1 GB/s = 1 ms serialization + 10 us latency
        let d = m.delivery_delay(false, 1_000_000);
        assert_eq!(d, Duration::from_micros(1010));
    }

    #[test]
    fn serialization_scales_linearly() {
        let m = CostModel {
            inter_node_bandwidth: Some(1_000_000), // 1 MB/s
            inter_node_latency: Duration::ZERO,
            ..CostModel::zero()
        };
        let d1 = m.delivery_delay(false, 1000);
        let d2 = m.delivery_delay(false, 2000);
        assert_eq!(d1 * 2, d2);
        assert_eq!(d1, Duration::from_millis(1));
    }

    #[test]
    fn zero_length_message_costs_only_latency() {
        let m = CostModel::default();
        assert_eq!(m.delivery_delay(false, 0), m.inter_node_latency);
    }
}
