//! Cluster topology description: nodes and slots.

use serde::{Deserialize, Serialize};

/// Identifier of a simulated compute node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "nid{:05}", self.0)
    }
}

/// Static description of a simulated cluster: how many nodes and how many
/// process slots (cores) each node offers.
///
/// This is the analog of the allocation a batch scheduler would hand to
/// PRRTE on the paper's Cray systems (Table I: 32-core Trinity nodes,
/// 28-core Jupiter nodes).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of compute nodes in the allocation.
    pub nodes: u32,
    /// Process slots (cores) per node.
    pub slots_per_node: u32,
}

impl ClusterSpec {
    /// A cluster of `nodes` nodes with `slots_per_node` slots each.
    pub fn new(nodes: u32, slots_per_node: u32) -> Self {
        assert!(nodes > 0, "cluster must have at least one node");
        assert!(slots_per_node > 0, "nodes must have at least one slot");
        Self { nodes, slots_per_node }
    }

    /// Total process slots in the allocation.
    pub fn total_slots(&self) -> u32 {
        self.nodes * self.slots_per_node
    }

    /// Iterate over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes).map(NodeId)
    }

    /// Map a linear slot index to its node, filling nodes in order
    /// ("by slot" mapping, PRRTE's default for `prun`).
    pub fn node_of_slot(&self, slot: u32) -> NodeId {
        assert!(slot < self.total_slots(), "slot {slot} out of range");
        NodeId(slot / self.slots_per_node)
    }

    /// Map a linear slot index to its node in round-robin ("by node")
    /// placement.
    pub fn node_of_slot_by_node(&self, slot: u32) -> NodeId {
        assert!(slot < self.total_slots(), "slot {slot} out of range");
        NodeId(slot % self.nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_mapping_by_slot_fills_nodes_in_order() {
        let spec = ClusterSpec::new(3, 4);
        assert_eq!(spec.total_slots(), 12);
        assert_eq!(spec.node_of_slot(0), NodeId(0));
        assert_eq!(spec.node_of_slot(3), NodeId(0));
        assert_eq!(spec.node_of_slot(4), NodeId(1));
        assert_eq!(spec.node_of_slot(11), NodeId(2));
    }

    #[test]
    fn slot_mapping_by_node_round_robins() {
        let spec = ClusterSpec::new(3, 4);
        assert_eq!(spec.node_of_slot_by_node(0), NodeId(0));
        assert_eq!(spec.node_of_slot_by_node(1), NodeId(1));
        assert_eq!(spec.node_of_slot_by_node(2), NodeId(2));
        assert_eq!(spec.node_of_slot_by_node(3), NodeId(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slot_out_of_range_panics() {
        ClusterSpec::new(2, 2).node_of_slot(4);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        ClusterSpec::new(0, 4);
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(7).to_string(), "nid00007");
    }
}
