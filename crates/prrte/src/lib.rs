//! # prrte — a PRRTE (PMIx Reference RunTime Environment) analog
//!
//! PRRTE's role in the paper's stack: start one daemon per node (each
//! hosting a PMIx server), map job processes onto nodes, launch them, and
//! provide the data-exchange services the PMIx collectives ride on.
//!
//! Here:
//!
//! * "starting the DVM" (`prte`) = [`Launcher::new`], which boots a
//!   [`pmix::PmixUniverse`] over a [`simnet::SimTestbed`];
//! * "launching a job" (`prun`) = [`Launcher::spawn`], which maps ranks to
//!   nodes per the [`JobSpec`], registers each process with PMIx, applies
//!   the testbed's spawn cost, and runs the process body on a dedicated
//!   thread with a [`ProcCtx`] in hand;
//! * custom process sets (`prun --pset`) = [`JobSpec::with_pset`].
//!
//! Multiple jobs can run concurrently in one universe (distinct
//! namespaces), which the ensemble / task-scheduler examples exercise.

pub mod ctx;
pub mod job;
pub mod launcher;

pub use ctx::ProcCtx;
pub use job::{JobSpec, MapBy};
pub use launcher::{JobCtl, JobHandle, Launcher};
