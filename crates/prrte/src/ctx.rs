//! The per-process context handed to each launched process body.

use pmix::{PmixClient, PmixUniverse, ProcId, Rank};
use simnet::{Endpoint, NodeId};
use std::sync::Arc;

/// Everything a simulated MPI process owns: its identity, its fabric
/// mailbox, its PMIx client and a handle to the universe.
///
/// The MPI library (`mpi-sessions`) is handed a `&ProcCtx` at
/// `MPI_Session_init` / `MPI_Init` time — the analog of an OS process's
/// ambient environment (PMIx connection info in the environment, the NIC).
pub struct ProcCtx {
    proc: ProcId,
    size: u32,
    endpoint: Arc<Endpoint>,
    pmix: PmixClient,
    universe: Arc<PmixUniverse>,
}

impl ProcCtx {
    pub(crate) fn new(
        proc: ProcId,
        size: u32,
        endpoint: Endpoint,
        pmix: PmixClient,
        universe: Arc<PmixUniverse>,
    ) -> Self {
        Self { proc, size, endpoint: Arc::new(endpoint), pmix, universe }
    }

    /// This process's PMIx identity.
    pub fn proc(&self) -> &ProcId {
        &self.proc
    }

    /// Rank within the job.
    pub fn rank(&self) -> Rank {
        self.proc.rank()
    }

    /// Number of processes in the job.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// The node this process runs on.
    pub fn node(&self) -> NodeId {
        self.endpoint.node()
    }

    /// The process's fabric mailbox (the MPI progress engine drains this).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Shared handle to the mailbox, for subsystems (like the MPI progress
    /// engine) that must co-own it.
    pub fn endpoint_arc(&self) -> Arc<Endpoint> {
        self.endpoint.clone()
    }

    /// The process's PMIx client.
    pub fn pmix(&self) -> &PmixClient {
        &self.pmix
    }

    /// The universe (escape hatch: fault injection, registry access).
    pub fn universe(&self) -> &Arc<PmixUniverse> {
        &self.universe
    }
}

impl std::fmt::Debug for ProcCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcCtx")
            .field("proc", &self.proc)
            .field("size", &self.size)
            .field("node", &self.endpoint.node())
            .finish()
    }
}
