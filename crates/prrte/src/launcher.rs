//! The launcher: `prte` (DVM boot) + `prun` (job launch).

use crate::ctx::ProcCtx;
use crate::job::{JobSpec, MapBy};
use pmix::{PmixUniverse, ProcId, Rank};
use simnet::SimTestbed;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

static JOB_COUNTER: AtomicU64 = AtomicU64::new(1);

/// A booted distributed virtual machine: daemons (PMIx servers) running on
/// every node of the testbed, ready to launch jobs.
pub struct Launcher {
    universe: Arc<PmixUniverse>,
}

impl Launcher {
    /// Boot the DVM over `testbed` (the `prte` analog).
    pub fn new(testbed: SimTestbed) -> Self {
        Self { universe: PmixUniverse::new(testbed) }
    }

    /// Wrap an existing universe (sharing a DVM between launchers).
    pub fn over(universe: Arc<PmixUniverse>) -> Self {
        Self { universe }
    }

    /// The universe this launcher drives.
    pub fn universe(&self) -> &Arc<PmixUniverse> {
        &self.universe
    }

    /// Launch `spec.np` processes running `body` (the `prun` analog).
    ///
    /// Each process gets a dedicated OS thread and a [`ProcCtx`]. Returns a
    /// [`JobHandle`]; the job's namespace is fresh and unique.
    pub fn spawn<T, F>(&self, spec: JobSpec, body: F) -> JobHandle<T>
    where
        T: Send + 'static,
        F: Fn(ProcCtx) -> T + Send + Sync + 'static,
    {
        let nspace = format!("prterun-{}", JOB_COUNTER.fetch_add(1, Ordering::Relaxed));
        self.spawn_named(&nspace, spec, body)
    }

    /// [`Launcher::spawn`] with an explicit namespace (tests).
    pub fn spawn_named<T, F>(&self, nspace: &str, spec: JobSpec, body: F) -> JobHandle<T>
    where
        T: Send + 'static,
        F: Fn(ProcCtx) -> T + Send + Sync + 'static,
    {
        let cluster = self.universe.testbed().cluster.clone();
        let total = cluster.total_slots();
        assert!(
            spec.np <= total,
            "job of {} processes does not fit allocation of {} slots",
            spec.np,
            total
        );
        let spawn_cost = self.universe.testbed().cost.spawn_cost;
        let obs = self.universe.fabric().obs();
        let map_ns = obs.histogram("launcher", "prrte", "map_ns");
        let spawn_ns = obs.histogram("launcher", "prrte", "spawn_ns");
        obs.counter("launcher", "prrte", "jobs_launched").inc();
        obs.counter("launcher", "prrte", "procs_launched")
            .add(spec.np as u64);

        // Root span of the job's trace: every rank's `rank.main` span is
        // parented here, so the whole job assembles into one span DAG.
        // Ended when the job is joined.
        let mut launch = obs.span_with_parent("launcher", "launch", nspace, None);
        launch.add_work(spec.np as u64);
        let launch_ctx = launch.context();

        // Map ranks to nodes and register everything *before* any process
        // starts: the job map must be complete when clients initialize.
        let t_map = std::time::Instant::now();
        let mut map_span =
            obs.span_with_parent("launcher", "launch.map", nspace, Some(launch_ctx));
        map_span.add_work(spec.np as u64);
        let mut endpoints = Vec::with_capacity(spec.np as usize);
        for rank in 0..spec.np {
            let node = match spec.map_by {
                MapBy::Slot => cluster.node_of_slot(rank),
                MapBy::Node => cluster.node_of_slot_by_node(rank),
            };
            let ep = self.universe.fabric().register(node);
            let proc = ProcId::new(nspace, rank);
            self.universe.register_proc(proc, &ep);
            endpoints.push(ep);
        }
        for (name, ranks) in &spec.psets {
            let members: Vec<ProcId> =
                ranks.iter().map(|r| ProcId::new(nspace, *r)).collect();
            self.universe.registry().define_pset(name, members);
        }
        map_span.end();
        map_ns.record(t_map.elapsed());
        obs.event(
            "launcher",
            "prrte",
            "launch.mapped",
            vec![
                ("nspace".into(), nspace.into()),
                ("np".into(), (spec.np as u64).into()),
            ],
        );

        let t_spawn = std::time::Instant::now();
        let mut spawn_span =
            obs.span_with_parent("launcher", "launch.spawn", nspace, Some(launch_ctx));
        spawn_span.add_work(spec.np as u64);
        let body = Arc::new(body);
        let mut threads = Vec::with_capacity(spec.np as usize);
        for (rank, ep) in endpoints.into_iter().enumerate() {
            let proc = ProcId::new(nspace, rank as Rank);
            let universe = self.universe.clone();
            let body = body.clone();
            let np = spec.np;
            let handle = std::thread::Builder::new()
                .name(format!("{proc}"))
                .spawn(move || {
                    if !spawn_cost.is_zero() {
                        std::thread::sleep(spawn_cost);
                    }
                    // The rank's root span: ambient for the whole body, so
                    // every span the rank opens lands in the job's trace.
                    let rank_span = universe.fabric().obs().span_with_parent(
                        &proc.to_string(),
                        "rank.main",
                        "",
                        Some(launch_ctx),
                    );
                    obs::trace::set_ambient(&rank_span);
                    let pmix = universe
                        .client_for(&proc)
                        .expect("process registered before spawn");
                    let ctx = ProcCtx::new(proc, np, ep, pmix, universe);
                    let out = body(ctx);
                    obs::trace::clear_ambient();
                    rank_span.end();
                    out
                })
                .expect("spawn process thread");
            threads.push(handle);
        }
        spawn_span.end();
        spawn_ns.record(t_spawn.elapsed());
        obs.event(
            "launcher",
            "prrte",
            "launch.spawned",
            vec![("nspace".into(), nspace.into())],
        );
        JobHandle {
            nspace: nspace.to_owned(),
            universe: self.universe.clone(),
            threads,
            launch: Some(launch),
        }
    }
}

/// A running job: join it to collect per-rank results.
pub struct JobHandle<T> {
    nspace: String,
    universe: Arc<PmixUniverse>,
    threads: Vec<JoinHandle<T>>,
    /// The job's root trace span; ended when the job is joined.
    launch: Option<obs::Span>,
}

impl<T> JobHandle<T> {
    /// The job's namespace.
    pub fn nspace(&self) -> &str {
        &self.nspace
    }

    /// Kill one rank of this job (fault injection).
    pub fn kill_rank(&self, rank: Rank) {
        let proc = ProcId::new(self.nspace.as_str(), rank);
        let _ = self.universe.kill_proc(&proc);
    }

    /// Wait for every rank; returns rank-ordered results, or the panic
    /// message of the first rank that panicked.
    pub fn join(self) -> Result<Vec<T>, String> {
        let mut out = Vec::with_capacity(self.threads.len());
        let mut first_panic = None;
        for (rank, t) in self.threads.into_iter().enumerate() {
            match t.join() {
                Ok(v) => out.push(v),
                Err(e) => {
                    if first_panic.is_none() {
                        let msg = e
                            .downcast_ref::<String>()
                            .cloned()
                            .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                            .unwrap_or_else(|| "non-string panic payload".into());
                        first_panic = Some(format!("rank {rank} panicked: {msg}"));
                    }
                }
            }
        }
        // The job is done: close its root span and retire its namespace.
        if let Some(span) = self.launch {
            span.end();
        }
        self.universe.registry().deregister_namespace(&self.nspace);
        match first_panic {
            None => Ok(out),
            Some(p) => Err(p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmix::PmixError;
    use simnet::SimTestbed;
    use std::time::Duration;

    #[test]
    fn spawn_runs_every_rank_once() {
        let launcher = Launcher::new(SimTestbed::tiny(2, 2));
        let out = launcher
            .spawn(JobSpec::new(4), |ctx| (ctx.rank(), ctx.size()))
            .join()
            .unwrap();
        assert_eq!(out, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn map_by_slot_packs_nodes() {
        let launcher = Launcher::new(SimTestbed::tiny(2, 2));
        let nodes = launcher
            .spawn(JobSpec::new(4), |ctx| ctx.node().0)
            .join()
            .unwrap();
        assert_eq!(nodes, vec![0, 0, 1, 1]);
    }

    #[test]
    fn map_by_node_round_robins() {
        let launcher = Launcher::new(SimTestbed::tiny(2, 2));
        let nodes = launcher
            .spawn(JobSpec::new(4).map_by(MapBy::Node), |ctx| ctx.node().0)
            .join()
            .unwrap();
        assert_eq!(nodes, vec![0, 1, 0, 1]);
    }

    #[test]
    fn custom_psets_are_queryable() {
        let launcher = Launcher::new(SimTestbed::tiny(1, 4));
        let spec = JobSpec::new(4).with_pset("app://evens", vec![0, 2]);
        let names = launcher
            .spawn(spec, |ctx| {
                let names = ctx.pmix().query_pset_names();
                let members = ctx.pmix().query_pset_membership("app://evens").unwrap();
                (names, members.len())
            })
            .join()
            .unwrap();
        for (names, count) in names {
            assert!(names.contains(&"app://evens".to_string()));
            assert_eq!(count, 2);
        }
    }

    #[test]
    fn pmix_fence_works_across_job() {
        let launcher = Launcher::new(SimTestbed::tiny(2, 2));
        let out = launcher
            .spawn(JobSpec::new(4), |ctx| {
                let members: Vec<ProcId> = (0..ctx.size())
                    .map(|r| ProcId::new(ctx.proc().nspace(), r))
                    .collect();
                ctx.pmix().fence(&members, false).unwrap();
                ctx.rank()
            })
            .join()
            .unwrap();
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn two_concurrent_jobs_do_not_interfere() {
        let launcher = Launcher::new(SimTestbed::tiny(2, 4));
        let j1 = launcher.spawn(JobSpec::new(3), |ctx| {
            let members: Vec<ProcId> = (0..ctx.size())
                .map(|r| ProcId::new(ctx.proc().nspace(), r))
                .collect();
            ctx.pmix().fence(&members, false).unwrap();
            ctx.proc().nspace().to_owned()
        });
        let j2 = launcher.spawn(JobSpec::new(2), |ctx| {
            let members: Vec<ProcId> = (0..ctx.size())
                .map(|r| ProcId::new(ctx.proc().nspace(), r))
                .collect();
            ctx.pmix().fence(&members, false).unwrap();
            ctx.proc().nspace().to_owned()
        });
        let n1 = j1.join().unwrap();
        let n2 = j2.join().unwrap();
        assert_ne!(n1[0], n2[0]);
    }

    #[test]
    fn panic_in_rank_is_reported() {
        let launcher = Launcher::new(SimTestbed::tiny(1, 2));
        let res = launcher
            .spawn(JobSpec::new(2), |ctx| {
                if ctx.rank() == 1 {
                    panic!("deliberate");
                }
                ctx.rank()
            })
            .join();
        let err = res.unwrap_err();
        assert!(err.contains("rank 1"));
        assert!(err.contains("deliberate"));
    }

    #[test]
    fn kill_rank_fails_collectives_of_survivors() {
        let launcher = Launcher::new(SimTestbed::tiny(2, 1));
        let handle = launcher.spawn(JobSpec::new(2), |ctx| {
            if ctx.rank() == 1 {
                // Do no PMIx work; linger briefly so the kill lands while
                // rank 0 is blocked in the fence.
                std::thread::sleep(Duration::from_secs(2));
                return Ok(());
            }
            let members: Vec<ProcId> = (0..ctx.size())
                .map(|r| ProcId::new(ctx.proc().nspace(), r))
                .collect();
            ctx.pmix().fence_timeout(&members, false, Duration::from_secs(10))
        });
        std::thread::sleep(Duration::from_millis(200));
        handle.kill_rank(1);
        let joined = handle.join().unwrap();
        match &joined[0] {
            Err(PmixError::ProcTerminated(p)) => assert_eq!(p.rank(), 1),
            other => panic!("expected ProcTerminated, got {other:?}"),
        }
    }
}
