//! The launcher: `prte` (DVM boot) + `prun` (job launch).

use crate::ctx::ProcCtx;
use crate::job::{JobSpec, MapBy};
use parking_lot::Mutex;
use pmix::{PmixUniverse, ProcId, Rank};
use simnet::SimTestbed;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

static JOB_COUNTER: AtomicU64 = AtomicU64::new(1);

/// A booted distributed virtual machine: daemons (PMIx servers) running on
/// every node of the testbed, ready to launch jobs.
pub struct Launcher {
    universe: Arc<PmixUniverse>,
}

impl Launcher {
    /// Boot the DVM over `testbed` (the `prte` analog).
    pub fn new(testbed: SimTestbed) -> Self {
        Self { universe: PmixUniverse::new(testbed) }
    }

    /// Wrap an existing universe (sharing a DVM between launchers).
    pub fn over(universe: Arc<PmixUniverse>) -> Self {
        Self { universe }
    }

    /// The universe this launcher drives.
    pub fn universe(&self) -> &Arc<PmixUniverse> {
        &self.universe
    }

    /// Launch `spec.np` processes running `body` (the `prun` analog).
    ///
    /// Each process gets a dedicated OS thread and a [`ProcCtx`]. Returns a
    /// [`JobHandle`]; the job's namespace is fresh and unique.
    pub fn spawn<T, F>(&self, spec: JobSpec, body: F) -> JobHandle<T>
    where
        T: Send + 'static,
        F: Fn(ProcCtx) -> T + Send + Sync + 'static,
    {
        let nspace = format!("prterun-{}", JOB_COUNTER.fetch_add(1, Ordering::Relaxed));
        self.spawn_named(&nspace, spec, body)
    }

    /// [`Launcher::spawn`] with an explicit namespace (tests).
    pub fn spawn_named<T, F>(&self, nspace: &str, spec: JobSpec, body: F) -> JobHandle<T>
    where
        T: Send + 'static,
        F: Fn(ProcCtx) -> T + Send + Sync + 'static,
    {
        let cluster = self.universe.testbed().cluster.clone();
        let total = cluster.total_slots();
        assert!(
            spec.np <= total,
            "job of {} processes does not fit allocation of {} slots",
            spec.np,
            total
        );
        let spawn_cost = self.universe.testbed().cost.spawn_cost;
        let obs = self.universe.fabric().obs();
        let map_ns = obs.histogram("launcher", "prrte", "map_ns");
        let spawn_ns = obs.histogram("launcher", "prrte", "spawn_ns");
        obs.counter("launcher", "prrte", "jobs_launched").inc();
        obs.counter("launcher", "prrte", "procs_launched")
            .add(spec.np as u64);

        // Root span of the job's trace: every rank's `rank.main` span is
        // parented here, so the whole job assembles into one span DAG.
        // Ended when the job is joined.
        let mut launch = obs.span_with_parent("launcher", "launch", nspace, None);
        launch.add_work(spec.np as u64);
        let launch_ctx = launch.context();

        // Map ranks to nodes and register everything *before* any process
        // starts: the job map must be complete when clients initialize.
        let t_map = std::time::Instant::now();
        let mut map_span =
            obs.span_with_parent("launcher", "launch.map", nspace, Some(launch_ctx));
        map_span.add_work(spec.np as u64);
        let mut endpoints = Vec::with_capacity(spec.np as usize);
        for rank in 0..spec.np {
            let node = match spec.map_by {
                MapBy::Slot => cluster.node_of_slot(rank),
                MapBy::Node => cluster.node_of_slot_by_node(rank),
            };
            let ep = self.universe.fabric().register(node);
            let proc = ProcId::new(nspace, rank);
            self.universe.register_proc(proc, &ep);
            endpoints.push(ep);
        }
        for (name, ranks) in &spec.psets {
            let members: Vec<ProcId> =
                ranks.iter().map(|r| ProcId::new(nspace, *r)).collect();
            self.universe.registry().define_pset(name, members);
        }
        map_span.end();
        map_ns.record(t_map.elapsed());
        obs.event(
            "launcher",
            "prrte",
            "launch.mapped",
            vec![
                ("nspace".into(), nspace.into()),
                ("np".into(), (spec.np as u64).into()),
            ],
        );

        let t_spawn = std::time::Instant::now();
        let mut spawn_span =
            obs.span_with_parent("launcher", "launch.spawn", nspace, Some(launch_ctx));
        spawn_span.add_work(spec.np as u64);
        let inner = Arc::new(JobInner {
            nspace: nspace.to_owned(),
            universe: self.universe.clone(),
            body: Arc::new(body),
            map_by: spec.map_by,
            spawn_cost,
            launch_ctx,
            threads: Mutex::new(Vec::with_capacity(spec.np as usize)),
            next_rank: AtomicU32::new(spec.np),
        });
        for (rank, ep) in endpoints.into_iter().enumerate() {
            inner.spawn_rank_thread(rank as Rank, ep, spec.np);
        }
        spawn_span.end();
        spawn_ns.record(t_spawn.elapsed());
        obs.event(
            "launcher",
            "prrte",
            "launch.spawned",
            vec![("nspace".into(), nspace.into())],
        );
        JobHandle { inner, launch: Some(launch) }
    }
}

/// State shared between a [`JobHandle`] and the [`JobCtl`]s cloned off it:
/// everything needed to start more rank threads after launch.
struct JobInner<T> {
    nspace: String,
    universe: Arc<PmixUniverse>,
    body: Arc<dyn Fn(ProcCtx) -> T + Send + Sync>,
    map_by: MapBy,
    spawn_cost: Duration,
    launch_ctx: obs::TraceContext,
    /// Live rank threads, keyed by rank so retire can drain a subset.
    threads: Mutex<Vec<(Rank, JoinHandle<T>)>>,
    /// Next rank id to assign when the job grows (dense numbering).
    next_rank: AtomicU32,
}

impl<T: Send + 'static> JobInner<T> {
    /// Start one rank thread and record its handle.
    fn spawn_rank_thread(self: &Arc<Self>, rank: Rank, ep: simnet::Endpoint, np: u32) {
        let proc = ProcId::new(self.nspace.as_str(), rank);
        let universe = self.universe.clone();
        let body = self.body.clone();
        let spawn_cost = self.spawn_cost;
        let launch_ctx = self.launch_ctx;
        let handle = std::thread::Builder::new()
            .name(format!("{proc}"))
            .spawn(move || {
                if !spawn_cost.is_zero() {
                    std::thread::sleep(spawn_cost);
                }
                // The rank's root span: ambient for the whole body, so
                // every span the rank opens lands in the job's trace.
                let rank_span = universe.fabric().obs().span_with_parent(
                    &proc.to_string(),
                    "rank.main",
                    "",
                    Some(launch_ctx),
                );
                obs::trace::set_ambient(&rank_span);
                let pmix = universe
                    .client_for(&proc)
                    .expect("process registered before spawn");
                let ctx = ProcCtx::new(proc, np, ep, pmix, universe);
                let out = body(ctx);
                obs::trace::clear_ambient();
                rank_span.end();
                out
            })
            .expect("spawn process thread");
        self.threads.lock().push((rank, handle));
    }
}

fn panic_msg(e: Box<dyn std::any::Any + Send>) -> String {
    e.downcast_ref::<String>()
        .cloned()
        .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// A cloneable control handle for a running job: grow it with
/// [`JobCtl::spawn_ranks`], drain ranks gracefully with
/// [`JobCtl::retire_ranks`]. The runtime analog of `prun --dvm` attach.
pub struct JobCtl<T> {
    inner: Arc<JobInner<T>>,
}

impl<T> Clone for JobCtl<T> {
    fn clone(&self) -> Self {
        Self { inner: self.inner.clone() }
    }
}

impl<T: Send + 'static> JobCtl<T> {
    /// The job's namespace.
    pub fn nspace(&self) -> &str {
        &self.inner.nspace
    }

    /// Start `count` new ranks, continuing the job's dense rank numbering.
    ///
    /// The new processes are mapped with the job's original policy
    /// (wrapping over the allocation when ranks exceed slots), registered
    /// with PMIx, and — if `pset` is given — appended to that pset's
    /// membership *before* their bodies start, so the membership-change
    /// event and the newcomers' own registry reads agree on one epoch.
    /// Returns the new rank ids.
    pub fn spawn_ranks(&self, count: u32, pset: Option<&str>) -> Vec<Rank> {
        let inner = &self.inner;
        let universe = &inner.universe;
        let cluster = universe.testbed().cluster.clone();
        let total = cluster.total_slots();
        let obs = universe.fabric().obs();
        let start = inner.next_rank.fetch_add(count, Ordering::SeqCst);
        let np_now = start + count;
        let mut span =
            obs.span_with_parent("launcher", "job.grow", &inner.nspace, Some(inner.launch_ctx));
        span.add_work(count as u64);
        let grow_ctx = span.context();
        let mut new_ranks = Vec::with_capacity(count as usize);
        let mut endpoints = Vec::with_capacity(count as usize);
        for rank in start..start + count {
            let slot = rank % total;
            let node = match inner.map_by {
                MapBy::Slot => cluster.node_of_slot(slot),
                MapBy::Node => cluster.node_of_slot_by_node(slot),
            };
            let ep = universe.fabric().register(node);
            let proc = ProcId::new(inner.nspace.as_str(), rank);
            universe.register_proc(proc, &ep);
            endpoints.push((rank, ep));
            new_ranks.push(rank);
        }
        if let Some(name) = pset {
            let registry = universe.registry();
            let (_, old) = registry
                .pset_members_versioned(name)
                .expect("spawn_ranks into unknown pset");
            let mut members = old.as_ref().clone();
            members.extend(new_ranks.iter().map(|r| ProcId::new(inner.nspace.as_str(), *r)));
            registry
                .update_pset_membership(name, members, Some(grow_ctx))
                .expect("spawn_ranks into unknown pset");
        }
        for (rank, ep) in endpoints {
            inner.spawn_rank_thread(rank, ep, np_now);
        }
        obs.counter("launcher", "prrte", "procs_launched").add(count as u64);
        obs.counter("launcher", "prrte", "ranks_grown").add(count as u64);
        span.end();
        obs.event(
            "launcher",
            "prrte",
            "job.grow",
            vec![
                ("nspace".into(), inner.nspace.as_str().into()),
                ("count".into(), (count as u64).into()),
                ("np".into(), (np_now as u64).into()),
            ],
        );
        new_ranks
    }

    /// Gracefully drain `ranks`: shrink `pset` so the victims (and every
    /// subscriber) observe the membership change, wait for their bodies to
    /// return, then deregister them from the namespace.
    ///
    /// Unlike [`JobHandle::kill_rank`] this produces **no** failure event —
    /// the fabric endpoint is never killed — so peers must rely on the pset
    /// change, not death notification, to stop addressing retired ranks.
    /// Returns the retired ranks' results.
    pub fn retire_ranks(&self, ranks: &[Rank], pset: Option<&str>) -> Result<Vec<T>, String> {
        let inner = &self.inner;
        let universe = &inner.universe;
        let obs = universe.fabric().obs();
        let mut span = obs.span_with_parent(
            "launcher",
            "job.shrink",
            &inner.nspace,
            Some(inner.launch_ctx),
        );
        span.add_work(ranks.len() as u64);
        let shrink_ctx = span.context();
        let retired: Vec<ProcId> = ranks
            .iter()
            .map(|r| ProcId::new(inner.nspace.as_str(), *r))
            .collect();
        if let Some(name) = pset {
            let registry = universe.registry();
            let (_, old) = registry
                .pset_members_versioned(name)
                .expect("retire_ranks from unknown pset");
            let members: Vec<ProcId> =
                old.iter().filter(|p| !retired.contains(p)).cloned().collect();
            registry
                .update_pset_membership(name, members, Some(shrink_ctx))
                .expect("retire_ranks from unknown pset");
        }
        // The membership event is the drain signal: the victims' bodies see
        // themselves gone from the pset and return. Collect their threads.
        let handles: Vec<(Rank, JoinHandle<T>)> = {
            let mut th = inner.threads.lock();
            let (gone, keep) = th.drain(..).partition(|(r, _)| ranks.contains(r));
            *th = keep;
            gone
        };
        let mut out = Vec::with_capacity(handles.len());
        let mut first_panic = None;
        for (rank, h) in handles {
            match h.join() {
                Ok(v) => out.push(v),
                Err(e) => {
                    if first_panic.is_none() {
                        first_panic = Some(format!("rank {rank} panicked: {}", panic_msg(e)));
                    }
                }
            }
        }
        for p in &retired {
            // Graceful drains must shrink the fault-tracking pset too, but
            // ONLY that one: a blanket remove_from_psets here would bump
            // every app pset's epoch on a planned shrink the app already
            // coordinated via `pset` above.
            universe
                .registry()
                .remove_proc_from_pset(&pmix::survivors_pset_name(inner.nspace.as_str()), p);
            universe.registry().deregister_proc(p);
            // A retired rank's business cards must not outlive it: no
            // failure event fires on this path, so the servers' KVS purge
            // has to be explicit (else a lazy get could resolve a stale
            // endpoint long after the rank drained).
            universe.purge_retired(p);
        }
        obs.counter("launcher", "prrte", "ranks_retired").add(ranks.len() as u64);
        span.end();
        obs.event(
            "launcher",
            "prrte",
            "job.shrink",
            vec![
                ("nspace".into(), inner.nspace.as_str().into()),
                ("count".into(), (ranks.len() as u64).into()),
            ],
        );
        match first_panic {
            None => Ok(out),
            Some(p) => Err(p),
        }
    }
}

/// A running job: join it to collect per-rank results.
pub struct JobHandle<T> {
    inner: Arc<JobInner<T>>,
    /// The job's root trace span; ended when the job is joined.
    launch: Option<obs::Span>,
}

impl<T: Send + 'static> JobHandle<T> {
    /// The job's namespace.
    pub fn nspace(&self) -> &str {
        &self.inner.nspace
    }

    /// A cloneable control handle for growing/shrinking this job while it
    /// runs.
    pub fn ctl(&self) -> JobCtl<T> {
        JobCtl { inner: self.inner.clone() }
    }

    /// Kill one rank of this job (fault injection).
    pub fn kill_rank(&self, rank: Rank) {
        let proc = ProcId::new(self.inner.nspace.as_str(), rank);
        let _ = self.inner.universe.kill_proc(&proc);
    }

    /// Wait for every remaining rank; returns rank-ordered results, or the
    /// panic message of the first rank that panicked. Ranks already drained
    /// by [`JobCtl::retire_ranks`] are not included.
    pub fn join(self) -> Result<Vec<T>, String> {
        let mut threads: Vec<(Rank, JoinHandle<T>)> =
            std::mem::take(&mut *self.inner.threads.lock());
        threads.sort_by_key(|(r, _)| *r);
        let mut out = Vec::with_capacity(threads.len());
        let mut first_panic = None;
        for (rank, t) in threads {
            match t.join() {
                Ok(v) => out.push(v),
                Err(e) => {
                    if first_panic.is_none() {
                        first_panic = Some(format!("rank {rank} panicked: {}", panic_msg(e)));
                    }
                }
            }
        }
        // The job is done: close its root span and retire its namespace.
        if let Some(span) = self.launch {
            span.end();
        }
        self.inner
            .universe
            .registry()
            .deregister_namespace(&self.inner.nspace);
        match first_panic {
            None => Ok(out),
            Some(p) => Err(p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmix::PmixError;
    use simnet::SimTestbed;
    use std::time::Duration;

    #[test]
    fn spawn_runs_every_rank_once() {
        let launcher = Launcher::new(SimTestbed::tiny(2, 2));
        let out = launcher
            .spawn(JobSpec::new(4), |ctx| (ctx.rank(), ctx.size()))
            .join()
            .unwrap();
        assert_eq!(out, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn map_by_slot_packs_nodes() {
        let launcher = Launcher::new(SimTestbed::tiny(2, 2));
        let nodes = launcher
            .spawn(JobSpec::new(4), |ctx| ctx.node().0)
            .join()
            .unwrap();
        assert_eq!(nodes, vec![0, 0, 1, 1]);
    }

    #[test]
    fn map_by_node_round_robins() {
        let launcher = Launcher::new(SimTestbed::tiny(2, 2));
        let nodes = launcher
            .spawn(JobSpec::new(4).map_by(MapBy::Node), |ctx| ctx.node().0)
            .join()
            .unwrap();
        assert_eq!(nodes, vec![0, 1, 0, 1]);
    }

    #[test]
    fn custom_psets_are_queryable() {
        let launcher = Launcher::new(SimTestbed::tiny(1, 4));
        let spec = JobSpec::new(4).with_pset("app://evens", vec![0, 2]);
        let names = launcher
            .spawn(spec, |ctx| {
                let names = ctx.pmix().query_pset_names();
                let members = ctx.pmix().query_pset_membership("app://evens").unwrap();
                (names, members.len())
            })
            .join()
            .unwrap();
        for (names, count) in names {
            assert!(names.contains(&"app://evens".to_string()));
            assert_eq!(count, 2);
        }
    }

    #[test]
    fn pmix_fence_works_across_job() {
        let launcher = Launcher::new(SimTestbed::tiny(2, 2));
        let out = launcher
            .spawn(JobSpec::new(4), |ctx| {
                let members: Vec<ProcId> = (0..ctx.size())
                    .map(|r| ProcId::new(ctx.proc().nspace(), r))
                    .collect();
                ctx.pmix().fence(&members, false).unwrap();
                ctx.rank()
            })
            .join()
            .unwrap();
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn two_concurrent_jobs_do_not_interfere() {
        let launcher = Launcher::new(SimTestbed::tiny(2, 4));
        let j1 = launcher.spawn(JobSpec::new(3), |ctx| {
            let members: Vec<ProcId> = (0..ctx.size())
                .map(|r| ProcId::new(ctx.proc().nspace(), r))
                .collect();
            ctx.pmix().fence(&members, false).unwrap();
            ctx.proc().nspace().to_owned()
        });
        let j2 = launcher.spawn(JobSpec::new(2), |ctx| {
            let members: Vec<ProcId> = (0..ctx.size())
                .map(|r| ProcId::new(ctx.proc().nspace(), r))
                .collect();
            ctx.pmix().fence(&members, false).unwrap();
            ctx.proc().nspace().to_owned()
        });
        let n1 = j1.join().unwrap();
        let n2 = j2.join().unwrap();
        assert_ne!(n1[0], n2[0]);
    }

    #[test]
    fn panic_in_rank_is_reported() {
        let launcher = Launcher::new(SimTestbed::tiny(1, 2));
        let res = launcher
            .spawn(JobSpec::new(2), |ctx| {
                if ctx.rank() == 1 {
                    panic!("deliberate");
                }
                ctx.rank()
            })
            .join();
        let err = res.unwrap_err();
        assert!(err.contains("rank 1"));
        assert!(err.contains("deliberate"));
    }

    #[test]
    fn grow_and_retire_ranks() {
        use pmix::value::keys;
        let launcher = Launcher::new(SimTestbed::tiny(2, 2));
        let spec = JobSpec::new(2).with_pset("app://dyn", vec![0, 1]);
        // Each rank drains pset events until it observes itself absent from
        // the pset, then returns (rank, epoch at exit).
        let handle = launcher.spawn_named("dynjob", spec, |ctx| {
            let me = ctx.proc().clone();
            let events = ctx.pmix().watch_psets();
            loop {
                let ev = events
                    .next_timeout(Duration::from_secs(10))
                    .expect("pset event before timeout");
                if ev.get(keys::PSET_NAME).and_then(|v| v.as_str()) != Some("app://dyn") {
                    continue;
                }
                let epoch = ev.get(keys::PSET_EPOCH).and_then(|v| v.as_u64()).unwrap();
                let members = ev.get(keys::PSET_MEMBERS).and_then(|v| v.as_proc_list()).unwrap();
                if !members.contains(&me) {
                    return (ctx.rank(), epoch);
                }
            }
        });
        let ctl = handle.ctl();
        let grown = ctl.spawn_ranks(2, Some("app://dyn"));
        assert_eq!(grown, vec![2, 3]);
        let mut first = ctl.retire_ranks(&[1, 3], Some("app://dyn")).unwrap();
        first.sort();
        assert_eq!(first.iter().map(|(r, _)| *r).collect::<Vec<_>>(), vec![1, 3]);
        // Retirement is graceful: no rank died, so the namespace still
        // resolves the survivors and the pset holds exactly ranks 0 and 2.
        let members = launcher
            .universe()
            .registry()
            .pset_members("app://dyn")
            .unwrap();
        assert_eq!(
            members,
            vec![ProcId::new("dynjob", 0), ProcId::new("dynjob", 2)]
        );
        let mut rest = ctl.retire_ranks(&[0, 2], Some("app://dyn")).unwrap();
        rest.sort();
        assert_eq!(rest.iter().map(|(r, _)| *r).collect::<Vec<_>>(), vec![0, 2]);
        // Later retirees exited at a strictly later epoch.
        assert!(rest[0].1 > first[1].1);
        assert!(handle.join().unwrap().is_empty());
    }

    #[test]
    fn kill_rank_fails_collectives_of_survivors() {
        let launcher = Launcher::new(SimTestbed::tiny(2, 1));
        let handle = launcher.spawn(JobSpec::new(2), |ctx| {
            if ctx.rank() == 1 {
                // Do no PMIx work; linger briefly so the kill lands while
                // rank 0 is blocked in the fence.
                std::thread::sleep(Duration::from_secs(2));
                return Ok(());
            }
            let members: Vec<ProcId> = (0..ctx.size())
                .map(|r| ProcId::new(ctx.proc().nspace(), r))
                .collect();
            ctx.pmix().fence_timeout(&members, false, Duration::from_secs(10))
        });
        std::thread::sleep(Duration::from_millis(200));
        handle.kill_rank(1);
        let joined = handle.join().unwrap();
        match &joined[0] {
            Err(PmixError::ProcTerminated(p)) => assert_eq!(p.rank(), 1),
            other => panic!("expected ProcTerminated, got {other:?}"),
        }
    }
}
