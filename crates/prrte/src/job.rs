//! Job descriptions: process count, mapping policy, custom process sets.

use pmix::Rank;

/// Process-to-node mapping policy (subset of `prun --map-by`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MapBy {
    /// Fill each node's slots before moving to the next node (default).
    #[default]
    Slot,
    /// Round-robin ranks across nodes.
    Node,
}

/// Description of a job to launch.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Number of processes.
    pub np: u32,
    /// Mapping policy.
    pub map_by: MapBy,
    /// Custom process sets to define at launch: (name, member ranks).
    /// These become queryable via `PMIX_QUERY_PSET_NAMES` and usable with
    /// `MPI_Group_from_session_pset`.
    pub psets: Vec<(String, Vec<Rank>)>,
}

impl JobSpec {
    /// A job of `np` processes with default mapping and no custom psets.
    pub fn new(np: u32) -> Self {
        assert!(np > 0, "jobs need at least one process");
        Self { np, map_by: MapBy::Slot, psets: Vec::new() }
    }

    /// Override the mapping policy.
    pub fn map_by(mut self, policy: MapBy) -> Self {
        self.map_by = policy;
        self
    }

    /// Define a custom process set over `ranks` (the `prun --pset` analog).
    pub fn with_pset(mut self, name: &str, ranks: Vec<Rank>) -> Self {
        for r in &ranks {
            assert!(*r < self.np, "pset {name} rank {r} outside job of size {}", self.np);
        }
        self.psets.push((name.to_owned(), ranks));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_psets() {
        let spec = JobSpec::new(4)
            .map_by(MapBy::Node)
            .with_pset("app://half", vec![0, 1]);
        assert_eq!(spec.np, 4);
        assert_eq!(spec.map_by, MapBy::Node);
        assert_eq!(spec.psets.len(), 1);
    }

    #[test]
    #[should_panic(expected = "outside job")]
    fn pset_rank_out_of_range_panics() {
        JobSpec::new(2).with_pset("bad", vec![5]);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_np_rejected() {
        JobSpec::new(0);
    }
}
