//! PMIx event notification.
//!
//! The reference implementation's event subsystem delivers asynchronous
//! notifications (process termination, group membership changes, group
//! invitations) to registered clients. We model registration as a channel
//! subscription filtered by event code; clients poll or block on their
//! [`EventStream`].

use crate::types::ProcId;
use crate::value::PmixValue;
use crossbeam::channel::{unbounded, Receiver, Sender};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Duration;

/// Event codes (subset of `pmix_status_t` event space used here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventCode {
    /// A process terminated without deregistering (abnormal exit).
    ProcTerminated,
    /// A member of a group the receiver belongs to failed.
    GroupMemberFailed,
    /// A member left a group the receiver belongs to.
    GroupMemberLeft,
    /// A group the receiver belongs to was destructed collectively.
    GroupDestructed,
    /// The receiver is invited to join a group (async construct).
    GroupInvited,
    /// A process set was defined (or redefined) in the registry.
    PsetDefined,
    /// The membership of an existing process set changed (grow/shrink).
    PsetMembership,
    /// A process set was deleted from the registry.
    PsetDeleted,
    /// Application-defined event.
    Custom(u32),
}

/// An asynchronous notification.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// What happened.
    pub code: EventCode,
    /// The process the event is about (the dead process, the leaver, the
    /// inviter...), when applicable.
    pub source: Option<ProcId>,
    /// Event payload (group name, PGCID, ...).
    pub data: HashMap<String, PmixValue>,
    /// Causal trace context of the operation that emitted the event.
    /// Only survives local (same-universe) delivery: the wire format skips
    /// it (see the manual serde impls below), which is harmless —
    /// cross-node consumers re-root their spans.
    pub ctx: Option<obs::TraceContext>,
}

// Manual serde impls: the vendored derive shim has no `#[serde(skip)]`,
// and `ctx` must not cross the wire (span ids are registry-local).
impl serde::Serialize for Event {
    fn serialize<S: serde::Serializer>(&self, s: S) -> std::result::Result<S::Ok, S::Error> {
        let mut m = serde::Map::new();
        m.insert("code".to_owned(), serde::to_value(&self.code));
        m.insert("source".to_owned(), serde::to_value(&self.source));
        m.insert("data".to_owned(), serde::to_value(&self.data));
        s.serialize_value(serde::Value::Object(m))
    }
}

impl<'de> serde::Deserialize<'de> for Event {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> std::result::Result<Self, D::Error> {
        let v = d.take_value()?;
        let r: std::result::Result<Self, serde::DeError> = (|| match v {
            serde::Value::Object(mut m) => Ok(Event {
                code: serde::from_value(m.remove("code").unwrap_or(serde::Value::Null))?,
                source: serde::from_value(m.remove("source").unwrap_or(serde::Value::Null))?,
                data: serde::from_value(m.remove("data").unwrap_or(serde::Value::Null))?,
                ctx: None,
            }),
            other => Err(serde::DeError(format!("expected object for Event, got {}", other.kind()))),
        })();
        r.map_err(<D::Error as serde::de::Error>::custom)
    }
}

impl Event {
    /// Build an event with no payload.
    pub fn new(code: EventCode, source: Option<ProcId>) -> Self {
        Self { code, source, data: HashMap::new(), ctx: None }
    }

    /// Attach a payload entry.
    pub fn with(mut self, key: &str, value: impl Into<PmixValue>) -> Self {
        self.data.insert(key.to_owned(), value.into());
        self
    }

    /// Attach a causal trace context (kept on local delivery only).
    pub fn with_ctx(mut self, ctx: Option<obs::TraceContext>) -> Self {
        self.ctx = ctx;
        self
    }

    /// Fetch a payload entry.
    pub fn get(&self, key: &str) -> Option<&PmixValue> {
        self.data.get(key)
    }
}

/// A client's subscription to events. `codes: None` subscribes to all.
pub(crate) struct Subscription {
    pub codes: Option<Vec<EventCode>>,
    pub tx: Sender<Event>,
}

impl Subscription {
    pub fn matches(&self, code: EventCode) -> bool {
        match &self.codes {
            None => true,
            Some(cs) => cs.contains(&code),
        }
    }
}

/// Receiving half of an event subscription.
pub struct EventStream {
    rx: Receiver<Event>,
}

impl EventStream {
    /// Create a subscription pair.
    pub(crate) fn pair(codes: Option<Vec<EventCode>>) -> (Subscription, EventStream) {
        let (tx, rx) = unbounded();
        (Subscription { codes, tx }, EventStream { rx })
    }

    /// Poll for an event without blocking.
    pub fn try_next(&self) -> Option<Event> {
        self.rx.try_recv().ok()
    }

    /// Wait up to `timeout` for an event.
    pub fn next_timeout(&self, timeout: Duration) -> Option<Event> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Number of queued events.
    pub fn pending(&self) -> usize {
        self.rx.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_builder_and_payload() {
        let e = Event::new(EventCode::GroupInvited, Some(ProcId::new("j", 0)))
            .with("group", "g1")
            .with("pgcid", 42u64);
        assert_eq!(e.get("group").unwrap().as_str(), Some("g1"));
        assert_eq!(e.get("pgcid").unwrap().as_u64(), Some(42));
        assert!(e.get("missing").is_none());
    }

    #[test]
    fn subscription_filtering() {
        let (sub, _stream) = EventStream::pair(Some(vec![EventCode::ProcTerminated]));
        assert!(sub.matches(EventCode::ProcTerminated));
        assert!(!sub.matches(EventCode::GroupInvited));
        let (all, _stream) = EventStream::pair(None);
        assert!(all.matches(EventCode::Custom(9)));
    }

    #[test]
    fn stream_delivery() {
        let (sub, stream) = EventStream::pair(None);
        sub.tx.send(Event::new(EventCode::Custom(1), None)).unwrap();
        assert_eq!(stream.pending(), 1);
        assert_eq!(stream.try_next().unwrap().code, EventCode::Custom(1));
        assert!(stream.try_next().is_none());
    }
}
