//! The PMIx universe: one server per node, wired to a simulated fabric,
//! plus the failure-propagation bridge.
//!
//! In the real system this assembly is PRRTE's job (its daemons host the
//! PMIx servers); the `prrte` crate layers job launch and mapping on top of
//! this. The universe is also usable standalone in tests.

use crate::client::PmixClient;
use crate::error::{PmixError, Result};
use crate::nspace::{NamespaceRegistry, ProcEntry};
use crate::server::PmixServer;
use crate::types::ProcId;
use parking_lot::Mutex;
use simnet::{Endpoint, EndpointId, Fabric, NodeId, SimTestbed};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Name prefix of the per-namespace *survivors* psets maintained by
/// [`PmixUniverse::track_faults`]: `mpi://world` minus every failed
/// process, shrunk by the failure bridge as deaths land and pruned by the
/// graceful-retire path. Versioned like any registry pset, so epoch-pinned
/// group queries compose.
pub const SURVIVORS_PSET_PREFIX: &str = "mpi://survivors/";

/// The survivors-pset name for `nspace` (see [`SURVIVORS_PSET_PREFIX`]).
pub fn survivors_pset_name(nspace: &str) -> String {
    format!("{SURVIVORS_PSET_PREFIX}{nspace}")
}

/// A running PMIx universe over a simulated testbed.
pub struct PmixUniverse {
    fabric: Fabric,
    registry: NamespaceRegistry,
    servers: Vec<Arc<PmixServer>>,
    server_eps: Vec<EndpointId>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    testbed: SimTestbed,
    /// Default session-init mode ("eager" | "lazy") for sessions that do
    /// not pass an explicit `init_mode` info key. Runtime-writable through
    /// the `pmix.init_mode` cvar.
    lazy_init_default: std::sync::atomic::AtomicBool,
    /// Deadline (ms) the MPI layer passes on group-construct fan-ins.
    /// Runtime-writable through the `pmix.group_timeout_ms` cvar.
    group_timeout_ms: std::sync::atomic::AtomicU64,
}

/// Default group-construct deadline, matching
/// [`crate::GroupDirectives::default`].
const DEFAULT_GROUP_TIMEOUT_MS: u64 = 30_000;

impl PmixUniverse {
    /// Boot servers (one per node of the testbed) and the failure bridge.
    pub fn new(testbed: SimTestbed) -> Arc<Self> {
        let fabric = Fabric::new(testbed.cost.clone());
        let registry = NamespaceRegistry::new();
        registry.attach_obs(&fabric.obs());
        let mut servers = Vec::new();
        let mut server_eps = Vec::new();
        let mut threads = Vec::new();

        // The resource-manager service (PGCID allocator) lives on a
        // dedicated head node, like a batch system's controller: every
        // PGCID acquisition is an inter-node RPC from the lead
        // participating server.
        let head = NodeId(u32::MAX);
        {
            let endpoint = fabric.register(head);
            let mut rm = PmixServer::new(&endpoint, registry.clone(), true);
            rm.set_rpc_processing(testbed.cost.rpc_processing);
            registry.register_rm(endpoint.id());
            server_eps.push(endpoint.id());
            let srv = rm.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("pmix-rm".into())
                    .spawn(move || srv.run_loop(&endpoint))
                    .expect("spawn rm thread"),
            );
            servers.push(rm);
        }

        for node in testbed.cluster.node_ids() {
            let endpoint = fabric.register(node);
            let is_rm = false;
            let mut server = PmixServer::new(&endpoint, registry.clone(), is_rm);
            server.set_rpc_processing(testbed.cost.rpc_processing);
            server_eps.push(endpoint.id());
            let srv = server.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("pmix-server-{node}"))
                    .spawn(move || srv.run_loop(&endpoint))
                    .expect("spawn pmix server thread"),
            );
            servers.push(server);
        }

        // Pset-change bridge: every registry change becomes a `pset.update`
        // span + obs event and fans out synchronously to every server's
        // subscribers. The listener runs under the registry's emission
        // lock, so subscribers observe changes in strict epoch order. The
        // span parents under the mutator's context and its own context is
        // forwarded on the event, closing the `pset.update →
        // session.rebuild` causal chain.
        {
            let obs = fabric.obs().clone();
            let servers_l = servers.clone();
            registry.add_pset_listener(Box::new(move |change| {
                let kind = match change.kind {
                    crate::nspace::PsetChangeKind::Defined => "defined",
                    crate::nspace::PsetChangeKind::Membership => "membership",
                    crate::nspace::PsetChangeKind::Deleted => "deleted",
                };
                let mut span = obs.span_with_parent(
                    "registry",
                    "pset.update",
                    &format!("{}@{}", change.name, change.epoch),
                    change.ctx,
                );
                span.add_work(change.members.len() as u64);
                let ctx = span.context();
                span.end();
                obs.event(
                    "registry",
                    "pmix",
                    "pset.update",
                    vec![
                        ("pset".into(), change.name.as_str().into()),
                        ("epoch".into(), change.epoch.into()),
                        ("kind".into(), kind.into()),
                        ("members".into(), (change.members.len() as u64).into()),
                    ],
                );
                let relayed = crate::nspace::PsetChange { ctx: Some(ctx), ..change.clone() };
                for s in &servers_l {
                    s.handle_pset_change(&relayed);
                }
            }));
        }

        // Failure bridge: fabric deaths -> ProcFailed at every server,
        // then the dead process's psets shrink around it (so subscribers
        // rebuilding from the event already see the server-side death).
        // Exits when a *server* endpoint dies, which only happens at
        // universe teardown.
        let mut watcher = fabric.watch_failures();
        let registry_w = registry.clone();
        let servers_w = servers.clone();
        let server_ep_set: std::collections::HashSet<EndpointId> =
            server_eps.iter().copied().collect();
        threads.push(
            std::thread::Builder::new()
                .name("pmix-failure-bridge".into())
                .spawn(move || {
                    while let Some(ev) = watcher.recv() {
                        if server_ep_set.contains(&ev.endpoint) {
                            break;
                        }
                        if let Some(proc) = registry_w.find_by_endpoint(ev.endpoint) {
                            for s in &servers_w {
                                s.on_proc_failed(&proc);
                            }
                            let _ = registry_w.remove_from_psets(&proc, None);
                        }
                    }
                })
                .expect("spawn failure bridge"),
        );

        let uni = Arc::new(Self {
            fabric,
            registry,
            servers,
            server_eps,
            threads: Mutex::new(threads),
            testbed,
            lazy_init_default: std::sync::atomic::AtomicBool::new(
                std::env::var("INIT_MODE").map(|v| v == "lazy").unwrap_or(false),
            ),
            group_timeout_ms: std::sync::atomic::AtomicU64::new(DEFAULT_GROUP_TIMEOUT_MS),
        });
        uni.register_cvars();
        uni
    }

    /// Register the universe-scoped control variables (MPI_T-style cvars,
    /// see `obs::tool`) plus the captured environment knobs. The closures
    /// hold only a `Weak` back-reference, so the cvar store (owned by the
    /// fabric's obs registry, owned by this universe) never keeps the
    /// universe alive; entries prune themselves after teardown.
    fn register_cvars(self: &Arc<Self>) {
        let obs = self.fabric.obs();
        obs::register_env_cvars(&obs);
        let w = Arc::downgrade(self);
        let (r, wr) = (w.clone(), w.clone());
        obs.cvar_register(
            "universe",
            "pmix.pgcid_block",
            "PGCIDs granted per RM round trip; writes fan to every server \
             (legacy setter: PmixUniverse::set_pgcid_block)",
            move || r.upgrade().map(|u| obs::CvarValue::U64(u.servers[0].pgcid_block())),
            obs::u64_writer(move |v| {
                if let Some(u) = wr.upgrade() {
                    u.set_pgcid_block(v);
                }
            }),
        );
        let (r, wr) = (w.clone(), w.clone());
        obs.cvar_register(
            "universe",
            "registry.gc_enabled",
            "tombstone GC in the pset registry \
             (legacy setter: NamespaceRegistry::set_gc_enabled)",
            move || r.upgrade().map(|u| obs::CvarValue::Bool(u.registry.gc_enabled())),
            obs::bool_writer(move |v| {
                if let Some(u) = wr.upgrade() {
                    u.registry.set_gc_enabled(v);
                }
            }),
        );
        let r = w.clone();
        obs.cvar_register(
            "universe",
            "pmix.server_shards",
            "key-hashed shards per server's ops and KVS tables (compile-time)",
            move || r.upgrade().map(|_| obs::CvarValue::U64(crate::server::SERVER_SHARDS as u64)),
            None,
        );
        let r = w.clone();
        obs.cvar_register(
            "universe",
            "pmix.epoch_retention_cap",
            "retained collective epoch counters per ops shard (compile-time)",
            move || {
                r.upgrade().map(|_| obs::CvarValue::U64(crate::server::EPOCH_RETENTION_CAP as u64))
            },
            None,
        );
        let r = w.clone();
        obs.cvar_register(
            "universe",
            "registry.gc_tombstone_threshold",
            "tombstone count that triggers a registry GC pass (compile-time)",
            move || {
                r.upgrade()
                    .map(|_| obs::CvarValue::U64(crate::nspace::GC_TOMBSTONE_THRESHOLD as u64))
            },
            None,
        );
        let (r, wr) = (w.clone(), w.clone());
        obs.cvar_register(
            "universe",
            "pmix.group_timeout_ms",
            "deadline (ms) the MPI layer pins on group-construct fan-ins — comm \
             creation, shrink/repair, elastic rebuild \
             (legacy setter: PmixUniverse::set_group_timeout)",
            move || {
                r.upgrade().map(|u| {
                    obs::CvarValue::U64(
                        u.group_timeout_ms.load(std::sync::atomic::Ordering::Relaxed),
                    )
                })
            },
            obs::u64_writer(move |v| {
                if let Some(u) = wr.upgrade() {
                    u.group_timeout_ms.store(v.max(1), std::sync::atomic::Ordering::Relaxed);
                }
            }),
        );
        let (r, wr) = (w.clone(), w.clone());
        obs.cvar_register(
            "universe",
            "pmix.init_mode",
            "default session-init mode: eager (fence-collected business cards) or \
             lazy (fence-free, peers resolved on first send); the per-session \
             init_mode info key overrides",
            move || {
                r.upgrade().map(|u| {
                    obs::CvarValue::Str(
                        if u.lazy_init_default() { "lazy" } else { "eager" }.into(),
                    )
                })
            },
            obs::writer(move |v| match v.as_str() {
                Some("lazy") => {
                    if let Some(u) = wr.upgrade() {
                        u.set_lazy_init_default(true);
                    }
                    Ok(())
                }
                Some("eager") => {
                    if let Some(u) = wr.upgrade() {
                        u.set_lazy_init_default(false);
                    }
                    Ok(())
                }
                _ => Err(format!("expected \"eager\" or \"lazy\", got {v}")),
            }),
        );
    }

    /// Whether sessions default to lazy (fence-free) init. Seeded from the
    /// `INIT_MODE` environment variable at boot; runtime-writable through
    /// the `pmix.init_mode` cvar; the per-session `init_mode` info key has
    /// the final say.
    pub fn lazy_init_default(&self) -> bool {
        self.lazy_init_default.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Set the default session-init mode (see
    /// [`PmixUniverse::lazy_init_default`]).
    pub fn set_lazy_init_default(&self, lazy: bool) {
        self.lazy_init_default.store(lazy, std::sync::atomic::Ordering::Relaxed);
    }

    /// The deadline the MPI layer pins on every group-construct fan-in
    /// (comm creation, shrink/repair, elastic rebuild). Runtime-writable
    /// through the `pmix.group_timeout_ms` cvar, so fault drills can trade
    /// the forgiving default for a fast typed `Timeout`.
    pub fn group_timeout(&self) -> std::time::Duration {
        std::time::Duration::from_millis(
            self.group_timeout_ms.load(std::sync::atomic::Ordering::Relaxed),
        )
    }

    /// Set the group-construct deadline (see [`PmixUniverse::group_timeout`]).
    pub fn set_group_timeout(&self, timeout: std::time::Duration) {
        self.group_timeout_ms
            .store((timeout.as_millis() as u64).max(1), std::sync::atomic::Ordering::Relaxed);
    }

    /// Purge a gracefully-retired process's business cards from every
    /// server (committed data, remote caches, parked fetches). The retire
    /// path produces no failure event — the endpoint is never killed — so
    /// without this sweep the cards would outlive the process and a lazy
    /// get could resolve a retired peer to a stale endpoint.
    pub fn purge_retired(&self, proc: &ProcId) {
        for s in &self.servers {
            s.purge_kvs_for(proc);
        }
    }

    /// The per-node servers (index 0 is the head-node RM daemon).
    pub fn servers(&self) -> &[Arc<PmixServer>] {
        &self.servers
    }

    /// The underlying fabric.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// The shared registry.
    pub fn registry(&self) -> &NamespaceRegistry {
        &self.registry
    }

    /// The testbed this universe runs on.
    pub fn testbed(&self) -> &SimTestbed {
        &self.testbed
    }

    /// Fabric endpoints of the control plane: the RM daemon first, then one
    /// server per compute node. Fault-injection harnesses use this to scope
    /// message faults to (idempotent) server-to-server traffic.
    pub fn server_endpoints(&self) -> Vec<EndpointId> {
        self.server_eps.clone()
    }

    /// The server managing `node`.
    pub fn server(&self, node: NodeId) -> Result<Arc<PmixServer>> {
        self.servers
            .iter()
            .find(|s| s.node() == node)
            .cloned()
            .ok_or_else(|| PmixError::NotFound(format!("server for {node}")))
    }

    /// Set the PGCID block size every server requests from the resource
    /// manager on a pool miss (ablation/bench knob; `1` restores the
    /// unbatched one-request-per-construct behavior).
    pub fn set_pgcid_block(&self, block: u64) {
        for s in &self.servers {
            s.set_pgcid_block(block);
        }
    }

    /// Register a process endpoint for a namespace and return its entry.
    ///
    /// The caller (normally `prrte`) creates the process endpoint itself so
    /// it can hand the mailbox to the process thread; this method records
    /// it in the registry.
    pub fn register_proc(&self, proc: ProcId, endpoint: &Endpoint) {
        let nspace = proc.nspace_arc();
        self.registry.register_namespace(
            &nspace,
            vec![ProcEntry { proc, node: endpoint.node(), endpoint: endpoint.id() }],
        );
    }

    /// Create a client for `proc`, which must already be registered.
    pub fn client_for(&self, proc: &ProcId) -> Result<PmixClient> {
        let entry = self.registry.locate(proc)?;
        let server = self.server(entry.node)?;
        Ok(PmixClient::init(server, proc.clone()))
    }

    /// Whether the universe has observed `proc`'s death. The failure
    /// bridge replicates every death to all servers *synchronously* before
    /// any pset event fires, so any single server's dead set is
    /// authoritative for the whole universe.
    pub fn proc_is_dead(&self, proc: &ProcId) -> bool {
        self.servers[0].proc_is_dead(proc)
    }

    /// Opt in to fault tracking for `nspace`: define (idempotently) the
    /// registry-backed survivors pset — the namespace's processes minus
    /// every observed death. From then on the failure bridge's
    /// [`NamespaceRegistry::remove_from_psets`] shrinks it on each kill
    /// and the graceful-retire path prunes departures, so the pset *is*
    /// the queryable "who is still here" answer, versioned under the
    /// global registry epoch. Returns the pset name.
    ///
    /// Tracking is opt-in (not armed at launch) so jobs that never ask for
    /// fault awareness keep their exact pset-epoch sequences.
    pub fn track_faults(&self, nspace: &str) -> Result<String> {
        let name = survivors_pset_name(nspace);
        let info = self.registry.namespace(nspace)?;
        if self.registry.pset_members(&name).is_err() {
            let live: Vec<ProcId> = info
                .procs()
                .iter()
                .filter(|e| !self.proc_is_dead(&e.proc))
                .map(|e| e.proc.clone())
                .collect();
            self.registry.define_pset(&name, live);
        }
        // Close the race with a death landing between the liveness
        // snapshot and the define: the bridge marks dead *before* it
        // shrinks psets, so a post-define sweep catches anything missed.
        for e in info.procs() {
            if self.proc_is_dead(&e.proc) {
                self.registry.remove_proc_from_pset(&name, &e.proc);
            }
        }
        Ok(name)
    }

    /// Kill a registered process (fault injection).
    pub fn kill_proc(&self, proc: &ProcId) -> Result<()> {
        let entry = self.registry.locate(proc)?;
        self.fabric.kill(entry.endpoint);
        Ok(())
    }
}

impl Drop for PmixUniverse {
    fn drop(&mut self) {
        // Kill server endpoints so run_loops exit, then join everything.
        for ep in &self.server_eps {
            self.fabric.kill(*ep);
        }
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::GroupDirectives;
    use crate::value::PmixValue;
    use std::time::Duration;

    fn spawn_procs(
        uni: &Arc<PmixUniverse>,
        nspace: &str,
        n: u32,
    ) -> Vec<(ProcId, simnet::Endpoint)> {
        let spec = uni.testbed().cluster.clone();
        (0..n)
            .map(|rank| {
                let node = spec.node_of_slot(rank % spec.total_slots());
                let ep = uni.fabric().register(node);
                let proc = ProcId::new(nspace, rank);
                uni.register_proc(proc.clone(), &ep);
                (proc, ep)
            })
            .collect()
    }

    #[test]
    fn universe_boots_and_shuts_down() {
        let uni = PmixUniverse::new(SimTestbed::tiny(3, 2));
        // 3 compute-node servers + the head-node RM daemon.
        assert_eq!(uni.registry().servers().len(), 4);
        assert!(uni.registry().rm_endpoint().is_some());
        assert_ne!(uni.registry().rm_endpoint(), uni.registry().lead_server());
        drop(uni);
    }

    #[test]
    fn single_node_group_construct_gets_pgcid() {
        let uni = PmixUniverse::new(SimTestbed::tiny(1, 4));
        let procs = spawn_procs(&uni, "job", 2);
        let members: Vec<ProcId> = procs.iter().map(|(p, _)| p.clone()).collect();
        let m2 = members.clone();
        let uni2 = uni.clone();
        let h = std::thread::spawn(move || {
            let c = uni2.client_for(&m2[1]).unwrap();
            c.group_construct("g", &m2, &GroupDirectives::for_mpi()).unwrap()
        });
        let c = uni.client_for(&members[0]).unwrap();
        let g = c.group_construct("g", &members, &GroupDirectives::for_mpi()).unwrap();
        let g2 = h.join().unwrap();
        assert_eq!(g.pgcid(), g2.pgcid());
        assert!(g.pgcid().unwrap() > 0);
        assert_eq!(g.members(), g2.members());
        assert_eq!(g.size(), 2);
    }

    #[test]
    fn multi_node_group_construct_agrees_on_pgcid() {
        let uni = PmixUniverse::new(SimTestbed::tiny(4, 1));
        let procs = spawn_procs(&uni, "job", 4);
        let members: Vec<ProcId> = procs.iter().map(|(p, _)| p.clone()).collect();
        let mut handles = Vec::new();
        for (p, _) in &procs {
            let uni2 = uni.clone();
            let p = p.clone();
            let m = members.clone();
            handles.push(std::thread::spawn(move || {
                let c = uni2.client_for(&p).unwrap();
                c.group_construct("mg", &m, &GroupDirectives::for_mpi()).unwrap()
            }));
        }
        let groups: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let pgcid = groups[0].pgcid().unwrap();
        assert!(pgcid > 0);
        for g in &groups {
            assert_eq!(g.pgcid(), Some(pgcid));
            assert_eq!(g.size(), 4);
        }
    }

    #[test]
    fn successive_constructs_get_distinct_pgcids() {
        let uni = PmixUniverse::new(SimTestbed::tiny(2, 1));
        let procs = spawn_procs(&uni, "job", 2);
        let members: Vec<ProcId> = procs.iter().map(|(p, _)| p.clone()).collect();
        let run = |name: &'static str| {
            let mut hs = Vec::new();
            for (p, _) in &procs {
                let uni2 = uni.clone();
                let p = p.clone();
                let m = members.clone();
                hs.push(std::thread::spawn(move || {
                    let c = uni2.client_for(&p).unwrap();
                    c.group_construct(name, &m, &GroupDirectives::for_mpi()).unwrap()
                }));
            }
            hs.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
        };
        let g1 = run("a");
        let g2 = run("b");
        assert_ne!(g1[0].pgcid(), g2[0].pgcid());
    }

    #[test]
    fn fence_with_data_collection_makes_gets_local() {
        let uni = PmixUniverse::new(SimTestbed::tiny(2, 1));
        let procs = spawn_procs(&uni, "job", 2);
        let members: Vec<ProcId> = procs.iter().map(|(p, _)| p.clone()).collect();
        let mut hs = Vec::new();
        for (i, (p, _)) in procs.iter().enumerate() {
            let uni2 = uni.clone();
            let p = p.clone();
            let m = members.clone();
            hs.push(std::thread::spawn(move || {
                let c = uni2.client_for(&p).unwrap();
                c.put("card", format!("endpoint-of-{i}"));
                c.commit();
                c.fence(&m, true).unwrap();
                // After a collecting fence, the peer's data must be readable.
                let peer = &m[1 - i];
                c.get(peer, "card").unwrap()
            }));
        }
        let vals: Vec<_> = hs.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(vals[0], PmixValue::Str("endpoint-of-1".into()));
        assert_eq!(vals[1], PmixValue::Str("endpoint-of-0".into()));
    }

    #[test]
    fn dmodex_fetch_without_fence() {
        let uni = PmixUniverse::new(SimTestbed::tiny(2, 1));
        let procs = spawn_procs(&uni, "job", 2);
        let (p0, _) = &procs[0];
        let (p1, _) = &procs[1];
        let c0 = uni.client_for(p0).unwrap();
        let c1 = uni.client_for(p1).unwrap();
        c1.put("bc", PmixValue::U64(77));
        c1.commit();
        // No fence: this goes through the dmodex path to the remote server.
        let v = c0.get(p1, "bc").unwrap();
        assert_eq!(v.as_u64(), Some(77));
    }

    #[test]
    fn dmodex_parks_until_commit() {
        let uni = PmixUniverse::new(SimTestbed::tiny(2, 1));
        let procs = spawn_procs(&uni, "job", 2);
        let (p0, _) = &procs[0];
        let (p1, _) = &procs[1];
        let c0 = uni.client_for(p0).unwrap();
        let c1 = uni.client_for(p1).unwrap();
        let p1c = p1.clone();
        let h = std::thread::spawn(move || c0.get_timeout(&p1c, "late", Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(100));
        c1.put("late", PmixValue::Bool(true));
        c1.commit();
        assert_eq!(h.join().unwrap().unwrap().as_bool(), Some(true));
    }

    #[test]
    fn group_construct_times_out_when_member_never_arrives() {
        let uni = PmixUniverse::new(SimTestbed::tiny(1, 2));
        let procs = spawn_procs(&uni, "job", 2);
        let members: Vec<ProcId> = procs.iter().map(|(p, _)| p.clone()).collect();
        let c = uni.client_for(&members[0]).unwrap();
        let d = GroupDirectives::for_mpi().with_timeout(Some(Duration::from_millis(200)));
        let err = c.group_construct("never", &members, &d).unwrap_err();
        assert_eq!(err, PmixError::Timeout);
    }

    #[test]
    fn group_construct_fails_when_member_dies() {
        let uni = PmixUniverse::new(SimTestbed::tiny(2, 1));
        let procs = spawn_procs(&uni, "job", 2);
        let members: Vec<ProcId> = procs.iter().map(|(p, _)| p.clone()).collect();
        let victim = members[1].clone();
        let uni2 = uni.clone();
        let h = {
            let members = members.clone();
            let me = members[0].clone();
            std::thread::spawn(move || {
                let c = uni2.client_for(&me).unwrap();
                c.group_construct("doomed", &members, &GroupDirectives::for_mpi())
            })
        };
        std::thread::sleep(Duration::from_millis(100));
        uni.kill_proc(&victim).unwrap();
        let err = h.join().unwrap().unwrap_err();
        assert_eq!(err, PmixError::ProcTerminated(victim));
    }

    #[test]
    fn invite_join_builds_group_without_collective() {
        let uni = PmixUniverse::new(SimTestbed::tiny(2, 2));
        let procs = spawn_procs(&uni, "job", 3);
        let members: Vec<ProcId> = procs.iter().map(|(p, _)| p.clone()).collect();
        let initiator = members[0].clone();

        // Invitees wait for the invitation event, then join (one declines).
        let mut hs = Vec::new();
        for (i, m) in members[1..].iter().enumerate() {
            let uni2 = uni.clone();
            let m = m.clone();
            hs.push(std::thread::spawn(move || {
                let c = uni2.client_for(&m).unwrap();
                let events = c.register_events(Some(vec![crate::event::EventCode::GroupInvited]));
                let ev = events.next_timeout(Duration::from_secs(5)).expect("invited");
                let inviter = ev.source.clone().unwrap();
                let name = ev.get("group").unwrap().as_str().unwrap().to_owned();
                let accept = i == 0; // member[1] accepts, member[2] declines
                c.group_join(&name, &inviter, accept).unwrap();
            }));
        }
        std::thread::sleep(Duration::from_millis(50));
        let c = uni.client_for(&initiator).unwrap();
        c.group_invite("async-g", &members[1..], &GroupDirectives::for_mpi())
            .unwrap();
        let g = c.group_invite_wait("async-g", Duration::from_secs(10)).unwrap();
        for h in hs {
            h.join().unwrap();
        }
        // initiator + the accepting invitee
        assert_eq!(g.size(), 2);
        assert!(g.pgcid().unwrap() > 0);
        assert!(g.members().contains(&initiator));
        assert!(g.members().contains(&members[1]));
        assert!(!g.members().contains(&members[2]));
    }

    #[test]
    fn group_leave_notifies_remaining_members() {
        let uni = PmixUniverse::new(SimTestbed::tiny(1, 2));
        let procs = spawn_procs(&uni, "job", 2);
        let members: Vec<ProcId> = procs.iter().map(|(p, _)| p.clone()).collect();
        let m2 = members.clone();
        let uni2 = uni.clone();
        let h = std::thread::spawn(move || {
            let c = uni2.client_for(&m2[1]).unwrap();
            let events =
                c.register_events(Some(vec![crate::event::EventCode::GroupMemberLeft]));
            let g = c.group_construct("lg", &m2, &GroupDirectives::for_mpi()).unwrap();
            let _ = g;
            events.next_timeout(Duration::from_secs(5))
        });
        let c = uni.client_for(&members[0]).unwrap();
        let g = c.group_construct("lg", &members, &GroupDirectives::for_mpi()).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        c.group_leave(&g).unwrap();
        let ev = h.join().unwrap().expect("leave event");
        assert_eq!(ev.source, Some(members[0].clone()));
    }

    #[test]
    fn queries_resolve_psets() {
        let uni = PmixUniverse::new(SimTestbed::tiny(1, 2));
        let procs = spawn_procs(&uni, "job", 1);
        uni.registry()
            .define_pset("app://x", vec![procs[0].0.clone()]);
        let c = uni.client_for(&procs[0].0).unwrap();
        let out = crate::query::query_info(
            &c,
            &[
                crate::query::Query::key(crate::value::keys::QUERY_NUM_PSETS),
                crate::query::Query::key(crate::value::keys::QUERY_PSET_NAMES),
                crate::query::Query::with_qualifier(
                    crate::value::keys::QUERY_PSET_MEMBERSHIP,
                    "app://x",
                ),
            ],
        )
        .unwrap();
        assert_eq!(out[0].as_u64(), Some(1));
        assert_eq!(out[1].as_str_list().unwrap(), &["app://x".to_string()]);
        assert_eq!(out[2].as_proc_list().unwrap().len(), 1);
    }

    #[test]
    fn proc_termination_event_reaches_subscribers() {
        let uni = PmixUniverse::new(SimTestbed::tiny(2, 1));
        let procs = spawn_procs(&uni, "job", 2);
        let c0 = uni.client_for(&procs[0].0).unwrap();
        let events = c0.register_events(Some(vec![crate::event::EventCode::ProcTerminated]));
        uni.kill_proc(&procs[1].0).unwrap();
        let ev = events.next_timeout(Duration::from_secs(5)).expect("termination event");
        assert_eq!(ev.source, Some(procs[1].0.clone()));
    }

    #[test]
    fn nb_construct_matches_blocking_peer() {
        let uni = PmixUniverse::new(SimTestbed::tiny(2, 1));
        let procs = spawn_procs(&uni, "job", 2);
        let members: Vec<ProcId> = procs.iter().map(|(p, _)| p.clone()).collect();
        let m2 = members.clone();
        let uni2 = uni.clone();
        let h = std::thread::spawn(move || {
            let c = uni2.client_for(&m2[1]).unwrap();
            c.group_construct("nb", &m2, &GroupDirectives::for_mpi()).unwrap()
        });
        let c = uni.client_for(&members[0]).unwrap();
        let mut pending =
            c.group_construct_nb("nb", &members, &GroupDirectives::for_mpi()).unwrap();
        // Poll-drive to completion instead of blocking.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        let mine = loop {
            if let Some(res) = pending.try_group() {
                break res.unwrap();
            }
            assert!(std::time::Instant::now() < deadline, "poll never completed");
            std::thread::yield_now();
        };
        let theirs = h.join().unwrap();
        assert_eq!(mine.pgcid(), theirs.pgcid());
        assert_eq!(mine.members(), theirs.members());
        assert!(pending.is_finished());
    }

    #[test]
    fn concurrent_nb_constructs_coalesce_pgcid_requests() {
        const K: usize = 6;
        let uni = PmixUniverse::new(SimTestbed::tiny(2, 1));
        // Paper-prototype mode: one id per RM grant, so every construct
        // that cannot coalesce pays its own round trip.
        uni.set_pgcid_block(1);
        let procs = spawn_procs(&uni, "job", 2);
        let members: Vec<ProcId> = procs.iter().map(|(p, _)| p.clone()).collect();
        let m2 = members.clone();
        let uni2 = uni.clone();
        let h = std::thread::spawn(move || {
            let c = uni2.client_for(&m2[1]).unwrap();
            let pendings: Vec<_> = (0..K)
                .map(|i| {
                    c.group_construct_nb(&format!("cg{i}"), &m2, &GroupDirectives::for_mpi())
                        .unwrap()
                })
                .collect();
            pendings.into_iter().map(|p| p.wait().unwrap()).collect::<Vec<_>>()
        });
        let c = uni.client_for(&members[0]).unwrap();
        let pendings: Vec<_> = (0..K)
            .map(|i| {
                c.group_construct_nb(&format!("cg{i}"), &members, &GroupDirectives::for_mpi())
                    .unwrap()
            })
            .collect();
        let mine: Vec<_> = pendings.into_iter().map(|p| p.wait().unwrap()).collect();
        let theirs = h.join().unwrap();
        let obs = uni.fabric().obs();
        // Ranks agree per construct; ids are distinct across constructs.
        let mut seen = std::collections::HashSet::new();
        for (a, b) in mine.iter().zip(&theirs) {
            assert_eq!(a.pgcid(), b.pgcid());
            assert!(seen.insert(a.pgcid().unwrap()), "pgcid reused across groups");
        }
        // Every construct either paid a round trip, rode one (coalesced),
        // or hit the pool — the accounting must add up exactly.
        let requests = obs
            .spans_snapshot()
            .iter()
            .filter(|s| s.name == "pgcid.request")
            .count() as u64;
        let coalesced = obs.sum_counters("pmix", "pgcid_coalesced");
        let pool_hits = obs.sum_counters("pmix", "pgcid_pool_hits");
        assert_eq!(requests + coalesced + pool_hits, K as u64);
        assert_eq!(obs.sum_counters("pmix", "pgcid_allocated"), K as u64);
    }

    #[test]
    fn dropped_pending_construct_is_abandoned_not_leaked() {
        let uni = PmixUniverse::new(SimTestbed::tiny(2, 1));
        let procs = spawn_procs(&uni, "job", 2);
        let members: Vec<ProcId> = procs.iter().map(|(p, _)| p.clone()).collect();
        let m2 = members.clone();
        let uni2 = uni.clone();
        let h = std::thread::spawn(move || {
            let c = uni2.client_for(&m2[1]).unwrap();
            c.group_construct("aband", &m2, &GroupDirectives::for_mpi()).unwrap()
        });
        let c = uni.client_for(&members[0]).unwrap();
        let pending =
            c.group_construct_nb("aband", &members, &GroupDirectives::for_mpi()).unwrap();
        // The peer still completes: rank 0's fan-in contribution already
        // happened at coll_begin; dropping only abandons the observation.
        let theirs = h.join().unwrap();
        drop(pending);
        assert!(theirs.pgcid().is_some());
        let obs = uni.fabric().obs();
        assert_eq!(obs.sum_counters("pmix", "coll_abandoned"), 1);
        // The abandoned epoch is reaped: the same name constructs again.
        let m2 = members.clone();
        let uni2 = uni.clone();
        let h = std::thread::spawn(move || {
            let c = uni2.client_for(&m2[1]).unwrap();
            c.group_construct("aband", &m2, &GroupDirectives::for_mpi()).unwrap()
        });
        let again = c.group_construct("aband", &members, &GroupDirectives::for_mpi()).unwrap();
        let again2 = h.join().unwrap();
        assert_eq!(again.pgcid(), again2.pgcid());
        assert_ne!(again.pgcid(), theirs.pgcid());
    }
}
