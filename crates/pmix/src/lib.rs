//! # pmix — a PMIx analog in Rust
//!
//! Reimplementation of the PMIx functionality the paper's MPI Sessions
//! prototype depends on (Section III-A of the paper):
//!
//! * **clients and per-node servers** — every simulated process initializes
//!   a [`PmixClient`] against the [`PmixServer`] on its node; on-node
//!   client↔server interaction is a direct method call (the shared-memory
//!   RPC analog), while **server↔server** traffic crosses the [`simnet`]
//!   fabric and therefore pays inter-node costs;
//! * **key-value exchange** — `put`/`commit`/`get` with both fence-collected
//!   data and direct modex (on-demand fetch from the owning server);
//! * **fences** — collective barriers over arbitrary process sets, with
//!   optional data collection;
//! * **groups** — collective construct/destruct over arbitrary process
//!   sets, three-stage hierarchical implementation (local fan-in → server
//!   all-to-all → local fan-out), optional **PGCID** assignment by the
//!   resource manager (a 64-bit id, unique per allocation, never zero),
//!   timeouts, and failure reporting; plus the asynchronous *invite/join*
//!   construction mode;
//! * **events** — process-termination and group-membership notifications;
//! * **queries** — `PMIX_QUERY_NUM_PSETS` / `PMIX_QUERY_PSET_NAMES` and pset
//!   membership resolution.
//!
//! The crate is deliberately independent of MPI: the `mpi-sessions` crate
//! consumes this API exactly the way Open MPI consumes PMIx.
//!
//! ## Quick start
//!
//! Stand up a universe on a simulated testbed, register a process, and use
//! its client for key-value exchange:
//!
//! ```
//! use pmix::{PmixUniverse, ProcId};
//! use simnet::SimTestbed;
//!
//! let uni = PmixUniverse::new(SimTestbed::tiny(1, 1));
//! let node = uni.testbed().cluster.node_of_slot(0);
//! let ep = uni.fabric().register(node);
//! let me = ProcId::new("job-0", 0);
//! uni.register_proc(me.clone(), &ep);
//!
//! let client = uni.client_for(&me).unwrap();
//! client.put("hostname", "n0");
//! client.commit();
//! assert_eq!(client.get(&me, "hostname").unwrap().as_str(), Some("n0"));
//! ```

pub mod client;
pub mod error;
pub mod event;
pub mod group;
pub mod nspace;
pub mod query;
pub mod resolver;
pub mod server;
pub mod types;
pub mod universe;
pub mod value;
pub mod wire;

pub use client::{PendingGroup, PmixClient};
pub use error::PmixError;
pub use event::{Event, EventCode};
pub use group::{GroupDirectives, GroupResult, InviteOutcome, InviteReport, PmixGroup};
pub use nspace::{NamespaceInfo, NamespaceRegistry};
pub use resolver::{PeerFetch, PeerResolver};
pub use server::{
    FetchTicket, LogicalDeadline, PendingColl, PmixServer, ServerShardOccupancy,
    DEFAULT_PGCID_BLOCK, EPOCH_RETENTION_CAP, SERVER_SHARDS,
};
pub use types::{ProcId, Rank};
pub use universe::{survivors_pset_name, PmixUniverse, SURVIVORS_PSET_PREFIX};
pub use value::PmixValue;
