//! Server-to-server wire protocol.
//!
//! Everything in this module crosses the simulated fabric and therefore
//! pays inter-node communication costs — this is what makes PMIx group
//! construction (and hence `MPI_Comm_create_from_group`) measurably more
//! expensive than purely local operations, the central performance effect
//! in the paper's Figures 3 and 4.
//!
//! Control-plane messages are JSON-serialized: they are small, rare and
//! off the MPI critical path; debuggability wins over compactness here.

use crate::error::PmixError;
use crate::event::Event;
use crate::types::ProcId;
use crate::value::PmixValue;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use simnet::EndpointId;
use std::collections::HashMap;

/// Kind of a collective operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// `PMIx_Fence` over a process set.
    Fence,
    /// `PMIx_Group_construct`.
    GroupConstruct,
    /// `PMIx_Group_destruct`.
    GroupDestruct,
}

/// Identifier of one *instance* of a collective operation.
///
/// `mhash` is a hash of the sorted membership, so that same-named
/// operations over different process sets do not collide; `epoch` counts
/// instances of the same (kind, name, membership), so that repeated
/// collectives stay distinct even when one server races ahead.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OpId {
    /// Operation kind.
    pub kind: OpKind,
    /// User-visible operation tag (group name, fence tag).
    pub name: String,
    /// Hash of the sorted membership list.
    pub mhash: u64,
    /// Instance counter for this (kind, name, mhash).
    pub epoch: u64,
}

impl std::fmt::Display for OpId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}:{}#{}@{}", self.kind, self.name, self.mhash, self.epoch)
    }
}

/// Stable hash of a sorted membership list (FNV-1a over the display forms;
/// must be identical across all participants, which sorting guarantees).
pub fn membership_hash(sorted_members: &[ProcId]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf29ce484222325;
    const FNV_PRIME: u64 = 0x100000001b3;
    let mut h = FNV_OFFSET;
    for m in sorted_members {
        for b in m.nspace().as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        h ^= m.rank() as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// One server's contribution to a collective instance.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Contribution {
    /// Participants managed by the contributing server.
    pub local_members: Vec<ProcId>,
    /// Collected key-value data (fence with data collection).
    pub kvs: Vec<(ProcId, HashMap<String, PmixValue>)>,
}

/// Why a collective was aborted.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AbortReason {
    /// A participant's wait deadline elapsed.
    Timeout,
    /// A participant process died before completing.
    ProcTerminated(ProcId),
}

impl AbortReason {
    /// Convert to the error participants observe.
    pub fn to_error(&self) -> PmixError {
        match self {
            AbortReason::Timeout => PmixError::Timeout,
            AbortReason::ProcTerminated(p) => PmixError::ProcTerminated(p.clone()),
        }
    }
}

/// Messages exchanged between PMIx servers (and the resource-manager
/// service hosted on the lead server).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ServerMsg {
    /// A server's contribution to a collective instance (stage 2 of the
    /// three-stage hierarchical pattern: the server all-to-all).
    CollContrib {
        /// Which collective instance.
        op: OpId,
        /// Contributing server's node.
        from_node: u32,
        /// Its local data.
        contrib: Contribution,
    },
    /// PGCID assignment for a group-construct instance, broadcast by the
    /// lead participating server after the RM allocated it.
    CollPgcid {
        /// Which collective instance.
        op: OpId,
        /// The allocated Process Group Context Identifier (non-zero).
        pgcid: u64,
    },
    /// Abort a collective instance on all participating servers.
    CollAbort {
        /// Which collective instance.
        op: OpId,
        /// Why.
        reason: AbortReason,
    },
    /// Ask the resource manager for a block of fresh PGCIDs.
    ///
    /// `count == 1` reproduces the paper's one-at-a-time round trip;
    /// larger counts amortize the RM RPC over `count` future group
    /// constructs led by the requesting server (the surplus ids go into
    /// its local pool).
    PgcidRequest {
        /// Where to send the reply.
        reply_to: EndpointId,
        /// Correlation token.
        token: u64,
        /// How many consecutive ids to allocate (>= 1).
        count: u64,
    },
    /// RM's reply to [`ServerMsg::PgcidRequest`]: a consecutive block
    /// `[pgcid, pgcid + count)`, all freshly allocated and accounted under
    /// the RM's `pgcid_allocated` counter.
    PgcidReply {
        /// Correlation token from the request.
        token: u64,
        /// First id of the allocated block.
        pgcid: u64,
        /// Number of consecutive ids in the block (>= 1).
        count: u64,
    },
    /// Broadcast: a process died. Servers fail affected collectives and
    /// notify subscribed clients.
    ProcFailed {
        /// The dead process.
        proc: ProcId,
    },
    /// Direct-modex fetch of one key of one (remote) process.
    DmodexReq {
        /// Where to send the reply.
        reply_to: EndpointId,
        /// Correlation token.
        token: u64,
        /// Whose data.
        proc: ProcId,
        /// Which key.
        key: String,
    },
    /// Reply to [`ServerMsg::DmodexReq`].
    DmodexReply {
        /// Correlation token from the request.
        token: u64,
        /// The value, or `None` if the owner does not have it.
        value: Option<PmixValue>,
    },
    /// Deliver an event to specific local clients of the destination server
    /// (or to all subscribed clients when `targets` is empty).
    Notify {
        /// The event.
        event: Event,
        /// Local clients that should receive it; empty = all subscribed.
        targets: Vec<ProcId>,
    },
    /// Response of an invited process to an asynchronous group invitation,
    /// routed to the initiator's server.
    InviteReply {
        /// Group being constructed.
        group: String,
        /// The responding process.
        from: ProcId,
        /// Whether it joined.
        accept: bool,
    },
}

impl ServerMsg {
    /// Serialize for the fabric.
    pub fn encode(&self) -> Bytes {
        Bytes::from(serde_json::to_vec(self).expect("ServerMsg serializes"))
    }

    /// Deserialize from the fabric.
    pub fn decode(bytes: &[u8]) -> Option<ServerMsg> {
        serde_json::from_slice(bytes).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership_hash_is_order_stable_after_sort() {
        let mut a = vec![ProcId::new("j", 2), ProcId::new("j", 0), ProcId::new("j", 1)];
        let mut b = vec![ProcId::new("j", 1), ProcId::new("j", 2), ProcId::new("j", 0)];
        a.sort();
        b.sort();
        assert_eq!(membership_hash(&a), membership_hash(&b));
    }

    #[test]
    fn membership_hash_distinguishes_sets() {
        let a = vec![ProcId::new("j", 0), ProcId::new("j", 1)];
        let b = vec![ProcId::new("j", 0), ProcId::new("j", 2)];
        assert_ne!(membership_hash(&a), membership_hash(&b));
        let c = vec![ProcId::new("k", 0), ProcId::new("k", 1)];
        assert_ne!(membership_hash(&a), membership_hash(&c));
    }

    #[test]
    fn server_msg_roundtrip() {
        let msg = ServerMsg::CollContrib {
            op: OpId { kind: OpKind::GroupConstruct, name: "g".into(), mhash: 7, epoch: 0 },
            from_node: 3,
            contrib: Contribution {
                local_members: vec![ProcId::new("j", 5)],
                kvs: vec![(
                    ProcId::new("j", 5),
                    [("k".to_string(), PmixValue::U64(1))].into_iter().collect(),
                )],
            },
        };
        let bytes = msg.encode();
        let back = ServerMsg::decode(&bytes).unwrap();
        match back {
            ServerMsg::CollContrib { op, from_node, contrib } => {
                assert_eq!(op.name, "g");
                assert_eq!(from_node, 3);
                assert_eq!(contrib.local_members.len(), 1);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(ServerMsg::decode(b"not json").is_none());
    }

    #[test]
    fn abort_reason_to_error() {
        assert_eq!(AbortReason::Timeout.to_error(), PmixError::Timeout);
        let p = ProcId::new("j", 1);
        assert_eq!(
            AbortReason::ProcTerminated(p.clone()).to_error(),
            PmixError::ProcTerminated(p)
        );
    }
}
