//! The per-node PMIx server.
//!
//! One server runs on every simulated node. Local clients interact with it
//! by direct method call (the analog of the shared-memory client↔server
//! channel in the PMIx reference implementation); remote interaction goes
//! through [`crate::wire::ServerMsg`]s over the fabric.
//!
//! ## The three-stage hierarchical collective (paper §III-A)
//!
//! Fences and group construct/destruct all run the same engine:
//!
//! 1. **local fan-in** — every local participant notifies its server
//!    ([`PmixServer::coll_enter`]);
//! 2. **server all-to-all** — once all local participants have arrived, the
//!    server exchanges a [`Contribution`] with every other participating
//!    server;
//! 3. **local fan-out** — when contributions from all participating servers
//!    (plus the PGCID, if requested) are in, waiting clients are released.
//!
//! The **PGCID** is allocated by the resource-manager service hosted on the
//! lead (lowest-node) server of the universe; the lead *participating*
//! server requests it and broadcasts it to the other participants. This
//! inter-node RPC is exactly the "relatively expensive operation" the paper
//! blames for the sessions communicator-construction overhead (§III-B3).
//!
//! ## Sharded hot-path state
//!
//! The server's mutable state used to sit behind one big mutex, which
//! serialized *independent* collectives and KVS traffic from many local
//! clients. It is now split into [`SERVER_SHARDS`] key-hashed shards:
//!
//! * **ops shards** — collective-op tables plus their epoch counters,
//!   hashed by `(kind, name, mhash)` so every instance of one collective
//!   lands on one shard and unrelated collectives proceed concurrently;
//! * **kvs shards** — committed local data, the remote-data cache, and
//!   in-flight/parked dmodex state, hashed by the owning [`ProcId`];
//! * a small **control plane** (subscriptions, live groups, invites,
//!   client registry) that is off every hot path.
//!
//! Each shard pairs its mutex with its own condvar, so a fence waking up
//! only disturbs waiters of collectives in the same shard. Correlation
//! tokens encode their kvs shard (`token % SERVER_SHARDS`) so reply
//! handlers route without any global lookup. The lock order is
//! `ops shard → { kvs shard, pgcid pool/waiting, dead (read) }` and
//! `ctl → dead (read)`; no two shards of the same kind are ever held
//! together, which rules out deadlock by construction.
//!
//! ## Batched PGCID allocation
//!
//! A group construct that needs a PGCID used to cost one RM round trip per
//! construct. The lead server now requests a *block* of
//! [`DEFAULT_PGCID_BLOCK`] consecutive ids (tunable via
//! [`PmixServer::set_pgcid_block`]) and parks the surplus in a local pool;
//! subsequent constructs led by this server take a pooled id without any
//! RM traffic — no `pgcid.request` span, one `pgcid_pool_hits` tick. The
//! RM accounts every id of a block under `pgcid_allocated` at grant time,
//! so the accounting invariant (ids exposed ⊆ ids allocated) stays exact.

use crate::error::{PmixError, Result};
use crate::event::{Event, EventCode, EventStream, Subscription};
use crate::group::{GroupDirectives, GroupResult, InviteOutcome, InviteReport};
use crate::nspace::{NamespaceRegistry, PsetChange, PsetChangeKind};
use crate::types::ProcId;
use crate::value::{keys, PmixValue};
use crate::wire::{membership_hash, AbortReason, Contribution, OpId, OpKind, ServerMsg};
use parking_lot::{Condvar, Mutex, RwLock};
use simnet::{Endpoint, EndpointId, EndpointSender, NodeId};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Number of key-hashed shards the server's ops and KVS tables are split
/// into. Eight is plenty for the simulated node sizes while keeping the
/// per-shard memory overhead negligible.
pub const SERVER_SHARDS: usize = 8;

/// Default PGCID block size requested from the RM per round trip. One RM
/// RPC now serves this many group constructs led by the same server
/// (`count == 1` reproduces the paper's one-at-a-time behavior).
pub const DEFAULT_PGCID_BLOCK: u64 = 8;

/// Per-shard cap on retained collective epoch counters. Under sustained
/// session churn every distinct `(kind, name, mhash)` that ever ran a
/// collective would otherwise pin one counter forever. Once a shard holds
/// more keys than this, counters whose collective has no live op are
/// evicted in first-use order. An evicted key that later re-runs restarts
/// at epoch 0 — acceptable because a collision needs more than
/// `EPOCH_RETENTION_CAP` *distinct* collectives on one shard between the
/// two runs, far beyond any scenario's working set.
pub const EPOCH_RETENTION_CAP: usize = 1024;

/// Outcome of a completed collective, as handed back to local clients.
#[derive(Debug, Clone)]
pub struct CollOutcome {
    /// Union of all contributions' members, sorted, dead members removed.
    pub members: Vec<ProcId>,
    /// PGCID if one was requested.
    pub pgcid: Option<u64>,
    /// Context of the server's `group.fanout` span: clients link it so the
    /// release edge of the collective is visible in the span DAG.
    pub ctx: Option<obs::TraceContext>,
}

/// One participant's handle on an in-flight collective, returned by
/// [`PmixServer::coll_begin`]. The fan-in has already happened; the handle
/// tracks when *this* waiter observes the outcome. Exactly one of
/// [`PmixServer::coll_wait`] / a successful [`PmixServer::coll_poll`] /
/// [`PmixServer::coll_abandon`] must consume it, or the op-state entry
/// leaks until its epoch is evicted.
#[derive(Debug)]
pub struct PendingColl {
    op_id: OpId,
    si: usize,
    me: ProcId,
    deadline: Option<Instant>,
    directives: GroupDirectives,
    finished: bool,
}

impl PendingColl {
    /// True once this handle has delivered (or abandoned) its result.
    pub fn is_finished(&self) -> bool {
        self.finished
    }
}

#[derive(Debug, Clone)]
struct GroupInfo {
    members: Vec<ProcId>,
    pgcid: Option<u64>,
    notify_on_termination: bool,
}

struct OpState {
    // Filled by the first *local* arrival; remote contributions can create
    // the op before any local participant enters.
    expected_local: Option<Vec<ProcId>>,
    // Full membership, known once a local participant arrives.
    membership: Vec<ProcId>,
    arrived_local: Vec<ProcId>,
    expected_servers: BTreeSet<NodeId>,
    contribs: HashMap<NodeId, Contribution>,
    need_pgcid: bool,
    error_on_early_termination: bool,
    notify_on_termination: bool,
    pgcid: Option<u64>,
    pending_pgcid: Option<u64>, // a CollPgcid that arrived before local fan-in
    pgcid_requested: bool,
    fanin_done: bool,
    epoch_bumped: bool,
    sent_contrib: bool,
    // Local kvs contributions gathered during fan-in (fence with data).
    local_kvs: Vec<(ProcId, HashMap<String, PmixValue>)>,
    result: Option<std::result::Result<CollOutcome, PmixError>>,
    observed: usize,
    // Local waiters that abandoned their pending handle before observing
    // the result (nonblocking enter dropped mid-flight). They will never
    // call back in, so reaping counts them alongside `observed`.
    abandoned: usize,
    // Stage spans (paper §III-A): fan-in is open from the first local
    // arrival to local completeness; exchange from then until every peer
    // contribution (and the PGCID) is in; fan-out is the release instant.
    fanin: Option<obs::Span>,
    xchg: Option<obs::Span>,
    // Piggybacked contexts of everything that gated completion (peer
    // contributions, the PGCID broadcast); linked into `xchg` when it ends.
    contrib_ctxs: Vec<obs::TraceContext>,
}

impl OpState {
    fn new() -> Self {
        Self {
            expected_local: None,
            membership: Vec::new(),
            arrived_local: Vec::new(),
            expected_servers: BTreeSet::new(),
            contribs: HashMap::new(),
            need_pgcid: false,
            error_on_early_termination: true,
            notify_on_termination: false,
            pgcid: None,
            pending_pgcid: None,
            pgcid_requested: false,
            fanin_done: false,
            epoch_bumped: false,
            sent_contrib: false,
            local_kvs: Vec::new(),
            result: None,
            observed: 0,
            abandoned: 0,
            fanin: None,
            xchg: None,
            contrib_ctxs: Vec::new(),
        }
    }
}

struct InviteState {
    initiator: ProcId,
    invited: Vec<ProcId>,
    responses: HashMap<ProcId, bool>,
    request_pgcid: bool,
}

/// Coalescing state for RM block requests. At most one `PgcidRequest` is
/// outstanding per server: constructs that hit an empty pool while one is
/// in flight queue here and are served from the same (or a follow-up)
/// block grant, so K overlapping constructions cost ~ceil(K/block) RM
/// round trips instead of K.
#[derive(Default)]
struct PgcidCtl {
    inflight: bool,
    backlog: VecDeque<OpId>,
}

/// One shard: its state plus a dedicated condvar so wakeups stay local.
struct Shard<T> {
    state: Mutex<T>,
    cv: Condvar,
}

impl<T> Shard<T> {
    fn new(t: T) -> Self {
        Self { state: Mutex::new(t), cv: Condvar::new() }
    }
}

/// Collective-op tables for one ops shard. The epoch counters live next to
/// the ops they disambiguate (same `(kind, name, mhash)` hash key).
#[derive(Default)]
struct OpsShard {
    ops: HashMap<OpId, OpState>,
    // Next epoch to assign to a locally-entered instance of each key.
    // Bounded to [`EPOCH_RETENTION_CAP`] entries; see `bound_epochs`.
    epochs: HashMap<(OpKind, String, u64), u64>,
    // Epoch keys in first-use order: the deterministic eviction queue.
    epoch_order: VecDeque<(OpKind, String, u64)>,
}

/// Key-value tables for one kvs shard, hashed by the owning process.
#[derive(Default)]
struct KvsShard {
    // Committed KV data of *local* clients.
    kvs_local: HashMap<ProcId, HashMap<String, PmixValue>>,
    // Data learned about remote processes (fence collection / dmodex).
    kvs_cache: HashMap<ProcId, HashMap<String, PmixValue>>,
    // In-flight dmodex fetches issued by local clients: token -> reply slot.
    dmodex_waiting: HashMap<u64, Option<Option<PmixValue>>>,
    // Remote dmodex requests for keys not committed yet.
    dmodex_parked: Vec<(ProcId, String, EndpointId, u64)>,
}

/// Cold control-plane state (off every collective/KVS hot path).
#[derive(Default)]
struct CtlState {
    subs: Vec<(ProcId, Subscription)>,
    // Live groups with local members.
    groups: HashMap<String, GroupInfo>,
    // Asynchronous (invite/join) constructions initiated locally.
    invites: HashMap<String, InviteState>,
    local_clients: HashSet<ProcId>,
}

/// Per-shard completion/stage counters. Scoping them to
/// `server:{node}/s{k}` means the sharding refactor cannot silently
/// double-count: `sum_counters` still yields the per-server totals the
/// invariants assert, while per-shard values stay individually auditable.
struct ShardCounters {
    fence_completed: obs::Counter,
    group_construct_completed: obs::Counter,
    group_destruct_completed: obs::Counter,
    stage_fanin: obs::Counter,
    stage_xchg: obs::Counter,
    stage_fanout: obs::Counter,
    coll_aborted: obs::Counter,
    // Live KV pairs (local + cached) in this shard's tables; its high-water
    // mark is the per-shard memory footprint the soak harness reports.
    kvs_entries: obs::Gauge,
}

/// Per-server observability handles, resolved once at construction.
struct ServerMetrics {
    /// `(process, component)` scope for events/spans this server emits.
    /// Stage *counters* are per-shard (`server:{node}/s{k}`); events and
    /// spans keep the plain `server:{node}` scope the golden traces and
    /// invariant checkers key on.
    process: String,
    obs: Arc<obs::Registry>,
    rpc_handled: obs::Counter,
    rpc_ns: obs::Histogram,
    pgcid_allocated: obs::Counter,
    pgcid_pool_hits: obs::Counter,
    // Constructs whose PGCID need piggybacked on an already-in-flight RM
    // request instead of paying their own round trip.
    pgcid_coalesced: obs::Counter,
    // Nonblocking collective handles dropped before observing their result.
    coll_abandoned: obs::Counter,
    // Ids returned to the pool by a group destruct (lifecycle GC).
    pgcid_recycled: obs::Counter,
    // KV pairs dropped when their owning process was declared dead.
    kvs_purged: obs::Counter,
    // Epoch counters evicted by the retention bound.
    epochs_evicted: obs::Counter,
    // Current occupancy of the local PGCID pool (block surplus + recycled).
    pgcid_pool_len: obs::Gauge,
    shards: Vec<ShardCounters>,
}

impl ServerMetrics {
    fn new(obs: Arc<obs::Registry>, node: NodeId) -> Self {
        let process = format!("server:{}", node.0);
        let c = |name: &str| obs.counter(&process, "pmix", name);
        let rpc_ns = obs.histogram(&process, "pmix", "rpc_ns");
        let shards = (0..SERVER_SHARDS)
            .map(|k| {
                let sp = format!("server:{}/s{}", node.0, k);
                let sc = |name: &str| obs.counter(&sp, "pmix", name);
                ShardCounters {
                    fence_completed: sc("fence_completed"),
                    group_construct_completed: sc("group_construct_completed"),
                    group_destruct_completed: sc("group_destruct_completed"),
                    stage_fanin: sc("stage_fanin"),
                    stage_xchg: sc("stage_xchg"),
                    stage_fanout: sc("stage_fanout"),
                    coll_aborted: sc("coll_aborted"),
                    kvs_entries: obs.gauge(&sp, "pmix", "kvs_entries"),
                }
            })
            .collect();
        Self {
            rpc_handled: c("rpc_handled"),
            pgcid_allocated: c("pgcid_allocated"),
            pgcid_pool_hits: c("pgcid_pool_hits"),
            pgcid_coalesced: c("pgcid_coalesced"),
            coll_abandoned: c("coll_abandoned"),
            pgcid_recycled: c("pgcid_recycled"),
            kvs_purged: c("kvs_purged"),
            epochs_evicted: c("epochs_evicted"),
            pgcid_pool_len: obs.gauge(&process, "pmix", "pgcid_pool_len"),
            rpc_ns,
            shards,
            process,
            obs,
        }
    }

    fn shard(&self, si: usize) -> &ShardCounters {
        &self.shards[si]
    }

    fn stage_event(&self, stage: &str, op: &OpId, extra: Vec<(String, obs::AttrValue)>) {
        let mut attrs: Vec<(String, obs::AttrValue)> = vec![
            ("op".into(), op.name.as_str().into()),
            ("kind".into(), kind_str(op.kind).into()),
            // The epoch disambiguates re-runs of the same (kind, name,
            // membership) — invariant checkers key on (kind, name, epoch).
            ("epoch".into(), op.epoch.into()),
        ];
        attrs.extend(extra);
        self.obs.event(&self.process, "pmix", stage, attrs);
    }
}

fn kind_str(kind: OpKind) -> &'static str {
    match kind {
        OpKind::Fence => "fence",
        OpKind::GroupConstruct => "group_construct",
        OpKind::GroupDestruct => "group_destruct",
    }
}

/// Poll slice for logical-deadline waits: short enough to notice fabric
/// quiescence promptly, long enough not to busy-spin.
const LOGICAL_POLL: Duration = Duration::from_millis(2);
/// Consecutive quiet polls (no fabric activity, nothing in flight) required
/// after the wall budget elapses before a wait is declared expired.
const LOGICAL_GRACE: u32 = 3;
/// Safety valve: even a never-quiescent fabric cannot stretch a wait past
/// this multiple of the caller's budget.
const LOGICAL_HARD_CAP: u32 = 20;

/// A deadline in *logical* time.
///
/// Wall-clock deadlines inside the deterministic simnet world are a
/// determinism hazard: a chaos delay rule can hold a reply in the delivery
/// pump past the wall deadline on one run and under it on the next, so the
/// same seed yields different invite outcomes (and different traces). A
/// logical deadline expires only once (a) the caller's wall budget has
/// elapsed AND (b) the fabric has quiesced — zero messages in flight and no
/// send/delivery activity — for `LOGICAL_GRACE` consecutive polls. A
/// scheduled-but-delayed reply keeps `in_flight` nonzero, so injected
/// delays defer expiry instead of flipping the outcome.
///
/// Public because every layer that offers a timed wait over the simulated
/// fabric needs the same discipline — the MPI core's
/// `SetupRequest::wait_timeout` reuses this type for its stall-diagnosis
/// expiry.
pub struct LogicalDeadline {
    fabric: simnet::Fabric,
    start: Instant,
    budget: Duration,
    hard_cap: Duration,
    last_activity: u64,
    quiet: u32,
}

impl LogicalDeadline {
    /// Start a deadline of `budget` wall time over `fabric`.
    pub fn new(fabric: simnet::Fabric, budget: Duration) -> Self {
        let last_activity = fabric.activity();
        Self {
            fabric,
            start: Instant::now(),
            budget,
            hard_cap: budget.saturating_mul(LOGICAL_HARD_CAP),
            last_activity,
            quiet: 0,
        }
    }

    /// One poll; true once the deadline has logically expired.
    pub fn expired(&mut self) -> bool {
        let elapsed = self.start.elapsed();
        if elapsed < self.budget {
            return false;
        }
        if elapsed >= self.hard_cap {
            return true;
        }
        let activity = self.fabric.activity();
        let quiet_now = activity == self.last_activity && self.fabric.in_flight() == 0;
        self.last_activity = activity;
        self.quiet = if quiet_now { self.quiet + 1 } else { 0 };
        self.quiet >= LOGICAL_GRACE
    }
}

/// Render a registry pset change as the event delivered to subscribers.
/// The change's causal context rides along (local delivery only), so a
/// rebuild triggered by the event can link the mutating `pset.update` span.
fn pset_change_event(change: &PsetChange) -> Event {
    let code = match change.kind {
        PsetChangeKind::Defined => EventCode::PsetDefined,
        PsetChangeKind::Membership => EventCode::PsetMembership,
        PsetChangeKind::Deleted => EventCode::PsetDeleted,
    };
    Event::new(code, None)
        .with(keys::PSET_NAME, change.name.as_str())
        .with(keys::PSET_EPOCH, change.epoch)
        .with(keys::PSET_MEMBERS, change.members.as_ref().clone())
        .with_ctx(change.ctx)
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv_u64(mut h: u64, v: u64) -> u64 {
    h ^= v;
    h.wrapping_mul(FNV_PRIME)
}

/// An in-flight nonblocking KVS fetch (see [`PmixServer::fetch_begin`]).
/// Drive with [`PmixServer::fetch_poll`] until it returns `Some`; park
/// between polls with [`PmixServer::fetch_park`].
pub struct FetchTicket {
    proc: ProcId,
    key: String,
    /// KVS shard holding the reply slot / data tables for `proc`.
    shard: usize,
    mode: FetchMode,
}

impl FetchTicket {
    /// The process whose data this ticket is fetching.
    pub fn proc(&self) -> &ProcId {
        &self.proc
    }

    /// The key being fetched.
    pub fn key(&self) -> &str {
        &self.key
    }
}

enum FetchMode {
    /// Answered at begin time; `fetch_poll` hands the value out once.
    Resolved(Option<PmixValue>),
    /// Owner is a local client that has not committed yet.
    LocalWait,
    /// One dmodex round trip in flight; the token names the reply slot.
    Remote { token: u64 },
    /// Terminal: the result has been handed out (or the ticket cancelled).
    Done,
}

/// Per-shard occupancy snapshot of one server (see
/// [`PmixServer::shard_occupancy`]). Indexed `0..SERVER_SHARDS`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerShardOccupancy {
    /// Live KV pairs per kvs shard (local commits + remote cache).
    pub kvs_entries: Vec<usize>,
    /// In-flight collective operations per ops shard.
    pub ops_live: Vec<usize>,
    /// Retained collective epoch counters per ops shard.
    pub epochs_retained: Vec<usize>,
}

/// A per-node PMIx server.
pub struct PmixServer {
    node: NodeId,
    registry: NamespaceRegistry,
    sender: EndpointSender,
    ops_shards: Vec<Shard<OpsShard>>,
    kvs_shards: Vec<Shard<KvsShard>>,
    ctl: Mutex<CtlState>,
    ctl_cv: Condvar,
    // Processes known dead. Read on every hot path, written once per
    // failure — a reader-writer lock keeps readers from serializing.
    dead: RwLock<HashSet<ProcId>>,
    // Correlation-token mint; tokens encode their kvs shard
    // (`token % SERVER_SHARDS`) so reply handlers route shard-locally.
    next_token: AtomicU64,
    // In-flight PGCID requests: token -> (op the reply belongs to, plus the
    // open `pgcid.request` span that times the RM round-trip).
    pgcid_waiting: Mutex<HashMap<u64, (OpId, Option<obs::Span>)>>,
    // Single-request coalescing: ops queued behind the in-flight RM trip.
    pgcid_ctl: Mutex<PgcidCtl>,
    // Locally pooled PGCIDs (surplus of RM block grants).
    pgcid_pool: Mutex<VecDeque<u64>>,
    // Block size requested from the RM per miss (>= 1).
    pgcid_block: AtomicU64,
    // Resource-manager service: present only on the universe's lead server.
    rm_next_pgcid: Option<AtomicU64>,
    // Per-RPC processing cost (control-plane software overhead).
    rpc_processing: Duration,
    metrics: ServerMetrics,
}

impl PmixServer {
    /// Create a server bound to `endpoint` (whose mailbox must be drained by
    /// [`PmixServer::run_loop`]). `is_rm` marks the lead server hosting the
    /// resource-manager services.
    pub fn new(endpoint: &Endpoint, registry: NamespaceRegistry, is_rm: bool) -> Arc<Self> {
        registry.register_server(endpoint.node(), endpoint.id());
        Arc::new(Self {
            node: endpoint.node(),
            registry,
            sender: endpoint.sender(),
            ops_shards: (0..SERVER_SHARDS).map(|_| Shard::new(OpsShard::default())).collect(),
            kvs_shards: (0..SERVER_SHARDS).map(|_| Shard::new(KvsShard::default())).collect(),
            ctl: Mutex::new(CtlState::default()),
            ctl_cv: Condvar::new(),
            dead: RwLock::new(HashSet::new()),
            next_token: AtomicU64::new(1),
            pgcid_waiting: Mutex::new(HashMap::new()),
            pgcid_ctl: Mutex::new(PgcidCtl::default()),
            pgcid_pool: Mutex::new(VecDeque::new()),
            pgcid_block: AtomicU64::new(DEFAULT_PGCID_BLOCK),
            rm_next_pgcid: is_rm.then(|| AtomicU64::new(1)),
            rpc_processing: Duration::ZERO,
            metrics: ServerMetrics::new(endpoint.obs(), endpoint.node()),
        })
    }

    /// Set the per-message RPC processing cost (see
    /// `simnet::CostModel::rpc_processing`). Call before `run_loop`.
    pub fn set_rpc_processing(self: &mut Arc<Self>, cost: Duration) {
        if let Some(me) = Arc::get_mut(self) {
            me.rpc_processing = cost;
        }
    }

    /// Set how many PGCIDs to request from the RM per pool miss. `1`
    /// reproduces the paper's one-round-trip-per-construct behavior;
    /// larger values amortize the RM RPC across future constructs led by
    /// this server. Clamped to at least 1.
    pub fn set_pgcid_block(&self, block: u64) {
        self.pgcid_block.store(block.max(1), Ordering::Relaxed);
    }

    /// Current PGCID block-grant size (see [`PmixServer::set_pgcid_block`]).
    pub fn pgcid_block(&self) -> u64 {
        self.pgcid_block.load(Ordering::Relaxed)
    }

    /// PGCIDs currently parked in the local pool.
    pub fn pgcid_pool_len(&self) -> usize {
        self.pgcid_pool.lock().len()
    }

    /// Deterministic occupancy snapshot of this server's sharded state,
    /// for the introspection flight recorder: per-shard live KV-pair
    /// counts, per-shard in-flight collective-op counts, and per-shard
    /// retained epoch-counter counts (bounded by [`EPOCH_RETENTION_CAP`]).
    pub fn shard_occupancy(&self) -> ServerShardOccupancy {
        let mut kvs_entries = Vec::with_capacity(SERVER_SHARDS);
        for shard in &self.kvs_shards {
            let ks = shard.state.lock();
            kvs_entries.push(
                ks.kvs_local.values().map(|m| m.len()).sum::<usize>()
                    + ks.kvs_cache.values().map(|m| m.len()).sum::<usize>(),
            );
        }
        let mut ops_live = Vec::with_capacity(SERVER_SHARDS);
        let mut epochs_retained = Vec::with_capacity(SERVER_SHARDS);
        for shard in &self.ops_shards {
            let os = shard.state.lock();
            ops_live.push(os.ops.len());
            epochs_retained.push(os.epochs.len());
        }
        ServerShardOccupancy { kvs_entries, ops_live, epochs_retained }
    }

    /// The node this server manages.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// This server's fabric endpoint id.
    pub fn endpoint_id(&self) -> EndpointId {
        self.sender.id()
    }

    /// The shared namespace registry.
    pub fn registry(&self) -> &NamespaceRegistry {
        &self.registry
    }

    /// The observability registry this server records into.
    pub fn obs(&self) -> Arc<obs::Registry> {
        self.metrics.obs.clone()
    }

    /// Drain `endpoint` until it is killed; must run on a dedicated thread.
    pub fn run_loop(self: &Arc<Self>, endpoint: &Endpoint) {
        while let Ok(env) = endpoint.recv() {
            if let Some(msg) = ServerMsg::decode(&env.payload) {
                // Control-plane software overhead: the server's event loop
                // processes one RPC at a time, each costing real work in
                // the reference implementation.
                let t0 = Instant::now();
                if !self.rpc_processing.is_zero() {
                    std::thread::sleep(self.rpc_processing);
                }
                self.handle_ctx(msg, env.ctx);
                self.metrics.rpc_handled.inc();
                self.metrics.rpc_ns.record(t0.elapsed());
            }
        }
    }

    // ---------------------------------------------------------------
    // Shard routing
    // ---------------------------------------------------------------

    /// Ops shard of a collective: every epoch of one `(kind, name, mhash)`
    /// lands on the same shard, so its epoch counter lives there too.
    fn ops_shard_of(kind: OpKind, name: &str, mhash: u64) -> usize {
        let k = match kind {
            OpKind::Fence => 1u64,
            OpKind::GroupConstruct => 2,
            OpKind::GroupDestruct => 3,
        };
        let mut h = fnv_u64(FNV_OFFSET, k);
        h = fnv_bytes(h, name.as_bytes());
        h = fnv_u64(h, mhash);
        (h % SERVER_SHARDS as u64) as usize
    }

    /// Kvs shard of a process (owner of the data being read or written).
    fn kvs_shard_of(proc: &ProcId) -> usize {
        let mut h = fnv_bytes(FNV_OFFSET, proc.nspace().as_bytes());
        h = fnv_u64(h, proc.rank() as u64);
        (h % SERVER_SHARDS as u64) as usize
    }

    /// Mint a correlation token that routes replies to kvs shard `shard`.
    fn mint_token(&self, shard: usize) -> u64 {
        self.next_token.fetch_add(1, Ordering::Relaxed) * SERVER_SHARDS as u64 + shard as u64
    }

    // ---------------------------------------------------------------
    // Resource-lifecycle bookkeeping
    // ---------------------------------------------------------------

    /// Publish the PGCID pool's occupancy; call after every pool mutation.
    fn publish_pool_gauge(&self, len: usize) {
        self.metrics.pgcid_pool_len.set(len as i64);
    }

    /// Publish shard `ki`'s live KV-pair count; call (under the shard lock)
    /// after every mutation of its tables.
    fn publish_kvs_gauge(&self, ki: usize, ks: &KvsShard) {
        let n = ks.kvs_local.values().map(|m| m.len()).sum::<usize>()
            + ks.kvs_cache.values().map(|m| m.len()).sum::<usize>();
        self.metrics.shard(ki).kvs_entries.set(n as i64);
    }

    /// Advance the epoch counter for `key`, then enforce the retention
    /// bound. New keys join the deterministic first-use eviction queue.
    fn bump_epoch(&self, st: &mut OpsShard, key: (OpKind, String, u64)) {
        if !st.epochs.contains_key(&key) {
            st.epoch_order.push_back(key.clone());
        }
        *st.epochs.entry(key).or_insert(0) += 1;
        self.bound_epochs(st);
    }

    /// Evict epoch counters past [`EPOCH_RETENTION_CAP`], oldest first-use
    /// first, skipping keys whose collective still has a live op (their
    /// counter is what disambiguates the in-flight instance).
    fn bound_epochs(&self, st: &mut OpsShard) {
        let mut scan = st.epoch_order.len();
        while st.epochs.len() > EPOCH_RETENTION_CAP && scan > 0 {
            scan -= 1;
            let Some(key) = st.epoch_order.pop_front() else { break };
            let live = st
                .ops
                .keys()
                .any(|o| o.kind == key.0 && o.name == key.1 && o.mhash == key.2);
            if live {
                st.epoch_order.push_back(key);
            } else {
                st.epochs.remove(&key);
                self.metrics.epochs_evicted.inc();
            }
        }
    }

    // ---------------------------------------------------------------
    // Local client entry points (the "shared-memory RPC" surface)
    // ---------------------------------------------------------------

    /// Register a local client.
    pub fn attach_client(&self, proc: &ProcId) {
        self.ctl.lock().local_clients.insert(proc.clone());
    }

    /// Deregister a local client (normal finalize — not a failure).
    pub fn detach_client(&self, proc: &ProcId) {
        let mut st = self.ctl.lock();
        st.local_clients.remove(proc);
        st.subs.retain(|(p, _)| p != proc);
    }

    /// Commit key-value data for a local client, waking any parked dmodex
    /// requests and local getters.
    pub fn commit_kvs(&self, proc: &ProcId, data: HashMap<String, PmixValue>) {
        let kshard = &self.kvs_shards[Self::kvs_shard_of(proc)];
        let mut ks = kshard.state.lock();
        ks.kvs_local.entry(proc.clone()).or_default().extend(data);
        // Serve parked remote fetches that are now satisfiable. Parked
        // entries live in the owner's shard, so this drain sees them all.
        let mut served = Vec::new();
        let mut still_parked = Vec::new();
        let parked = std::mem::take(&mut ks.dmodex_parked);
        for (p, key, reply_to, token) in parked {
            let val = ks.kvs_local.get(&p).and_then(|m| m.get(&key)).cloned();
            match val {
                Some(v) => served.push((reply_to, token, v)),
                None => still_parked.push((p, key, reply_to, token)),
            }
        }
        ks.dmodex_parked = still_parked;
        self.publish_kvs_gauge(Self::kvs_shard_of(proc), &ks);
        drop(ks);
        for (reply_to, token, v) in served {
            let _ = self
                .sender
                .send(reply_to, ServerMsg::DmodexReply { token, value: Some(v) }.encode());
        }
        kshard.cv.notify_all();
    }

    /// Fetch `key` of `proc`: from local/cached data if available, else via
    /// direct modex from the owning server, waiting up to `timeout`.
    pub fn fetch(&self, proc: &ProcId, key: &str, timeout: Duration) -> Result<PmixValue> {
        let deadline = Instant::now() + timeout;
        let entry = self.registry.locate(proc)?;
        let local = entry.node == self.node;
        let ki = Self::kvs_shard_of(proc);
        let kshard = &self.kvs_shards[ki];
        let mut ks = kshard.state.lock();
        loop {
            let found = ks
                .kvs_local
                .get(proc)
                .and_then(|m| m.get(key))
                .or_else(|| ks.kvs_cache.get(proc).and_then(|m| m.get(key)))
                .cloned();
            if let Some(v) = found {
                return Ok(v);
            }
            if local {
                // Owner is here but has not committed yet: wait for commit.
                if kshard.cv.wait_until(&mut ks, deadline).timed_out() {
                    return Err(PmixError::Timeout);
                }
                continue;
            }
            // Remote: issue (or re-check) a dmodex fetch. The token routes
            // the reply back to this shard.
            let token = self.mint_token(ki);
            ks.dmodex_waiting.insert(token, None);
            let owner = self
                .registry
                .server_of(entry.node)
                .ok_or(PmixError::Unreachable)?;
            drop(ks);
            let msg = ServerMsg::DmodexReq {
                reply_to: self.sender.id(),
                token,
                proc: proc.clone(),
                key: key.to_owned(),
            };
            self.sender
                .send(owner, msg.encode())
                .map_err(|_| PmixError::Unreachable)?;
            ks = kshard.state.lock();
            loop {
                if let Some(slot) = ks.dmodex_waiting.get(&token) {
                    if let Some(reply) = slot.clone() {
                        ks.dmodex_waiting.remove(&token);
                        return match reply {
                            Some(v) => {
                                ks.kvs_cache
                                    .entry(proc.clone())
                                    .or_default()
                                    .insert(key.to_owned(), v.clone());
                                self.publish_kvs_gauge(ki, &ks);
                                Ok(v)
                            }
                            None => Err(PmixError::NotFound(format!("{proc}/{key}"))),
                        };
                    }
                }
                if kshard.cv.wait_until(&mut ks, deadline).timed_out() {
                    ks.dmodex_waiting.remove(&token);
                    return Err(PmixError::Timeout);
                }
            }
        }
    }

    /// Begin a nonblocking fetch of `key` from `proc`'s business-card data:
    /// the ticket-based twin of [`PmixServer::fetch`] for callers that must
    /// not park a thread (the lazy-init peer resolver drives these from the
    /// PML progress loop). Resolution order mirrors `fetch`:
    ///
    /// * the owner must still be registered — a retired/deregistered peer
    ///   yields `NotFound` immediately, never a stale cached card;
    /// * a peer already known dead yields `ProcTerminated`;
    /// * locally-committed or cached data resolves the ticket at begin time;
    /// * a local-but-uncommitted owner produces a ticket that waits for the
    ///   owner's `commit_kvs` (wait-for-publish semantics);
    /// * a remote owner issues one dmodex round trip whose reply lands in
    ///   the ticket's shard slot.
    pub fn fetch_begin(&self, proc: &ProcId, key: &str) -> Result<FetchTicket> {
        let entry = self.registry.locate(proc)?;
        if self.dead.read().contains(proc) {
            return Err(PmixError::ProcTerminated(proc.clone()));
        }
        let ki = Self::kvs_shard_of(proc);
        let kshard = &self.kvs_shards[ki];
        let mut ks = kshard.state.lock();
        let found = ks
            .kvs_local
            .get(proc)
            .and_then(|m| m.get(key))
            .or_else(|| ks.kvs_cache.get(proc).and_then(|m| m.get(key)))
            .cloned();
        let mode = match found {
            Some(v) => FetchMode::Resolved(Some(v)),
            None if entry.node == self.node => FetchMode::LocalWait,
            None => {
                let token = self.mint_token(ki);
                ks.dmodex_waiting.insert(token, None);
                let owner = self
                    .registry
                    .server_of(entry.node)
                    .ok_or(PmixError::Unreachable)?;
                drop(ks);
                let msg = ServerMsg::DmodexReq {
                    reply_to: self.sender.id(),
                    token,
                    proc: proc.clone(),
                    key: key.to_owned(),
                };
                self.sender.send(owner, msg.encode()).map_err(|_| {
                    self.kvs_shards[ki].state.lock().dmodex_waiting.remove(&token);
                    PmixError::Unreachable
                })?;
                return Ok(FetchTicket {
                    proc: proc.clone(),
                    key: key.to_owned(),
                    shard: ki,
                    mode: FetchMode::Remote { token },
                });
            }
        };
        Ok(FetchTicket { proc: proc.clone(), key: key.to_owned(), shard: ki, mode })
    }

    /// Poll a ticket from [`PmixServer::fetch_begin`]: `None` while the
    /// publish/dmodex is still outstanding, `Some(result)` exactly once at
    /// the terminal state. A peer that dies or is deregistered mid-flight
    /// terminates the ticket with the matching typed error — a lazy get
    /// never silently degrades to a stale answer.
    pub fn fetch_poll(&self, ticket: &mut FetchTicket) -> Option<Result<PmixValue>> {
        if let FetchMode::Resolved(slot) = &mut ticket.mode {
            return slot.take().map(Ok);
        }
        if self.dead.read().contains(&ticket.proc) {
            self.fetch_cancel(ticket);
            return Some(Err(PmixError::ProcTerminated(ticket.proc.clone())));
        }
        if let Err(e) = self.registry.locate(&ticket.proc) {
            self.fetch_cancel(ticket);
            return Some(Err(e));
        }
        let kshard = &self.kvs_shards[ticket.shard];
        let mut ks = kshard.state.lock();
        match ticket.mode {
            FetchMode::Resolved(_) => unreachable!("handled above"),
            FetchMode::LocalWait => {
                let found = ks
                    .kvs_local
                    .get(&ticket.proc)
                    .and_then(|m| m.get(&ticket.key))
                    .cloned();
                found.map(|v| {
                    ticket.mode = FetchMode::Done;
                    Ok(v)
                })
            }
            FetchMode::Remote { token } => {
                let reply = match ks.dmodex_waiting.get(&token) {
                    Some(Some(reply)) => {
                        let reply = reply.clone();
                        ks.dmodex_waiting.remove(&token);
                        reply
                    }
                    Some(None) => return None,
                    // Slot gone (purge raced us): fall back to the cache.
                    None => ks
                        .kvs_cache
                        .get(&ticket.proc)
                        .and_then(|m| m.get(&ticket.key))
                        .cloned(),
                };
                ticket.mode = FetchMode::Done;
                match reply {
                    Some(v) => {
                        ks.kvs_cache
                            .entry(ticket.proc.clone())
                            .or_default()
                            .insert(ticket.key.clone(), v.clone());
                        self.publish_kvs_gauge(ticket.shard, &ks);
                        Some(Ok(v))
                    }
                    None => Some(Err(PmixError::NotFound(format!(
                        "{}/{}",
                        ticket.proc, ticket.key
                    )))),
                }
            }
            FetchMode::Done => None,
        }
    }

    /// Park the calling thread on the ticket's shard condvar for at most
    /// `limit` (condvar-grade wakeup on the owner's commit or the dmodex
    /// reply, instead of a poll sleep). A resolved ticket returns at once.
    pub fn fetch_park(&self, ticket: &FetchTicket, limit: Duration) {
        match ticket.mode {
            FetchMode::Resolved(_) | FetchMode::Done => {}
            FetchMode::LocalWait | FetchMode::Remote { .. } => {
                let kshard = &self.kvs_shards[ticket.shard];
                let mut ks = kshard.state.lock();
                kshard.cv.wait_for(&mut ks, limit);
            }
        }
    }

    /// Abandon an in-flight ticket, releasing its reply slot (a late
    /// dmodex reply for a removed token is ignored by the handler).
    fn fetch_cancel(&self, ticket: &mut FetchTicket) {
        if let FetchMode::Remote { token } = ticket.mode {
            self.kvs_shards[ticket.shard].state.lock().dmodex_waiting.remove(&token);
        }
        ticket.mode = FetchMode::Done;
    }

    /// Drop every business card of `proc` — committed data, remote cache
    /// entries, and parked dmodex fetches (answered "not found" rather than
    /// left to time out) — without declaring the process dead. This is the
    /// graceful-retirement twin of the purge inside
    /// [`PmixServer::on_proc_failed`]: `retire_ranks` produces no failure
    /// event, so without this call a retired rank's card would sit in the
    /// KVS forever and a lazy get could resolve it to a stale endpoint.
    pub fn purge_kvs_for(&self, proc: &ProcId) {
        let ki = Self::kvs_shard_of(proc);
        let kshard = &self.kvs_shards[ki];
        let mut ks = kshard.state.lock();
        let purged = ks.kvs_local.remove(proc).map(|m| m.len()).unwrap_or(0)
            + ks.kvs_cache.remove(proc).map(|m| m.len()).unwrap_or(0);
        let parked = std::mem::take(&mut ks.dmodex_parked);
        let (gone_parked, live_parked): (Vec<_>, Vec<_>) =
            parked.into_iter().partition(|(p, ..)| p == proc);
        ks.dmodex_parked = live_parked;
        self.publish_kvs_gauge(ki, &ks);
        drop(ks);
        if purged > 0 {
            self.metrics.kvs_purged.add(purged as u64);
        }
        for (_, _, reply_to, token) in gone_parked {
            let _ = self
                .sender
                .send(reply_to, ServerMsg::DmodexReply { token, value: None }.encode());
        }
        kshard.cv.notify_all();
    }

    /// Snapshot of everything a local client has committed so far.
    pub fn local_committed(&self, proc: &ProcId) -> Option<HashMap<String, PmixValue>> {
        self.kvs_shards[Self::kvs_shard_of(proc)].state.lock().kvs_local.get(proc).cloned()
    }

    /// Subscribe a local client to events.
    pub fn subscribe(&self, proc: &ProcId, codes: Option<Vec<EventCode>>) -> EventStream {
        let (sub, stream) = EventStream::pair(codes);
        self.ctl.lock().subs.push((proc.clone(), sub));
        stream
    }

    /// Subscribe a local client to pset change events, with replay: the
    /// registry's current table is rendered as synthetic `PsetDefined` /
    /// `PsetDeleted` events (at their real epochs) into the stream before
    /// the subscription goes live. Replay and registration both happen
    /// under the registry's emission lock, and live deliveries
    /// ([`PmixServer::handle_pset_change`]) hold the same lock — so a late
    /// subscriber sees every change exactly once, mirroring the
    /// `watch_failures` idiom in simnet.
    pub fn subscribe_psets(&self, proc: &ProcId) -> EventStream {
        let codes =
            vec![EventCode::PsetDefined, EventCode::PsetMembership, EventCode::PsetDeleted];
        self.registry.with_pset_replay(|replay| {
            let (sub, stream) = EventStream::pair(Some(codes));
            for change in replay {
                let _ = sub.tx.send(pset_change_event(change));
            }
            self.ctl.lock().subs.push((proc.clone(), sub));
            stream
        })
    }

    /// Deliver one pset change to this server's matching subscribers.
    /// Called by the universe's registry listener, synchronously, under the
    /// registry emission lock (see [`PmixServer::subscribe_psets`]).
    pub fn handle_pset_change(&self, change: &PsetChange) {
        let event = pset_change_event(change);
        let st = self.ctl.lock();
        for (_, sub) in &st.subs {
            if sub.matches(event.code) {
                let _ = sub.tx.send(event.clone());
            }
        }
    }

    /// Enter a collective operation (stage 1: local fan-in).
    ///
    /// * `members` — the full, caller-supplied membership (will be sorted).
    /// * `kvs` — this participant's data contribution (fence with collect).
    ///
    /// Blocks until the collective completes, fails or times out.
    pub fn coll_enter(
        &self,
        kind: OpKind,
        name: &str,
        members: &[ProcId],
        directives: &GroupDirectives,
        me: &ProcId,
        kvs: HashMap<String, PmixValue>,
    ) -> Result<CollOutcome> {
        let pending = self.coll_begin(kind, name, members, directives, me, kvs)?;
        self.coll_wait(pending)
    }

    /// Nonblocking collective entry: run the local fan-in and return a
    /// pollable handle instead of parking the thread. Completion is driven
    /// by the message loop exactly as for the blocking path; the handle
    /// merely decides *when this participant observes* the result —
    /// [`PmixServer::coll_poll`] to test, [`PmixServer::coll_wait`] to
    /// block, [`PmixServer::coll_abandon`] to walk away.
    pub fn coll_begin(
        &self,
        kind: OpKind,
        name: &str,
        members: &[ProcId],
        directives: &GroupDirectives,
        me: &ProcId,
        kvs: HashMap<String, PmixValue>,
    ) -> Result<PendingColl> {
        if members.is_empty() {
            return Err(PmixError::BadParam("empty membership".into()));
        }
        let mut sorted: Vec<ProcId> = members.to_vec();
        sorted.sort();
        sorted.dedup();
        if !sorted.contains(me) {
            return Err(PmixError::NotMember);
        }
        let mhash = membership_hash(&sorted);
        let key = (kind, name.to_owned(), mhash);

        // Resolve the participating servers and this server's local slice.
        let mut servers = BTreeSet::new();
        let mut locals = Vec::new();
        for m in &sorted {
            let e = self.registry.locate(m)?;
            servers.insert(e.node);
            if e.node == self.node {
                locals.push(m.clone());
            }
        }

        let deadline = directives.timeout.map(|t| Instant::now() + t);
        // coll_enter is a direct method call: we are still on the client's
        // thread, so its operation span (if entered) is the causal parent
        // of this server's fan-in.
        let caller_ctx = obs::trace::current_context();

        let si = Self::ops_shard_of(kind, name, mhash);
        let shard = &self.ops_shards[si];
        let mut st = shard.state.lock();
        let epoch = *st.epochs.get(&key).unwrap_or(&0);
        let op_id = OpId { kind, name: name.to_owned(), mhash, epoch };
        // Participants may already be dead (failure observed earlier). The
        // scan covers the *full* membership, not just this server's locals:
        // a dead member homed on a remote node would otherwise stall the
        // fan-in here forever — its own server gets no local arrival to
        // detect the death against, and the failure sweep ran before this
        // op existed. The failure bridge replicates the dead set to every
        // server synchronously before any pset event fires, so each server
        // reaches the same verdict at its own first arrival.
        let dead_members: Vec<ProcId> = {
            let dead = self.dead.read();
            sorted.iter().filter(|p| dead.contains(*p)).cloned().collect()
        };
        let op = st.ops.entry(op_id.clone()).or_insert_with(OpState::new);
        if op.expected_local.is_none() {
            // First local arrival opens the fan-in stage span. The span is
            // parentless — it adopts the trace of the first arriving client
            // it links, so server work joins the job's trace.
            op.fanin = Some(self.metrics.obs.span_with_parent(
                &self.metrics.process,
                "group.fanin",
                &op_id.to_string(),
                None,
            ));
            op.expected_local = Some(locals.clone());
            op.membership = sorted.clone();
            op.expected_servers = servers.clone();
            op.need_pgcid = kind == OpKind::GroupConstruct && directives.request_pgcid;
            op.error_on_early_termination = directives.error_on_early_termination;
            op.notify_on_termination = directives.notify_on_termination;
            if let Some(p) = op.pending_pgcid.take() {
                op.pgcid = Some(p);
            }
            for d in dead_members {
                if op.error_on_early_termination {
                    op.result = Some(Err(PmixError::ProcTerminated(d)));
                } else if let Some(exp) = op.expected_local.as_mut() {
                    // Tolerant ops (fences) just stop expecting the dead
                    // local; a remote dead member is its own server's
                    // problem and a no-op here.
                    exp.retain(|p| p != &d);
                }
            }
        }
        if op.result.is_none() {
            if op.arrived_local.contains(me) {
                return Err(PmixError::BadParam(format!("{me} entered {op_id} twice")));
            }
            op.arrived_local.push(me.clone());
            if let Some(fanin) = op.fanin.as_mut() {
                if let Some(ctx) = caller_ctx {
                    fanin.link(ctx);
                }
                fanin.add_work(1);
            }
            if !kvs.is_empty() {
                op.local_kvs.push((me.clone(), kvs));
            }
        }
        self.advance_op(&mut st, si, &op_id);
        drop(st);
        self.try_complete(&op_id);
        Ok(PendingColl {
            op_id,
            si,
            me: me.clone(),
            deadline,
            directives: directives.clone(),
            finished: false,
        })
    }

    /// Test an in-flight collective. `Some(result)` exactly once when this
    /// participant's observation of the outcome happens; `None` while still
    /// in flight. The poll is also the timeout clock for nonblocking
    /// callers: a poll past the deadline aborts the collective everywhere
    /// (the failure surfaces on the next poll, once the Err result posts).
    pub fn coll_poll(&self, pc: &mut PendingColl) -> Option<Result<CollOutcome>> {
        if pc.finished {
            return Some(Err(PmixError::BadParam(format!(
                "{} polled a finished collective {}",
                pc.me, pc.op_id
            ))));
        }
        let shard = &self.ops_shards[pc.si];
        let mut st = shard.state.lock();
        let Some(op) = st.ops.get(&pc.op_id) else {
            // The op completed and was reaped without counting us as a
            // live waiter: this process was declared dead while the
            // collective was in flight (a live waiter is always part of
            // the expected count, so the op cannot be reaped under it).
            pc.finished = true;
            return Some(Err(PmixError::ProcTerminated(pc.me.clone())));
        };
        if op.result.is_some() {
            let res = self.observe_result_locked(&mut st, &pc.op_id);
            drop(st);
            pc.finished = true;
            if let Ok(out) = &res {
                self.finish_group_bookkeeping(pc.op_id.kind, &pc.op_id.name, out, &pc.directives);
            }
            return Some(res);
        }
        if pc.deadline.map(|d| Instant::now() >= d).unwrap_or(false) {
            // Abort the collective everywhere; next poll observes the Err.
            self.fail_op_locked(&mut st, pc.si, &pc.op_id, AbortReason::Timeout);
            let peers = st
                .ops
                .get(&pc.op_id)
                .map(|o| o.expected_servers.clone())
                .unwrap_or_default();
            drop(st);
            self.broadcast(&peers, &ServerMsg::CollAbort {
                op: pc.op_id.clone(),
                reason: AbortReason::Timeout,
            });
        }
        None
    }

    /// Block until an in-flight collective completes, fails or times out
    /// (the blocking [`PmixServer::coll_enter`] is exactly `coll_begin` +
    /// this).
    pub fn coll_wait(&self, mut pc: PendingColl) -> Result<CollOutcome> {
        let shard = &self.ops_shards[pc.si];
        loop {
            if let Some(res) = self.coll_poll(&mut pc) {
                return res;
            }
            let mut st = shard.state.lock();
            // Re-check under the lock so a completion between the poll and
            // the wait cannot become a lost wakeup.
            let in_flight =
                st.ops.get(&pc.op_id).map(|o| o.result.is_none()).unwrap_or(false);
            if in_flight {
                match pc.deadline {
                    Some(d) => {
                        let _ = shard.cv.wait_until(&mut st, d);
                    }
                    None => shard.cv.wait(&mut st),
                }
            }
        }
    }

    /// Block until an in-flight collective is *ready to observe* (or
    /// `limit` elapses) without observing it: the setup engine's blocking
    /// wrappers park here between polls, so an i-variant followed by
    /// `wait()` costs a condvar wake — not a poll-spin — exactly like the
    /// native blocking call.
    pub fn coll_park(&self, pc: &PendingColl, limit: Duration) {
        if pc.finished {
            return;
        }
        let shard = &self.ops_shards[pc.si];
        let mut st = shard.state.lock();
        let ready = st
            .ops
            .get(&pc.op_id)
            .map(|o| o.result.is_some())
            .unwrap_or(true);
        if ready {
            return;
        }
        let cap = Instant::now() + limit;
        let until = pc.deadline.map(|d| d.min(cap)).unwrap_or(cap);
        let _ = shard.cv.wait_until(&mut st, until);
    }

    /// Walk away from an in-flight collective without observing its result.
    /// The op itself still completes (or fails) server-side — abandonment
    /// only transfers this participant's observation duty so the op state
    /// can be reaped once everyone else has seen the outcome.
    pub fn coll_abandon(&self, pc: &mut PendingColl) {
        if pc.finished {
            return;
        }
        pc.finished = true;
        self.metrics.coll_abandoned.inc();
        let shard = &self.ops_shards[pc.si];
        let mut st = shard.state.lock();
        if !st.ops.contains_key(&pc.op_id) {
            return;
        }
        if st.ops.get(&pc.op_id).map(|o| o.result.is_some()).unwrap_or(false) {
            // Result already posted: consume our observation (dropping the
            // outcome) so the last live waiter can still reap the op.
            let _ = self.observe_result_locked(&mut st, &pc.op_id);
        } else {
            let op = st.ops.get_mut(&pc.op_id).expect("present");
            op.abandoned += 1;
        }
    }

    /// Consume one waiter's observation of a finished op, reaping the op
    /// entry (and bumping its epoch, when fan-in never did) once every
    /// live expected local has either observed or abandoned.
    fn observe_result_locked(
        &self,
        st: &mut OpsShard,
        op_id: &OpId,
    ) -> std::result::Result<CollOutcome, PmixError> {
        let remove = {
            // Dead participants never come back to observe the result;
            // count only live expected locals.
            let dead = self.dead.read();
            let op = st.ops.get_mut(op_id).expect("present");
            op.observed += 1;
            let expected = op
                .expected_local
                .as_ref()
                .map(|e| e.iter().filter(|p| !dead.contains(*p)).count())
                .unwrap_or(0);
            op.observed + op.abandoned >= expected
        };
        let res = st.ops.get(op_id).and_then(|o| o.result.clone()).expect("result present");
        if remove {
            let op = st.ops.remove(op_id).expect("present");
            if !op.epoch_bumped {
                self.bump_epoch(st, (op_id.kind, op_id.name.clone(), op_id.mhash));
            }
        }
        res
    }

    /// Reap an op whose result has posted but whose remaining waiters all
    /// abandoned — nobody is left to call `observe_result_locked`. A no-op
    /// for ops with zero abandoners (the last live waiter reaps those,
    /// exactly as before nonblocking entry existed).
    fn reap_if_fully_abandoned(&self, st: &mut OpsShard, op_id: &OpId) {
        let remove = {
            let dead = self.dead.read();
            let Some(op) = st.ops.get(op_id) else { return };
            if op.result.is_none() || op.abandoned == 0 {
                return;
            }
            let expected = op
                .expected_local
                .as_ref()
                .map(|e| e.iter().filter(|p| !dead.contains(*p)).count())
                .unwrap_or(0);
            op.observed + op.abandoned >= expected
        };
        if remove {
            let op = st.ops.remove(op_id).expect("present");
            if !op.epoch_bumped {
                self.bump_epoch(st, (op_id.kind, op_id.name.clone(), op_id.mhash));
            }
        }
    }

    fn finish_group_bookkeeping(
        &self,
        kind: OpKind,
        name: &str,
        out: &CollOutcome,
        directives: &GroupDirectives,
    ) {
        match kind {
            OpKind::GroupConstruct => {
                self.ctl.lock().groups.insert(
                    name.to_owned(),
                    GroupInfo {
                        members: out.members.clone(),
                        pgcid: out.pgcid,
                        notify_on_termination: directives.notify_on_termination,
                    },
                );
            }
            OpKind::GroupDestruct => {
                // The first local completer does this server's bookkeeping
                // (`remove` is idempotent across the other completers).
                let info = self.ctl.lock().groups.remove(name);
                let Some(info) = info else { return };
                self.maybe_recycle_pgcid(&info, out);
            }
            OpKind::Fence => {}
        }
    }

    /// Lifecycle GC: a destructed group's PGCID is safe to hand to a future
    /// construct once no communicator can still be derived from it (the
    /// client layer guarantees that by running the destruct only when the
    /// last communicator of the family is freed). Exactly one server — the
    /// lead participant, lowest node among the destruct's surviving members
    /// — returns the id to its local pool, the same pool RM block grants
    /// feed, so the next construct led here reuses it without RM traffic.
    ///
    /// Skipped entirely when any construct-time member has been declared
    /// dead: per-server dead sets can briefly diverge during a failure, and
    /// leaking one id is always safe while recycling it twice (two live
    /// groups sharing a PGCID) never is.
    fn maybe_recycle_pgcid(&self, info: &GroupInfo, out: &CollOutcome) {
        let Some(pgcid) = info.pgcid else { return };
        {
            let dead = self.dead.read();
            if info.members.iter().any(|m| dead.contains(m)) {
                return;
            }
        }
        let lead = out
            .members
            .iter()
            .filter_map(|m| self.registry.locate(m).ok().map(|e| e.node))
            .min();
        if lead != Some(self.node) {
            return;
        }
        let len = {
            let mut pool = self.pgcid_pool.lock();
            pool.push_back(pgcid);
            pool.len()
        };
        self.publish_pool_gauge(len);
        self.metrics.pgcid_recycled.inc();
        self.metrics.obs.event(
            &self.metrics.process,
            "pmix",
            "pgcid.recycled",
            vec![("pgcid".into(), pgcid.into())],
        );
    }

    /// Stage-2 trigger: if the local fan-in just completed, record our own
    /// contribution and ship it to the other participating servers.
    fn advance_op(&self, st: &mut OpsShard, si: usize, op_id: &OpId) {
        let Some(op) = st.ops.get_mut(op_id) else { return };
        if op.result.is_some() || op.sent_contrib {
            return;
        }
        let Some(expected) = op.expected_local.as_ref() else { return };
        if op.arrived_local.len() < expected.len() {
            return;
        }
        op.fanin_done = true;
        op.epoch_bumped = true;
        op.sent_contrib = true;
        // Stage 1 complete on this server: all local participants are in.
        self.metrics.shard(si).stage_fanin.inc();
        self.metrics.stage_event(
            "group.fanin",
            op_id,
            vec![("locals".into(), (op.arrived_local.len() as u64).into())],
        );
        // Stage transition in the span DAG: fan-in closes and the exchange
        // stage opens as its child; every outgoing contribution piggybacks
        // the exchange context so peers can link their causal predecessor.
        if let Some(fanin) = op.fanin.take() {
            let fctx = fanin.context();
            fanin.end();
            op.xchg = Some(self.metrics.obs.span_with_parent(
                &self.metrics.process,
                "group.xchg",
                &op_id.to_string(),
                Some(fctx),
            ));
        }
        let xchg_ctx = op.xchg.as_ref().map(|s| s.context());
        // Batch this shard's full local contribution once, before the xchg
        // stage fans it out to every peer server.
        let contrib = Contribution {
            local_members: op.arrived_local.clone(),
            kvs: op.local_kvs.clone(),
        };
        op.contribs.insert(self.node, contrib.clone());
        let peers: Vec<NodeId> = op
            .expected_servers
            .iter()
            .copied()
            .filter(|n| *n != self.node)
            .collect();
        let key = (op_id.kind, op_id.name.clone(), op_id.mhash);
        self.bump_epoch(st, key);
        // Send outside the borrow of `op` (but still under the shard lock;
        // fabric sends never call back into this server synchronously).
        let msg = ServerMsg::CollContrib {
            op: op_id.clone(),
            from_node: self.node.0,
            contrib,
        };
        let mut sent = 0u64;
        for peer in peers {
            if let Some(ep) = self.registry.server_of(peer) {
                // Stage 2: one contribution exchange per participating peer
                // server — this is the part that scales with node count.
                self.metrics.shard(si).stage_xchg.inc();
                self.metrics.stage_event(
                    "group.xchg",
                    op_id,
                    vec![("to_node".into(), (peer.0 as u64).into())],
                );
                sent += 1;
                let _ = self.sender.send_ctx(ep, msg.encode(), xchg_ctx);
            }
        }
        if sent > 0 {
            if let Some(x) = st.ops.get_mut(op_id).and_then(|o| o.xchg.as_mut()) {
                x.add_work(sent);
            }
        }
    }

    /// Stage-3 trigger: complete the op if every contribution (and the
    /// PGCID, when needed) has arrived.
    fn try_complete(&self, op_id: &OpId) {
        let si = Self::ops_shard_of(op_id.kind, &op_id.name, op_id.mhash);
        let shard = &self.ops_shards[si];
        let mut st = shard.state.lock();
        let Some(op) = st.ops.get_mut(op_id) else { return };
        if op.result.is_some() || !op.fanin_done {
            return;
        }
        if op.contribs.len() < op.expected_servers.len() {
            return;
        }
        if op.need_pgcid && op.pgcid.is_none() {
            // The lead participating server must go get one (exactly once).
            let lead = *op.expected_servers.iter().next().expect("non-empty");
            if lead == self.node && !op.pgcid_requested {
                // Pool fast path: a previous block grant left spare ids, so
                // this construct skips the RM round trip entirely — no
                // `pgcid.request` span appears on its critical path.
                let (pooled, pool_len) = {
                    let mut pool = self.pgcid_pool.lock();
                    (pool.pop_front(), pool.len())
                };
                if let Some(pgcid) = pooled {
                    self.publish_pool_gauge(pool_len);
                    op.pgcid = Some(pgcid);
                    op.pgcid_requested = true;
                    self.metrics.pgcid_pool_hits.inc();
                    let peers = op.expected_servers.clone();
                    let bctx = op.xchg.as_ref().map(|s| s.context());
                    drop(st);
                    self.broadcast_ctx(
                        &peers,
                        &ServerMsg::CollPgcid { op: op_id.clone(), pgcid },
                        bctx,
                    );
                    self.try_complete(op_id);
                    return;
                }
                op.pgcid_requested = true;
                let xchg_ctx = op.xchg.as_ref().map(|s| s.context());
                drop(st);
                self.acquire_pgcid_for(op_id, xchg_ctx);
            }
            return;
        }
        // Complete: merge memberships, filter dead, wake everyone.
        let mut members: Vec<ProcId> = op
            .contribs
            .values()
            .flat_map(|c| c.local_members.iter().cloned())
            .collect();
        members.sort();
        members.dedup();
        let pgcid = op.pgcid;
        let all_kvs: Vec<(ProcId, HashMap<String, PmixValue>)> = op
            .contribs
            .values()
            .flat_map(|c| c.kvs.iter().cloned())
            .collect();
        {
            let dead = self.dead.read();
            members.retain(|m| !dead.contains(m));
        }
        // Install collected data into its kvs shards, batched so each
        // touched shard is locked (and its waiters woken) exactly once.
        let mut by_shard: Vec<Vec<(ProcId, HashMap<String, PmixValue>)>> =
            (0..SERVER_SHARDS).map(|_| Vec::new()).collect();
        for (proc, data) in all_kvs {
            by_shard[Self::kvs_shard_of(&proc)].push((proc, data));
        }
        for (ki, items) in by_shard.into_iter().enumerate() {
            if items.is_empty() {
                continue;
            }
            let kshard = &self.kvs_shards[ki];
            let mut ks = kshard.state.lock();
            for (proc, data) in items {
                ks.kvs_cache.entry(proc).or_default().extend(data);
            }
            self.publish_kvs_gauge(ki, &ks);
            drop(ks);
            kshard.cv.notify_all();
        }
        let n_members = members.len() as u64;
        let op = st.ops.get_mut(op_id).expect("present");
        // Close the exchange stage (linking everything that gated
        // completion) and mark the release instant as the fan-out span; its
        // context travels back to the waiting clients in the outcome.
        let xchg_ctx = op.xchg.take().map(|mut xchg| {
            for c in op.contrib_ctxs.drain(..) {
                xchg.link(c);
            }
            let ctx = xchg.context();
            xchg.end();
            ctx
        });
        let mut fanout = self.metrics.obs.span_with_parent(
            &self.metrics.process,
            "group.fanout",
            &op_id.to_string(),
            xchg_ctx,
        );
        fanout.add_work(n_members);
        let fanout_ctx = fanout.context();
        fanout.end();
        op.result = Some(Ok(CollOutcome { members, pgcid, ctx: Some(fanout_ctx) }));
        // If every local waiter already walked away, nobody will observe:
        // reap here so abandoned ops cannot park in the shard forever.
        self.reap_if_fully_abandoned(&mut st, op_id);
        drop(st);
        // Stage 3: local fan-out — waiting clients on this node are released.
        let sc = self.metrics.shard(si);
        sc.stage_fanout.inc();
        self.metrics.stage_event(
            "group.fanout",
            op_id,
            vec![
                ("members".into(), n_members.into()),
                // 0 = no PGCID involved (fences, destructs). Non-zero values
                // let checkers match every exposed PGCID to an RM allocation
                // and assert cross-server agreement per (kind, name, epoch).
                ("pgcid".into(), pgcid.unwrap_or(0).into()),
            ],
        );
        match op_id.kind {
            OpKind::Fence => sc.fence_completed.inc(),
            OpKind::GroupConstruct => sc.group_construct_completed.inc(),
            OpKind::GroupDestruct => sc.group_destruct_completed.inc(),
        }
        shard.cv.notify_all();
    }

    fn fail_op_locked(
        &self,
        st: &mut OpsShard,
        si: usize,
        op_id: &OpId,
        reason: AbortReason,
    ) {
        if let Some(op) = st.ops.get_mut(op_id) {
            if op.result.is_none() {
                op.result = Some(Err(reason.to_error()));
                self.metrics.shard(si).coll_aborted.inc();
                let why = match &reason {
                    AbortReason::Timeout => "timeout",
                    AbortReason::ProcTerminated(_) => "proc_terminated",
                };
                self.metrics
                    .stage_event("group.abort", op_id, vec![("reason".into(), why.into())]);
            }
        }
        self.reap_if_fully_abandoned(st, op_id);
        self.ops_shards[si].cv.notify_all();
    }

    fn broadcast(&self, peers: &BTreeSet<NodeId>, msg: &ServerMsg) {
        self.broadcast_ctx(peers, msg, None);
    }

    fn broadcast_ctx(
        &self,
        peers: &BTreeSet<NodeId>,
        msg: &ServerMsg,
        ctx: Option<obs::TraceContext>,
    ) {
        let encoded = msg.encode();
        for peer in peers {
            if *peer == self.node {
                continue;
            }
            if let Some(ep) = self.registry.server_of(*peer) {
                let _ = self.sender.send_ctx(ep, encoded.clone(), ctx);
            }
        }
    }

    /// RM-side block allocation: reserve `count` consecutive ids and
    /// account every one of them immediately, so the PGCID accounting
    /// invariant (ids exposed ⊆ ids allocated) holds even while pooled
    /// surplus ids sit unused on the requesting server.
    fn rm_allocate_pgcid_block(&self, count: u64) -> u64 {
        self.metrics.pgcid_allocated.add(count);
        self.rm_next_pgcid
            .as_ref()
            .expect("PGCID requested from a non-RM server")
            .fetch_add(count, Ordering::Relaxed)
    }

    /// Allocate a PGCID block and record the allocation as a `pgcid.alloc`
    /// span on this (RM) server, linked to the requesting server's context.
    fn rm_allocate_pgcid_block_traced(
        &self,
        count: u64,
        req_ctx: Option<obs::TraceContext>,
    ) -> (u64, Option<obs::TraceContext>) {
        let pgcid = self.rm_allocate_pgcid_block(count);
        let mut span = self.metrics.obs.span_with_parent(
            &self.metrics.process,
            "pgcid.alloc",
            &pgcid.to_string(),
            None,
        );
        if let Some(c) = req_ctx {
            span.link(c);
        }
        let ctx = span.context();
        span.end();
        (pgcid, Some(ctx))
    }

    /// Get a PGCID for `op_id` (lead server, pool already missed under the
    /// caller's shard lock). If an RM request is already in flight from
    /// this server, queue behind it — the construct's grant rides the same
    /// block and no second `pgcid.request` span opens. Otherwise this op
    /// pays the round trip for everyone who queues after it.
    fn acquire_pgcid_for(&self, op_id: &OpId, parent: Option<obs::TraceContext>) {
        {
            let mut ctl = self.pgcid_ctl.lock();
            if ctl.inflight {
                ctl.backlog.push_back(op_id.clone());
                drop(ctl);
                self.metrics.stage_event("pgcid.coalesced", op_id, vec![]);
                return;
            }
            // The pool may have refilled between the caller's check and
            // here (a reply races the shard lock); prefer it over a trip.
            let (pooled, len) = {
                let mut pool = self.pgcid_pool.lock();
                (pool.pop_front(), pool.len())
            };
            if let Some(pgcid) = pooled {
                drop(ctl);
                self.publish_pool_gauge(len);
                self.metrics.pgcid_pool_hits.inc();
                if let Some(unused) = self.deliver_pgcid(op_id, pgcid, None) {
                    self.repool_front(unused);
                }
                return;
            }
            ctl.inflight = true;
        }
        self.send_pgcid_request(op_id, parent, 1);
    }

    /// Ship one RM block request on behalf of `op_id`. `demand` is how many
    /// queued constructs the grant must cover; the configured block size
    /// still floors the request, so pooling behavior is unchanged.
    fn send_pgcid_request(&self, op_id: &OpId, parent: Option<obs::TraceContext>, demand: u64) {
        // The RM round-trip is the "relatively expensive operation" of
        // §III-B3 — it gets its own span, parented under the exchange
        // stage, so the critical path shows it.
        let req = self.metrics.obs.span_with_parent(
            &self.metrics.process,
            "pgcid.request",
            &op_id.to_string(),
            parent,
        );
        let req_ctx = req.context();
        let count = self.pgcid_block.load(Ordering::Relaxed).max(demand).max(1);
        let token = self.mint_token(0);
        self.pgcid_waiting.lock().insert(token, (op_id.clone(), Some(req)));
        match self.registry.rm_endpoint() {
            Some(rm_ep) if rm_ep == self.sender.id() => {
                // We *are* the RM: allocate inline.
                let (pgcid, alloc_ctx) =
                    self.rm_allocate_pgcid_block_traced(count, Some(req_ctx));
                self.handle_ctx(ServerMsg::PgcidReply { token, pgcid, count }, alloc_ctx);
            }
            Some(rm_ep) => {
                let _ = self.sender.send_ctx(
                    rm_ep,
                    ServerMsg::PgcidRequest { reply_to: self.sender.id(), token, count }
                        .encode(),
                    Some(req_ctx),
                );
            }
            None => {
                if let Some((_, Some(sp))) = self.pgcid_waiting.lock().remove(&token) {
                    sp.end();
                }
                self.pgcid_ctl.lock().inflight = false;
                let si = Self::ops_shard_of(op_id.kind, &op_id.name, op_id.mhash);
                let mut st = self.ops_shards[si].state.lock();
                self.fail_op_locked(&mut st, si, op_id, AbortReason::Timeout);
            }
        }
    }

    /// Hand a granted id to `op_id`: record it, tell the peer servers, and
    /// re-attempt completion. Returns the id back when the op is already
    /// gone (aborted and reaped while the grant was in flight) so the
    /// caller can repool it instead of leaking it.
    fn deliver_pgcid(
        &self,
        op_id: &OpId,
        pgcid: u64,
        ctx: Option<obs::TraceContext>,
    ) -> Option<u64> {
        let si = Self::ops_shard_of(op_id.kind, &op_id.name, op_id.mhash);
        let shard = &self.ops_shards[si];
        let peers = {
            let mut st = shard.state.lock();
            if let Some(op) = st.ops.get_mut(op_id) {
                op.pgcid = Some(pgcid);
                if let Some(c) = ctx {
                    op.contrib_ctxs.push(c);
                }
                Some(op.expected_servers.clone())
            } else {
                None
            }
        };
        let unused = match peers {
            Some(peers) => {
                self.broadcast_ctx(&peers, &ServerMsg::CollPgcid { op: op_id.clone(), pgcid }, ctx);
                self.try_complete(op_id);
                None
            }
            None => Some(pgcid),
        };
        shard.cv.notify_all();
        unused
    }

    /// Return an unused grant to the head of the pool (it is younger than
    /// anything pooled after it left).
    fn repool_front(&self, pgcid: u64) {
        let len = {
            let mut pool = self.pgcid_pool.lock();
            pool.push_front(pgcid);
            pool.len()
        };
        self.publish_pool_gauge(len);
    }

    /// After a block grant lands: serve queued constructs from the pool;
    /// if demand outlives the grant, ship one follow-up request sized for
    /// everything still waiting (and keep the in-flight latch held).
    fn drain_pgcid_backlog(&self) {
        loop {
            let next = {
                let mut ctl = self.pgcid_ctl.lock();
                match ctl.backlog.pop_front() {
                    Some(op) => op,
                    None => {
                        ctl.inflight = false;
                        return;
                    }
                }
            };
            // A backlogged op may have aborted and been reaped meanwhile;
            // skip it without burning a pooled id or an RM trip.
            let si = Self::ops_shard_of(next.kind, &next.name, next.mhash);
            let live = self.ops_shards[si].state.lock().ops.contains_key(&next);
            if !live {
                continue;
            }
            let (pooled, len) = {
                let mut pool = self.pgcid_pool.lock();
                (pool.pop_front(), pool.len())
            };
            match pooled {
                Some(pgcid) => {
                    self.publish_pool_gauge(len);
                    // This construct rode someone else's round trip: the
                    // counter tallies saved RM trips at delivery time (a
                    // queued op promoted to lead a follow-up request is
                    // counted as a request instead, never both).
                    self.metrics.pgcid_coalesced.inc();
                    if let Some(unused) = self.deliver_pgcid(&next, pgcid, None) {
                        self.repool_front(unused);
                    }
                }
                None => {
                    let demand = 1 + self.pgcid_ctl.lock().backlog.len() as u64;
                    let parent = self.ops_shards[si]
                        .state
                        .lock()
                        .ops
                        .get(&next)
                        .and_then(|o| o.xchg.as_ref().map(|s| s.context()));
                    self.send_pgcid_request(&next, parent, demand);
                    return;
                }
            }
        }
    }

    // ---------------------------------------------------------------
    // Asynchronous (invite/join) group construction
    // ---------------------------------------------------------------

    /// Initiator side: send invitations. Returns immediately; call
    /// [`PmixServer::invite_wait`] to collect responses.
    pub fn invite(
        &self,
        initiator: &ProcId,
        name: &str,
        invited: &[ProcId],
        directives: &GroupDirectives,
    ) -> Result<()> {
        {
            let mut st = self.ctl.lock();
            if st.invites.contains_key(name) {
                return Err(PmixError::Exists(name.to_owned()));
            }
            st.invites.insert(
                name.to_owned(),
                InviteState {
                    initiator: initiator.clone(),
                    invited: invited.to_vec(),
                    responses: HashMap::new(),
                    request_pgcid: directives.request_pgcid,
                },
            );
        }
        let event = Event::new(EventCode::GroupInvited, Some(initiator.clone()))
            .with("group", name);
        for target in invited {
            let entry = self.registry.locate(target)?;
            let msg = ServerMsg::Notify { event: event.clone(), targets: vec![target.clone()] };
            if entry.node == self.node {
                self.handle(msg);
            } else if let Some(ep) = self.registry.server_of(entry.node) {
                let _ = self.sender.send(ep, msg.encode());
            }
        }
        Ok(())
    }

    /// Invitee side: answer an invitation (routed to the initiator's server).
    pub fn join_reply(&self, name: &str, me: &ProcId, initiator: &ProcId, accept: bool) -> Result<()> {
        let entry = self.registry.locate(initiator)?;
        let msg = ServerMsg::InviteReply { group: name.to_owned(), from: me.clone(), accept };
        if entry.node == self.node {
            self.handle(msg);
        } else {
            let ep = self.registry.server_of(entry.node).ok_or(PmixError::Unreachable)?;
            self.sender.send(ep, msg.encode()).map_err(|_| PmixError::Unreachable)?;
        }
        Ok(())
    }

    /// Initiator side: wait for all invitees to respond (or die), then
    /// finalize the group. Decliners and dead invitees are dropped from the
    /// membership; the initiator is always a member.
    ///
    /// Collapsed view of [`PmixServer::invite_wait_report`]: an invitee that
    /// ran out the clock surfaces as `Err(Timeout)` here. Callers that need
    /// to distinguish declined / dead / timed-out invitees — or want the
    /// partial group despite a straggler — should use the report variant.
    pub fn invite_wait(&self, name: &str, timeout: Duration) -> Result<GroupResult> {
        let report = self.invite_wait_report(name, timeout)?;
        if report.any_timed_out() {
            // The collapsed API treats a straggler as failure: undo the
            // partial finalization the report path performed.
            self.ctl.lock().groups.remove(name);
            return Err(PmixError::Timeout);
        }
        Ok(report.group)
    }

    /// Initiator side: wait for the invitees of `name`, then finalize the
    /// group and report what happened to each invitee individually
    /// ([`InviteOutcome`]: accepted / declined / dead / timed out).
    ///
    /// Unlike [`PmixServer::invite_wait`], an unresponsive invitee does not
    /// fail the construct: at the deadline they are marked
    /// [`InviteOutcome::TimedOut`], dropped from the membership, and the
    /// group is finalized with everyone who did accept. The invitation
    /// record is consumed either way, so a straggler reply is ignored.
    pub fn invite_wait_report(&self, name: &str, timeout: Duration) -> Result<InviteReport> {
        let mut deadline = LogicalDeadline::new(self.sender.fabric(), timeout);
        let mut st = self.ctl.lock();
        loop {
            let resolved = {
                let inv = st
                    .invites
                    .get(name)
                    .ok_or_else(|| PmixError::NotFound(format!("invite {name}")))?;
                let dead = self.dead.read();
                inv.invited
                    .iter()
                    .all(|p| inv.responses.contains_key(p) || dead.contains(p))
            };
            if resolved {
                break;
            }
            if deadline.expired() {
                // Budget spent and the fabric is quiescent — no reply can
                // still be on its way. Classify stragglers as timed out.
                break;
            }
            // Poll in short slices: a reply wakes the condvar immediately,
            // an injected delay shows up as in-flight fabric traffic that
            // defers expiry (see [`LogicalDeadline`]).
            let _ = self.ctl_cv.wait_for(&mut st, LOGICAL_POLL);
        }
        let inv = st.invites.remove(name).expect("checked above");
        let outcomes: Vec<(ProcId, InviteOutcome)> = {
            let dead = self.dead.read();
            inv.invited
                .iter()
                .map(|p| {
                    let outcome = match inv.responses.get(p) {
                        Some(true) => InviteOutcome::Accepted,
                        Some(false) => InviteOutcome::Declined,
                        None if dead.contains(p) => InviteOutcome::Dead,
                        None => InviteOutcome::TimedOut,
                    };
                    (p.clone(), outcome)
                })
                .collect()
        };
        let mut members: Vec<ProcId> = outcomes
            .iter()
            .filter(|(_, o)| *o == InviteOutcome::Accepted)
            .map(|(p, _)| p.clone())
            .collect();
        members.push(inv.initiator.clone());
        members.sort();
        members.dedup();
        drop(st);
        for (p, outcome) in &outcomes {
            self.metrics.obs.event(
                &self.metrics.process,
                "pmix",
                "invite.resolved",
                vec![
                    ("group".into(), name.into()),
                    ("proc".into(), p.to_string().as_str().into()),
                    ("outcome".into(), outcome.as_str().into()),
                ],
            );
        }
        let pgcid = if inv.request_pgcid {
            // The RM fetch gets its own full budget: when invitees timed
            // out the original budget has already been spent, yet the
            // partial group still needs its PGCID.
            Some(self.fetch_pgcid_blocking(timeout)?)
        } else {
            None
        };
        self.ctl.lock().groups.insert(
            name.to_owned(),
            GroupInfo { members: members.clone(), pgcid, notify_on_termination: true },
        );
        Ok(InviteReport { group: GroupResult { members, pgcid }, outcomes })
    }

    /// Synchronous PGCID fetch from the RM (used by the async-construct
    /// finalize path, outside any collective op). Pool-aware: a pooled
    /// surplus id is used before any RM traffic happens. The wait runs on
    /// a [`LogicalDeadline`], so a chaos-delayed RM reply defers expiry
    /// rather than racing a wall clock.
    fn fetch_pgcid_blocking(&self, timeout: Duration) -> Result<u64> {
        let (pooled, pool_len) = {
            let mut pool = self.pgcid_pool.lock();
            (pool.pop_front(), pool.len())
        };
        if let Some(pgcid) = pooled {
            self.publish_pool_gauge(pool_len);
            self.metrics.pgcid_pool_hits.inc();
            return Ok(pgcid);
        }
        let rm = self.registry.rm_endpoint().ok_or(PmixError::Unreachable)?;
        if rm == self.sender.id() {
            return Ok(self.rm_allocate_pgcid_block(1));
        }
        let mut deadline = LogicalDeadline::new(self.sender.fabric(), timeout);
        // Reuse the dmodex slot table of kvs shard 0 for the scalar reply;
        // the token's shard encoding routes the PgcidReply there.
        let kshard = &self.kvs_shards[0];
        let token = self.mint_token(0);
        kshard.state.lock().dmodex_waiting.insert(token, None);
        let count = self.pgcid_block.load(Ordering::Relaxed).max(1);
        self.sender
            .send(
                rm,
                ServerMsg::PgcidRequest { reply_to: self.sender.id(), token, count }.encode(),
            )
            .map_err(|_| PmixError::Unreachable)?;
        let mut ks = kshard.state.lock();
        loop {
            if let Some(Some(Some(PmixValue::U64(v)))) = ks.dmodex_waiting.get(&token).cloned() {
                ks.dmodex_waiting.remove(&token);
                return Ok(v);
            }
            if deadline.expired() {
                ks.dmodex_waiting.remove(&token);
                return Err(PmixError::Timeout);
            }
            let _ = kshard.cv.wait_for(&mut ks, LOGICAL_POLL);
        }
    }

    /// A member leaves a group: remaining members are notified
    /// asynchronously (paper §III-A: departure notifications).
    pub fn group_leave(&self, name: &str, me: &ProcId) -> Result<()> {
        let remaining = {
            let mut st = self.ctl.lock();
            let info = st
                .groups
                .get_mut(name)
                .ok_or_else(|| PmixError::NotFound(format!("group {name}")))?;
            info.members.retain(|m| m != me);
            info.members.clone()
        };
        let event =
            Event::new(EventCode::GroupMemberLeft, Some(me.clone())).with("group", name);
        self.notify_procs(&remaining, &event);
        Ok(())
    }

    /// Route an event to a set of processes (local delivery + remote
    /// forwarding to their servers).
    pub fn notify_procs(&self, targets: &[ProcId], event: &Event) {
        let mut by_node: HashMap<NodeId, Vec<ProcId>> = HashMap::new();
        for t in targets {
            if let Ok(e) = self.registry.locate(t) {
                by_node.entry(e.node).or_default().push(t.clone());
            }
        }
        for (node, procs) in by_node {
            let msg = ServerMsg::Notify { event: event.clone(), targets: procs };
            if node == self.node {
                self.handle(msg);
            } else if let Some(ep) = self.registry.server_of(node) {
                let _ = self.sender.send(ep, msg.encode());
            }
        }
    }

    // ---------------------------------------------------------------
    // Message handling (fabric deliveries from other servers)
    // ---------------------------------------------------------------

    /// Process one server-to-server message (no piggybacked trace context;
    /// used for node-local self-delivery).
    pub fn handle(&self, msg: ServerMsg) {
        self.handle_ctx(msg, None);
    }

    /// Process one server-to-server message together with the trace context
    /// piggybacked on its envelope, so collective stage spans can link their
    /// remote causal predecessors.
    pub fn handle_ctx(&self, msg: ServerMsg, ctx: Option<obs::TraceContext>) {
        match msg {
            ServerMsg::CollContrib { op, from_node, contrib } => {
                let si = Self::ops_shard_of(op.kind, &op.name, op.mhash);
                {
                    let mut st = self.ops_shards[si].state.lock();
                    let entry = st.ops.entry(op.clone()).or_insert_with(OpState::new);
                    entry.contribs.insert(NodeId(from_node), contrib);
                    if let Some(c) = ctx {
                        entry.contrib_ctxs.push(c);
                    }
                }
                self.try_complete(&op);
                self.ops_shards[si].cv.notify_all();
            }
            ServerMsg::CollPgcid { op, pgcid } => {
                let si = Self::ops_shard_of(op.kind, &op.name, op.mhash);
                {
                    let mut st = self.ops_shards[si].state.lock();
                    let entry = st.ops.entry(op.clone()).or_insert_with(OpState::new);
                    if entry.expected_local.is_some() {
                        entry.pgcid = Some(pgcid);
                    } else {
                        entry.pending_pgcid = Some(pgcid);
                    }
                    if let Some(c) = ctx {
                        entry.contrib_ctxs.push(c);
                    }
                }
                self.try_complete(&op);
                self.ops_shards[si].cv.notify_all();
            }
            ServerMsg::CollAbort { op, reason } => {
                let si = Self::ops_shard_of(op.kind, &op.name, op.mhash);
                let mut st = self.ops_shards[si].state.lock();
                self.fail_op_locked(&mut st, si, &op, reason);
            }
            ServerMsg::PgcidRequest { reply_to, token, count } => {
                let (pgcid, alloc_ctx) =
                    self.rm_allocate_pgcid_block_traced(count.max(1), ctx);
                let _ = self.sender.send_ctx(
                    reply_to,
                    ServerMsg::PgcidReply { token, pgcid, count: count.max(1) }.encode(),
                    alloc_ctx,
                );
            }
            ServerMsg::PgcidReply { token, pgcid, count } => {
                // Pool the block's surplus first, so a construct racing this
                // handler can already hit the pool.
                if count > 1 {
                    let len = {
                        let mut pool = self.pgcid_pool.lock();
                        for id in (pgcid + 1)..(pgcid + count) {
                            pool.push_back(id);
                        }
                        pool.len()
                    };
                    self.publish_pool_gauge(len);
                }
                let waiting = self.pgcid_waiting.lock().remove(&token);
                if let Some((op_id, req_span)) = waiting {
                    // Close the RM round-trip span, linking the RM's
                    // allocation as its causal predecessor.
                    let req_ctx = req_span.map(|mut sp| {
                        if let Some(c) = ctx {
                            sp.link(c);
                        }
                        let rc = sp.context();
                        sp.end();
                        rc
                    });
                    if let Some(unused) = self.deliver_pgcid(&op_id, pgcid, req_ctx) {
                        // The op aborted while the grant was in flight.
                        self.repool_front(unused);
                    }
                    // Serve everything that queued behind this round trip.
                    self.drain_pgcid_backlog();
                } else {
                    // A blocking scalar fetch (async-construct path); the
                    // token encodes the kvs shard holding its reply slot.
                    let ki = (token % SERVER_SHARDS as u64) as usize;
                    let kshard = &self.kvs_shards[ki];
                    let mut ks = kshard.state.lock();
                    if let Some(slot) = ks.dmodex_waiting.get_mut(&token) {
                        *slot = Some(Some(PmixValue::U64(pgcid)));
                    }
                    drop(ks);
                    kshard.cv.notify_all();
                }
            }
            ServerMsg::ProcFailed { proc } => {
                self.on_proc_failed(&proc);
            }
            ServerMsg::DmodexReq { reply_to, token, proc, key } => {
                // Resolve "is this a (live) local client" before touching
                // the kvs shard: ctl and kvs shards are never nested.
                let is_local = self.ctl.lock().local_clients.contains(&proc)
                    || self
                        .registry
                        .locate(&proc)
                        .map(|e| e.node == self.node)
                        .unwrap_or(false);
                let is_dead = self.dead.read().contains(&proc);
                let kshard = &self.kvs_shards[Self::kvs_shard_of(&proc)];
                let value = {
                    let mut ks = kshard.state.lock();
                    match ks.kvs_local.get(&proc).and_then(|m| m.get(&key)).cloned() {
                        Some(v) => Some(Some(v)),
                        None => {
                            if is_local && !is_dead {
                                // Park until the owner commits.
                                ks.dmodex_parked.push((proc, key, reply_to, token));
                                None
                            } else {
                                Some(None)
                            }
                        }
                    }
                };
                if let Some(value) = value {
                    let _ = self
                        .sender
                        .send(reply_to, ServerMsg::DmodexReply { token, value }.encode());
                }
            }
            ServerMsg::DmodexReply { token, value } => {
                let ki = (token % SERVER_SHARDS as u64) as usize;
                let kshard = &self.kvs_shards[ki];
                let mut ks = kshard.state.lock();
                if ks.dmodex_waiting.contains_key(&token) {
                    ks.dmodex_waiting.insert(token, Some(value));
                }
                drop(ks);
                kshard.cv.notify_all();
            }
            ServerMsg::Notify { event, targets } => {
                let st = self.ctl.lock();
                for (proc, sub) in &st.subs {
                    if !sub.matches(event.code) {
                        continue;
                    }
                    if targets.is_empty() || targets.contains(proc) {
                        let _ = sub.tx.send(event.clone());
                    }
                }
            }
            ServerMsg::InviteReply { group, from, accept } => {
                let mut st = self.ctl.lock();
                if let Some(inv) = st.invites.get_mut(&group) {
                    inv.responses.insert(from, accept);
                }
                drop(st);
                self.ctl_cv.notify_all();
            }
        }
    }

    /// Whether this server has observed `proc`'s death. Dead processes
    /// stay *registered* (their identity is never recycled), so callers
    /// that validate liveness — the lazy-resolver cache, fault-aware
    /// waits — must ask this rather than [`NamespaceRegistry::locate`].
    pub fn proc_is_dead(&self, proc: &ProcId) -> bool {
        self.dead.read().contains(proc)
    }

    /// React to a process death: fail or shrink affected collectives,
    /// notify subscribers, and mark the process dead.
    pub fn on_proc_failed(&self, proc: &ProcId) {
        {
            let mut dead = self.dead.write();
            if !dead.insert(proc.clone()) {
                return; // already processed
            }
        }
        // Lifecycle GC: a dead process's KV data can never be read again —
        // `fetch` routes every lookup through the dead check downstream of
        // here — so drop its committed data and everything cached about it.
        // Parked dmodex fetches for the dead owner can never be served;
        // answer them "not found" instead of letting the requester time out.
        self.purge_kvs_for(proc);
        // Fail or shrink pending collectives that include the dead process,
        // one ops shard at a time (the write above already publishes the
        // death, so concurrent entries on other shards observe it).
        let mut aborts = Vec::new();
        for si in 0..SERVER_SHARDS {
            let shard = &self.ops_shards[si];
            let mut st = shard.state.lock();
            let op_ids: Vec<OpId> = st.ops.keys().cloned().collect();
            for op_id in op_ids {
                let op = st.ops.get_mut(&op_id).expect("present");
                if op.result.is_some() {
                    continue;
                }
                let involved = op.membership.contains(proc)
                    || op
                        .expected_local
                        .as_ref()
                        .map(|e| e.contains(proc))
                        .unwrap_or(false)
                    || op.contribs.values().any(|c| c.local_members.contains(proc))
                    || op.arrived_local.contains(proc);
                if !involved {
                    continue;
                }
                if op.error_on_early_termination {
                    op.result = Some(Err(PmixError::ProcTerminated(proc.clone())));
                    self.metrics.shard(si).coll_aborted.inc();
                    self.metrics.stage_event(
                        "group.abort",
                        &op_id,
                        vec![("reason".into(), "proc_terminated".into())],
                    );
                    aborts.push((op_id.clone(), op.expected_servers.clone()));
                } else {
                    if let Some(exp) = op.expected_local.as_mut() {
                        exp.retain(|p| p != proc);
                    }
                    op.arrived_local.retain(|p| p != proc);
                }
            }
            // Complete any ops whose fan-in this death unblocked.
            let candidates: Vec<OpId> = st
                .ops
                .iter()
                .filter(|(_, o)| o.result.is_none())
                .map(|(k, _)| k.clone())
                .collect();
            for op_id in &candidates {
                self.advance_op(&mut st, si, op_id);
            }
            drop(st);
            for op_id in &candidates {
                self.try_complete(op_id);
            }
            shard.cv.notify_all();
        }
        // Group-membership failure notifications + plain proc-terminated
        // events for subscribers on this node (control plane).
        let notifications = {
            let st = self.ctl.lock();
            let dead = self.dead.read();
            let mut notifications = Vec::new();
            for (name, info) in st.groups.iter() {
                if info.notify_on_termination && info.members.contains(proc) {
                    let targets: Vec<ProcId> = info
                        .members
                        .iter()
                        .filter(|m| *m != proc && !dead.contains(*m))
                        .cloned()
                        .collect();
                    let event = Event::new(EventCode::GroupMemberFailed, Some(proc.clone()))
                        .with("group", name.as_str())
                        .with("pgcid", info.pgcid.unwrap_or(0));
                    notifications.push((targets, event));
                }
            }
            let term = Event::new(EventCode::ProcTerminated, Some(proc.clone()));
            for (p, sub) in &st.subs {
                if sub.matches(EventCode::ProcTerminated) && p != proc {
                    let _ = sub.tx.send(term.clone());
                }
            }
            notifications
        };
        for (op_id, peers) in aborts {
            self.broadcast(&peers, &ServerMsg::CollAbort {
                op: op_id,
                reason: AbortReason::ProcTerminated(proc.clone()),
            });
        }
        for (targets, event) in notifications {
            self.notify_procs(&targets, &event);
        }
        self.ctl_cv.notify_all();
        for ks in &self.kvs_shards {
            ks.cv.notify_all();
        }
    }
}
