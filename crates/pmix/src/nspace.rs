//! Namespace (job) registry: the resource manager's view of which processes
//! exist, where they live, and which process sets have been defined.
//!
//! In real PMIx this data is registered with each server by the RTE
//! (`PMIx_server_register_nspace`). Here a single shared registry plays the
//! role of that replicated job data: it is written only at launch / pset
//! definition time and read concurrently by every server and client.

use crate::error::{PmixError, Result};
use crate::types::{ProcId, Rank};
use parking_lot::{Mutex, RwLock};
use simnet::{EndpointId, NodeId};
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Tombstone count beyond which a deletion triggers an automatic reap of
/// every tombstone below the GC watermark. Small enough that a soak run's
/// tombstone footprint stays bounded, large enough that short-lived tests
/// (and their replay assertions) never see an implicit reap.
pub const GC_TOMBSTONE_THRESHOLD: usize = 32;

/// Location and wiring of one process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcEntry {
    /// The process id.
    pub proc: ProcId,
    /// Node the process runs on.
    pub node: NodeId,
    /// Fabric endpoint of the process itself (its MPI mailbox).
    pub endpoint: EndpointId,
}

/// Static per-namespace information (job map).
#[derive(Debug, Clone, Default)]
pub struct NamespaceInfo {
    procs: Vec<ProcEntry>,
}

impl NamespaceInfo {
    /// Number of processes in the namespace.
    pub fn size(&self) -> usize {
        self.procs.len()
    }

    /// Entry for `rank`, if registered.
    pub fn proc(&self, rank: Rank) -> Option<&ProcEntry> {
        self.procs.iter().find(|p| p.proc.rank() == rank)
    }

    /// All entries, rank-ordered.
    pub fn procs(&self) -> &[ProcEntry] {
        &self.procs
    }

    /// Ranks co-located on `node`.
    pub fn local_peers(&self, node: NodeId) -> Vec<Rank> {
        self.procs
            .iter()
            .filter(|p| p.node == node)
            .map(|p| p.proc.rank())
            .collect()
    }
}

/// One versioned process-set entry. Membership is copy-on-write: readers
/// clone the `Arc`, mutations install a fresh vector, so a group resolved
/// at epoch E keeps observing exactly the members of epoch E.
#[derive(Debug, Clone)]
pub struct PsetEntry {
    /// Global registry epoch at which this entry last changed.
    pub epoch: u64,
    /// Membership at that epoch (rank-sorted at definition time).
    pub members: Arc<Vec<ProcId>>,
    /// Tombstone: the pset was deleted at `epoch`. Kept so late
    /// subscribers can be told about the deletion during replay.
    pub deleted: bool,
}

/// What kind of change a [`PsetChange`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PsetChangeKind {
    /// The pset came into existence (or was re-defined from scratch).
    Defined,
    /// An existing pset's membership grew or shrank.
    Membership,
    /// The pset was deleted.
    Deleted,
}

/// A single versioned change to the pset table, as handed to listeners
/// and replayed to late subscribers.
#[derive(Clone)]
pub struct PsetChange {
    /// Name of the pset that changed.
    pub name: String,
    /// Global epoch stamped on the change (strictly increasing across
    /// all changes, hence also per pset).
    pub epoch: u64,
    /// What happened.
    pub kind: PsetChangeKind,
    /// Membership after the change (empty for deletions).
    pub members: Arc<Vec<ProcId>>,
    /// Causal context of the mutation (runtime grow/shrink span), kept
    /// for local delivery so `pset.update → session.rebuild` chains link.
    pub ctx: Option<obs::TraceContext>,
}

/// A self-consistent read of the whole pset table: every answer derived
/// from one snapshot agrees with every other (satisfying the query
/// contract that a name reported by `PSET_NAMES` must resolve).
#[derive(Debug, Clone)]
pub struct PsetSnapshot {
    /// Global registry epoch when the snapshot was taken.
    pub epoch: u64,
    entries: BTreeMap<String, (u64, Arc<Vec<ProcId>>)>,
}

impl PsetSnapshot {
    /// Number of live psets in the snapshot.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no psets were defined.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sorted names of live psets.
    pub fn names(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Membership of `name` with the pset's own epoch, resolved against
    /// this snapshot (never the live table).
    pub fn members(&self, name: &str) -> Option<(u64, Arc<Vec<ProcId>>)> {
        self.entries.get(name).map(|(e, m)| (*e, m.clone()))
    }
}

/// Callback invoked (under the emission lock) on every pset change.
pub type PsetListener = Box<dyn Fn(&PsetChange) + Send + Sync>;

#[derive(Default)]
struct RegistryState {
    namespaces: HashMap<String, NamespaceInfo>,
    psets: BTreeMap<String, PsetEntry>,
    /// Monotonic epoch shared by all psets; bumped on every change.
    pset_epoch: u64,
    servers: BTreeMap<NodeId, EndpointId>,
    rm: Option<EndpointId>,
}

/// Observability handles for the registry's lifecycle state, resolved once
/// by [`NamespaceRegistry::attach_obs`]. The gauges carry high-water marks,
/// so a soak run can audit the registry's peak footprint after the fact.
struct RegistryMetrics {
    live: obs::Gauge,
    tombstoned: obs::Gauge,
    gced: obs::Counter,
}

/// A pinned registry epoch: while alive, tombstones at or above the pinned
/// epoch survive garbage collection. Dropping the pin releases it.
///
/// Pins implement the GC watermark rule: the safe watermark is the minimum
/// pinned epoch across live watchers — a watcher still processing history
/// at epoch E must be able to observe every deletion from E onward, so only
/// tombstones strictly below the watermark are reapable.
pub struct EpochPin {
    epoch: u64,
    pins: Arc<Mutex<BTreeMap<u64, usize>>>,
}

impl EpochPin {
    /// The epoch this pin holds.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Drop for EpochPin {
    fn drop(&mut self) {
        let mut pins = self.pins.lock();
        if let Some(n) = pins.get_mut(&self.epoch) {
            *n -= 1;
            if *n == 0 {
                pins.remove(&self.epoch);
            }
        }
    }
}

/// Shared registry of namespaces, process sets and server endpoints.
///
/// Pset mutations are serialized by an *emission lock* held across both
/// the table write and the synchronous listener calls: changes reach
/// listeners in strict epoch order, and a subscriber registered under the
/// same lock (see replay) observes each change exactly once — either via
/// replay or live delivery, never both, never neither.
///
/// Deleted psets leave tombstones so late subscribers learn about the
/// deletion during replay. Tombstones are garbage-collected below the
/// epoch watermark (minimum pinned epoch across live [`EpochPin`]s):
/// automatically once more than [`GC_TOMBSTONE_THRESHOLD`] accumulate, or
/// explicitly via [`NamespaceRegistry::gc_tombstones`]. GC can be disabled
/// wholesale ([`NamespaceRegistry::set_gc_enabled`]) — the leak the soak
/// harness then observes is exactly what the GC exists to prevent.
#[derive(Clone, Default)]
pub struct NamespaceRegistry {
    state: Arc<RwLock<RegistryState>>,
    emit: Arc<Mutex<()>>,
    listeners: Arc<RwLock<Vec<PsetListener>>>,
    /// Pinned epoch → pin count. The smallest key is the GC watermark.
    pins: Arc<Mutex<BTreeMap<u64, usize>>>,
    /// Inverted so the derived `Default` (false) means "GC on".
    gc_disabled: Arc<AtomicBool>,
    metrics: Arc<RwLock<Option<RegistryMetrics>>>,
}

impl NamespaceRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register the PMIx server responsible for `node`.
    pub fn register_server(&self, node: NodeId, endpoint: EndpointId) {
        self.state.write().servers.insert(node, endpoint);
    }

    /// Endpoint of the server managing `node`.
    pub fn server_of(&self, node: NodeId) -> Option<EndpointId> {
        self.state.read().servers.get(&node).copied()
    }

    /// All registered server endpoints, node-ordered.
    pub fn servers(&self) -> Vec<(NodeId, EndpointId)> {
        self.state.read().servers.iter().map(|(n, e)| (*n, *e)).collect()
    }

    /// The lowest-node compute server.
    pub fn lead_server(&self) -> Option<EndpointId> {
        self.state.read().servers.values().next().copied()
    }

    /// Register the resource-manager service endpoint (the head-node
    /// daemon that allocates PGCIDs).
    pub fn register_rm(&self, endpoint: EndpointId) {
        self.state.write().rm = Some(endpoint);
    }

    /// The resource-manager endpoint. PGCID allocation always crosses the
    /// fabric to reach it — the "internode messaging between PMIx servers"
    /// the paper identifies as the expensive part of PGCID acquisition.
    pub fn rm_endpoint(&self) -> Option<EndpointId> {
        let st = self.state.read();
        st.rm.or_else(|| st.servers.values().next().copied())
    }

    /// Register (or extend) a namespace with process entries.
    pub fn register_namespace(&self, nspace: &str, procs: Vec<ProcEntry>) {
        let mut st = self.state.write();
        let info = st.namespaces.entry(nspace.to_owned()).or_default();
        info.procs.extend(procs);
        info.procs.sort_by_key(|p| p.proc.rank());
    }

    /// Remove a namespace entirely (job teardown).
    pub fn deregister_namespace(&self, nspace: &str) {
        self.state.write().namespaces.remove(nspace);
    }

    /// Look up a namespace.
    pub fn namespace(&self, nspace: &str) -> Result<NamespaceInfo> {
        self.state
            .read()
            .namespaces
            .get(nspace)
            .cloned()
            .ok_or_else(|| PmixError::NotFound(format!("namespace {nspace}")))
    }

    /// Locate one process.
    pub fn locate(&self, proc: &ProcId) -> Result<ProcEntry> {
        let st = self.state.read();
        st.namespaces
            .get(proc.nspace())
            .and_then(|info| info.proc(proc.rank()).cloned())
            .ok_or_else(|| PmixError::NotFound(format!("process {proc}")))
    }

    /// Reverse lookup: which process owns `endpoint`?
    pub fn find_by_endpoint(&self, endpoint: EndpointId) -> Option<ProcId> {
        let st = self.state.read();
        for info in st.namespaces.values() {
            for p in &info.procs {
                if p.endpoint == endpoint {
                    return Some(p.proc.clone());
                }
            }
        }
        None
    }

    /// Register a listener invoked synchronously, under the emission lock,
    /// for every subsequent pset change.
    pub fn add_pset_listener(&self, l: PsetListener) {
        let _emit = self.emit.lock();
        self.listeners.write().push(l);
    }

    fn emit_change(&self, change: PsetChange) {
        for l in self.listeners.read().iter() {
            l(&change);
        }
    }

    /// Wire the registry's lifecycle gauges (`registry/pmix/psets_live`,
    /// `psets_tombstoned`) and GC counter (`psets_gced`) into `obs`.
    /// Called once at universe boot; a registry without an attached obs
    /// simply skips gauge upkeep.
    pub fn attach_obs(&self, obs: &Arc<obs::Registry>) {
        *self.metrics.write() = Some(RegistryMetrics {
            live: obs.gauge("registry", "pmix", "psets_live"),
            tombstoned: obs.gauge("registry", "pmix", "psets_tombstoned"),
            gced: obs.counter("registry", "pmix", "psets_gced"),
        });
        self.refresh_gauges();
    }

    /// Re-derive the live/tombstone gauges from the table. O(psets), called
    /// only on define/delete/GC — never on the membership hot path.
    fn refresh_gauges(&self) {
        let metrics = self.metrics.read();
        let Some(m) = metrics.as_ref() else { return };
        let (live, tomb) = {
            let st = self.state.read();
            let tomb = st.psets.values().filter(|e| e.deleted).count();
            (st.psets.len() - tomb, tomb)
        };
        m.live.set(live as i64);
        m.tombstoned.set(tomb as i64);
    }

    /// Enable or disable tombstone garbage collection (enabled by default).
    /// Disabling is a debug/soak knob: tombstones then accumulate without
    /// bound, which the soak harness surfaces as a leak-freedom failure.
    pub fn set_gc_enabled(&self, on: bool) {
        self.gc_disabled.store(!on, Ordering::Relaxed);
    }

    /// Whether tombstone GC is currently enabled.
    pub fn gc_enabled(&self) -> bool {
        !self.gc_disabled.load(Ordering::Relaxed)
    }

    /// Pin the current epoch: tombstones at or above it survive GC until
    /// the returned pin is dropped.
    pub fn pin_current_epoch(&self) -> EpochPin {
        let mut pins = self.pins.lock();
        let epoch = self.state.read().pset_epoch;
        *pins.entry(epoch).or_insert(0) += 1;
        EpochPin { epoch, pins: self.pins.clone() }
    }

    /// The GC watermark: the minimum pinned epoch across live pins, or
    /// `u64::MAX` when nothing is pinned (every tombstone is reapable).
    pub fn gc_watermark(&self) -> u64 {
        self.pins.lock().keys().next().copied().unwrap_or(u64::MAX)
    }

    /// Live epoch pins as `(epoch, holders)`, sorted by epoch (the
    /// introspection flight recorder's `pins` section).
    pub fn active_pins(&self) -> Vec<(u64, usize)> {
        self.pins.lock().iter().map(|(e, n)| (*e, *n)).collect()
    }

    /// Number of tombstoned psets currently retained.
    pub fn num_tombstones(&self) -> usize {
        self.state.read().psets.values().filter(|e| e.deleted).count()
    }

    /// Reap every tombstone strictly below the watermark. Returns the
    /// number reaped (0 when GC is disabled).
    pub fn gc_tombstones(&self) -> usize {
        let _emit = self.emit.lock();
        self.gc_locked()
    }

    /// GC body; caller must hold the emission lock (reaping must not
    /// interleave with a replay that still expects the tombstones).
    fn gc_locked(&self) -> usize {
        if self.gc_disabled.load(Ordering::Relaxed) {
            return 0;
        }
        let watermark = self.gc_watermark();
        let reaped = {
            let mut st = self.state.write();
            let before = st.psets.len();
            st.psets.retain(|_, e| !e.deleted || e.epoch >= watermark);
            before - st.psets.len()
        };
        if reaped > 0 {
            if let Some(m) = self.metrics.read().as_ref() {
                m.gced.add(reaped as u64);
            }
            self.refresh_gauges();
        }
        reaped
    }

    /// Auto-GC trigger (caller holds the emission lock): reap once the
    /// tombstone count exceeds [`GC_TOMBSTONE_THRESHOLD`].
    fn maybe_gc_locked(&self) {
        if self.gc_disabled.load(Ordering::Relaxed) {
            return;
        }
        let tombs = self.state.read().psets.values().filter(|e| e.deleted).count();
        if tombs > GC_TOMBSTONE_THRESHOLD {
            self.gc_locked();
        }
    }

    /// Define (or redefine) a process set.
    ///
    /// Process sets are *names for lists of processes* (paper §III-B6);
    /// the RTE defines them at launch (`prun --pset ...`) and — since the
    /// registry became versioned — at runtime as jobs grow.
    pub fn define_pset(&self, name: &str, members: Vec<ProcId>) {
        self.define_pset_ctx(name, members, None);
    }

    /// [`NamespaceRegistry::define_pset`] with an explicit causal context.
    pub fn define_pset_ctx(
        &self,
        name: &str,
        members: Vec<ProcId>,
        ctx: Option<obs::TraceContext>,
    ) {
        let _emit = self.emit.lock();
        let members = Arc::new(members);
        let epoch = {
            let mut st = self.state.write();
            st.pset_epoch += 1;
            let epoch = st.pset_epoch;
            st.psets.insert(
                name.to_owned(),
                PsetEntry { epoch, members: members.clone(), deleted: false },
            );
            epoch
        };
        self.emit_change(PsetChange {
            name: name.to_owned(),
            epoch,
            kind: PsetChangeKind::Defined,
            members,
            ctx,
        });
        self.refresh_gauges();
    }

    /// Replace the membership of an existing pset (runtime grow/shrink).
    /// Bumps the epoch and emits a `Membership` change. Errors if the pset
    /// was never defined or is deleted.
    pub fn update_pset_membership(
        &self,
        name: &str,
        members: Vec<ProcId>,
        ctx: Option<obs::TraceContext>,
    ) -> Result<u64> {
        let _emit = self.emit.lock();
        let members = Arc::new(members);
        let epoch = {
            let mut st = self.state.write();
            let next = st.pset_epoch + 1;
            let entry = st
                .psets
                .get_mut(name)
                .filter(|e| !e.deleted)
                .ok_or_else(|| PmixError::NotFound(format!("pset {name}")))?;
            entry.epoch = next;
            entry.members = members.clone();
            st.pset_epoch = next;
            next
        };
        self.emit_change(PsetChange {
            name: name.to_owned(),
            epoch,
            kind: PsetChangeKind::Membership,
            members,
            ctx,
        });
        Ok(epoch)
    }

    /// Remove `proc` from every live pset that contains it, emitting one
    /// `Membership` change per affected pset. Returns the affected names.
    /// Used when a process dies or retires: its psets shrink around it.
    pub fn remove_from_psets(
        &self,
        proc: &ProcId,
        ctx: Option<obs::TraceContext>,
    ) -> Vec<String> {
        let _emit = self.emit.lock();
        let mut changes = Vec::new();
        {
            let mut st = self.state.write();
            let names: Vec<String> = st
                .psets
                .iter()
                .filter(|(_, e)| !e.deleted && e.members.contains(proc))
                .map(|(n, _)| n.clone())
                .collect();
            for name in names {
                st.pset_epoch += 1;
                let epoch = st.pset_epoch;
                let entry = st.psets.get_mut(&name).expect("selected above");
                let members: Arc<Vec<ProcId>> =
                    Arc::new(entry.members.iter().filter(|p| *p != proc).cloned().collect());
                entry.epoch = epoch;
                entry.members = members.clone();
                changes.push(PsetChange {
                    name,
                    epoch,
                    kind: PsetChangeKind::Membership,
                    members,
                    ctx,
                });
            }
        }
        let affected = changes.iter().map(|c| c.name.clone()).collect();
        for c in changes {
            self.emit_change(c);
        }
        affected
    }

    /// Remove `proc` from one named pset (if live and containing it),
    /// atomically under the emission lock. Returns the new epoch when a
    /// change was emitted, `None` when there was nothing to do. The
    /// graceful-retire path uses this to prune the survivors pset without
    /// touching app psets (those shrink through their own retire protocol)
    /// and without the read-modify-write race a
    /// [`NamespaceRegistry::pset_members`] +
    /// [`NamespaceRegistry::update_pset_membership`] pair would have
    /// against a concurrent failure-bridge removal.
    pub fn remove_proc_from_pset(&self, name: &str, proc: &ProcId) -> Option<u64> {
        let _emit = self.emit.lock();
        let (epoch, members) = {
            let mut st = self.state.write();
            let entry = st.psets.get(name).filter(|e| !e.deleted && e.members.contains(proc))?;
            let members: Arc<Vec<ProcId>> =
                Arc::new(entry.members.iter().filter(|p| *p != proc).cloned().collect());
            st.pset_epoch += 1;
            let epoch = st.pset_epoch;
            let entry = st.psets.get_mut(name).expect("checked above");
            entry.epoch = epoch;
            entry.members = members.clone();
            (epoch, members)
        };
        self.emit_change(PsetChange {
            name: name.to_owned(),
            epoch,
            kind: PsetChangeKind::Membership,
            members,
            ctx: None,
        });
        Some(epoch)
    }

    /// Remove a process set definition, leaving a tombstone so that late
    /// subscribers learn about the deletion during replay.
    pub fn undefine_pset(&self, name: &str) {
        let _emit = self.emit.lock();
        let epoch = {
            let mut st = self.state.write();
            let next = st.pset_epoch + 1;
            match st.psets.get_mut(name) {
                Some(entry) if !entry.deleted => {
                    entry.epoch = next;
                    entry.deleted = true;
                    entry.members = Arc::new(Vec::new());
                    st.pset_epoch = next;
                    next
                }
                _ => return,
            }
        };
        self.emit_change(PsetChange {
            name: name.to_owned(),
            epoch,
            kind: PsetChangeKind::Deleted,
            members: Arc::new(Vec::new()),
            ctx: None,
        });
        self.refresh_gauges();
        self.maybe_gc_locked();
    }

    /// Remove one process entry from its namespace's job map (graceful
    /// retirement — the inverse of `register_namespace` for one rank).
    pub fn deregister_proc(&self, proc: &ProcId) {
        let mut st = self.state.write();
        if let Some(info) = st.namespaces.get_mut(proc.nspace()) {
            info.procs.retain(|p| p.proc != *proc);
        }
    }

    /// Number of defined (live) process sets.
    pub fn num_psets(&self) -> usize {
        self.state.read().psets.values().filter(|e| !e.deleted).count()
    }

    /// Names of all live process sets, sorted.
    pub fn pset_names(&self) -> Vec<String> {
        let st = self.state.read();
        st.psets.iter().filter(|(_, e)| !e.deleted).map(|(n, _)| n.clone()).collect()
    }

    /// Current global pset-registry epoch.
    pub fn pset_epoch(&self) -> u64 {
        self.state.read().pset_epoch
    }

    /// A self-consistent snapshot of all live psets, taken under a single
    /// lock acquisition. Queries answering count + names + membership must
    /// derive every answer from one snapshot: per-key reads could otherwise
    /// interleave with a concurrent define/undefine and disagree.
    pub fn pset_snapshot(&self) -> PsetSnapshot {
        let st = self.state.read();
        PsetSnapshot {
            epoch: st.pset_epoch,
            entries: st
                .psets
                .iter()
                .filter(|(_, e)| !e.deleted)
                .map(|(n, e)| (n.clone(), (e.epoch, e.members.clone())))
                .collect(),
        }
    }

    /// Membership of one process set (unversioned compatibility accessor).
    pub fn pset_members(&self, name: &str) -> Result<Vec<ProcId>> {
        self.pset_members_versioned(name).map(|(_, m)| m.as_ref().clone())
    }

    /// Membership of one process set together with the pset's epoch.
    pub fn pset_members_versioned(&self, name: &str) -> Result<(u64, Arc<Vec<ProcId>>)> {
        self.state
            .read()
            .psets
            .get(name)
            .filter(|e| !e.deleted)
            .map(|e| (e.epoch, e.members.clone()))
            .ok_or_else(|| PmixError::NotFound(format!("pset {name}")))
    }

    /// Run `f` under the emission lock with the changes needed to bring a
    /// brand-new subscriber up to date: one synthetic `Defined` per live
    /// pset and one `Deleted` per *retained* tombstone, ordered by epoch.
    /// While `f` runs no live change can be emitted, so registering the
    /// subscriber inside `f` yields exactly-once delivery (replay XOR
    /// live).
    ///
    /// Replay is a **current-state snapshot**, not a history dump: GC reaps
    /// tombstones below the epoch watermark, so a subscriber arriving after
    /// arbitrary churn receives the live table plus at most the
    /// still-pinned (or sub-threshold) tombstones — never one event per
    /// deletion that ever happened.
    pub fn with_pset_replay<R>(&self, f: impl FnOnce(&[PsetChange]) -> R) -> R {
        let _emit = self.emit.lock();
        let mut replay: Vec<PsetChange> = {
            let st = self.state.read();
            st.psets
                .iter()
                .map(|(name, e)| PsetChange {
                    name: name.clone(),
                    epoch: e.epoch,
                    kind: if e.deleted {
                        PsetChangeKind::Deleted
                    } else {
                        PsetChangeKind::Defined
                    },
                    members: e.members.clone(),
                    ctx: None,
                })
                .collect()
        };
        replay.sort_by_key(|c| c.epoch);
        f(&replay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(ns: &str, rank: Rank, node: u32, ep: u64) -> ProcEntry {
        ProcEntry {
            proc: ProcId::new(ns, rank),
            node: NodeId(node),
            endpoint: EndpointId(ep),
        }
    }

    #[test]
    fn namespace_registration_and_lookup() {
        let reg = NamespaceRegistry::new();
        reg.register_namespace("job", vec![entry("job", 1, 0, 11), entry("job", 0, 0, 10)]);
        let info = reg.namespace("job").unwrap();
        assert_eq!(info.size(), 2);
        // entries are rank-sorted regardless of registration order
        assert_eq!(info.procs()[0].proc.rank(), 0);
        assert_eq!(info.proc(1).unwrap().endpoint, EndpointId(11));
        assert!(info.proc(2).is_none());
    }

    #[test]
    fn locate_finds_process() {
        let reg = NamespaceRegistry::new();
        reg.register_namespace("job", vec![entry("job", 0, 3, 42)]);
        let e = reg.locate(&ProcId::new("job", 0)).unwrap();
        assert_eq!(e.node, NodeId(3));
        assert!(reg.locate(&ProcId::new("job", 9)).is_err());
        assert!(reg.locate(&ProcId::new("nope", 0)).is_err());
    }

    #[test]
    fn local_peers_filters_by_node() {
        let reg = NamespaceRegistry::new();
        reg.register_namespace(
            "job",
            vec![entry("job", 0, 0, 1), entry("job", 1, 1, 2), entry("job", 2, 0, 3)],
        );
        let info = reg.namespace("job").unwrap();
        assert_eq!(info.local_peers(NodeId(0)), vec![0, 2]);
        assert_eq!(info.local_peers(NodeId(1)), vec![1]);
    }

    #[test]
    fn pset_define_query_undefine() {
        let reg = NamespaceRegistry::new();
        assert_eq!(reg.num_psets(), 0);
        reg.define_pset("app://ocean", vec![ProcId::new("j", 0)]);
        reg.define_pset("app://atmo", vec![ProcId::new("j", 1)]);
        assert_eq!(reg.num_psets(), 2);
        assert_eq!(reg.pset_names(), vec!["app://atmo", "app://ocean"]);
        assert_eq!(reg.pset_members("app://ocean").unwrap().len(), 1);
        reg.undefine_pset("app://ocean");
        assert!(reg.pset_members("app://ocean").is_err());
    }

    #[test]
    fn lead_server_is_lowest_node() {
        let reg = NamespaceRegistry::new();
        reg.register_server(NodeId(2), EndpointId(22));
        reg.register_server(NodeId(0), EndpointId(20));
        assert_eq!(reg.lead_server(), Some(EndpointId(20)));
        assert_eq!(reg.server_of(NodeId(2)), Some(EndpointId(22)));
        assert_eq!(reg.servers().len(), 2);
    }

    #[test]
    fn deregister_namespace_removes_it() {
        let reg = NamespaceRegistry::new();
        reg.register_namespace("job", vec![entry("job", 0, 0, 1)]);
        reg.deregister_namespace("job");
        assert!(reg.namespace("job").is_err());
    }

    #[test]
    fn pset_epochs_are_monotonic_across_psets() {
        let reg = NamespaceRegistry::new();
        reg.define_pset("a", vec![ProcId::new("j", 0)]);
        reg.define_pset("b", vec![ProcId::new("j", 1)]);
        let (ea, _) = reg.pset_members_versioned("a").unwrap();
        let (eb, _) = reg.pset_members_versioned("b").unwrap();
        assert!(eb > ea);
        let em = reg
            .update_pset_membership("a", vec![ProcId::new("j", 0), ProcId::new("j", 2)], None)
            .unwrap();
        assert!(em > eb);
        assert_eq!(reg.pset_epoch(), em);
    }

    #[test]
    fn membership_is_copy_on_write() {
        let reg = NamespaceRegistry::new();
        reg.define_pset("a", vec![ProcId::new("j", 0)]);
        let (_, old) = reg.pset_members_versioned("a").unwrap();
        reg.update_pset_membership("a", vec![], None).unwrap();
        // the old handle still sees epoch-1 membership
        assert_eq!(old.len(), 1);
        let (_, new) = reg.pset_members_versioned("a").unwrap();
        assert!(new.is_empty());
    }

    #[test]
    fn remove_from_psets_shrinks_every_containing_pset() {
        let reg = NamespaceRegistry::new();
        let p = ProcId::new("j", 1);
        reg.define_pset("a", vec![ProcId::new("j", 0), p.clone()]);
        reg.define_pset("b", vec![p.clone()]);
        reg.define_pset("c", vec![ProcId::new("j", 2)]);
        let affected = reg.remove_from_psets(&p, None);
        assert_eq!(affected, vec!["a", "b"]);
        assert_eq!(reg.pset_members("a").unwrap().len(), 1);
        assert!(reg.pset_members("b").unwrap().is_empty());
        assert_eq!(reg.pset_members("c").unwrap().len(), 1);
    }

    #[test]
    fn listeners_observe_changes_in_epoch_order() {
        use std::sync::Mutex as StdMutex;
        let reg = NamespaceRegistry::new();
        let seen: Arc<StdMutex<Vec<(String, u64, PsetChangeKind)>>> = Arc::default();
        let s = seen.clone();
        reg.add_pset_listener(Box::new(move |c| {
            s.lock().unwrap().push((c.name.clone(), c.epoch, c.kind));
        }));
        reg.define_pset("a", vec![]);
        reg.update_pset_membership("a", vec![ProcId::new("j", 0)], None).unwrap();
        reg.undefine_pset("a");
        reg.undefine_pset("a"); // idempotent: no second Deleted event
        let seen = seen.lock().unwrap();
        assert_eq!(
            seen.iter().map(|(_, e, k)| (*e, *k)).collect::<Vec<_>>(),
            vec![
                (1, PsetChangeKind::Defined),
                (2, PsetChangeKind::Membership),
                (3, PsetChangeKind::Deleted),
            ]
        );
    }

    #[test]
    fn replay_covers_live_and_tombstoned_psets() {
        let reg = NamespaceRegistry::new();
        reg.define_pset("a", vec![ProcId::new("j", 0)]);
        reg.define_pset("b", vec![]);
        reg.undefine_pset("b");
        reg.with_pset_replay(|changes| {
            assert_eq!(changes.len(), 2);
            assert_eq!(changes[0].name, "a");
            assert_eq!(changes[0].kind, PsetChangeKind::Defined);
            assert_eq!(changes[1].name, "b");
            assert_eq!(changes[1].kind, PsetChangeKind::Deleted);
            assert_eq!(changes[1].epoch, 3);
        });
    }

    #[test]
    fn late_subscriber_after_10k_churn_epochs_replays_only_current_state() {
        let reg = NamespaceRegistry::new();
        let member = vec![ProcId::new("j", 0)];
        reg.define_pset("keep://a", member.clone());
        reg.define_pset("keep://b", member.clone());
        // 10k epochs of define+undefine churn. GC keeps reaping behind the
        // (unpinned) watermark, so the table never accumulates history.
        for i in 0..10_000u64 {
            let name = format!("churn://{i}");
            reg.define_pset(&name, member.clone());
            reg.undefine_pset(&name);
        }
        assert_eq!(reg.pset_epoch(), 2 + 2 * 10_000);
        assert!(reg.num_tombstones() <= GC_TOMBSTONE_THRESHOLD);
        // A subscriber arriving now must see the *current* table exactly
        // once — two live Defined plus at most the retained tombstones —
        // never one event per historical deletion.
        reg.with_pset_replay(|changes| {
            let mut names = std::collections::HashSet::new();
            for c in changes {
                assert!(names.insert(c.name.clone()), "{} replayed twice", c.name);
            }
            let defined: Vec<&str> = changes
                .iter()
                .filter(|c| c.kind == PsetChangeKind::Defined)
                .map(|c| c.name.as_str())
                .collect();
            assert_eq!(defined, vec!["keep://a", "keep://b"]);
            let deleted = changes.iter().filter(|c| c.kind == PsetChangeKind::Deleted).count();
            assert_eq!(deleted, reg.num_tombstones());
            assert_eq!(changes.len(), 2 + deleted);
            assert!(changes.len() <= 2 + GC_TOMBSTONE_THRESHOLD, "replay is not a history dump");
            // Replay arrives in strict epoch order with live entries at
            // their defining epoch, not a renumbered one.
            assert!(changes.windows(2).all(|w| w[0].epoch < w[1].epoch));
            assert_eq!(changes[0].epoch, 1);
            assert_eq!(changes[0].members, Arc::new(member.clone()));
        });
    }

    #[test]
    fn snapshot_is_self_consistent() {
        let reg = NamespaceRegistry::new();
        reg.define_pset("a", vec![ProcId::new("j", 0)]);
        let snap = reg.pset_snapshot();
        reg.undefine_pset("a");
        // the snapshot still resolves the name it reported
        for name in snap.names() {
            assert!(snap.members(&name).is_some());
        }
        assert_eq!(snap.len(), 1);
    }

    #[test]
    fn gc_reaps_tombstones_below_watermark() {
        let reg = NamespaceRegistry::new();
        reg.define_pset("a", vec![]);
        reg.undefine_pset("a");
        reg.define_pset("b", vec![]);
        reg.undefine_pset("b");
        assert_eq!(reg.num_tombstones(), 2);
        // No pins: watermark is u64::MAX, everything is reapable.
        assert_eq!(reg.gc_tombstones(), 2);
        assert_eq!(reg.num_tombstones(), 0);
        // Reaped tombstones no longer appear in replay.
        reg.with_pset_replay(|changes| assert!(changes.is_empty()));
    }

    #[test]
    fn epoch_pin_holds_tombstones_alive() {
        let reg = NamespaceRegistry::new();
        reg.define_pset("old", vec![]);
        reg.undefine_pset("old"); // epoch 2
        let pin = reg.pin_current_epoch(); // pins epoch 2
        assert_eq!(pin.epoch(), 2);
        reg.define_pset("new", vec![]);
        reg.undefine_pset("new"); // epoch 4
        // Watermark = 2: the epoch-2 tombstone ("old") is at the watermark
        // (not strictly below), so nothing is reapable.
        assert_eq!(reg.gc_watermark(), 2);
        assert_eq!(reg.gc_tombstones(), 0);
        assert_eq!(reg.num_tombstones(), 2);
        drop(pin);
        assert_eq!(reg.gc_watermark(), u64::MAX);
        assert_eq!(reg.gc_tombstones(), 2);
    }

    #[test]
    fn pin_drop_releases_only_its_own_count() {
        let reg = NamespaceRegistry::new();
        reg.define_pset("a", vec![]);
        let p1 = reg.pin_current_epoch();
        let p2 = reg.pin_current_epoch();
        assert_eq!(reg.gc_watermark(), 1);
        drop(p1);
        // Second pin on the same epoch still holds the watermark.
        assert_eq!(reg.gc_watermark(), 1);
        drop(p2);
        assert_eq!(reg.gc_watermark(), u64::MAX);
    }

    #[test]
    fn auto_gc_fires_past_threshold() {
        let reg = NamespaceRegistry::new();
        for i in 0..=GC_TOMBSTONE_THRESHOLD {
            let name = format!("p{i}");
            reg.define_pset(&name, vec![]);
            reg.undefine_pset(&name);
        }
        // The (threshold+1)-th deletion crossed the threshold and reaped
        // everything (no pins), so the table is tombstone-free again.
        assert_eq!(reg.num_tombstones(), 0);
        assert_eq!(reg.num_psets(), 0);
    }

    #[test]
    fn disabling_gc_blocks_all_reaping() {
        let reg = NamespaceRegistry::new();
        reg.set_gc_enabled(false);
        assert!(!reg.gc_enabled());
        for i in 0..=GC_TOMBSTONE_THRESHOLD {
            let name = format!("p{i}");
            reg.define_pset(&name, vec![]);
            reg.undefine_pset(&name);
        }
        // Neither the auto trigger nor an explicit call may reap.
        assert_eq!(reg.num_tombstones(), GC_TOMBSTONE_THRESHOLD + 1);
        assert_eq!(reg.gc_tombstones(), 0);
        reg.set_gc_enabled(true);
        assert_eq!(reg.gc_tombstones(), GC_TOMBSTONE_THRESHOLD + 1);
    }

    #[test]
    fn gauges_track_live_and_tombstone_counts() {
        let obs = Arc::new(obs::Registry::new());
        let reg = NamespaceRegistry::new();
        reg.attach_obs(&obs);
        reg.define_pset("a", vec![]);
        reg.define_pset("b", vec![]);
        assert_eq!(obs.gauge_value("registry", "pmix", "psets_live"), 2);
        reg.undefine_pset("a");
        assert_eq!(obs.gauge_value("registry", "pmix", "psets_live"), 1);
        assert_eq!(obs.gauge_value("registry", "pmix", "psets_tombstoned"), 1);
        reg.gc_tombstones();
        assert_eq!(obs.gauge_value("registry", "pmix", "psets_tombstoned"), 0);
        assert_eq!(obs.sum_counters("pmix", "psets_gced"), 1);
        // High-water marks survive the drain.
        assert_eq!(obs.sum_gauge_high_water("pmix", "psets_live"), 2);
        assert_eq!(obs.sum_gauge_high_water("pmix", "psets_tombstoned"), 1);
    }

    #[test]
    fn deregister_proc_removes_one_rank() {
        let reg = NamespaceRegistry::new();
        reg.register_namespace("job", vec![entry("job", 0, 0, 1), entry("job", 1, 0, 2)]);
        reg.deregister_proc(&ProcId::new("job", 1));
        let info = reg.namespace("job").unwrap();
        assert_eq!(info.size(), 1);
        assert!(info.proc(1).is_none());
    }
}
