//! Namespace (job) registry: the resource manager's view of which processes
//! exist, where they live, and which process sets have been defined.
//!
//! In real PMIx this data is registered with each server by the RTE
//! (`PMIx_server_register_nspace`). Here a single shared registry plays the
//! role of that replicated job data: it is written only at launch / pset
//! definition time and read concurrently by every server and client.

use crate::error::{PmixError, Result};
use crate::types::{ProcId, Rank};
use parking_lot::RwLock;
use simnet::{EndpointId, NodeId};
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::Arc;

/// Location and wiring of one process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcEntry {
    /// The process id.
    pub proc: ProcId,
    /// Node the process runs on.
    pub node: NodeId,
    /// Fabric endpoint of the process itself (its MPI mailbox).
    pub endpoint: EndpointId,
}

/// Static per-namespace information (job map).
#[derive(Debug, Clone, Default)]
pub struct NamespaceInfo {
    procs: Vec<ProcEntry>,
}

impl NamespaceInfo {
    /// Number of processes in the namespace.
    pub fn size(&self) -> usize {
        self.procs.len()
    }

    /// Entry for `rank`, if registered.
    pub fn proc(&self, rank: Rank) -> Option<&ProcEntry> {
        self.procs.iter().find(|p| p.proc.rank() == rank)
    }

    /// All entries, rank-ordered.
    pub fn procs(&self) -> &[ProcEntry] {
        &self.procs
    }

    /// Ranks co-located on `node`.
    pub fn local_peers(&self, node: NodeId) -> Vec<Rank> {
        self.procs
            .iter()
            .filter(|p| p.node == node)
            .map(|p| p.proc.rank())
            .collect()
    }
}

#[derive(Default)]
struct RegistryState {
    namespaces: HashMap<String, NamespaceInfo>,
    psets: BTreeMap<String, Vec<ProcId>>,
    servers: BTreeMap<NodeId, EndpointId>,
    rm: Option<EndpointId>,
}

/// Shared registry of namespaces, process sets and server endpoints.
#[derive(Clone, Default)]
pub struct NamespaceRegistry {
    state: Arc<RwLock<RegistryState>>,
}

impl NamespaceRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register the PMIx server responsible for `node`.
    pub fn register_server(&self, node: NodeId, endpoint: EndpointId) {
        self.state.write().servers.insert(node, endpoint);
    }

    /// Endpoint of the server managing `node`.
    pub fn server_of(&self, node: NodeId) -> Option<EndpointId> {
        self.state.read().servers.get(&node).copied()
    }

    /// All registered server endpoints, node-ordered.
    pub fn servers(&self) -> Vec<(NodeId, EndpointId)> {
        self.state.read().servers.iter().map(|(n, e)| (*n, *e)).collect()
    }

    /// The lowest-node compute server.
    pub fn lead_server(&self) -> Option<EndpointId> {
        self.state.read().servers.values().next().copied()
    }

    /// Register the resource-manager service endpoint (the head-node
    /// daemon that allocates PGCIDs).
    pub fn register_rm(&self, endpoint: EndpointId) {
        self.state.write().rm = Some(endpoint);
    }

    /// The resource-manager endpoint. PGCID allocation always crosses the
    /// fabric to reach it — the "internode messaging between PMIx servers"
    /// the paper identifies as the expensive part of PGCID acquisition.
    pub fn rm_endpoint(&self) -> Option<EndpointId> {
        let st = self.state.read();
        st.rm.or_else(|| st.servers.values().next().copied())
    }

    /// Register (or extend) a namespace with process entries.
    pub fn register_namespace(&self, nspace: &str, procs: Vec<ProcEntry>) {
        let mut st = self.state.write();
        let info = st.namespaces.entry(nspace.to_owned()).or_default();
        info.procs.extend(procs);
        info.procs.sort_by_key(|p| p.proc.rank());
    }

    /// Remove a namespace entirely (job teardown).
    pub fn deregister_namespace(&self, nspace: &str) {
        self.state.write().namespaces.remove(nspace);
    }

    /// Look up a namespace.
    pub fn namespace(&self, nspace: &str) -> Result<NamespaceInfo> {
        self.state
            .read()
            .namespaces
            .get(nspace)
            .cloned()
            .ok_or_else(|| PmixError::NotFound(format!("namespace {nspace}")))
    }

    /// Locate one process.
    pub fn locate(&self, proc: &ProcId) -> Result<ProcEntry> {
        let st = self.state.read();
        st.namespaces
            .get(proc.nspace())
            .and_then(|info| info.proc(proc.rank()).cloned())
            .ok_or_else(|| PmixError::NotFound(format!("process {proc}")))
    }

    /// Reverse lookup: which process owns `endpoint`?
    pub fn find_by_endpoint(&self, endpoint: EndpointId) -> Option<ProcId> {
        let st = self.state.read();
        for info in st.namespaces.values() {
            for p in &info.procs {
                if p.endpoint == endpoint {
                    return Some(p.proc.clone());
                }
            }
        }
        None
    }

    /// Define (or redefine) a process set.
    ///
    /// Process sets are *names for lists of processes* (paper §III-B6);
    /// the RTE defines them at launch (`prun --pset ...`) and the MPI layer
    /// resolves them when building groups.
    pub fn define_pset(&self, name: &str, members: Vec<ProcId>) {
        self.state.write().psets.insert(name.to_owned(), members);
    }

    /// Remove a process set definition.
    pub fn undefine_pset(&self, name: &str) {
        self.state.write().psets.remove(name);
    }

    /// Number of defined process sets.
    pub fn num_psets(&self) -> usize {
        self.state.read().psets.len()
    }

    /// Names of all defined process sets, sorted.
    pub fn pset_names(&self) -> Vec<String> {
        self.state.read().psets.keys().cloned().collect()
    }

    /// Count and sorted names of all defined process sets, read under a
    /// single lock acquisition. Queries that return both values must use
    /// this: separate `num_psets`/`pset_names` calls can interleave with a
    /// concurrent define/undefine and disagree with each other.
    pub fn pset_snapshot(&self) -> (usize, Vec<String>) {
        let st = self.state.read();
        (st.psets.len(), st.psets.keys().cloned().collect())
    }

    /// Membership of one process set.
    pub fn pset_members(&self, name: &str) -> Result<Vec<ProcId>> {
        self.state
            .read()
            .psets
            .get(name)
            .cloned()
            .ok_or_else(|| PmixError::NotFound(format!("pset {name}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(ns: &str, rank: Rank, node: u32, ep: u64) -> ProcEntry {
        ProcEntry {
            proc: ProcId::new(ns, rank),
            node: NodeId(node),
            endpoint: EndpointId(ep),
        }
    }

    #[test]
    fn namespace_registration_and_lookup() {
        let reg = NamespaceRegistry::new();
        reg.register_namespace("job", vec![entry("job", 1, 0, 11), entry("job", 0, 0, 10)]);
        let info = reg.namespace("job").unwrap();
        assert_eq!(info.size(), 2);
        // entries are rank-sorted regardless of registration order
        assert_eq!(info.procs()[0].proc.rank(), 0);
        assert_eq!(info.proc(1).unwrap().endpoint, EndpointId(11));
        assert!(info.proc(2).is_none());
    }

    #[test]
    fn locate_finds_process() {
        let reg = NamespaceRegistry::new();
        reg.register_namespace("job", vec![entry("job", 0, 3, 42)]);
        let e = reg.locate(&ProcId::new("job", 0)).unwrap();
        assert_eq!(e.node, NodeId(3));
        assert!(reg.locate(&ProcId::new("job", 9)).is_err());
        assert!(reg.locate(&ProcId::new("nope", 0)).is_err());
    }

    #[test]
    fn local_peers_filters_by_node() {
        let reg = NamespaceRegistry::new();
        reg.register_namespace(
            "job",
            vec![entry("job", 0, 0, 1), entry("job", 1, 1, 2), entry("job", 2, 0, 3)],
        );
        let info = reg.namespace("job").unwrap();
        assert_eq!(info.local_peers(NodeId(0)), vec![0, 2]);
        assert_eq!(info.local_peers(NodeId(1)), vec![1]);
    }

    #[test]
    fn pset_define_query_undefine() {
        let reg = NamespaceRegistry::new();
        assert_eq!(reg.num_psets(), 0);
        reg.define_pset("app://ocean", vec![ProcId::new("j", 0)]);
        reg.define_pset("app://atmo", vec![ProcId::new("j", 1)]);
        assert_eq!(reg.num_psets(), 2);
        assert_eq!(reg.pset_names(), vec!["app://atmo", "app://ocean"]);
        assert_eq!(reg.pset_members("app://ocean").unwrap().len(), 1);
        reg.undefine_pset("app://ocean");
        assert!(reg.pset_members("app://ocean").is_err());
    }

    #[test]
    fn lead_server_is_lowest_node() {
        let reg = NamespaceRegistry::new();
        reg.register_server(NodeId(2), EndpointId(22));
        reg.register_server(NodeId(0), EndpointId(20));
        assert_eq!(reg.lead_server(), Some(EndpointId(20)));
        assert_eq!(reg.server_of(NodeId(2)), Some(EndpointId(22)));
        assert_eq!(reg.servers().len(), 2);
    }

    #[test]
    fn deregister_namespace_removes_it() {
        let reg = NamespaceRegistry::new();
        reg.register_namespace("job", vec![entry("job", 0, 0, 1)]);
        reg.deregister_namespace("job");
        assert!(reg.namespace("job").is_err());
    }
}
