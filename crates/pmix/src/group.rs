//! PMIx group construction: directives, results and the client-side handle.
//!
//! The collective construct/destruct protocol itself lives in
//! [`crate::server`]; this module defines the user-facing pieces, which
//! mirror Figure 2 of the paper (`PMIx_Group_construct` /
//! `PMIx_Group_destruct` plus directives).

use crate::types::ProcId;
use std::time::Duration;

/// Directives accepted by the group constructor (paper §III-A):
/// leader designation, a completion timeout, a PGCID request, and the
/// failure-notification policies.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupDirectives {
    /// Optional designated leader process.
    pub leader: Option<ProcId>,
    /// Time-out for completion of the collective; `None` = wait forever.
    pub timeout: Option<Duration>,
    /// Request a Process Group Context Identifier from the resource
    /// manager — a unique, non-zero 64-bit id usable by MPI as the
    /// communicator and/or session id.
    pub request_pgcid: bool,
    /// Request an event if a member terminates without first leaving.
    pub notify_on_termination: bool,
    /// Whether a process terminating *before joining* the group is an
    /// error (fails the construct) or is silently dropped.
    pub error_on_early_termination: bool,
}

impl Default for GroupDirectives {
    fn default() -> Self {
        Self {
            leader: None,
            timeout: Some(Duration::from_secs(30)),
            request_pgcid: true,
            notify_on_termination: true,
            error_on_early_termination: true,
        }
    }
}

impl GroupDirectives {
    /// Directives as the MPI Sessions prototype issues them: PGCID
    /// requested, termination is an error.
    pub fn for_mpi() -> Self {
        Self::default()
    }

    /// No PGCID (pure membership agreement, e.g. destruct epochs).
    pub fn without_pgcid(mut self) -> Self {
        self.request_pgcid = false;
        self
    }

    /// Override the timeout.
    pub fn with_timeout(mut self, t: Option<Duration>) -> Self {
        self.timeout = t;
        self
    }

    /// Designate a leader.
    pub fn with_leader(mut self, leader: ProcId) -> Self {
        self.leader = Some(leader);
        self
    }
}

/// What happened to one invitee of an asynchronous (invite/join) construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InviteOutcome {
    /// Accepted and is part of the final membership.
    Accepted,
    /// Explicitly declined the invitation.
    Declined,
    /// Died before answering.
    Dead,
    /// Never answered within the initiator's deadline. The group is still
    /// finalized without them; a straggler reply arriving later is ignored.
    TimedOut,
}

impl InviteOutcome {
    /// Stable lowercase label (used in observability events).
    pub fn as_str(&self) -> &'static str {
        match self {
            InviteOutcome::Accepted => "accepted",
            InviteOutcome::Declined => "declined",
            InviteOutcome::Dead => "dead",
            InviteOutcome::TimedOut => "timed_out",
        }
    }
}

/// Detailed result of an invite-based construct: the finalized group plus
/// the per-invitee resolution, in invitation order.
#[derive(Debug, Clone)]
pub struct InviteReport {
    /// The finalized group (initiator plus accepting invitees).
    pub group: GroupResult,
    /// One entry per invitee, in the order they were invited.
    pub outcomes: Vec<(ProcId, InviteOutcome)>,
}

impl InviteReport {
    /// Resolution for one invitee, if they were invited.
    pub fn outcome_of(&self, proc: &ProcId) -> Option<InviteOutcome> {
        self.outcomes.iter().find(|(p, _)| p == proc).map(|(_, o)| *o)
    }

    /// True when any invitee ran out the clock.
    pub fn any_timed_out(&self) -> bool {
        self.outcomes.iter().any(|(_, o)| *o == InviteOutcome::TimedOut)
    }
}

/// Outcome of a successful group construct.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupResult {
    /// Final, rank-ordered membership (may be smaller than requested when
    /// invitees declined or died and policy allowed it).
    pub members: Vec<ProcId>,
    /// The PGCID, when one was requested. Guaranteed non-zero.
    pub pgcid: Option<u64>,
}

/// A live PMIx group as seen by one member.
///
/// Dropping the handle does *not* destruct the group (destruction is
/// collective); it merely releases the local handle, matching PMIx
/// semantics where the group outlives any one handle until
/// `PMIx_Group_destruct` or the last member leaves.
#[derive(Debug, Clone)]
pub struct PmixGroup {
    name: String,
    members: Vec<ProcId>,
    pgcid: Option<u64>,
}

impl PmixGroup {
    pub(crate) fn new(name: String, result: &GroupResult) -> Self {
        Self { name, members: result.members.clone(), pgcid: result.pgcid }
    }

    /// The group's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rank-ordered membership.
    pub fn members(&self) -> &[ProcId] {
        &self.members
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// The PGCID, if one was assigned.
    pub fn pgcid(&self) -> Option<u64> {
        self.pgcid
    }

    /// Position of `proc` in the membership, if present.
    pub fn rank_of(&self, proc: &ProcId) -> Option<usize> {
        self.members.iter().position(|m| m == proc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_directives_match_mpi_usage() {
        let d = GroupDirectives::for_mpi();
        assert!(d.request_pgcid);
        assert!(d.error_on_early_termination);
        assert!(d.timeout.is_some());
    }

    #[test]
    fn directive_builders() {
        let lead = ProcId::new("j", 0);
        let d = GroupDirectives::default()
            .without_pgcid()
            .with_timeout(None)
            .with_leader(lead.clone());
        assert!(!d.request_pgcid);
        assert_eq!(d.timeout, None);
        assert_eq!(d.leader, Some(lead));
    }

    #[test]
    fn group_handle_accessors() {
        let res = GroupResult {
            members: vec![ProcId::new("j", 0), ProcId::new("j", 4)],
            pgcid: Some(99),
        };
        let g = PmixGroup::new("g".into(), &res);
        assert_eq!(g.name(), "g");
        assert_eq!(g.size(), 2);
        assert_eq!(g.pgcid(), Some(99));
        assert_eq!(g.rank_of(&ProcId::new("j", 4)), Some(1));
        assert_eq!(g.rank_of(&ProcId::new("j", 1)), None);
    }
}
