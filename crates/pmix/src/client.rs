//! The PMIx client handle: what a simulated process uses to talk to its
//! node-local server.

use crate::error::{PmixError, Result};
use crate::event::{EventCode, EventStream};
use crate::group::{GroupDirectives, GroupResult, InviteOutcome, PmixGroup};
use crate::server::{PendingColl, PmixServer};
use crate::types::{ProcId, Rank};
use crate::value::PmixValue;
use crate::server::CollOutcome;
use parking_lot::Mutex;
use simnet::NodeId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Default timeout for blocking PMIx operations issued by this client.
const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

/// A process's PMIx client (analog of `PMIx_Init` … `PMIx_Finalize`).
///
/// Cloneable: MPI may hold one per session while the process holds another.
/// The underlying client registration is released when [`PmixClient::finalize`]
/// is called (PMIx itself reference-counts `PMIx_Init`; we mirror that by
/// making `finalize` explicit and idempotent at the server).
#[derive(Clone)]
pub struct PmixClient {
    proc: ProcId,
    server: Arc<PmixServer>,
    staged: Arc<Mutex<HashMap<String, PmixValue>>>,
    // Run-stable discriminator for this client's fence spans (fences have
    // no caller-supplied name to key on).
    fence_seq: Arc<AtomicU64>,
}

impl PmixClient {
    /// Initialize a client for `proc` against its node-local `server`.
    pub fn init(server: Arc<PmixServer>, proc: ProcId) -> Self {
        server.attach_client(&proc);
        Self {
            proc,
            server,
            staged: Arc::new(Mutex::new(HashMap::new())),
            fence_seq: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Run one collective under a client-side operation span.
    ///
    /// The span is *entered* for the duration of the call, so the server's
    /// fan-in links it as causal predecessor and any fault injected on a
    /// message this thread sends is attributed to it. On success a
    /// zero-duration `<name>.done` child is emitted that links the server's
    /// fan-out context: the release edge `fanout → done` closes the
    /// cross-process loop `op → fanin → xchg → fanout → op.done` without a
    /// cycle.
    fn traced_coll(
        &self,
        span_name: &str,
        key: &str,
        body: impl FnOnce() -> Result<CollOutcome>,
    ) -> Result<CollOutcome> {
        let obs = self.server.obs();
        let process = self.proc.to_string();
        let span = obs.span(&process, span_name, key);
        let res = {
            let _entered = span.enter();
            body()
        };
        if let Ok(out) = &res {
            let mut done = obs.span_with_parent(
                &process,
                &format!("{span_name}.done"),
                key,
                Some(span.context()),
            );
            if let Some(ctx) = out.ctx {
                done.link(ctx);
            }
            done.end();
        }
        span.end();
        res
    }

    /// Release the client registration.
    pub fn finalize(&self) {
        self.server.detach_client(&self.proc);
    }

    /// This client's process id.
    pub fn proc(&self) -> &ProcId {
        &self.proc
    }

    /// This client's rank within its namespace.
    pub fn rank(&self) -> Rank {
        self.proc.rank()
    }

    /// The node this client runs on.
    pub fn node(&self) -> NodeId {
        self.server.node()
    }

    /// The node-local server (escape hatch for advanced callers).
    pub fn server(&self) -> &Arc<PmixServer> {
        &self.server
    }

    // -- key-value exchange ------------------------------------------------

    /// Stage a key-value pair (visible to peers after [`PmixClient::commit`]).
    pub fn put(&self, key: &str, value: impl Into<PmixValue>) {
        self.staged.lock().insert(key.to_owned(), value.into());
    }

    /// Publish all staged pairs to the local server.
    pub fn commit(&self) {
        let staged: HashMap<String, PmixValue> = self.staged.lock().drain().collect();
        if !staged.is_empty() {
            self.server.commit_kvs(&self.proc, staged);
        }
    }

    /// Fetch `key` of `proc` (committed data; direct-modex for remote owners).
    pub fn get(&self, proc: &ProcId, key: &str) -> Result<PmixValue> {
        self.get_timeout(proc, key, DEFAULT_TIMEOUT)
    }

    /// [`PmixClient::get`] with an explicit timeout.
    pub fn get_timeout(&self, proc: &ProcId, key: &str, timeout: Duration) -> Result<PmixValue> {
        self.server.fetch(proc, key, timeout)
    }

    // -- fences ------------------------------------------------------------

    /// Collective fence over `procs`. With `collect`, committed data of all
    /// participants is exchanged so later `get`s are local.
    pub fn fence(&self, procs: &[ProcId], collect: bool) -> Result<()> {
        self.fence_timeout(procs, collect, DEFAULT_TIMEOUT)
    }

    /// [`PmixClient::fence`] with an explicit timeout.
    pub fn fence_timeout(&self, procs: &[ProcId], collect: bool, timeout: Duration) -> Result<()> {
        let kvs = if collect {
            self.commit();
            // The server snapshots this proc's full committed map.
            self.server_committed()
        } else {
            HashMap::new()
        };
        let directives = GroupDirectives::default()
            .without_pgcid()
            .with_timeout(Some(timeout));
        let seq = self.fence_seq.fetch_add(1, Ordering::Relaxed);
        self.traced_coll("pmix.fence", &seq.to_string(), || {
            self.server.coll_enter(
                crate::wire::OpKind::Fence,
                "",
                procs,
                &directives,
                &self.proc,
                kvs,
            )
        })
        .map(|_| ())
    }

    fn server_committed(&self) -> HashMap<String, PmixValue> {
        // The fence contribution is the union of everything this process
        // has committed so far; fetch it back from the server's local store.
        // (Cheap: same-node data.)
        let mut out = HashMap::new();
        // The server exposes committed data through `fetch` per key; to keep
        // the wire contribution exact we read our staged history instead.
        // Committed data lives server-side; replaying it here would need a
        // bulk API — provide one:
        if let Some(all) = self.server.local_committed(&self.proc) {
            out.extend(all);
        }
        out
    }

    // -- groups ------------------------------------------------------------

    /// Collectively construct a PMIx group over `members`
    /// (`PMIx_Group_construct`). Blocks for all members.
    pub fn group_construct(
        &self,
        name: &str,
        members: &[ProcId],
        directives: &GroupDirectives,
    ) -> Result<PmixGroup> {
        let out = self.traced_coll("pmix.group_construct", name, || {
            self.server.coll_enter(
                crate::wire::OpKind::GroupConstruct,
                name,
                members,
                directives,
                &self.proc,
                HashMap::new(),
            )
        })?;
        if directives.request_pgcid && out.pgcid.is_none() {
            return Err(PmixError::Internal("construct completed without PGCID".into()));
        }
        Ok(PmixGroup::new(
            name.to_owned(),
            &GroupResult { members: out.members, pgcid: out.pgcid },
        ))
    }

    /// Nonblocking group construct (`PMIx_Group_construct_nb` analog): run
    /// the local fan-in and return a handle to poll. The operation span
    /// and its `.done` completion child are emitted with exactly the shape
    /// [`PmixClient::group_construct`] produces — the span opens here,
    /// stays open across polls, and closes (with the `.done` release edge
    /// linking the server's fan-out) when the result is observed, so
    /// blocking and nonblocking constructs are indistinguishable in the
    /// trace DAG apart from their overlap.
    pub fn group_construct_nb(
        &self,
        name: &str,
        members: &[ProcId],
        directives: &GroupDirectives,
    ) -> Result<PendingGroup> {
        let obs = self.server.obs();
        let process = self.proc.to_string();
        let span = obs.span(&process, "pmix.group_construct", name);
        let begun = {
            let _entered = span.enter();
            self.server.coll_begin(
                crate::wire::OpKind::GroupConstruct,
                name,
                members,
                directives,
                &self.proc,
                HashMap::new(),
            )
        };
        match begun {
            Ok(pending) => Ok(PendingGroup {
                client: self.clone(),
                pending: Some(pending),
                span: Some(span),
                name: name.to_owned(),
                request_pgcid: directives.request_pgcid,
            }),
            Err(e) => {
                span.end();
                Err(e)
            }
        }
    }

    /// Collectively destruct a group (`PMIx_Group_destruct`).
    pub fn group_destruct(&self, group: &PmixGroup, timeout: Option<Duration>) -> Result<()> {
        let directives = GroupDirectives::default().without_pgcid().with_timeout(
            timeout.or(Some(DEFAULT_TIMEOUT)),
        );
        self.traced_coll("pmix.group_destruct", group.name(), || {
            self.server.coll_enter(
                crate::wire::OpKind::GroupDestruct,
                group.name(),
                group.members(),
                &directives,
                &self.proc,
                HashMap::new(),
            )
        })
        .map(|_| ())
    }

    /// Leave a group asynchronously; remaining members get a
    /// [`EventCode::GroupMemberLeft`] event.
    pub fn group_leave(&self, group: &PmixGroup) -> Result<()> {
        self.server.group_leave(group.name(), &self.proc)
    }

    /// Asynchronous construction, initiator side: invite `invited` to join
    /// `name`. Follow with [`PmixClient::group_invite_wait`].
    pub fn group_invite(
        &self,
        name: &str,
        invited: &[ProcId],
        directives: &GroupDirectives,
    ) -> Result<()> {
        self.server.invite(&self.proc, name, invited, directives)
    }

    /// Initiator side: wait for all invitees to respond; returns the final
    /// membership (decliners and dead invitees removed) and PGCID.
    ///
    /// An invitee that never answers within `timeout` fails the whole wait
    /// with [`PmixError::Timeout`]; use
    /// [`PmixClient::group_invite_wait_report`] to get the partial group and
    /// per-invitee outcomes instead.
    pub fn group_invite_wait(&self, name: &str, timeout: Duration) -> Result<PmixGroup> {
        let result = self.server.invite_wait(name, timeout)?;
        Ok(PmixGroup::new(name.to_owned(), &result))
    }

    /// Initiator side, detailed variant: wait for invitees, then return the
    /// finalized group *and* what happened to each invitee
    /// ([`InviteOutcome::Accepted`] / `Declined` / `Dead` / `TimedOut`).
    /// Unresponsive invitees are dropped, not fatal.
    pub fn group_invite_wait_report(
        &self,
        name: &str,
        timeout: Duration,
    ) -> Result<(PmixGroup, Vec<(ProcId, InviteOutcome)>)> {
        let report = self.server.invite_wait_report(name, timeout)?;
        Ok((PmixGroup::new(name.to_owned(), &report.group), report.outcomes))
    }

    /// Invitee side: respond to a [`EventCode::GroupInvited`] event.
    pub fn group_join(&self, name: &str, inviter: &ProcId, accept: bool) -> Result<()> {
        self.server.join_reply(name, &self.proc, inviter, accept)
    }

    // -- events --------------------------------------------------------

    /// Register for events; `codes = None` receives everything.
    pub fn register_events(&self, codes: Option<Vec<EventCode>>) -> EventStream {
        self.server.subscribe(&self.proc, codes)
    }

    // -- job info & queries ----------------------------------------------

    /// Number of processes in this client's namespace (`PMIX_JOB_SIZE`).
    pub fn job_size(&self) -> Result<usize> {
        Ok(self.server.registry().namespace(self.proc.nspace())?.size())
    }

    /// Ranks co-located on this client's node (`PMIX_LOCAL_PEERS`).
    pub fn local_peers(&self) -> Result<Vec<Rank>> {
        Ok(self
            .server
            .registry()
            .namespace(self.proc.nspace())?
            .local_peers(self.server.node()))
    }

    /// Query: number of defined process sets (`PMIX_QUERY_NUM_PSETS`).
    pub fn query_num_psets(&self) -> usize {
        self.server.registry().num_psets()
    }

    /// Query: names of all process sets (`PMIX_QUERY_PSET_NAMES`).
    pub fn query_pset_names(&self) -> Vec<String> {
        self.server.registry().pset_names()
    }

    /// Query: membership of one process set.
    pub fn query_pset_membership(&self, name: &str) -> Result<Vec<ProcId>> {
        self.server.registry().pset_members(name)
    }

    /// Query: membership of one process set together with the pset's epoch.
    pub fn query_pset_membership_versioned(
        &self,
        name: &str,
    ) -> Result<(u64, Arc<Vec<ProcId>>)> {
        self.server.registry().pset_members_versioned(name)
    }

    /// Query: current global pset-registry epoch.
    pub fn query_pset_epoch(&self) -> u64 {
        self.server.registry().pset_epoch()
    }

    /// Query: a self-consistent snapshot of the whole pset table. Batches
    /// asking for count + names + membership answer every key from one
    /// snapshot so concurrent define/undefine cannot make them disagree.
    pub fn query_pset_snapshot(&self) -> crate::nspace::PsetSnapshot {
        self.server.registry().pset_snapshot()
    }

    /// Subscribe to pset change events with replay: the stream starts with
    /// synthetic `PsetDefined`/`PsetDeleted` events describing the current
    /// table (at their real epochs), then carries live changes exactly once.
    pub fn watch_psets(&self) -> EventStream {
        self.server.subscribe_psets(&self.proc)
    }
}

impl std::fmt::Debug for PmixClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PmixClient").field("proc", &self.proc).finish()
    }
}

/// An in-flight nonblocking group construct, returned by
/// [`PmixClient::group_construct_nb`].
///
/// Poll with [`PendingGroup::try_group`] or block in
/// [`PendingGroup::wait`]. Dropping the handle abandons this member's
/// observation of the collective (the construct itself still completes
/// server-side — construction is collective, so cancellation must be too;
/// see the server's abandonment bookkeeping).
pub struct PendingGroup {
    client: PmixClient,
    pending: Option<PendingColl>,
    span: Option<obs::Span>,
    name: String,
    request_pgcid: bool,
}

impl PendingGroup {
    /// The group name this construct will produce.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// True once the construct has delivered its result.
    pub fn is_finished(&self) -> bool {
        self.pending.is_none()
    }

    /// Test for completion: `Some(result)` exactly once when the construct
    /// finishes; `None` while still in flight.
    pub fn try_group(&mut self) -> Option<Result<PmixGroup>> {
        let pending = self.pending.as_mut()?;
        let res = {
            let span = self.span.as_ref().expect("span lives while pending");
            let _entered = span.enter();
            self.client.server.coll_poll(pending)?
        };
        self.pending = None;
        Some(self.finish(res))
    }

    /// Park until the construct is ready to observe or `limit` elapses,
    /// without observing it: a subsequent [`PendingGroup::try_group`] picks
    /// the result up. Lets wait-style callers of the nonblocking API ride
    /// the server condvar instead of poll-spinning.
    pub fn park(&mut self, limit: std::time::Duration) {
        if let Some(pending) = self.pending.as_ref() {
            self.client.server.coll_park(pending, limit);
        }
    }

    /// Block until the construct completes (nb + wait ≡ blocking).
    pub fn wait(mut self) -> Result<PmixGroup> {
        let Some(pending) = self.pending.take() else {
            return Err(PmixError::BadParam(format!(
                "waited on finished construct {}",
                self.name
            )));
        };
        let res = {
            let span = self.span.as_ref().expect("span lives while pending");
            let _entered = span.enter();
            self.client.server.coll_wait(pending)
        };
        self.finish(res)
    }

    fn finish(&mut self, res: Result<crate::server::CollOutcome>) -> Result<PmixGroup> {
        let span = self.span.take().expect("span lives until completion");
        let out = match res {
            Ok(out) => out,
            Err(e) => {
                span.end();
                return Err(e);
            }
        };
        let obs = self.client.server.obs();
        let process = self.client.proc.to_string();
        let mut done = obs.span_with_parent(
            &process,
            "pmix.group_construct.done",
            &self.name,
            Some(span.context()),
        );
        if let Some(ctx) = out.ctx {
            done.link(ctx);
        }
        done.end();
        span.end();
        if self.request_pgcid && out.pgcid.is_none() {
            return Err(PmixError::Internal("construct completed without PGCID".into()));
        }
        Ok(PmixGroup::new(
            self.name.clone(),
            &GroupResult { members: out.members, pgcid: out.pgcid },
        ))
    }
}

impl Drop for PendingGroup {
    fn drop(&mut self) {
        if let Some(mut pending) = self.pending.take() {
            self.client.server.coll_abandon(&mut pending);
            if let Some(span) = self.span.take() {
                span.end();
            }
        }
    }
}

impl std::fmt::Debug for PendingGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingGroup")
            .field("name", &self.name)
            .field("finished", &self.is_finished())
            .finish()
    }
}
