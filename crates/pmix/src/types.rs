//! Core PMIx identifiers.

use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A process rank within a namespace (PMIx `pmix_rank_t`).
pub type Rank = u32;

/// Fully-qualified PMIx process identifier: namespace plus rank
/// (`pmix_proc_t`).
///
/// The namespace string is reference-counted: `ProcId`s are copied around
/// heavily in group membership lists and wire messages.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId {
    nspace: Arc<str>,
    rank: Rank,
}

impl ProcId {
    /// Create a proc id.
    pub fn new(nspace: impl Into<Arc<str>>, rank: Rank) -> Self {
        Self { nspace: nspace.into(), rank }
    }

    /// The namespace (job) this process belongs to.
    pub fn nspace(&self) -> &str {
        &self.nspace
    }

    /// The shared namespace handle (cheap to clone).
    pub fn nspace_arc(&self) -> Arc<str> {
        self.nspace.clone()
    }

    /// The rank within the namespace.
    pub fn rank(&self) -> Rank {
        self.rank
    }
}

impl std::fmt::Display for ProcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.nspace, self.rank)
    }
}

impl Serialize for ProcId {
    fn serialize<S: serde::Serializer>(&self, s: S) -> std::result::Result<S::Ok, S::Error> {
        (&*self.nspace, self.rank).serialize(s)
    }
}

impl<'de> Deserialize<'de> for ProcId {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> std::result::Result<Self, D::Error> {
        let (ns, rank): (String, Rank) = Deserialize::deserialize(d)?;
        Ok(ProcId::new(ns, rank))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_id_accessors() {
        let p = ProcId::new("prterun-42", 7);
        assert_eq!(p.nspace(), "prterun-42");
        assert_eq!(p.rank(), 7);
        assert_eq!(p.to_string(), "prterun-42:7");
    }

    #[test]
    fn proc_id_ordering_is_nspace_then_rank() {
        let a = ProcId::new("a", 9);
        let b = ProcId::new("b", 0);
        let a2 = ProcId::new("a", 10);
        assert!(a < b);
        assert!(a < a2);
    }

    #[test]
    fn proc_id_serde_roundtrip() {
        let p = ProcId::new("job", 3);
        let s = serde_json::to_string(&p).unwrap();
        let q: ProcId = serde_json::from_str(&s).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn proc_id_hash_equality() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(ProcId::new("j", 1));
        assert!(set.contains(&ProcId::new("j", 1)));
        assert!(!set.contains(&ProcId::new("j", 2)));
    }
}
