//! On-demand peer address resolution for lazy (fence-free) init.
//!
//! Eager startup pays a world-wide business-card exchange (put + commit +
//! collecting fence) before any communication. The lazy mode skips the
//! fence entirely: each rank publishes its own card and returns, and the
//! first *send* to a peer resolves that peer's endpoint through a
//! [`PeerResolver`] — a per-process cache over nonblocking keyed KVS
//! fetches ([`PmixServer::fetch_begin`]). A cache hit costs zero round
//! trips; a miss costs at most one dmodex round trip to the owner's
//! server, after which the endpoint is cached for the life of the process
//! (or until [`PeerResolver::invalidate`] evicts it on peer death or
//! retirement).
//!
//! Counters (`pmix.lazy_gets`, `pmix.get_cache_hits`) and the
//! `pmix.peer_cache_entries` occupancy gauge are registered per resolving
//! process, so benchmarks and the flight recorder can audit exactly how
//! many on-demand fetches a lazy run performed.

use crate::client::PmixClient;
use crate::error::{PmixError, Result};
use crate::server::{FetchTicket, PmixServer};
use crate::types::ProcId;
use crate::value::{keys, PmixValue};
use parking_lot::Mutex;
use simnet::EndpointId;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Per-process cache of peer fabric endpoints, filled on demand from the
/// server KVS. Created once per process on the lazy session-init path
/// (eager runs never construct one, so their metric shape is unchanged).
pub struct PeerResolver {
    proc: ProcId,
    server: Arc<PmixServer>,
    cache: Mutex<HashMap<ProcId, EndpointId>>,
    lazy_gets: obs::Counter,
    cache_hits: obs::Counter,
    occupancy: obs::Gauge,
}

/// An in-flight peer resolution: one nonblocking KVS fetch of the peer's
/// business card. Drive with [`PeerResolver::poll`].
pub struct PeerFetch {
    peer: ProcId,
    ticket: FetchTicket,
}

impl PeerFetch {
    /// The peer being resolved.
    pub fn peer(&self) -> &ProcId {
        &self.peer
    }
}

impl PeerResolver {
    /// Build a resolver for `client`'s process over its local server.
    pub fn new(client: &PmixClient) -> Arc<PeerResolver> {
        let server = client.server().clone();
        let obs = server.obs();
        let proc = client.proc().clone();
        let scope = proc.to_string();
        Arc::new(PeerResolver {
            lazy_gets: obs.counter(&scope, "pmix", "lazy_gets"),
            cache_hits: obs.counter(&scope, "pmix", "get_cache_hits"),
            occupancy: obs.gauge(&scope, "pmix", "peer_cache_entries"),
            proc,
            server,
            cache: Mutex::new(HashMap::new()),
        })
    }

    /// The resolving process.
    pub fn proc(&self) -> &ProcId {
        &self.proc
    }

    /// Cache-only lookup: `Some(endpoint)` on a hit (zero round trips). A
    /// cached entry whose owner has since been deregistered or declared
    /// dead is evicted and reads as a miss — the follow-up
    /// [`PeerResolver::begin`] then surfaces the typed error.
    pub fn lookup(&self, peer: &ProcId) -> Option<EndpointId> {
        let hit = self.cache.lock().get(peer).copied();
        let ep = hit?;
        // Death does not deregister (identity is never recycled), so the
        // locate() check alone would keep serving a dead peer's card: ask
        // the server's dead set too.
        if self.server.registry().locate(peer).is_err() || self.server.proc_is_dead(peer) {
            self.invalidate(peer);
            return None;
        }
        self.cache_hits.inc();
        Some(ep)
    }

    /// Begin resolving `peer`'s endpoint (a cache miss): one counted lazy
    /// get against the server KVS. Errors immediately — typed, never a
    /// stale answer — when the peer is deregistered (`NotFound`) or dead
    /// (`ProcTerminated`).
    pub fn begin(&self, peer: &ProcId) -> Result<PeerFetch> {
        self.lazy_gets.inc();
        let ticket = self.server.fetch_begin(peer, keys::ENDPOINT)?;
        Ok(PeerFetch { peer: peer.clone(), ticket })
    }

    /// Poll an in-flight resolution: `None` while the peer's card is still
    /// unpublished/in transit, `Some(Ok(endpoint))` once (cached for later
    /// sends), `Some(Err)` on a terminal typed failure.
    pub fn poll(&self, fetch: &mut PeerFetch) -> Option<Result<EndpointId>> {
        let res = self.server.fetch_poll(&mut fetch.ticket)?;
        Some(res.and_then(|v| match v {
            PmixValue::U64(raw) => {
                let ep = EndpointId(raw);
                let n = {
                    let mut cache = self.cache.lock();
                    cache.insert(fetch.peer.clone(), ep);
                    cache.len()
                };
                self.occupancy.set(n as i64);
                Ok(ep)
            }
            other => Err(PmixError::Internal(format!(
                "business card of {} is not an endpoint: {other:?}",
                fetch.peer
            ))),
        }))
    }

    /// Park on the resolution's shard condvar for at most `limit`.
    pub fn park(&self, fetch: &PeerFetch, limit: Duration) {
        self.server.fetch_park(&fetch.ticket, limit);
    }

    /// Evict `peer` from the cache (peer death, retirement, or route
    /// invalidation in the PML).
    pub fn invalidate(&self, peer: &ProcId) {
        let n = {
            let mut cache = self.cache.lock();
            cache.remove(peer);
            cache.len()
        };
        self.occupancy.set(n as i64);
    }

    /// Number of peers currently cached (the occupancy pvar's source).
    pub fn cached(&self) -> usize {
        self.cache.lock().len()
    }
}

impl std::fmt::Debug for PeerResolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PeerResolver")
            .field("proc", &self.proc)
            .field("cached", &self.cached())
            .finish()
    }
}
