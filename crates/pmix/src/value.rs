//! PMIx values: the typed payloads stored in the key-value store and
//! returned by queries (`pmix_value_t`).

use crate::types::ProcId;
use serde::{Deserialize, Serialize};

/// A typed PMIx value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PmixValue {
    /// UTF-8 string.
    Str(String),
    /// Unsigned 64-bit integer (PGCIDs, sizes, endpoints).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Boolean flag.
    Bool(bool),
    /// Double-precision float.
    F64(f64),
    /// Raw bytes (business cards, opaque blobs).
    Bytes(Vec<u8>),
    /// A list of process identifiers (pset membership, group members).
    ProcList(Vec<ProcId>),
    /// A list of strings (pset names).
    StrList(Vec<String>),
    /// A proc list stamped with the registry epoch it was read at.
    /// Membership queries return this so clients can detect torn reads
    /// against a names/count answer taken at a different epoch.
    VersionedProcList {
        /// Global pset-registry epoch at the time of the read.
        epoch: u64,
        /// The membership at that epoch.
        members: Vec<ProcId>,
    },
}

impl PmixValue {
    /// Interpret as string, if possible.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            PmixValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Interpret as u64, if possible.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            PmixValue::U64(v) => Some(*v),
            PmixValue::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Interpret as bool, if possible.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            PmixValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Interpret as a proc list, if possible. Versioned lists answer too:
    /// callers that don't care about the epoch see just the members.
    pub fn as_proc_list(&self) -> Option<&[ProcId]> {
        match self {
            PmixValue::ProcList(v) => Some(v),
            PmixValue::VersionedProcList { members, .. } => Some(members),
            _ => None,
        }
    }

    /// Interpret as an epoch-stamped proc list, if possible.
    pub fn as_versioned_proc_list(&self) -> Option<(u64, &[ProcId])> {
        match self {
            PmixValue::VersionedProcList { epoch, members } => Some((*epoch, members)),
            _ => None,
        }
    }

    /// Interpret as a string list, if possible.
    pub fn as_str_list(&self) -> Option<&[String]> {
        match self {
            PmixValue::StrList(v) => Some(v),
            _ => None,
        }
    }

    /// Interpret as bytes, if possible.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            PmixValue::Bytes(b) => Some(b),
            _ => None,
        }
    }
}

impl From<&str> for PmixValue {
    fn from(s: &str) -> Self {
        PmixValue::Str(s.to_owned())
    }
}
impl From<String> for PmixValue {
    fn from(s: String) -> Self {
        PmixValue::Str(s)
    }
}
impl From<u64> for PmixValue {
    fn from(v: u64) -> Self {
        PmixValue::U64(v)
    }
}
impl From<bool> for PmixValue {
    fn from(v: bool) -> Self {
        PmixValue::Bool(v)
    }
}
impl From<Vec<u8>> for PmixValue {
    fn from(v: Vec<u8>) -> Self {
        PmixValue::Bytes(v)
    }
}
impl From<Vec<ProcId>> for PmixValue {
    fn from(v: Vec<ProcId>) -> Self {
        PmixValue::ProcList(v)
    }
}

/// Well-known PMIx attribute/query keys used by this reproduction.
pub mod keys {
    /// Number of processes in the namespace (job).
    pub const JOB_SIZE: &str = "pmix.job.size";
    /// Ranks of the processes on the caller's node, comma-separated.
    pub const LOCAL_PEERS: &str = "pmix.lpeers";
    /// The caller's rank on its node.
    pub const LOCAL_RANK: &str = "pmix.lrank";
    /// The caller's node id.
    pub const NODE_ID: &str = "pmix.nodeid";
    /// Fabric endpoint of a process ("business card").
    pub const ENDPOINT: &str = "pmix.endpoint";
    /// Query: number of defined process sets.
    pub const QUERY_NUM_PSETS: &str = "pmix.qry.psetnum";
    /// Query: names of defined process sets.
    pub const QUERY_PSET_NAMES: &str = "pmix.qry.psets";
    /// Query: membership of one process set (passed with the pset name).
    pub const QUERY_PSET_MEMBERSHIP: &str = "pmix.qry.psetmems";
    /// Query: current global pset-registry epoch.
    pub const QUERY_PSET_EPOCH: &str = "pmix.qry.psetepoch";
    /// Event payload: name of the pset a change event is about.
    pub const PSET_NAME: &str = "pmix.pset.name";
    /// Event payload: registry epoch at which the change took effect.
    pub const PSET_EPOCH: &str = "pmix.pset.epoch";
    /// Event payload: pset membership after the change.
    pub const PSET_MEMBERS: &str = "pmix.pset.members";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_accessors() {
        assert_eq!(PmixValue::from("x").as_str(), Some("x"));
        assert_eq!(PmixValue::from(7u64).as_u64(), Some(7));
        assert_eq!(PmixValue::I64(7).as_u64(), Some(7));
        assert_eq!(PmixValue::I64(-7).as_u64(), None);
        assert_eq!(PmixValue::from(true).as_bool(), Some(true));
        assert_eq!(PmixValue::from(vec![1u8, 2]).as_bytes(), Some(&[1u8, 2][..]));
        assert!(PmixValue::from("x").as_u64().is_none());
    }

    #[test]
    fn proc_list_roundtrip() {
        let v = PmixValue::ProcList(vec![ProcId::new("j", 0), ProcId::new("j", 1)]);
        let s = serde_json::to_string(&v).unwrap();
        let w: PmixValue = serde_json::from_str(&s).unwrap();
        assert_eq!(v, w);
        assert_eq!(w.as_proc_list().unwrap().len(), 2);
    }
}
