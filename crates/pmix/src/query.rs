//! The PMIx query interface (`PMIx_Query_info_nb`).
//!
//! The paper highlights two query keys added alongside the group work:
//! `PMIX_QUERY_NUM_PSETS` and `PMIX_QUERY_PSET_NAMES` (§III-A, last
//! paragraph). This module provides a generic, key-driven query front end
//! over the registry, mirroring how tools and the asynchronous group
//! operations discover process sets.

use crate::client::PmixClient;
use crate::error::{PmixError, Result};
use crate::value::{keys, PmixValue};

/// A single query: a key plus optional qualifier (e.g. a pset name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// The query key (see [`crate::value::keys`]).
    pub key: String,
    /// Optional qualifier (pset name for membership queries).
    pub qualifier: Option<String>,
}

impl Query {
    /// Query with no qualifier.
    pub fn key(key: &str) -> Self {
        Self { key: key.to_owned(), qualifier: None }
    }

    /// Query with a qualifier.
    pub fn with_qualifier(key: &str, qualifier: &str) -> Self {
        Self { key: key.to_owned(), qualifier: Some(qualifier.to_owned()) }
    }
}

/// Resolve a batch of queries against the client's runtime, returning one
/// value per query in order (the blocking analog of `PMIx_Query_info_nb`).
///
/// All pset keys — count, name list *and membership* — are answered from a
/// single registry snapshot taken once per batch: while psets churn
/// concurrently, per-key reads could otherwise report a name whose
/// membership query then misses (or a count disagreeing with the list
/// returned by the very same call). Membership answers are epoch-stamped
/// ([`PmixValue::VersionedProcList`]) so clients can detect torn reads
/// across *separate* batches too.
pub fn query_info(client: &PmixClient, queries: &[Query]) -> Result<Vec<PmixValue>> {
    let wants_psets = queries.iter().any(|q| {
        matches!(
            q.key.as_str(),
            keys::QUERY_NUM_PSETS
                | keys::QUERY_PSET_NAMES
                | keys::QUERY_PSET_MEMBERSHIP
                | keys::QUERY_PSET_EPOCH
        )
    });
    let pset_snapshot = wants_psets.then(|| client.query_pset_snapshot());
    queries
        .iter()
        .map(|q| match q.key.as_str() {
            keys::QUERY_NUM_PSETS => {
                let snap = pset_snapshot.as_ref().expect("snapshot taken");
                Ok(PmixValue::U64(snap.len() as u64))
            }
            keys::QUERY_PSET_NAMES => {
                let snap = pset_snapshot.as_ref().expect("snapshot taken");
                Ok(PmixValue::StrList(snap.names()))
            }
            keys::QUERY_PSET_EPOCH => {
                let snap = pset_snapshot.as_ref().expect("snapshot taken");
                Ok(PmixValue::U64(snap.epoch))
            }
            keys::QUERY_PSET_MEMBERSHIP => {
                let name = q
                    .qualifier
                    .as_deref()
                    .ok_or_else(|| PmixError::BadParam("membership query needs a pset name".into()))?;
                let snap = pset_snapshot.as_ref().expect("snapshot taken");
                let (epoch, members) = snap
                    .members(name)
                    .ok_or_else(|| PmixError::NotFound(format!("pset {name}")))?;
                Ok(PmixValue::VersionedProcList { epoch, members: members.as_ref().clone() })
            }
            keys::JOB_SIZE => Ok(PmixValue::U64(client.job_size()? as u64)),
            keys::LOCAL_PEERS => Ok(PmixValue::StrList(
                client.local_peers()?.iter().map(|r| r.to_string()).collect(),
            )),
            keys::NODE_ID => Ok(PmixValue::U64(client.node().0 as u64)),
            other => Err(PmixError::NotFound(format!("query key {other}"))),
        })
        .collect()
}
