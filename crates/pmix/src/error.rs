//! PMIx error codes.

use crate::types::ProcId;

/// Error codes surfaced by PMIx operations, mirroring the subset of
/// `pmix_status_t` values the paper's prototype interacts with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PmixError {
    /// A collective (fence, group construct/destruct) timed out waiting for
    /// a participant.
    Timeout,
    /// A participant process terminated before joining/completing the
    /// operation and directives asked for that to be an error.
    ProcTerminated(ProcId),
    /// The named entity (pset, group, key, namespace, proc) does not exist.
    NotFound(String),
    /// A parameter was invalid (empty membership, duplicate group name, ...).
    BadParam(String),
    /// The local server or a peer server is unreachable (killed fabric
    /// endpoint or shut-down universe).
    Unreachable,
    /// The calling process is not a member of the operation's process set.
    NotMember,
    /// The group already exists (collective construct of a duplicate name
    /// with a live group).
    Exists(String),
    /// An invited process declined to join an asynchronously-constructed
    /// group.
    Declined(ProcId),
    /// Internal error with context; should not occur in healthy runs.
    Internal(String),
}

impl std::fmt::Display for PmixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PmixError::Timeout => write!(f, "PMIX_ERR_TIMEOUT"),
            PmixError::ProcTerminated(p) => write!(f, "PMIX_ERR_PROC_TERMINATED: {p}"),
            PmixError::NotFound(s) => write!(f, "PMIX_ERR_NOT_FOUND: {s}"),
            PmixError::BadParam(s) => write!(f, "PMIX_ERR_BAD_PARAM: {s}"),
            PmixError::Unreachable => write!(f, "PMIX_ERR_UNREACH"),
            PmixError::NotMember => write!(f, "PMIX_ERR_INVALID_CRED: caller not a member"),
            PmixError::Exists(s) => write!(f, "PMIX_ERR_EXISTS: {s}"),
            PmixError::Declined(p) => write!(f, "PMIX_ERR_GROUP_OPT_OUT: {p}"),
            PmixError::Internal(s) => write!(f, "PMIX_ERR_INTERNAL: {s}"),
        }
    }
}

impl std::error::Error for PmixError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, PmixError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_code_names() {
        assert!(PmixError::Timeout.to_string().contains("TIMEOUT"));
        assert!(PmixError::NotFound("x".into()).to_string().contains("x"));
        let p = ProcId::new("job1", 3);
        assert!(PmixError::ProcTerminated(p).to_string().contains("job1"));
    }
}
