//! Stage accounting of the three-stage hierarchical group construct
//! (paper §III-A), asserted from obs events alone: the per-stage event
//! counts scale with the number of participating *nodes*, never with the
//! number of processes per node.

use obs::Event;
use pmix::{GroupDirectives, PmixUniverse, ProcId};
use simnet::SimTestbed;
use std::sync::Arc;

fn spawn_procs(uni: &Arc<PmixUniverse>, nspace: &str, n: u32) -> Vec<ProcId> {
    let spec = uni.testbed().cluster.clone();
    (0..n)
        .map(|rank| {
            let node = spec.node_of_slot(rank % spec.total_slots());
            let ep = uni.fabric().register(node);
            let proc = ProcId::new(nspace, rank);
            uni.register_proc(proc.clone(), &ep);
            proc
        })
        .collect()
}

fn construct_on_all(uni: &Arc<PmixUniverse>, procs: &[ProcId], name: &str) {
    let members = procs.to_vec();
    let handles: Vec<_> = procs
        .iter()
        .map(|p| {
            let uni = uni.clone();
            let p = p.clone();
            let members = members.clone();
            let name = name.to_string();
            std::thread::spawn(move || {
                let c = uni.client_for(&p).unwrap();
                let g = c
                    .group_construct(&name, &members, &GroupDirectives::for_mpi())
                    .unwrap();
                g.pgcid().unwrap()
            })
        })
        .collect();
    let pgcids: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(pgcids.iter().all(|p| *p == pgcids[0]));
}

/// Stage events for one construct op, filtered by op name and kind.
fn stage_counts(uni: &Arc<PmixUniverse>, op: &str) -> (usize, usize, usize) {
    let obs = uni.fabric().obs();
    let count = |stage: &str| {
        obs.events_named(stage)
            .iter()
            .filter(|e: &&Event| {
                e.attr("op").and_then(|v| v.as_str()) == Some(op)
                    && e.attr("kind").and_then(|v| v.as_str()) == Some("group_construct")
            })
            .count()
    };
    (count("group.fanin"), count("group.xchg"), count("group.fanout"))
}

/// Run one 4-process construct on a (nodes, ppn) testbed and return the
/// observed (fanin, xchg, fanout) stage counts.
fn run_topology(nodes: u32, ppn: u32) -> (usize, usize, usize) {
    assert_eq!(nodes * ppn, 4, "all topologies use the same np");
    let uni = PmixUniverse::new(SimTestbed::tiny(nodes, ppn));
    let procs = spawn_procs(&uni, "job", 4);
    construct_on_all(&uni, &procs, "stages");
    stage_counts(&uni, "stages")
}

#[test]
fn stage_counts_scale_with_nodes_not_ppn() {
    // S participating servers: fan-in once per server, all-to-all exchange
    // S*(S-1) messages total, fan-out once per server. Same np=4 in every
    // case — only the node count moves the numbers.
    for (nodes, ppn) in [(4, 1), (2, 2), (1, 4)] {
        let s = nodes as usize;
        let (fanin, xchg, fanout) = run_topology(nodes, ppn);
        assert_eq!(fanin, s, "fanin events for nodes={nodes} ppn={ppn}");
        assert_eq!(xchg, s * (s - 1), "xchg events for nodes={nodes} ppn={ppn}");
        assert_eq!(fanout, s, "fanout events for nodes={nodes} ppn={ppn}");
    }
}

#[test]
fn stage_counters_match_events() {
    // The cheap counters agree with the event stream (here: one construct
    // plus whatever fences the scenario does — none — on 2 nodes).
    let uni = PmixUniverse::new(SimTestbed::tiny(2, 2));
    let procs = spawn_procs(&uni, "job", 4);
    construct_on_all(&uni, &procs, "agree");
    let obs = uni.fabric().obs();
    assert_eq!(obs.sum_counters("pmix", "stage_fanin"), 2);
    assert_eq!(obs.sum_counters("pmix", "stage_xchg"), 2);
    assert_eq!(obs.sum_counters("pmix", "stage_fanout"), 2);
    // Exactly one PGCID was allocated by the RM for the construct.
    assert_eq!(obs.sum_counters("pmix", "pgcid_allocated"), 1);
    // Every construct completion is visible on every participating server.
    assert_eq!(obs.sum_counters("pmix", "group_construct_completed"), 2);
}
