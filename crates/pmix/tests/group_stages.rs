//! Stage accounting of the three-stage hierarchical group construct
//! (paper §III-A), asserted from obs events alone: the per-stage event
//! counts scale with the number of participating *nodes*, never with the
//! number of processes per node.

use obs::Event;
use pmix::{GroupDirectives, PmixUniverse, ProcId};
use simnet::SimTestbed;
use std::sync::Arc;

fn spawn_procs(uni: &Arc<PmixUniverse>, nspace: &str, n: u32) -> Vec<ProcId> {
    let spec = uni.testbed().cluster.clone();
    (0..n)
        .map(|rank| {
            let node = spec.node_of_slot(rank % spec.total_slots());
            let ep = uni.fabric().register(node);
            let proc = ProcId::new(nspace, rank);
            uni.register_proc(proc.clone(), &ep);
            proc
        })
        .collect()
}

fn construct_on_all(uni: &Arc<PmixUniverse>, procs: &[ProcId], name: &str) {
    let members = procs.to_vec();
    let handles: Vec<_> = procs
        .iter()
        .map(|p| {
            let uni = uni.clone();
            let p = p.clone();
            let members = members.clone();
            let name = name.to_string();
            std::thread::spawn(move || {
                let c = uni.client_for(&p).unwrap();
                let g = c
                    .group_construct(&name, &members, &GroupDirectives::for_mpi())
                    .unwrap();
                g.pgcid().unwrap()
            })
        })
        .collect();
    let pgcids: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(pgcids.iter().all(|p| *p == pgcids[0]));
}

/// Stage events for one construct op, filtered by op name and kind.
fn stage_counts(uni: &Arc<PmixUniverse>, op: &str) -> (usize, usize, usize) {
    let obs = uni.fabric().obs();
    let count = |stage: &str| {
        obs.events_named(stage)
            .iter()
            .filter(|e: &&Event| {
                e.attr("op").and_then(|v| v.as_str()) == Some(op)
                    && e.attr("kind").and_then(|v| v.as_str()) == Some("group_construct")
            })
            .count()
    };
    (count("group.fanin"), count("group.xchg"), count("group.fanout"))
}

/// Run one 4-process construct on a (nodes, ppn) testbed and return the
/// observed (fanin, xchg, fanout) stage counts.
fn run_topology(nodes: u32, ppn: u32) -> (usize, usize, usize) {
    assert_eq!(nodes * ppn, 4, "all topologies use the same np");
    let uni = PmixUniverse::new(SimTestbed::tiny(nodes, ppn));
    let procs = spawn_procs(&uni, "job", 4);
    construct_on_all(&uni, &procs, "stages");
    stage_counts(&uni, "stages")
}

#[test]
fn stage_counts_scale_with_nodes_not_ppn() {
    // S participating servers: fan-in once per server, all-to-all exchange
    // S*(S-1) messages total, fan-out once per server. Same np=4 in every
    // case — only the node count moves the numbers.
    for (nodes, ppn) in [(4, 1), (2, 2), (1, 4)] {
        let s = nodes as usize;
        let (fanin, xchg, fanout) = run_topology(nodes, ppn);
        assert_eq!(fanin, s, "fanin events for nodes={nodes} ppn={ppn}");
        assert_eq!(xchg, s * (s - 1), "xchg events for nodes={nodes} ppn={ppn}");
        assert_eq!(fanout, s, "fanout events for nodes={nodes} ppn={ppn}");
    }
}

#[test]
fn stage_spans_chain_causally_on_every_server() {
    // One 4-process construct over 2 nodes: every participating server must
    // emit the three stage spans chained fanin → xchg → fanout with
    // strictly increasing logical start times, fan-in linking each local
    // client's operation span and the exchange linking at least one remote
    // contribution.
    let uni = PmixUniverse::new(SimTestbed::tiny(2, 2));
    let procs = spawn_procs(&uni, "job", 4);
    construct_on_all(&uni, &procs, "spans");
    let spans = uni.fabric().obs().spans_snapshot();
    for node in 0..2u64 {
        let process = format!("server:{node}");
        let find = |name: &str| {
            spans
                .iter()
                .find(|s| s.process == process && s.name == name && s.key.contains("spans"))
                .unwrap_or_else(|| panic!("missing {name} span on {process}"))
        };
        let fanin = find("group.fanin");
        let xchg = find("group.xchg");
        let fanout = find("group.fanout");
        assert!(
            fanin.start_clock < xchg.start_clock && xchg.start_clock < fanout.start_clock,
            "stage start clocks must increase on {process}: {} {} {}",
            fanin.start_clock,
            xchg.start_clock,
            fanout.start_clock
        );
        assert_eq!(xchg.parent, Some(fanin.id), "xchg is a child of fanin");
        assert_eq!(fanout.parent, Some(xchg.id), "fanout is a child of xchg");
        assert_eq!(fanin.links.len(), 2, "fanin links both local client spans");
        assert!(!xchg.links.is_empty(), "xchg links remote contributions");
        assert_eq!(fanout.work, 4, "fanout work counts installed members");
    }
    // Each client emitted an operation span plus a `.done` completion span
    // that links its server's fan-out context (the release edge).
    let fanout_ids: Vec<_> = spans
        .iter()
        .filter(|s| s.name == "group.fanout")
        .map(|s| s.id)
        .collect();
    for p in &procs {
        let process = p.to_string();
        let op = spans
            .iter()
            .find(|s| s.process == process && s.name == "pmix.group_construct")
            .unwrap_or_else(|| panic!("missing construct span for {process}"));
        let done = spans
            .iter()
            .find(|s| s.process == process && s.name == "pmix.group_construct.done")
            .unwrap_or_else(|| panic!("missing done span for {process}"));
        assert_eq!(done.parent, Some(op.id));
        assert!(
            done.links.iter().any(|l| fanout_ids.contains(&l.span)),
            "{process} done span links a fanout context"
        );
        assert_eq!(done.trace, op.trace, "completion stays in the client's trace");
    }
}

#[test]
fn stage_counters_match_events() {
    // The cheap counters agree with the event stream (here: one construct
    // plus whatever fences the scenario does — none — on 2 nodes).
    let uni = PmixUniverse::new(SimTestbed::tiny(2, 2));
    let procs = spawn_procs(&uni, "job", 4);
    construct_on_all(&uni, &procs, "agree");
    let obs = uni.fabric().obs();
    assert_eq!(obs.sum_counters("pmix", "stage_fanin"), 2);
    assert_eq!(obs.sum_counters("pmix", "stage_xchg"), 2);
    assert_eq!(obs.sum_counters("pmix", "stage_fanout"), 2);
    // The single pool miss fetched one whole PGCID block from the RM; the
    // accounting stays exact (allocated == RM id-space consumption), it is
    // just batched now.
    assert_eq!(obs.sum_counters("pmix", "pgcid_allocated"), pmix::DEFAULT_PGCID_BLOCK);
    // The first construct on a fresh universe cannot hit the pool.
    assert_eq!(obs.sum_counters("pmix", "pgcid_pool_hits"), 0);
    // Every construct completion is visible on every participating server.
    assert_eq!(obs.sum_counters("pmix", "group_construct_completed"), 2);
}

#[test]
fn stage_counters_sum_correctly_across_shards() {
    // Stage counters are scoped per ops shard (`server:{n}/s{k}`): for every
    // participating server, the shard-sum must equal that server's stage
    // *event* count exactly. This is the anti-double-count guard for the
    // sharding refactor — a stage accounted on two shards (or on the wrong
    // server's shards) breaks the equality.
    let uni = PmixUniverse::new(SimTestbed::tiny(2, 2));
    let procs = spawn_procs(&uni, "job", 4);
    construct_on_all(&uni, &procs, "sharded");
    let obs = uni.fabric().obs();
    for node in 0..2u32 {
        let process = format!("server:{node}");
        for stage in ["group.fanin", "group.xchg", "group.fanout"] {
            let events = obs
                .events_named(stage)
                .iter()
                .filter(|e: &&Event| e.process == process)
                .count() as u64;
            let counter = match stage {
                "group.fanin" => "stage_fanin",
                "group.xchg" => "stage_xchg",
                _ => "stage_fanout",
            };
            let shard_sum: u64 = (0..pmix::SERVER_SHARDS)
                .map(|k| obs.counter_value(&format!("server:{node}/s{k}"), "pmix", counter))
                .sum();
            assert_eq!(
                shard_sum, events,
                "per-shard {counter} sum must match {stage} events on {process}"
            );
        }
        // Completions likewise: one construct completed once per server,
        // accounted on exactly one shard of that server.
        let completed: u64 = (0..pmix::SERVER_SHARDS)
            .map(|k| {
                obs.counter_value(
                    &format!("server:{node}/s{k}"),
                    "pmix",
                    "group_construct_completed",
                )
            })
            .sum();
        assert_eq!(completed, 1, "exactly one completion on {process}");
    }
}
