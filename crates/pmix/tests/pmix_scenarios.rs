//! PMIx scenario tests: lifecycles and corner cases beyond the unit tests —
//! repeated collectives, destruct epochs, timeout/abort propagation,
//! direct-modex misses, and async-construct edge cases.

use pmix::{GroupDirectives, PmixError, PmixUniverse, ProcId};
use simnet::SimTestbed;
use std::sync::Arc;
use std::time::Duration;

fn spawn_procs(uni: &Arc<PmixUniverse>, nspace: &str, n: u32) -> Vec<ProcId> {
    let spec = uni.testbed().cluster.clone();
    (0..n)
        .map(|rank| {
            let node = spec.node_of_slot(rank % spec.total_slots());
            let ep = uni.fabric().register(node);
            let proc = ProcId::new(nspace, rank);
            uni.register_proc(proc.clone(), &ep);
            proc
        })
        .collect()
}

fn on_all<T: Send + 'static>(
    uni: &Arc<PmixUniverse>,
    procs: &[ProcId],
    f: impl Fn(pmix::PmixClient, usize) -> T + Send + Sync + Clone + 'static,
) -> Vec<T> {
    let handles: Vec<_> = procs
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let uni = uni.clone();
            let p = p.clone();
            let f = f.clone();
            std::thread::spawn(move || f(uni.client_for(&p).unwrap(), i))
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

#[test]
fn construct_destruct_construct_same_name() {
    // Epoch bookkeeping: the same (name, membership) can be constructed,
    // destructed, and constructed again; the second construct gets a new
    // PGCID.
    let uni = PmixUniverse::new(SimTestbed::tiny(2, 2));
    let procs = spawn_procs(&uni, "job", 4);
    let members = procs.clone();
    let pgcids = on_all(&uni, &procs, move |c, _| {
        let g1 = c.group_construct("recycled", &members, &GroupDirectives::for_mpi()).unwrap();
        c.group_destruct(&g1, None).unwrap();
        let g2 = c.group_construct("recycled", &members, &GroupDirectives::for_mpi()).unwrap();
        let out = (g1.pgcid().unwrap(), g2.pgcid().unwrap());
        c.group_destruct(&g2, None).unwrap();
        out
    });
    let (a, b) = pgcids[0];
    assert_ne!(a, b, "re-construct must mint a fresh PGCID");
    assert!(pgcids.iter().all(|p| *p == (a, b)), "all ranks agree both times");
}

#[test]
fn many_sequential_fences_stay_ordered() {
    let uni = PmixUniverse::new(SimTestbed::tiny(2, 2));
    let procs = spawn_procs(&uni, "job", 4);
    let members = procs.clone();
    let rounds = on_all(&uni, &procs, move |c, _| {
        for _ in 0..25 {
            c.fence(&members, false).unwrap();
        }
        25
    });
    assert_eq!(rounds, vec![25; 4]);
}

#[test]
fn overlapping_groups_with_shared_member() {
    // Two different groups sharing rank 1 construct concurrently; epochs
    // are keyed by membership so they cannot collide.
    let uni = PmixUniverse::new(SimTestbed::tiny(1, 3));
    let procs = spawn_procs(&uni, "job", 3);
    let left = vec![procs[0].clone(), procs[1].clone()];
    let right = vec![procs[1].clone(), procs[2].clone()];
    let l2 = left.clone();
    let r2 = right.clone();
    let out = on_all(&uni, &procs, move |c, i| match i {
        0 => {
            let g = c.group_construct("ol", &l2, &GroupDirectives::for_mpi()).unwrap();
            g.pgcid().unwrap()
        }
        1 => {
            let ga = c.group_construct("ol", &l2, &GroupDirectives::for_mpi()).unwrap();
            let gb = c.group_construct("ol", &r2, &GroupDirectives::for_mpi()).unwrap();
            assert_ne!(ga.pgcid(), gb.pgcid());
            ga.pgcid().unwrap()
        }
        _ => {
            let g = c.group_construct("ol", &r2, &GroupDirectives::for_mpi()).unwrap();
            g.pgcid().unwrap()
        }
    });
    assert_eq!(out[0], out[1]);
}

#[test]
fn fence_timeout_propagates_to_remote_waiters() {
    // Two nodes; the rank on node 1 never arrives. The waiter's timeout
    // must abort the collective for everyone currently blocked.
    let uni = PmixUniverse::new(SimTestbed::tiny(2, 1));
    let procs = spawn_procs(&uni, "job", 2);
    let members = procs.clone();
    let c0 = uni.client_for(&procs[0]).unwrap();
    let err = c0
        .fence_timeout(&members, false, Duration::from_millis(200))
        .unwrap_err();
    assert_eq!(err, PmixError::Timeout);
}

#[test]
fn get_unknown_key_from_remote_owner_is_not_found() {
    let uni = PmixUniverse::new(SimTestbed::tiny(2, 1));
    let procs = spawn_procs(&uni, "job", 2);
    let c0 = uni.client_for(&procs[0]).unwrap();
    let c1 = uni.client_for(&procs[1]).unwrap();
    // Owner has committed *something*, so the dmodex will not park.
    c1.put("present", 1u64);
    c1.commit();
    let err = c0.get_timeout(&procs[1], "absent", Duration::from_secs(2)).unwrap_err();
    // Either NotFound (owner answered "no such key") is acceptable; a
    // Timeout would mean the request parked forever, which is the bug this
    // test guards against... unless the key could still legally appear.
    // Our server parks only keys of live local clients; "absent" parks, so
    // the requester times out — assert it does NOT hang beyond its deadline.
    assert!(matches!(err, PmixError::Timeout | PmixError::NotFound(_)));
}

#[test]
fn invite_timeout_when_invitee_never_responds() {
    let uni = PmixUniverse::new(SimTestbed::tiny(1, 2));
    let procs = spawn_procs(&uni, "job", 2);
    let c0 = uni.client_for(&procs[0]).unwrap();
    c0.group_invite("ghost", &procs[1..], &GroupDirectives::for_mpi()).unwrap();
    let err = c0.group_invite_wait("ghost", Duration::from_millis(300)).unwrap_err();
    assert_eq!(err, PmixError::Timeout);
}

#[test]
fn invite_wait_succeeds_when_invitee_dies() {
    // Dead invitees are dropped from the membership rather than hanging
    // the initiator (the paper's "replace processes that ... fail to
    // respond" semantics, with drop-on-death policy).
    let uni = PmixUniverse::new(SimTestbed::tiny(2, 1));
    let procs = spawn_procs(&uni, "job", 2);
    let c0 = uni.client_for(&procs[0]).unwrap();
    c0.group_invite("doomed-invitee", &procs[1..], &GroupDirectives::for_mpi())
        .unwrap();
    std::thread::sleep(Duration::from_millis(100));
    uni.kill_proc(&procs[1]).unwrap();
    let g = c0
        .group_invite_wait("doomed-invitee", Duration::from_secs(10))
        .unwrap();
    assert_eq!(g.size(), 1, "only the initiator remains");
    assert!(g.pgcid().is_some());
}

#[test]
fn invite_report_distinguishes_declined_dead_and_timed_out() {
    // One invitee accepts, one declines, one dies, one never answers. The
    // detailed wait must surface all four outcomes individually and still
    // finalize the group with the initiator plus the accepter.
    let uni = PmixUniverse::new(SimTestbed::tiny(2, 3));
    let procs = spawn_procs(&uni, "job", 5);
    let c0 = uni.client_for(&procs[0]).unwrap();
    c0.group_invite("outcomes", &procs[1..], &GroupDirectives::for_mpi()).unwrap();
    // procs[1] accepts, procs[2] declines, procs[3] dies, procs[4] is silent.
    uni.client_for(&procs[1]).unwrap().group_join("outcomes", &procs[0], true).unwrap();
    uni.client_for(&procs[2]).unwrap().group_join("outcomes", &procs[0], false).unwrap();
    uni.kill_proc(&procs[3]).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    let (g, outcomes) = c0
        .group_invite_wait_report("outcomes", Duration::from_millis(500))
        .unwrap();
    use pmix::InviteOutcome::*;
    let of = |p: &ProcId| outcomes.iter().find(|(q, _)| q == p).map(|(_, o)| *o);
    assert_eq!(of(&procs[1]), Some(Accepted));
    assert_eq!(of(&procs[2]), Some(Declined));
    assert_eq!(of(&procs[3]), Some(Dead));
    assert_eq!(of(&procs[4]), Some(TimedOut));
    assert_eq!(g.members(), &[procs[0].clone(), procs[1].clone()]);
    assert!(g.pgcid().unwrap() > 0, "partial group still gets its PGCID");
    // A straggler reply after finalization is ignored, not an error.
    uni.client_for(&procs[4]).unwrap().group_join("outcomes", &procs[0], true).unwrap();
}

#[test]
fn pset_queries_stay_consistent_while_jobs_churn() {
    // PMIX_QUERY_NUM_PSETS and PMIX_QUERY_PSET_NAMES asked in one batch
    // must agree with each other even while jobs (namespaces + their psets)
    // launch and die concurrently.
    use pmix::query::{query_info, Query};
    use pmix::value::keys;
    use std::sync::atomic::{AtomicBool, Ordering};

    let uni = PmixUniverse::new(SimTestbed::tiny(2, 2));
    let procs = spawn_procs(&uni, "stable", 1);
    let c = uni.client_for(&procs[0]).unwrap();
    uni.registry().define_pset("app://base", vec![procs[0].clone()]);

    let stop = Arc::new(AtomicBool::new(false));
    let uni2 = uni.clone();
    let stop2 = stop.clone();
    let churn = std::thread::spawn(move || {
        let spec = uni2.testbed().cluster.clone();
        let mut i = 0u32;
        while !stop2.load(Ordering::Relaxed) {
            let ns = format!("churn{}", i % 4);
            let pset = format!("app://{ns}");
            let ep = uni2.fabric().register(spec.node_of_slot(i % spec.total_slots()));
            let p = ProcId::new(ns.as_str(), 0);
            uni2.register_proc(p.clone(), &ep);
            uni2.registry().define_pset(&pset, vec![p]);
            // The job dies: pset withdrawn, process killed, namespace gone.
            uni2.registry().undefine_pset(&pset);
            uni2.fabric().kill(ep.id());
            uni2.registry().deregister_namespace(&ns);
            i = i.wrapping_add(1);
        }
    });

    for _ in 0..500 {
        let out = query_info(
            &c,
            &[Query::key(keys::QUERY_NUM_PSETS), Query::key(keys::QUERY_PSET_NAMES)],
        )
        .unwrap();
        let num = out[0].as_u64().unwrap() as usize;
        let names = out[1].as_str_list().unwrap().to_vec();
        assert_eq!(num, names.len(), "count and name list from one batch disagree");
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(sorted, names, "pset names must come back sorted");
        assert!(names.iter().any(|n| n == "app://base"), "stable pset missing");
        assert!(
            names.iter().all(|n| n == "app://base" || n.starts_with("app://churn")),
            "unexpected pset name in {names:?}"
        );
    }
    stop.store(true, Ordering::Relaxed);
    churn.join().unwrap();
}

#[test]
fn membership_query_is_epoch_consistent_with_its_batch() {
    // Regression: a membership query batched with PMIX_QUERY_PSET_EPOCH must
    // be answered from the *same* registry snapshot, and the membership
    // answer must carry that snapshot's epoch. Before the fix, membership
    // re-read the live registry per key, so a concurrent update could slip
    // between the epoch read and the membership read (a torn batch), and the
    // answer was an unversioned list the caller could not even check.
    use pmix::query::{query_info, Query};
    use pmix::value::keys;
    use std::sync::atomic::{AtomicBool, Ordering};

    const PSET: &str = "app://flux";
    let uni = PmixUniverse::new(SimTestbed::tiny(1, 2));
    let procs = spawn_procs(&uni, "job", 2);
    let c = uni.client_for(&procs[0]).unwrap();
    uni.registry().define_pset(PSET, vec![procs[0].clone()]);

    // Churn: alternate the membership between one and two procs. This is
    // the only pset that ever changes, so its entry epoch tracks the global
    // registry epoch exactly — any disagreement inside one batch is a torn
    // read, not legitimate drift.
    let stop = Arc::new(AtomicBool::new(false));
    let uni2 = uni.clone();
    let stop2 = stop.clone();
    let (p0, p1) = (procs[0].clone(), procs[1].clone());
    let churn = std::thread::spawn(move || {
        let mut wide = true;
        while !stop2.load(Ordering::Relaxed) {
            let members = if wide {
                vec![p0.clone(), p1.clone()]
            } else {
                vec![p0.clone()]
            };
            uni2.registry().update_pset_membership(PSET, members, None).unwrap();
            wide = !wide;
        }
    });

    for _ in 0..400 {
        let out = query_info(
            &c,
            &[
                Query::key(keys::QUERY_PSET_EPOCH),
                Query::with_qualifier(keys::QUERY_PSET_MEMBERSHIP, PSET),
            ],
        )
        .unwrap();
        let batch_epoch = out[0].as_u64().unwrap();
        let (member_epoch, members) =
            out[1].as_versioned_proc_list().expect("membership is versioned");
        assert_eq!(
            member_epoch, batch_epoch,
            "membership answered from a different snapshot than its batch"
        );
        assert!(members.len() == 1 || members.len() == 2);
        assert_eq!(members[0], procs[0], "stable member always first");
    }
    stop.store(true, Ordering::Relaxed);
    churn.join().unwrap();
}

#[test]
fn delayed_fabric_defers_invite_deadline() {
    // Regression: invite/join deadlines are *logical*, not wall-clock. A
    // chaos-delayed fabric keeps the join in flight past the caller's wall
    // budget; the deadline must observe the in-flight traffic and defer
    // expiry instead of reporting TimedOut for an invitee that did answer.
    // Before the fix this returned PmixError::Timeout after ~40ms even
    // though the accept was already on the wire.
    use simnet::inject::{FaultAction, FaultHook, FaultVerdict, MsgView};

    struct CrossNodeDelay(Duration);
    impl FaultHook for CrossNodeDelay {
        fn on_message(&self, msg: &MsgView) -> FaultVerdict {
            match (msg.src_node, msg.dst_node) {
                (Some(a), Some(b)) if a != b => FaultAction::Delay(self.0).into(),
                _ => FaultVerdict::deliver(),
            }
        }
    }

    let uni = PmixUniverse::new(SimTestbed::tiny(2, 1));
    let procs = spawn_procs(&uni, "job", 2);
    uni.fabric()
        .set_fault_hook(Some(Arc::new(CrossNodeDelay(Duration::from_millis(150)))));
    let c0 = uni.client_for(&procs[0]).unwrap();
    c0.group_invite("slow-join", &procs[1..], &GroupDirectives::for_mpi()).unwrap();
    // The invitee accepts immediately; its accept crosses nodes and spends
    // ~150ms in flight — well past the 40ms wall budget below.
    uni.client_for(&procs[1]).unwrap().group_join("slow-join", &procs[0], true).unwrap();
    let g = c0
        .group_invite_wait("slow-join", Duration::from_millis(40))
        .expect("logical deadline defers while the accept is in flight");
    assert_eq!(g.members(), &[procs[0].clone(), procs[1].clone()]);
    assert!(g.pgcid().is_some());
    uni.fabric().set_fault_hook(None);
}

#[test]
fn duplicate_invite_name_rejected() {
    let uni = PmixUniverse::new(SimTestbed::tiny(1, 2));
    let procs = spawn_procs(&uni, "job", 2);
    let c0 = uni.client_for(&procs[0]).unwrap();
    c0.group_invite("dup-name", &procs[1..], &GroupDirectives::for_mpi()).unwrap();
    let err = c0
        .group_invite("dup-name", &procs[1..], &GroupDirectives::for_mpi())
        .unwrap_err();
    assert!(matches!(err, PmixError::Exists(_)));
}

#[test]
fn non_member_cannot_enter_collective() {
    let uni = PmixUniverse::new(SimTestbed::tiny(1, 3));
    let procs = spawn_procs(&uni, "job", 3);
    let outsider = uni.client_for(&procs[2]).unwrap();
    let members = vec![procs[0].clone(), procs[1].clone()];
    let err = outsider
        .group_construct("exclusive", &members, &GroupDirectives::for_mpi())
        .unwrap_err();
    assert_eq!(err, PmixError::NotMember);
}

#[test]
fn empty_membership_rejected() {
    let uni = PmixUniverse::new(SimTestbed::tiny(1, 1));
    let procs = spawn_procs(&uni, "job", 1);
    let c = uni.client_for(&procs[0]).unwrap();
    let err = c
        .group_construct("empty", &[], &GroupDirectives::for_mpi())
        .unwrap_err();
    assert!(matches!(err, PmixError::BadParam(_)));
}

#[test]
fn kv_overwrite_takes_latest_value() {
    let uni = PmixUniverse::new(SimTestbed::tiny(1, 2));
    let procs = spawn_procs(&uni, "job", 2);
    let c0 = uni.client_for(&procs[0]).unwrap();
    let c1 = uni.client_for(&procs[1]).unwrap();
    c0.put("k", 1u64);
    c0.commit();
    c0.put("k", 2u64);
    c0.commit();
    let v = c1.get(&procs[0], "k").unwrap();
    assert_eq!(v.as_u64(), Some(2));
}

#[test]
fn rm_survives_burst_of_pgcid_requests() {
    // Many groups constructed back-to-back from different nodes: the RM
    // must hand out strictly unique PGCIDs for *concurrently live* groups.
    // A destructed group's id is recycled into the lead server's pool
    // (lifecycle GC), so a second burst of the same size completes without
    // the RM minting a single additional id.
    let uni = PmixUniverse::new(SimTestbed::tiny(4, 1));
    let procs = spawn_procs(&uni, "job", 4);
    let all = procs.clone();
    let out = on_all(&uni, &procs, move |c, _| {
        let mut live = Vec::new();
        for i in 0..10 {
            let g = c
                .group_construct(&format!("burst{i}"), &all, &GroupDirectives::for_mpi())
                .unwrap();
            live.push(g);
        }
        let ids: Vec<u64> = live.iter().map(|g| g.pgcid().unwrap()).collect();
        for g in &live {
            c.group_destruct(g, None).unwrap();
        }
        let mut again = Vec::new();
        for i in 0..10 {
            let g = c
                .group_construct(&format!("again{i}"), &all, &GroupDirectives::for_mpi())
                .unwrap();
            again.push(g.pgcid().unwrap());
            c.group_destruct(&g, None).unwrap();
        }
        (ids, again)
    });
    // All ranks saw the same sequences.
    assert!(out.iter().all(|o| o == &out[0]));
    // Concurrently live groups hold strictly unique, nonzero ids.
    let (first, _) = &out[0];
    let mut sorted = first.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), first.len());
    assert!(first.iter().all(|id| *id != 0));
    let obs = uni.fabric().obs();
    // 10 live groups forced two blocks of 8; the second burst ran entirely
    // on pooled surplus + recycled ids, so allocation stopped at 16.
    assert_eq!(obs.sum_counters("pmix", "pgcid_allocated"), 16);
    // Every destruct returned its id to the pool (both bursts).
    assert_eq!(obs.sum_counters("pmix", "pgcid_recycled"), 20);
}

#[test]
fn retired_peer_card_is_purged_and_resolution_fails_typed() {
    // Regression test for the retire-purge bug: graceful retirement
    // (deregister, no failure event) used to leave the rank's committed
    // business card in the server KVS, so a lazy resolution of the
    // departed peer returned a stale endpoint. The fix
    // (`PmixUniverse::purge_retired`, wired into `Launcher::retire_ranks`)
    // sweeps the card everywhere; resolution must then fail *typed*.
    // Pre-fix, the three post-retire assertions below all fail.
    let uni = PmixUniverse::new(SimTestbed::tiny(2, 1));
    let procs = spawn_procs(&uni, "job", 2);

    // Rank 1 publishes its business card, fence-free (put + commit only).
    let c1 = uni.client_for(&procs[1]).unwrap();
    c1.put(pmix::value::keys::ENDPOINT, pmix::PmixValue::U64(42));
    c1.commit();

    // Rank 0 resolves it on demand and caches the endpoint.
    let c0 = uni.client_for(&procs[0]).unwrap();
    let resolver = pmix::PeerResolver::new(&c0);
    let mut fetch = resolver.begin(&procs[1]).unwrap();
    let ep = loop {
        if let Some(res) = resolver.poll(&mut fetch) {
            break res.unwrap();
        }
        resolver.park(&fetch, Duration::from_millis(5));
    };
    assert_eq!(ep, simnet::EndpointId(42));
    assert_eq!(resolver.lookup(&procs[1]), Some(simnet::EndpointId(42)));

    // Graceful retirement: exactly what Launcher::retire_ranks does.
    uni.registry().deregister_proc(&procs[1]);
    uni.purge_retired(&procs[1]);

    // The committed card is gone from every server shard...
    for s in uni.servers() {
        assert!(s.local_committed(&procs[1]).is_none(), "card must be purged");
    }
    // ...the resolver's cached entry reads as a miss (evicted, not stale)...
    assert_eq!(resolver.lookup(&procs[1]), None, "stale cache entry must evict");
    // ...and a renewed resolution fails with a typed error, never ep 42.
    match resolver.begin(&procs[1]) {
        Err(PmixError::NotFound(_)) | Err(PmixError::ProcTerminated(_)) => {}
        Err(other) => panic!("expected NotFound/ProcTerminated, got {other:?}"),
        Ok(_) => panic!("resolution of a retired peer must not begin"),
    }
}
