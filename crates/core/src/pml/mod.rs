//! The point-to-point messaging layer (ob1 analog).
//!
//! One `Pml` exists per simulated process. It owns the process's fabric
//! mailbox, the per-communicator matching state (posted-receive list and
//! unexpected-message queue), the eager/rendezvous protocols, and the
//! exCID first-message handshake of paper §III-B4:
//!
//! * while the sender does not know the receiver's local CID for an
//!   exCID-bearing communicator, every message carries the 18-byte
//!   extended header (exCID + sender's local CID);
//! * the receiver maps the exCID to its own communicator, stores the
//!   sender's local CID (accelerating the reverse direction), and answers
//!   once with a `CidAck` carrying *its* local CID;
//! * after the ACK is processed, sends switch to the compact 14-byte
//!   match header with `ctx = receiver's local CID` — the optimized tag
//!   matching path.
//!
//! Multiple sends may leave in extended mode before the ACK arrives; this
//! is deliberate and reproduces the message-rate dip of the paper's
//! Fig. 5c (multi-pair `osu_mbw_mr` without pre-synchronization).
//!
//! # The handshake cache
//!
//! A completed handshake proves the peer *endpoint* speaks the exCID
//! protocol, and endpoints are stable across communicators: when the same
//! processes build a second communicator from the same group (a repeated
//! `MPI_Comm_create_from_group` on one pset, or a sibling dup), re-running
//! the extended-header exchange per communicator is pure overhead. Each
//! engine therefore remembers the endpoints it has completed a handshake
//! with; registering a new exCID communicator proactively pushes a
//! [`header::CidAdvert`] (this exCID → my local CID) to every cached peer
//! in the new communicator. A peer that absorbs the advert starts in
//! `Known` mode — no extended header, no `CidAck`, no `pml.handshake`
//! event — so only the *first* communicator between an endpoint pair pays
//! the handshake. A failed advert send means the peer died; the cache
//! entry is dropped so a later incarnation is never trusted stale.

pub mod header;

use crate::cid::ExCid;
use crate::error::{ErrClass, MpiError, Result};
use crate::request::{ReqInner, ReqKind};
use crate::status::Status;
use bytes::Bytes;
use header::{CidAck, CidAdvert, ExtHeader, MatchHeader, MsgKind, RtsInfo};
use parking_lot::Mutex;
use simnet::{Endpoint, EndpointId, EndpointSender, RecvError};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Default eager/rendezvous switchover (bytes).
pub const DEFAULT_EAGER_LIMIT: usize = 16 * 1024;

/// Default bound on the handshake cache (peer endpoints). The cache is an
/// accelerator, not a correctness structure: evicting an entry only means
/// the next communicator to that peer re-runs the extended-header
/// handshake. Bounding it keeps per-process PML state O(cap) under
/// sustained session churn instead of O(distinct peers ever contacted).
pub const DEFAULT_HANDSHAKE_CACHE_CAP: usize = 1024;

/// How a send addresses the peer's communicator context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SendCid {
    /// Consensus/WPM communicator: the CID is globally agreed, use it.
    Fixed(u16),
    /// exCID communicator, receiver's local CID unknown: send extended.
    AwaitAck,
    /// exCID communicator after the handshake: use the learned CID.
    Known(u16),
}

/// How a communicator route addresses a peer rank.
///
/// Eager-initialized communicators know every peer's fabric endpoint up
/// front. Lazy (fence-free) communicators start with only the peer's PMIx
/// identity; the endpoint is filled in on first contact — either actively
/// (the first send triggers an on-demand KVS fetch through the installed
/// [`pmix::PeerResolver`]) or passively (an incoming message from the peer
/// carries its endpoint on the envelope).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeerAddr {
    /// Fabric endpoint known (eager init, or lazy resolution completed).
    Known(EndpointId),
    /// Endpoint unknown; the first send triggers a lazy resolution.
    Unresolved(pmix::ProcId),
}

struct PeerState {
    mode: SendCid,
    /// Whether we already sent our CidAck to this peer.
    acked_back: bool,
    /// Whether we already sent this peer an extended header (the first one
    /// initiates the handshake; further ones are fallbacks while the ACK is
    /// still in flight).
    ext_started: bool,
    send_seq: u16,
    recv_seq: u16,
    /// Sender-side handshake span: opened with the first extended-header
    /// send to this peer, closed when the peer's CID is learned. Its
    /// context rides only on extended sends, so a handshake produces
    /// exactly one cross-process link (ext → handshake_recv).
    handshake: Option<obs::Span>,
    /// Aggregate span for compact eager traffic to this peer (one span per
    /// (cid, peer), work = messages — bounded regardless of message count).
    eager: Option<obs::Span>,
}

struct Posted {
    src: Option<u32>,
    tag: Option<i32>,
    req: Arc<ReqInner>,
}

enum UnexBody {
    Eager(Bytes),
    Rts { size: u64, send_req: u64, src_ep: EndpointId },
}

struct Unexpected {
    src: u32,
    tag: i32,
    #[allow(dead_code)]
    seq: u16,
    body: UnexBody,
}

struct Route {
    my_rank: u32,
    addrs: Vec<PeerAddr>,
    excid: Option<ExCid>,
    posted: Vec<Posted>,
    unexpected: VecDeque<Unexpected>,
    peers: Vec<PeerState>,
}

struct PendingMsg {
    hdr: MatchHeader,
    ext: Option<ExtHeader>,
    rts: Option<RtsInfo>,
    payload: Bytes,
    src_ep: EndpointId,
    /// Trace context carried by the envelope (the sender's handshake span
    /// for extended sends).
    ctx: Option<obs::TraceContext>,
}

struct RdvSend {
    payload: Bytes,
    dst_ep: EndpointId,
    req: Arc<ReqInner>,
    /// Per-transfer rendezvous span: RTS → CTS → data send.
    span: Option<obs::Span>,
}

/// A send parked behind an in-flight lazy resolution. Flushed (in FIFO
/// order, preserving MPI ordering per peer) once the peer's endpoint is
/// known, or failed with the resolution's typed error.
struct QueuedSend {
    local_cid: u16,
    dst_rank: u32,
    tag: i32,
    payload: Bytes,
    req: Arc<ReqInner>,
}

/// One in-flight lazy resolution: the nonblocking KVS fetch plus every
/// send waiting on it.
struct LazyResolving {
    fetch: pmix::PeerFetch,
    queued: Vec<QueuedSend>,
    /// Critical-path span: opened when the resolution starts, closed at
    /// its terminal state (resolved or failed).
    span: obs::Span,
}

/// Terminal outcome of a lazy resolution: `None` = resolved, `Some(e)` =
/// failed with `e` (later sends to the peer fail fast with the same
/// error until the route learns the endpoint passively).
#[derive(Default)]
struct LazyState {
    resolving: HashMap<pmix::ProcId, LazyResolving>,
    done: HashMap<pmix::ProcId, Option<MpiError>>,
    /// Resolutions started since the last probe drain; the instance layer
    /// converts each into a watchdog-visible setup request.
    probes: VecDeque<pmix::ProcId>,
}

/// Observable state of a lazy peer resolution (watchdog stages key on it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveStatus {
    /// No resolution was ever started for this peer.
    Idle,
    /// A KVS fetch is in flight.
    InFlight,
    /// Terminal: the peer's endpoint was resolved and cached.
    Resolved,
    /// Terminal: the resolution failed with a typed error.
    Failed(MpiError),
}

#[derive(Default)]
struct PmlState {
    routes: HashMap<u16, Route>,
    excid_map: HashMap<ExCid, u16>,
    pending_ext: HashMap<ExCid, Vec<PendingMsg>>,
    pending_ctx: HashMap<u16, Vec<PendingMsg>>,
    rdv_send: HashMap<u64, RdvSend>,
    rdv_recv: HashMap<u64, Arc<ReqInner>>,
    next_req_id: u64,
    /// Handshake cache: peer endpoints a CID handshake has completed with
    /// (on any communicator). Entries are dropped when a send to the
    /// endpoint fails (chaos kills invalidate them) and evicted
    /// least-recently-used once the cache exceeds its cap.
    cache: HashSet<EndpointId>,
    /// Recency order of `cache` (front = least recently confirmed).
    cache_lru: VecDeque<EndpointId>,
    /// Cache generation: bumped on *every* removal (eviction, failed-send
    /// drop, explicit invalidation, reset). Carried on `pml.handshake`
    /// events so the uniqueness invariant can tell a legal re-handshake
    /// (some entry was removed in between) from a double-handshake bug
    /// (same generation).
    cache_gen: u64,
    /// CidAdverts that arrived before the target communicator was
    /// registered here; drained by `register_comm`.
    pending_advert: HashMap<ExCid, Vec<(CidAdvert, EndpointId)>>,
}

/// Counters exposed for tests and the handshake ablation benchmark.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PmlStats {
    /// Messages sent with the compact header on a known CID.
    pub eager_sent: u64,
    /// Messages sent carrying the extended (exCID) header.
    pub ext_sent: u64,
    /// CidAcks sent (receiver side of the handshake).
    pub acks_sent: u64,
    /// Rendezvous RTS messages sent.
    pub rts_sent: u64,
    /// Messages handled by the progress engine.
    pub handled: u64,
}

/// Per-engine obs counter handles (process scope = the endpoint id), so the
/// hot path stays atomic-only while the numbers land in the fabric-wide
/// registry.
struct PmlMetrics {
    eager_sent: obs::Counter,
    ext_sent: obs::Counter,
    acks_sent: obs::Counter,
    rts_sent: obs::Counter,
    handled: obs::Counter,
    /// CID handshakes completed: transitions of a peer out of `AwaitAck`
    /// (either by receiving its ext header or by absorbing its CidAck).
    handshakes: obs::Counter,
    /// Extended-header sends beyond the first to the same peer: the
    /// handshake was initiated but its ACK has not landed yet.
    ext_fallback: obs::Counter,
    /// CidAdverts pushed to cached peers on new-communicator registration.
    adverts_sent: obs::Counter,
    /// Peers switched straight to `Known` by an absorbed advert — each one
    /// is a handshake (ext + ack round trip) the cache saved.
    advert_hits: obs::Counter,
    /// Cache entries dropped by explicit invalidation (departed-but-alive
    /// peers on the elastic rebuild path).
    cache_invalidated: obs::Counter,
    /// Cache entries dropped by LRU eviction at the cap.
    cache_evicted: obs::Counter,
    /// Live cache size (high-water mark = peak footprint for soak audits).
    cache_entries: obs::Gauge,
    /// Registry + process scope retained so handshake transitions can emit
    /// a structured event (the chaos invariant checker keys on it).
    obs: Arc<obs::Registry>,
    process: String,
}

impl PmlMetrics {
    fn new(endpoint: &Endpoint) -> Self {
        let obs = endpoint.obs();
        let process = endpoint.id().to_string();
        let c = |name| obs.counter(&process, "pml", name);
        Self {
            eager_sent: c("eager_sent"),
            ext_sent: c("ext_sent"),
            acks_sent: c("acks_sent"),
            rts_sent: c("rts_sent"),
            handled: c("handled"),
            handshakes: c("handshakes"),
            ext_fallback: c("ext_fallback"),
            adverts_sent: c("adverts_sent"),
            advert_hits: c("advert_hits"),
            cache_invalidated: c("cache_invalidated"),
            cache_evicted: c("cache_evicted"),
            cache_entries: obs.gauge(&process, "pml", "cache_entries"),
            obs,
            process,
        }
    }

    /// Record one completed handshake: the counter plus a `pml.handshake`
    /// event identifying the exCID, peer and cache generation, so an
    /// external checker can assert the exactly-once property per
    /// (process, excid, peer, generation) — a repeat is legal only after a
    /// cache removal bumped the generation.
    fn handshake(&self, excid: ExCid, peer: u32, via: &str, cache_gen: u64) {
        self.handshakes.inc();
        self.obs.event(
            &self.process,
            "pml",
            "pml.handshake",
            vec![
                ("pgcid".into(), excid.pgcid.into()),
                ("derivation".into(), excid.derivation.into()),
                ("peer".into(), (peer as u64).into()),
                ("via".into(), via.into()),
                ("cache_gen".into(), cache_gen.into()),
            ],
        );
    }
}

/// The per-process messaging engine.
/// See [`Pml::cache_snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PmlCacheSnapshot {
    /// LRU bound currently enforced.
    pub cap: usize,
    /// Invalidation generation (bumps on every removal/eviction).
    pub gen: u64,
    /// Fabric-relative ids of cached peer endpoints, ascending.
    pub entries: Vec<u64>,
}

pub struct Pml {
    endpoint: Arc<Endpoint>,
    sender: EndpointSender,
    state: Mutex<PmlState>,
    eager_limit: AtomicUsize,
    cache_cap: AtomicUsize,
    metrics: PmlMetrics,
    /// Installed only on the lazy session-init path; eager runs never
    /// create one, keeping their metric/event shape unchanged.
    resolver: Mutex<Option<Arc<pmix::PeerResolver>>>,
    lazy: Mutex<LazyState>,
}

impl Pml {
    /// Create the engine over the process's mailbox.
    pub fn new(endpoint: Arc<Endpoint>) -> Arc<Self> {
        let sender = endpoint.sender();
        let metrics = PmlMetrics::new(&endpoint);
        Arc::new(Self {
            endpoint,
            sender,
            state: Mutex::new(PmlState { next_req_id: 1, ..Default::default() }),
            eager_limit: AtomicUsize::new(DEFAULT_EAGER_LIMIT),
            cache_cap: AtomicUsize::new(DEFAULT_HANDSHAKE_CACHE_CAP),
            metrics,
            resolver: Mutex::new(None),
            lazy: Mutex::new(LazyState::default()),
        })
    }

    /// Current eager/rendezvous switchover in bytes.
    pub fn eager_limit(&self) -> usize {
        self.eager_limit.load(Ordering::Relaxed)
    }

    /// Tune the eager limit (`mpi_eager_limit` info key).
    pub fn set_eager_limit(&self, bytes: usize) {
        self.eager_limit.store(bytes.max(1), Ordering::Relaxed);
    }

    /// Bound the handshake cache to `cap` entries (≥ 1), evicting LRU
    /// entries immediately if it is already over. Tests and soak harnesses
    /// shrink this to force eviction churn.
    pub fn set_handshake_cache_cap(&self, cap: usize) {
        self.cache_cap.store(cap.max(1), Ordering::Relaxed);
        let mut st = self.state.lock();
        self.cache_enforce_cap(&mut st);
    }

    /// Number of peers currently held in the handshake cache.
    pub fn handshake_cache_len(&self) -> usize {
        self.state.lock().cache.len()
    }

    /// Current handshake-cache bound (the `pml.handshake_cache_cap` cvar).
    pub fn handshake_cache_cap(&self) -> usize {
        self.cache_cap.load(Ordering::Relaxed)
    }

    /// The fabric under this process's endpoint (logical-deadline waits).
    pub fn fabric(&self) -> simnet::Fabric {
        self.endpoint.fabric()
    }

    /// This process's own fabric endpoint id (the business card the lazy
    /// init path publishes).
    pub fn endpoint_id(&self) -> EndpointId {
        self.endpoint.id()
    }

    /// Introspection view of the handshake cache: bound, invalidation
    /// generation, and the cached peer endpoints **normalized** to
    /// fabric-relative offsets (raw endpoint ids are allocated globally
    /// across fabrics, so absolute values would differ between a test run
    /// in isolation and the same test inside a suite). Sorted ascending.
    pub fn cache_snapshot(&self) -> PmlCacheSnapshot {
        let st = self.state.lock();
        let base = self.endpoint.fabric().base_endpoint_id();
        let mut entries: Vec<u64> =
            st.cache.iter().map(|e| e.0.saturating_sub(base)).collect();
        entries.sort_unstable();
        PmlCacheSnapshot {
            cap: self.cache_cap.load(Ordering::Relaxed),
            gen: st.cache_gen,
            entries,
        }
    }

    /// Insert (or refresh) `ep` in the handshake cache, then enforce the
    /// LRU bound.
    fn cache_insert(&self, st: &mut PmlState, ep: EndpointId) {
        if st.cache.insert(ep) {
            st.cache_lru.push_back(ep);
        } else if let Some(pos) = st.cache_lru.iter().position(|e| *e == ep) {
            st.cache_lru.remove(pos);
            st.cache_lru.push_back(ep);
        }
        self.cache_enforce_cap(st);
        self.metrics.cache_entries.set(st.cache.len() as i64);
    }

    fn cache_enforce_cap(&self, st: &mut PmlState) {
        let cap = self.cache_cap.load(Ordering::Relaxed).max(1);
        while st.cache.len() > cap {
            let Some(victim) = st.cache_lru.pop_front() else { break };
            st.cache.remove(&victim);
            st.cache_gen += 1;
            self.metrics.cache_evicted.inc();
        }
        self.metrics.cache_entries.set(st.cache.len() as i64);
    }

    /// Remove `ep` from the handshake cache, bumping the generation.
    fn cache_remove(&self, st: &mut PmlState, ep: EndpointId) -> bool {
        if !st.cache.remove(&ep) {
            return false;
        }
        if let Some(pos) = st.cache_lru.iter().position(|e| *e == ep) {
            st.cache_lru.remove(pos);
        }
        st.cache_gen += 1;
        self.metrics.cache_entries.set(st.cache.len() as i64);
        true
    }

    /// Snapshot the counters (reads the obs-backed cells; kept as a typed
    /// convenience view for tests and the handshake ablation benchmark).
    pub fn stats(&self) -> PmlStats {
        PmlStats {
            eager_sent: self.metrics.eager_sent.get(),
            ext_sent: self.metrics.ext_sent.get(),
            acks_sent: self.metrics.acks_sent.get(),
            rts_sent: self.metrics.rts_sent.get(),
            handled: self.metrics.handled.get(),
        }
    }

    /// Register a communicator route. `fixed_cid` is `Some` for
    /// consensus/WPM communicators whose CID is globally agreed; exCID
    /// communicators pass their exCID instead and start in extended mode —
    /// unless the handshake cache already covers a peer's endpoint, in
    /// which case a `CidAdvert` is pushed so both sides skip the
    /// extended-header exchange on this communicator.
    pub fn register_comm(
        &self,
        local_cid: u16,
        my_rank: u32,
        endpoints: Vec<EndpointId>,
        excid: Option<ExCid>,
        fixed_cid: Option<u16>,
    ) {
        let addrs = endpoints.into_iter().map(PeerAddr::Known).collect();
        self.register_comm_inner(local_cid, my_rank, addrs, excid, fixed_cid);
    }

    /// Register a lazily-addressed exCID communicator: peers whose fabric
    /// endpoint is still unknown are passed as
    /// [`PeerAddr::Unresolved`] and resolved on first contact (actively by
    /// the first send through the installed resolver, or passively from an
    /// incoming message's envelope). Always extended-mode: the handshake
    /// doubles as the passive resolution channel.
    pub fn register_comm_lazy(
        &self,
        local_cid: u16,
        my_rank: u32,
        addrs: Vec<PeerAddr>,
        excid: ExCid,
    ) {
        self.register_comm_inner(local_cid, my_rank, addrs, Some(excid), None);
    }

    fn register_comm_inner(
        &self,
        local_cid: u16,
        my_rank: u32,
        addrs: Vec<PeerAddr>,
        excid: Option<ExCid>,
        fixed_cid: Option<u16>,
    ) {
        let n = addrs.len();
        let initial_mode = match (fixed_cid, excid) {
            (Some(c), _) => SendCid::Fixed(c),
            (None, Some(_)) => SendCid::AwaitAck,
            (None, None) => SendCid::Fixed(local_cid),
        };
        let mut replay = Vec::new();
        let mut adverts: Vec<EndpointId> = Vec::new();
        {
            let mut guard = self.state.lock();
            let st = &mut *guard;
            if excid.is_some() {
                // Advertise our local CID to every peer we already hold a
                // completed handshake with (on any earlier communicator).
                // Unresolved peers can't be advertised to — no address yet.
                for (rank, addr) in addrs.iter().enumerate() {
                    if let PeerAddr::Known(ep) = addr {
                        if rank as u32 != my_rank && st.cache.contains(ep) {
                            adverts.push(*ep);
                        }
                    }
                }
            }
            let route = Route {
                my_rank,
                addrs,
                excid,
                posted: Vec::new(),
                unexpected: VecDeque::new(),
                peers: (0..n)
                    .map(|_| PeerState {
                        mode: initial_mode,
                        acked_back: false,
                        ext_started: false,
                        send_seq: 0,
                        recv_seq: 0,
                        handshake: None,
                        eager: None,
                    })
                    .collect(),
            };
            st.routes.insert(local_cid, route);
            if let Some(e) = excid {
                st.excid_map.insert(e, local_cid);
                if let Some(msgs) = st.pending_ext.remove(&e) {
                    replay.extend(msgs);
                }
                // Adverts that raced ahead of this registration.
                if let Some(parked) = st.pending_advert.remove(&e) {
                    for (ad, src_ep) in parked {
                        self.apply_advert(st, ad, src_ep);
                    }
                }
            }
            if let Some(msgs) = st.pending_ctx.remove(&local_cid) {
                replay.extend(msgs);
            }
        }
        if let Some(e) = excid {
            let ad =
                CidAdvert { excid: e, advertiser_cid: local_cid, advertiser_rank: my_rank };
            let bytes = ad.encode();
            for ep in adverts {
                match self.sender.send(ep, Bytes::from(bytes.clone())) {
                    Ok(()) => self.metrics.adverts_sent.inc(),
                    // The peer died since the handshake: forget it.
                    Err(_) => {
                        self.cache_remove(&mut self.state.lock(), ep);
                    }
                }
            }
        }
        for m in replay {
            self.dispatch(m);
        }
    }

    /// Absorb a `CidAdvert`: if the target communicator exists and the
    /// advertised rank maps to the sending endpoint, switch that peer
    /// straight to `Known` — the handshake the cache saved. Otherwise park
    /// it for `register_comm` to drain.
    fn apply_advert(&self, st: &mut PmlState, ad: CidAdvert, src_ep: EndpointId) {
        let Some(&cid) = st.excid_map.get(&ad.excid) else {
            st.pending_advert.entry(ad.excid).or_default().push((ad, src_ep));
            return;
        };
        let Some(route) = st.routes.get_mut(&cid) else { return };
        // An Unresolved slot can't validate the rank↔endpoint claim either;
        // the real handshake will resolve it.
        if route.addrs.get(ad.advertiser_rank as usize) != Some(&PeerAddr::Known(src_ep)) {
            return; // stale or misrouted advert: rank↔endpoint mismatch
        }
        let peer = &mut route.peers[ad.advertiser_rank as usize];
        if matches!(peer.mode, SendCid::AwaitAck) {
            peer.mode = SendCid::Known(ad.advertiser_cid);
            // The peer already knows our CID (it holds the mirror cache
            // entry and our own advert): no ACK owed in either direction.
            peer.acked_back = true;
            if let Some(hs) = peer.handshake.take() {
                hs.end();
            }
            self.metrics.advert_hits.inc();
        }
    }

    /// Tear down a communicator route.
    pub fn unregister_comm(&self, local_cid: u16) {
        let mut st = self.state.lock();
        if let Some(route) = st.routes.remove(&local_cid) {
            if let Some(e) = route.excid {
                st.excid_map.remove(&e);
            }
        }
    }

    /// Drop every route (last-session cleanup). The handshake cache is
    /// emptied wholesale; the generation survives (and bumps) so handshakes
    /// of a later session generation are distinguishable from re-handshake
    /// bugs within one.
    pub fn reset(&self) {
        {
            let mut st = self.state.lock();
            *st = PmlState {
                next_req_id: st.next_req_id,
                cache_gen: st.cache_gen + 1,
                ..Default::default()
            };
        }
        self.metrics.cache_entries.set(0);
        // Terminate in-flight lazy resolutions: each queued send fails
        // typed and every begun resolution still reaches an `end` event.
        let drained: Vec<(pmix::ProcId, LazyResolving)> = {
            let mut lz = self.lazy.lock();
            let out = lz.resolving.drain().collect();
            lz.done.clear();
            lz.probes.clear();
            out
        };
        for (peer, entry) in drained {
            entry.span.end();
            self.lazy_resolve_event(&peer, "end", Some("failed"));
            for qs in entry.queued {
                qs.req.fail(MpiError::new(
                    ErrClass::Session,
                    format!("session finalized while resolving peer {peer}"),
                ));
            }
        }
        *self.resolver.lock() = None;
    }

    // ------------------------------------------------------------------
    // Send / receive entry points (wrapped by `Comm`)
    // ------------------------------------------------------------------

    /// Non-blocking send of `payload` to `dst_rank` on communicator
    /// `local_cid` with `tag`.
    ///
    /// On a lazily-addressed communicator whose peer endpoint is still
    /// [`PeerAddr::Unresolved`], the send is parked behind an on-demand
    /// resolution (started here if not already in flight) and completes —
    /// or fails, typed — once the resolution reaches its terminal state.
    pub fn isend(
        &self,
        local_cid: u16,
        dst_rank: u32,
        tag: i32,
        payload: Bytes,
    ) -> Result<Arc<ReqInner>> {
        let req = ReqInner::new(ReqKind::Send);
        let unresolved = {
            let st = self.state.lock();
            let route = st
                .routes
                .get(&local_cid)
                .ok_or_else(|| MpiError::new(ErrClass::Comm, "send on unknown communicator"))?;
            match route.addrs.get(dst_rank as usize).ok_or_else(|| {
                MpiError::new(ErrClass::Rank, format!("rank {dst_rank} outside communicator"))
            })? {
                PeerAddr::Known(_) => None,
                PeerAddr::Unresolved(p) => Some(p.clone()),
            }
        };
        if let Some(peer) = unresolved {
            let cached = self.resolver.lock().clone().and_then(|r| r.lookup(&peer));
            match cached {
                // Cache hit: zero round trips — fill every route slot for
                // this peer and fall through to the normal send path.
                Some(ep) => self.fill_peer(&peer, ep),
                None => {
                    self.queue_lazy_send(
                        peer,
                        QueuedSend { local_cid, dst_rank, tag, payload, req: req.clone() },
                    );
                    return Ok(req);
                }
            }
        }
        self.isend_ready(local_cid, dst_rank, tag, payload, req.clone())?;
        Ok(req)
    }

    /// The send fast path: every address on the route is already `Known`.
    /// Split from [`Pml::isend`] so queued lazy sends can be flushed with
    /// their original (already returned) request.
    fn isend_ready(
        &self,
        local_cid: u16,
        dst_rank: u32,
        tag: i32,
        payload: Bytes,
        req: Arc<ReqInner>,
    ) -> Result<()> {
        let eager = payload.len() <= self.eager_limit();
        let (dst_ep, bytes, is_ext, is_ext_fallback, ext_ctx) = {
            let mut st = self.state.lock();
            let route = st
                .routes
                .get_mut(&local_cid)
                .ok_or_else(|| MpiError::new(ErrClass::Comm, "send on unknown communicator"))?;
            let dst_ep = match route.addrs.get(dst_rank as usize).ok_or_else(|| {
                MpiError::new(ErrClass::Rank, format!("rank {dst_rank} outside communicator"))
            })? {
                PeerAddr::Known(ep) => *ep,
                PeerAddr::Unresolved(p) => {
                    return Err(MpiError::intern(format!(
                        "send to unresolved peer {p} reached the ready path"
                    )))
                }
            };
            let my_rank = route.my_rank;
            let excid = route.excid;
            let peer = &mut route.peers[dst_rank as usize];
            let seq = peer.send_seq;
            peer.send_seq = peer.send_seq.wrapping_add(1);
            let (ctx, ext) = match peer.mode {
                SendCid::Fixed(c) | SendCid::Known(c) => (c, None),
                SendCid::AwaitAck => (
                    local_cid,
                    Some(ExtHeader {
                        excid: excid.expect("AwaitAck implies exCID"),
                        sender_cid: local_cid,
                    }),
                ),
            };
            // The first extended send to a peer initiates the handshake;
            // any further ones are fallbacks while its ACK is in flight.
            let is_ext_fallback = if ext.is_some() {
                let started = peer.ext_started;
                peer.ext_started = true;
                started
            } else {
                false
            };
            // Causal bookkeeping: the handshake span's context rides only on
            // extended sends, so the receiver's `handshake_recv` span links
            // it exactly once per peer pair; compact traffic accumulates on
            // a bounded per-peer aggregate and keeps the thread's context.
            let ext_ctx = if let Some(e) = &ext {
                let hs = peer.handshake.get_or_insert_with(|| {
                    self.metrics.obs.span(
                        &self.metrics.process,
                        "pml.handshake",
                        &format!("{}.{}->{}", e.excid.pgcid, e.excid.derivation, dst_rank),
                    )
                });
                hs.add_work(1);
                Some(hs.context())
            } else {
                if eager {
                    let eg = peer.eager.get_or_insert_with(|| {
                        self.metrics.obs.span(
                            &self.metrics.process,
                            "pml.eager",
                            &format!("cid{local_cid}->{dst_rank}"),
                        )
                    });
                    eg.add_work(1);
                }
                None
            };
            let base_kind = if eager {
                if ext.is_some() { MsgKind::EagerExt } else { MsgKind::Eager }
            } else if ext.is_some() {
                MsgKind::RtsExt
            } else {
                MsgKind::Rts
            };
            let hdr = MatchHeader {
                kind: base_kind,
                flags: 0,
                ctx,
                src: my_rank as i32,
                tag,
                seq,
            };
            let mut bytes = Vec::with_capacity(
                header::MATCH_HEADER_LEN
                    + if ext.is_some() { header::EXT_HEADER_LEN } else { 0 }
                    + if eager { payload.len() } else { 16 },
            );
            hdr.encode(&mut bytes);
            if let Some(e) = &ext {
                e.encode(&mut bytes);
            }
            if eager {
                bytes.extend_from_slice(&payload);
            } else {
                let send_req = st.next_req_id;
                st.next_req_id += 1;
                RtsInfo { size: payload.len() as u64, send_req }.encode(&mut bytes);
                let mut span = self.metrics.obs.span(
                    &self.metrics.process,
                    "pml.rdv",
                    &format!("cid{local_cid}:{send_req}"),
                );
                span.add_work(1);
                st.rdv_send.insert(
                    send_req,
                    RdvSend { payload: payload.clone(), dst_ep, req: req.clone(), span: Some(span) },
                );
                // A rendezvous send completes only when `dst_ep` answers
                // the RTS with a CTS; record the dependency so fault-aware
                // waits can fail fast if the destination dies first.
                req.set_waiting_on(dst_ep);
            }
            (dst_ep, bytes, ext.is_some(), is_ext_fallback, ext_ctx)
        };
        if is_ext {
            self.metrics.ext_sent.inc();
            if is_ext_fallback {
                self.metrics.ext_fallback.inc();
            }
        } else if eager {
            self.metrics.eager_sent.inc();
        }
        if !eager {
            self.metrics.rts_sent.inc();
        }
        let sent = match ext_ctx {
            Some(c) => self.sender.send_ctx(dst_ep, Bytes::from(bytes), Some(c)),
            None => self.sender.send(dst_ep, Bytes::from(bytes)),
        };
        match sent {
            Ok(()) => {
                if eager {
                    // Buffered-eager semantics: the send buffer is owned by
                    // the fabric now; the request is complete.
                    req.complete_send(payload.len());
                }
            }
            Err(_) => {
                req.fail(MpiError::new(ErrClass::ProcFailed, format!("peer rank {dst_rank} is dead")));
                self.cache_remove(&mut self.state.lock(), dst_ep);
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Lazy (fence-free) peer resolution
    // ------------------------------------------------------------------

    /// Install the process's lazy peer resolver. Called once on the lazy
    /// session-init path; eager-only processes never have one.
    pub fn install_resolver(&self, resolver: Arc<pmix::PeerResolver>) {
        *self.resolver.lock() = Some(resolver);
    }

    /// The installed lazy resolver, if any.
    pub fn resolver(&self) -> Option<Arc<pmix::PeerResolver>> {
        self.resolver.lock().clone()
    }

    /// Fill every route slot addressed to `peer` with its resolved
    /// endpoint. Idempotent; `Known` slots are left untouched.
    fn fill_peer(&self, peer: &pmix::ProcId, ep: EndpointId) {
        let mut st = self.state.lock();
        for route in st.routes.values_mut() {
            for addr in route.addrs.iter_mut() {
                if matches!(addr, PeerAddr::Unresolved(p) if p == peer) {
                    *addr = PeerAddr::Known(ep);
                }
            }
        }
    }

    /// Emit the `pml.lazy_resolve` lifecycle event the chaos invariant
    /// checker keys on: every `begin` must be paired with an `end` whose
    /// outcome is `resolved` or `failed` — never a silent eager fallback.
    fn lazy_resolve_event(&self, peer: &pmix::ProcId, phase: &str, outcome: Option<&str>) {
        let mut attrs: Vec<(String, obs::AttrValue)> = vec![
            ("peer".into(), peer.to_string().into()),
            ("phase".into(), phase.into()),
        ];
        if let Some(o) = outcome {
            attrs.push(("outcome".into(), o.into()));
        }
        self.metrics.obs.event(&self.metrics.process, "pml", "pml.lazy_resolve", attrs);
    }

    /// Park `qs` behind a resolution of `peer`, starting one if none is in
    /// flight. A terminal failure recorded earlier fails the send fast with
    /// the same typed error.
    fn queue_lazy_send(&self, peer: pmix::ProcId, qs: QueuedSend) {
        let Some(resolver) = self.resolver.lock().clone() else {
            qs.req.fail(MpiError::intern(format!(
                "unresolved peer {peer} on a communicator but no resolver installed"
            )));
            return;
        };
        let mut lz = self.lazy.lock();
        if let Some(entry) = lz.resolving.get_mut(&peer) {
            entry.queued.push(qs);
            return;
        }
        if let Some(Some(err)) = lz.done.get(&peer) {
            qs.req.fail(err.clone());
            return;
        }
        self.lazy_resolve_event(&peer, "begin", None);
        match resolver.begin(&peer) {
            Ok(fetch) => {
                let span = self.metrics.obs.span(
                    &self.metrics.process,
                    "pml.lazy_resolve",
                    &peer.to_string(),
                );
                lz.resolving
                    .insert(peer.clone(), LazyResolving { fetch, queued: vec![qs], span });
                lz.probes.push_back(peer);
            }
            // Typed immediate failure (peer deregistered or dead): the
            // resolution still reaches a terminal state.
            Err(e) => {
                let err = MpiError::from(e);
                self.lazy_resolve_event(&peer, "end", Some("failed"));
                qs.req.fail(err.clone());
                lz.done.insert(peer, Some(err));
            }
        }
    }

    /// Poll every in-flight lazy resolution; on a terminal state fill the
    /// routes (or fail) and flush the parked sends. Returns whether any
    /// resolution completed.
    fn progress_lazy(&self) -> bool {
        let Some(resolver) = self.resolver.lock().clone() else { return false };
        let mut completed: Vec<(pmix::ProcId, Result<EndpointId>, LazyResolving)> = Vec::new();
        {
            let mut lz = self.lazy.lock();
            let peers: Vec<pmix::ProcId> = lz.resolving.keys().cloned().collect();
            for p in peers {
                let polled = {
                    let entry = lz.resolving.get_mut(&p).expect("key just listed");
                    resolver.poll(&mut entry.fetch)
                };
                if let Some(res) = polled {
                    let entry = lz.resolving.remove(&p).expect("key just listed");
                    completed.push((p, res.map_err(MpiError::from), entry));
                }
            }
        }
        let did = !completed.is_empty();
        for (peer, res, entry) in completed {
            match res {
                Ok(ep) => {
                    self.fill_peer(&peer, ep);
                    entry.span.end();
                    self.lazy_resolve_event(&peer, "end", Some("resolved"));
                    self.lazy.lock().done.insert(peer, None);
                    for qs in entry.queued {
                        let req = qs.req.clone();
                        if let Err(e) =
                            self.isend_ready(qs.local_cid, qs.dst_rank, qs.tag, qs.payload, qs.req)
                        {
                            // Route unregistered while the resolution was in
                            // flight: the send itself fails, typed.
                            req.fail(e);
                        }
                    }
                }
                Err(e) => {
                    entry.span.end();
                    self.lazy_resolve_event(&peer, "end", Some("failed"));
                    for qs in entry.queued {
                        qs.req.fail(e.clone());
                    }
                    self.lazy.lock().done.insert(peer, Some(e));
                }
            }
        }
        did
    }

    /// Observable state of the lazy resolution of `peer` (the watchdog
    /// stage polls this).
    pub fn resolve_status(&self, peer: &pmix::ProcId) -> ResolveStatus {
        let lz = self.lazy.lock();
        if lz.resolving.contains_key(peer) {
            return ResolveStatus::InFlight;
        }
        match lz.done.get(peer) {
            Some(None) => ResolveStatus::Resolved,
            Some(Some(e)) => ResolveStatus::Failed(e.clone()),
            None => ResolveStatus::Idle,
        }
    }

    /// Drain one resolution started since the last call. The instance
    /// layer turns each into a progress-engine request so a stalled lazy
    /// resolution is visible to the stall watchdog.
    pub fn take_resolve_probe(&self) -> Option<pmix::ProcId> {
        self.lazy.lock().probes.pop_front()
    }

    /// Number of lazy resolutions currently in flight (tests).
    pub fn resolving_count(&self) -> usize {
        self.lazy.lock().resolving.len()
    }

    /// Non-blocking receive on communicator `local_cid`. `src`/`tag`
    /// `None` = wildcard.
    pub fn irecv(&self, local_cid: u16, src: Option<u32>, tag: Option<i32>) -> Result<Arc<ReqInner>> {
        let req = ReqInner::new(ReqKind::Recv);
        let mut outbox: Vec<(EndpointId, Vec<u8>)> = Vec::new();
        {
            let mut st = self.state.lock();
            // Generate ids before borrowing the route mutably.
            let mut reserve_req_id = st.next_req_id;
            let route = st
                .routes
                .get_mut(&local_cid)
                .ok_or_else(|| MpiError::new(ErrClass::Comm, "recv on unknown communicator"))?;
            // Search the unexpected queue first (in arrival order).
            let pos = route.unexpected.iter().position(|u| {
                src.map(|s| s == u.src).unwrap_or(true) && tag.map(|t| t == u.tag).unwrap_or(true)
            });
            match pos {
                Some(i) => {
                    let u = route.unexpected.remove(i).expect("index valid");
                    match u.body {
                        UnexBody::Eager(data) => {
                            req.complete_recv(
                                Status { source: u.src as i32, tag: u.tag, len: data.len() },
                                data,
                            );
                        }
                        UnexBody::Rts { size, send_req, src_ep } => {
                            let recv_req = reserve_req_id;
                            reserve_req_id += 1;
                            req.set_status(Status {
                                source: u.src as i32,
                                tag: u.tag,
                                len: size as usize,
                            });
                            let mut cts = Vec::with_capacity(17);
                            cts.push(MsgKind::Cts as u8);
                            cts.extend_from_slice(&send_req.to_le_bytes());
                            cts.extend_from_slice(&recv_req.to_le_bytes());
                            outbox.push((src_ep, cts));
                            st.next_req_id = reserve_req_id;
                            st.rdv_recv.insert(recv_req, req.clone());
                        }
                    }
                }
                None => {
                    route.posted.push(Posted { src, tag, req: req.clone() });
                }
            }
        }
        for (ep, bytes) in outbox {
            let _ = self.sender.send(ep, Bytes::from(bytes));
        }
        Ok(req)
    }

    // ------------------------------------------------------------------
    // Progress engine
    // ------------------------------------------------------------------

    /// Drain the mailbox. With `block`, waits up to that long for the first
    /// message if none is immediately available. Returns whether anything
    /// was processed.
    pub fn progress(&self, block: Option<Duration>) -> bool {
        let mut did = false;
        loop {
            match self.endpoint.try_recv() {
                Ok(env) => {
                    self.handle_bytes(env.src, env.payload, env.ctx);
                    did = true;
                }
                Err(RecvError::Empty) => break,
                Err(_) => return did | self.progress_lazy(), // endpoint killed
            }
        }
        if !did {
            if let Some(t) = block {
                if let Ok(env) = self.endpoint.recv_timeout(t) {
                    self.handle_bytes(env.src, env.payload, env.ctx);
                    did = true;
                    // Drain whatever arrived together with it.
                    while let Ok(env) = self.endpoint.try_recv() {
                        self.handle_bytes(env.src, env.payload, env.ctx);
                    }
                }
            }
        }
        did | self.progress_lazy()
    }

    fn handle_bytes(&self, src_ep: EndpointId, payload: Bytes, ctx: Option<obs::TraceContext>) {
        self.metrics.handled.inc();
        let Some(&kind_byte) = payload.first() else { return };
        let Some(kind) = MsgKind::from_u8(kind_byte) else { return };
        match kind {
            MsgKind::CidAck => {
                if let Some(ack) = CidAck::decode_body(&payload[1..]) {
                    self.on_cid_ack(ack, src_ep);
                }
            }
            MsgKind::CidAdvert => {
                if let Some(ad) = CidAdvert::decode_body(&payload[1..]) {
                    let mut guard = self.state.lock();
                    self.apply_advert(&mut guard, ad, src_ep);
                }
            }
            MsgKind::Cts => {
                if payload.len() >= 17 {
                    let send_req = u64::from_le_bytes(payload[1..9].try_into().expect("len"));
                    let recv_req = u64::from_le_bytes(payload[9..17].try_into().expect("len"));
                    self.on_cts(send_req, recv_req);
                }
            }
            MsgKind::RdvData => {
                if payload.len() >= 9 {
                    let recv_req = u64::from_le_bytes(payload[1..9].try_into().expect("len"));
                    let data = payload.slice(9..);
                    self.on_rdv_data(recv_req, data);
                }
            }
            MsgKind::Eager | MsgKind::EagerExt | MsgKind::Rts | MsgKind::RtsExt => {
                let Some((hdr, rest_ref)) = MatchHeader::decode(&payload) else { return };
                let mut off = header::MATCH_HEADER_LEN;
                let mut ext = None;
                let mut rest = rest_ref;
                if kind.has_ext() {
                    let Some((e, r)) = ExtHeader::decode(rest) else { return };
                    ext = Some(e);
                    off += header::EXT_HEADER_LEN;
                    rest = r;
                }
                let mut rts = None;
                if matches!(kind, MsgKind::Rts | MsgKind::RtsExt) {
                    let Some((r, _)) = RtsInfo::decode(rest) else { return };
                    rts = Some(r);
                    off += 16;
                }
                let body = payload.slice(off..);
                self.dispatch(PendingMsg { hdr, ext, rts, payload: body, src_ep, ctx });
            }
        }
    }

    fn on_cid_ack(&self, ack: CidAck, src_ep: EndpointId) {
        let mut guard = self.state.lock();
        let st = &mut *guard;
        let Some(&cid) = st.excid_map.get(&ack.excid) else { return };
        let mut completed = false;
        if let Some(route) = st.routes.get_mut(&cid) {
            if let Some(peer) = route.peers.get_mut(ack.acker_rank as usize) {
                // The ACK carries the receiver's local CID: switch this peer
                // to the optimized compact-header path. An incoming ext
                // header may already have taught us the same CID — only the
                // actual transition counts as completing the handshake.
                if matches!(peer.mode, SendCid::AwaitAck) {
                    peer.mode = SendCid::Known(ack.receiver_cid);
                    if let Some(hs) = peer.handshake.take() {
                        hs.end();
                    }
                    completed = true;
                }
            }
        }
        if completed {
            // A completed handshake marks the endpoint as exCID-capable for
            // every future communicator. The event samples the generation
            // *before* the insert so a capacity eviction triggered by this
            // very insert cannot mask a double-handshake.
            let gen = st.cache_gen;
            self.cache_insert(st, src_ep);
            self.metrics.handshake(ack.excid, ack.acker_rank, "ack", gen);
        }
    }

    fn on_cts(&self, send_req: u64, recv_req: u64) {
        let entry = self.state.lock().rdv_send.remove(&send_req);
        let Some(mut rdv) = entry else { return };
        let mut bytes = Vec::with_capacity(9 + rdv.payload.len());
        bytes.push(MsgKind::RdvData as u8);
        bytes.extend_from_slice(&recv_req.to_le_bytes());
        bytes.extend_from_slice(&rdv.payload);
        match self.sender.send(rdv.dst_ep, Bytes::from(bytes)) {
            Ok(()) => {
                if let Some(mut sp) = rdv.span.take() {
                    sp.add_work(1);
                    sp.end();
                }
                rdv.req.complete_send(rdv.payload.len())
            }
            Err(_) => {
                rdv.req.fail(MpiError::new(ErrClass::ProcFailed, "peer died during rendezvous"));
                self.cache_remove(&mut self.state.lock(), rdv.dst_ep);
            }
        }
    }

    fn on_rdv_data(&self, recv_req: u64, data: Bytes) {
        let req = self.state.lock().rdv_recv.remove(&recv_req);
        if let Some(req) = req {
            let status = req
                .status_snapshot()
                .unwrap_or(Status { source: -1, tag: -1, len: data.len() });
            req.complete_recv(Status { len: data.len(), ..status }, data);
        }
    }

    /// Route an incoming matched-protocol message to its communicator.
    fn dispatch(&self, msg: PendingMsg) {
        let mut outbox: Vec<(EndpointId, Vec<u8>)> = Vec::new();
        {
            let mut guard = self.state.lock();
            let st = &mut *guard;
            let cid = match msg.ext {
                Some(ext) => match st.excid_map.get(&ext.excid) {
                    Some(&c) => c,
                    None => {
                        // Communicator not created here yet: park.
                        st.pending_ext.entry(ext.excid).or_default().push(msg);
                        return;
                    }
                },
                None => {
                    let c = msg.hdr.ctx;
                    if !st.routes.contains_key(&c) {
                        st.pending_ctx.entry(c).or_default().push(msg);
                        return;
                    }
                    c
                }
            };
            let mut reserve_req_id = st.next_req_id;
            let mut rdv_post: Option<(u64, Arc<ReqInner>)> = None;
            let mut learned: Option<(ExCid, u32)> = None;
            let learned_ep = msg.src_ep;
            {
                let route = st.routes.get_mut(&cid).expect("checked above");
                let src = msg.hdr.src as u32;
                // Passive lazy resolution: an incoming message carries the
                // sender's endpoint on its envelope — an Unresolved slot
                // learns it for free, no KVS fetch needed.
                if let Some(addr) = route.addrs.get_mut(src as usize) {
                    if matches!(addr, PeerAddr::Unresolved(_)) {
                        *addr = PeerAddr::Known(msg.src_ep);
                        self.metrics
                            .obs
                            .counter(&self.metrics.process, "pml", "lazy_passive_resolves")
                            .inc();
                    }
                }
                if let Some(ext) = msg.ext {
                    if let Some(peer) = route.peers.get_mut(src as usize) {
                        // Learn the sender's local CID for the reverse path.
                        if matches!(peer.mode, SendCid::AwaitAck) {
                            peer.mode = SendCid::Known(ext.sender_cid);
                            if let Some(hs) = peer.handshake.take() {
                                hs.end();
                            }
                            learned = Some((ext.excid, src));
                        }
                        if !peer.acked_back {
                            peer.acked_back = true;
                            // Receiver-side handshake span, adopted into the
                            // sender's trace via the link to the extended
                            // send's context.
                            let mut hs = self.metrics.obs.span_with_parent(
                                &self.metrics.process,
                                "pml.handshake_recv",
                                &format!("{}.{}<-{}", ext.excid.pgcid, ext.excid.derivation, src),
                                None,
                            );
                            if let Some(c) = msg.ctx {
                                hs.link(c);
                            }
                            hs.add_work(1);
                            hs.end();
                            let ack = CidAck {
                                excid: ext.excid,
                                receiver_cid: cid,
                                acker_rank: route.my_rank,
                            };
                            outbox.push((msg.src_ep, ack.encode()));
                            self.metrics.acks_sent.inc();
                        }
                    }
                }
                if let Some(peer) = route.peers.get_mut(src as usize) {
                    peer.recv_seq = peer.recv_seq.wrapping_add(1);
                }
                // Match against posted receives, in post order.
                let pos = route.posted.iter().position(|p| {
                    p.src.map(|s| s == src).unwrap_or(true)
                        && p.tag.map(|t| t == msg.hdr.tag).unwrap_or(true)
                });
                match pos {
                    Some(i) => {
                        let posted = route.posted.remove(i);
                        match msg.rts {
                            None => {
                                posted.req.complete_recv(
                                    Status {
                                        source: src as i32,
                                        tag: msg.hdr.tag,
                                        len: msg.payload.len(),
                                    },
                                    msg.payload,
                                );
                            }
                            Some(rts) => {
                                let recv_req = reserve_req_id;
                                reserve_req_id += 1;
                                posted.req.set_status(Status {
                                    source: src as i32,
                                    tag: msg.hdr.tag,
                                    len: rts.size as usize,
                                });
                                let mut cts = Vec::with_capacity(17);
                                cts.push(MsgKind::Cts as u8);
                                cts.extend_from_slice(&rts.send_req.to_le_bytes());
                                cts.extend_from_slice(&recv_req.to_le_bytes());
                                outbox.push((msg.src_ep, cts));
                                rdv_post = Some((recv_req, posted.req.clone()));
                            }
                        }
                    }
                    None => {
                        let body = match msg.rts {
                            None => UnexBody::Eager(msg.payload),
                            Some(rts) => UnexBody::Rts {
                                size: rts.size,
                                send_req: rts.send_req,
                                src_ep: msg.src_ep,
                            },
                        };
                        route.unexpected.push_back(Unexpected {
                            src,
                            tag: msg.hdr.tag,
                            seq: msg.hdr.seq,
                            body,
                        });
                    }
                }
            }
            if let Some((excid, src)) = learned {
                // Sampled pre-insert; see `on_cid_ack`.
                let gen = st.cache_gen;
                self.cache_insert(st, learned_ep);
                self.metrics.handshake(excid, src, "ext", gen);
            }
            st.next_req_id = reserve_req_id;
            if let Some((id, req)) = rdv_post {
                st.rdv_recv.insert(id, req);
            }
        }
        for (ep, bytes) in outbox {
            let _ = self.sender.send(ep, Bytes::from(bytes));
        }
    }

    /// Number of unexpected messages queued on a communicator (tests).
    pub fn unexpected_count(&self, local_cid: u16) -> usize {
        self.state
            .lock()
            .routes
            .get(&local_cid)
            .map(|r| r.unexpected.len())
            .unwrap_or(0)
    }

    /// Whether `ep` is in the handshake cache — i.e. a CID handshake has
    /// completed with that endpoint on some communicator and it has not
    /// been invalidated by a failed send (tests + bench analysis).
    pub fn cached_peer(&self, ep: EndpointId) -> bool {
        self.state.lock().cache.contains(&ep)
    }

    /// Drop `ep` from the handshake cache. Sends-failures evict dead peers
    /// automatically, but a peer that *retired* gracefully never fails a
    /// send — its mailbox just drains to nowhere — so the rebuild path must
    /// invalidate departed peers explicitly, or a later incarnation on the
    /// same endpoint would be trusted with a stale `CidAdvert`. Returns
    /// whether an entry was actually dropped.
    pub fn invalidate_peer(&self, ep: EndpointId) -> bool {
        let dropped = self.cache_remove(&mut self.state.lock(), ep);
        if dropped {
            self.metrics.cache_invalidated.inc();
        }
        dropped
    }

    /// Whether the send path to `dst_rank` on `local_cid` has switched to
    /// the optimized compact-header mode (tests + Fig. 5 analysis).
    pub fn peer_switched(&self, local_cid: u16, dst_rank: u32) -> bool {
        self.state
            .lock()
            .routes
            .get(&local_cid)
            .and_then(|r| r.peers.get(dst_rank as usize))
            .map(|p| !matches!(p.mode, SendCid::AwaitAck))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cid::ExCid;
    use simnet::{Fabric, NodeId};

    /// Two PML engines wired over a raw zero-cost fabric.
    fn pair() -> (Arc<Pml>, Arc<Pml>) {
        let fabric = Fabric::new(simnet::CostModel::zero());
        let a = Pml::new(Arc::new(fabric.register(NodeId(0))));
        let b = Pml::new(Arc::new(fabric.register(NodeId(0))));
        (a, b)
    }

    fn wire(a: &Arc<Pml>, b: &Arc<Pml>, cid_a: u16, cid_b: u16, excid: Option<ExCid>) {
        let eps = vec![a.endpoint.id(), b.endpoint.id()];
        let fixed_a = excid.is_none().then_some(cid_a);
        let fixed_b = excid.is_none().then_some(cid_b);
        a.register_comm(cid_a, 0, eps.clone(), excid, fixed_a);
        b.register_comm(cid_b, 1, eps, excid, fixed_b);
    }

    fn pump(pml: &Arc<Pml>) {
        for _ in 0..50 {
            pml.progress(Some(Duration::from_millis(1)));
        }
    }

    #[test]
    fn eager_send_recv_fixed_cid() {
        let (a, b) = pair();
        wire(&a, &b, 5, 5, None); // consensus-style: same cid both sides
        let req = b.irecv(5, Some(0), Some(9)).unwrap();
        let sreq = a.isend(5, 1, 9, Bytes::from_static(b"hello")).unwrap();
        assert!(sreq.is_done(), "eager send completes immediately");
        pump(&b);
        let st = req.status_snapshot().expect("matched");
        assert_eq!(st.source, 0);
        assert_eq!(st.tag, 9);
        assert_eq!(st.len, 5);
        assert_eq!(a.stats().eager_sent, 1);
        assert_eq!(a.stats().ext_sent, 0);
    }

    #[test]
    fn excid_first_message_parks_until_comm_registered() {
        let fabric = Fabric::new(simnet::CostModel::zero());
        let a = Pml::new(Arc::new(fabric.register(NodeId(0))));
        let b = Pml::new(Arc::new(fabric.register(NodeId(0))));
        let excid = Some(ExCid::from_pgcid(777));
        let eps = vec![a.endpoint.id(), b.endpoint.id()];
        // Only A registers; B hasn't created the communicator yet.
        a.register_comm(3, 0, eps.clone(), excid, None);
        a.isend(3, 1, 1, Bytes::from_static(b"early")).unwrap();
        // B receives the EXT message for an unknown exCID: it must park.
        pump(&b);
        assert_eq!(b.state.lock().pending_ext.len(), 1);
        // Late registration drains the parked message into matching.
        b.register_comm(9, 1, eps, excid, None);
        assert_eq!(b.state.lock().pending_ext.len(), 0);
        let req = b.irecv(9, Some(0), Some(1)).unwrap();
        pump(&b);
        assert!(req.is_done(), "parked message matched after registration");
    }

    #[test]
    fn cid_ack_switches_sender_to_compact() {
        let (a, b) = pair();
        let excid = Some(ExCid::from_pgcid(42));
        wire(&a, &b, 2, 7, excid); // different local cids, as sessions allow
        assert!(!a.peer_switched(2, 1));
        a.isend(2, 1, 0, Bytes::from_static(b"x")).unwrap();
        pump(&b); // B matches (unexpected), sends CidAck
        pump(&a); // A absorbs the ack
        assert!(a.peer_switched(2, 1), "ack must switch the peer mode");
        assert_eq!(b.stats().acks_sent, 1);
        // Subsequent sends are compact and carry B's local cid (7).
        a.isend(2, 1, 0, Bytes::from_static(b"y")).unwrap();
        assert_eq!(a.stats().ext_sent, 1);
        assert_eq!(a.stats().eager_sent, 1);
        // And B, having learned A's cid from the EXT header, never EXTs back.
        assert!(b.peer_switched(7, 0));
    }

    #[test]
    fn handshake_spans_link_exactly_once_across_processes() {
        let (a, b) = pair();
        let excid = Some(ExCid::from_pgcid(42));
        wire(&a, &b, 2, 7, excid);
        a.isend(2, 1, 0, Bytes::from_static(b"x")).unwrap();
        a.isend(2, 1, 0, Bytes::from_static(b"y")).unwrap(); // ext fallback
        pump(&b); // B matches, emits handshake_recv, sends CidAck
        pump(&a); // A absorbs the ack, closing its handshake span
        let spans = a.endpoint.obs().spans_snapshot();
        let hs = spans
            .iter()
            .find(|s| s.name == "pml.handshake")
            .expect("sender handshake span");
        assert_eq!(hs.work, 2, "one unit per extended send");
        let recv = spans
            .iter()
            .find(|s| s.name == "pml.handshake_recv")
            .expect("receiver handshake span");
        assert_eq!(recv.links.len(), 1, "first ext send linked exactly once");
        assert_eq!(recv.links[0].span, hs.id);
        assert_eq!(recv.trace, hs.trace, "receiver joins the sender's trace");
        let total_links: usize = spans.iter().map(|s| s.links.len()).sum();
        assert_eq!(total_links, 1, "the handshake is the only cross-process link");
    }

    /// Drive the full handshake for comm (cid_a, cid_b): one send, B acks,
    /// A absorbs.
    fn complete_handshake(a: &Arc<Pml>, b: &Arc<Pml>, cid_a: u16) {
        a.isend(cid_a, 1, 0, Bytes::from_static(b"hs")).unwrap();
        pump(b);
        pump(a);
        assert!(a.peer_switched(cid_a, 1));
    }

    #[test]
    fn second_comm_from_cached_peer_skips_handshake() {
        let (a, b) = pair();
        wire(&a, &b, 10, 20, Some(ExCid::from_pgcid(100)));
        complete_handshake(&a, &b, 10);
        // Both sides now hold the peer endpoint in the handshake cache.
        assert!(a.cached_peer(b.endpoint.id()));
        assert!(b.cached_peer(a.endpoint.id()));
        // A second communicator over the same endpoints: registration
        // pushes CidAdverts both ways, so after absorbing them both sides
        // are in compact mode without a single extended-header send.
        wire(&a, &b, 11, 21, Some(ExCid::from_pgcid(101)));
        pump(&a);
        pump(&b);
        assert!(a.peer_switched(11, 1), "advert switched A without any send");
        assert!(b.peer_switched(21, 0), "advert switched B without any send");
        let obs = a.endpoint.obs();
        assert_eq!(obs.sum_counters("pml", "adverts_sent"), 2, "one advert each way");
        assert_eq!(obs.sum_counters("pml", "advert_hits"), 2, "both absorbed");
        // Traffic on the second comm is compact from the first message.
        let req = b.irecv(21, Some(0), Some(3)).unwrap();
        a.isend(11, 1, 3, Bytes::from_static(b"fast")).unwrap();
        pump(&b);
        assert!(req.is_done());
        assert_eq!(obs.sum_counters("pml", "ext_sent"), 1, "only comm 1's handshake");
        assert_eq!(obs.sum_counters("pml", "acks_sent"), 1, "no ack on comm 2");
        // Exactly one handshake span/event per side across BOTH comms.
        assert_eq!(obs.events_named("pml.handshake").len(), 2);
        let spans = obs.spans_snapshot();
        assert_eq!(spans.iter().filter(|s| s.name == "pml.handshake").count(), 1);
        assert_eq!(spans.iter().filter(|s| s.name == "pml.handshake_recv").count(), 1);
    }

    #[test]
    fn retired_peer_invalidation_forces_fresh_handshake() {
        // A peer that *retires* (graceful drain) never fails a send, so the
        // automatic failed-send eviction does not fire; the rebuild path
        // calls invalidate_peer explicitly. A communicator registered after
        // the invalidation must NOT trust the cache: no advert goes out, and
        // the extended-header handshake runs again from scratch.
        let (a, b) = pair();
        wire(&a, &b, 10, 20, Some(ExCid::from_pgcid(100)));
        complete_handshake(&a, &b, 10);
        assert!(a.cached_peer(b.endpoint.id()));
        // B retires; both sides' rebuilds drop the departed pairing (a
        // rejoined incarnation starts with a fresh cache anyway).
        assert!(a.invalidate_peer(b.endpoint.id()), "entry was cached");
        assert!(!a.invalidate_peer(b.endpoint.id()), "second call is a no-op");
        assert!(b.invalidate_peer(a.endpoint.id()));
        assert!(!a.cached_peer(b.endpoint.id()));
        let obs = a.endpoint.obs();
        assert_eq!(obs.sum_counters("pml", "cache_invalidated"), 2);
        // A later communicator reaching the same endpoint pair starts from
        // AwaitAck and re-runs the extended-header handshake rather than
        // riding a stale CidAdvert.
        let adverts_before = obs.sum_counters("pml", "adverts_sent");
        wire(&a, &b, 11, 21, Some(ExCid::from_pgcid(101)));
        pump(&a);
        pump(&b);
        assert_eq!(
            obs.sum_counters("pml", "adverts_sent"),
            adverts_before,
            "no advert may ride an invalidated cache entry"
        );
        assert!(!a.peer_switched(11, 1), "A still awaits a real handshake");
        let ext_before = a.stats().ext_sent;
        let handshakes_before = obs.sum_counters("pml", "handshakes");
        a.isend(11, 1, 0, Bytes::from_static(b"again")).unwrap();
        assert_eq!(a.stats().ext_sent, ext_before + 1, "extended header re-sent");
        pump(&b);
        pump(&a);
        assert!(a.peer_switched(11, 1), "fresh handshake completed");
        assert!(
            obs.sum_counters("pml", "handshakes") > handshakes_before,
            "a full handshake ran again after invalidation"
        );
    }

    #[test]
    fn cache_eviction_bounds_entries_and_keys_rehandshakes_by_generation() {
        let fabric = Fabric::new(simnet::CostModel::zero());
        let a = Pml::new(Arc::new(fabric.register(NodeId(0))));
        let b = Pml::new(Arc::new(fabric.register(NodeId(0))));
        let c = Pml::new(Arc::new(fabric.register(NodeId(0))));
        a.set_handshake_cache_cap(1);
        b.set_handshake_cache_cap(1);
        let reg = |x: &Arc<Pml>, y: &Arc<Pml>, cx: u16, cy: u16, pgcid: u64| {
            let eps = vec![x.endpoint.id(), y.endpoint.id()];
            x.register_comm(cx, 0, eps.clone(), Some(ExCid::from_pgcid(pgcid)), None);
            y.register_comm(cy, 1, eps, Some(ExCid::from_pgcid(pgcid)), None);
        };
        // Comm 1: A↔B, full handshake; both caches hold one entry.
        reg(&a, &b, 10, 20, 100);
        complete_handshake(&a, &b, 10);
        assert_eq!(a.handshake_cache_len(), 1);
        a.unregister_comm(10);
        b.unregister_comm(20);
        // A↔C and B↔C handshakes evict the A↔B pairing on both sides
        // (cap = 1, LRU).
        reg(&a, &c, 11, 30, 101);
        complete_handshake(&a, &c, 11);
        reg(&b, &c, 12, 31, 103);
        complete_handshake(&b, &c, 12);
        assert!(!a.cached_peer(b.endpoint.id()), "B evicted from A's cache");
        assert!(!b.cached_peer(a.endpoint.id()), "A evicted from B's cache");
        assert_eq!(a.handshake_cache_len(), 1, "cache stays at its cap");
        let obs = a.endpoint.obs();
        assert!(obs.sum_counters("pml", "cache_evicted") >= 2);
        assert_eq!(
            obs.gauge_value(&a.endpoint.id().to_string(), "pml", "cache_entries"),
            1
        );
        // Comm 3 reuses PGCID 100 (a recycled identifier): with the cache
        // entry gone, a *fresh* extended-header handshake must run...
        reg(&a, &b, 13, 23, 100);
        assert!(!a.peer_switched(13, 1), "no advert may ride an evicted entry");
        a.isend(13, 1, 0, Bytes::from_static(b"again")).unwrap();
        pump(&b);
        pump(&a);
        assert!(a.peer_switched(13, 1));
        // ...and the repeated (pgcid, derivation, peer) key is legal
        // precisely because the cache generation moved between the two
        // events — the uniqueness invariant keys on it.
        let my = a.endpoint.id().to_string();
        let keys: Vec<(u64, u64, u64, u64)> = obs
            .events_named("pml.handshake")
            .iter()
            .filter(|e| e.process == my)
            .map(|e| {
                let g = |k: &str| {
                    e.attrs
                        .iter()
                        .find(|(n, _)| n == k)
                        .and_then(|(_, v)| v.as_u64())
                        .unwrap()
                };
                (g("pgcid"), g("derivation"), g("peer"), g("cache_gen"))
            })
            .collect();
        let dup_without_gen = keys
            .iter()
            .filter(|(p, d, r, _)| (*p, *d, *r) == (100, 0, 1))
            .count();
        assert_eq!(dup_without_gen, 2, "PGCID reuse re-handshakes the same peer");
        let mut with_gen = keys.clone();
        with_gen.sort_unstable();
        with_gen.dedup();
        assert_eq!(with_gen.len(), keys.len(), "generation disambiguates every handshake");
    }

    #[test]
    fn advert_racing_registration_parks_then_applies() {
        let (a, b) = pair();
        wire(&a, &b, 10, 20, Some(ExCid::from_pgcid(100)));
        complete_handshake(&a, &b, 10);
        // Only A registers the second comm; its advert reaches B before B
        // knows the exCID and must park.
        let e2 = Some(ExCid::from_pgcid(101));
        let eps = vec![a.endpoint.id(), b.endpoint.id()];
        a.register_comm(11, 0, eps.clone(), e2, None);
        pump(&b);
        assert_eq!(b.state.lock().pending_advert.len(), 1, "advert parked");
        // Late registration drains the parked advert into the route.
        b.register_comm(21, 1, eps, e2, None);
        assert!(b.state.lock().pending_advert.is_empty());
        assert!(b.peer_switched(21, 0), "parked advert applied on registration");
    }

    #[test]
    fn failed_advert_send_invalidates_cache() {
        let fabric = Fabric::new(simnet::CostModel::zero());
        let a = Pml::new(Arc::new(fabric.register(NodeId(0))));
        let b = Pml::new(Arc::new(fabric.register(NodeId(0))));
        wire(&a, &b, 10, 20, Some(ExCid::from_pgcid(100)));
        complete_handshake(&a, &b, 10);
        assert!(a.cached_peer(b.endpoint.id()));
        // B dies between the two communicators (a chaos kill): the advert
        // send fails and the stale cache entry is dropped.
        fabric.kill(b.endpoint.id());
        let eps = vec![a.endpoint.id(), b.endpoint.id()];
        a.register_comm(11, 0, eps, Some(ExCid::from_pgcid(101)), None);
        assert!(!a.cached_peer(b.endpoint.id()), "dead peer evicted from cache");
        assert_eq!(a.endpoint.obs().counter_value(&a.endpoint.id().to_string(), "pml", "adverts_sent"), 0);
    }

    #[test]
    fn rendezvous_protocol_full_cycle() {
        let (a, b) = pair();
        wire(&a, &b, 4, 4, None);
        a.set_eager_limit(64);
        let big = Bytes::from(vec![0x7fu8; 1000]);
        let sreq = a.isend(4, 1, 2, big.clone()).unwrap();
        assert!(!sreq.is_done(), "rendezvous send must await CTS");
        assert_eq!(a.stats().rts_sent, 1);
        let rreq = b.irecv(4, Some(0), Some(2)).unwrap();
        // Drive both sides: B matches RTS -> CTS -> A sends data -> B done.
        for _ in 0..20 {
            a.progress(Some(Duration::from_millis(1)));
            b.progress(Some(Duration::from_millis(1)));
            if rreq.is_done() && sreq.is_done() {
                break;
            }
        }
        assert!(sreq.is_done());
        assert!(rreq.is_done());
        assert_eq!(rreq.status_snapshot().unwrap().len, 1000);
    }

    #[test]
    fn unknown_fixed_ctx_parks_until_registration() {
        let (a, b) = pair();
        let eps = vec![a.endpoint.id(), b.endpoint.id()];
        a.register_comm(6, 0, eps.clone(), None, Some(6));
        a.isend(6, 1, 0, Bytes::from_static(b"racy")).unwrap();
        pump(&b);
        assert_eq!(b.state.lock().pending_ctx.len(), 1);
        b.register_comm(6, 1, eps, None, Some(6));
        let req = b.irecv(6, None, None).unwrap();
        pump(&b);
        assert!(req.is_done());
    }

    #[test]
    fn unregister_then_reset_clears_state() {
        let (a, b) = pair();
        wire(&a, &b, 1, 1, None);
        assert!(a.state.lock().routes.contains_key(&1));
        a.unregister_comm(1);
        assert!(!a.state.lock().routes.contains_key(&1));
        b.reset();
        assert!(b.state.lock().routes.is_empty());
        assert!(b.irecv(1, None, None).is_err(), "reset engine rejects old cids");
    }

    #[test]
    fn send_on_unknown_comm_errors() {
        let (a, _b) = pair();
        assert!(a.isend(99, 0, 0, Bytes::new()).is_err());
        assert!(a.irecv(99, None, None).is_err());
    }

    #[test]
    fn send_to_out_of_range_rank_errors() {
        let (a, b) = pair();
        wire(&a, &b, 1, 1, None);
        assert!(a.isend(1, 5, 0, Bytes::new()).is_err());
    }
}
