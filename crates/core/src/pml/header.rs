//! Wire headers for the ob1-style point-to-point messaging layer.
//!
//! The **match header** packs to exactly 14 bytes, like Open MPI ob1's
//! `mca_pml_ob1_match_hdr_t` — the paper stresses that the header was
//! "designed to be as compact as possible to limit the overhead of
//! messaging", which is why the 64-bit PGCID could not simply replace the
//! 16-bit CID field (§III-B3).
//!
//! When a communicator has an exCID and the sender has not yet learned the
//! receiver's local CID, an 18-byte **extended header** (16-byte exCID +
//! sender's local CID) is prepended to the match header (§III-B4).

use crate::cid::ExCid;

/// Message kinds on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MsgKind {
    /// Eager send: header + payload.
    Eager = 1,
    /// Eager send with extended (exCID) header.
    EagerExt = 2,
    /// Rendezvous request-to-send: header + size + send-request id.
    Rts = 3,
    /// RTS with extended header.
    RtsExt = 4,
    /// Clear-to-send: send-request id + recv-request id.
    Cts = 5,
    /// Rendezvous payload: recv-request id + payload.
    RdvData = 6,
    /// Receiver → sender: "for this exCID my local CID is X" (the ACK of
    /// the first-message handshake).
    CidAck = 7,
    /// Unsolicited CID advertisement: a process that already completed a
    /// handshake with this peer on an earlier communicator of the same
    /// group pushes its local CID for a *new* exCID, letting the peer skip
    /// the extended-header exchange entirely (the handshake cache).
    CidAdvert = 8,
}

impl MsgKind {
    /// Parse from the wire byte.
    pub fn from_u8(v: u8) -> Option<MsgKind> {
        Some(match v {
            1 => MsgKind::Eager,
            2 => MsgKind::EagerExt,
            3 => MsgKind::Rts,
            4 => MsgKind::RtsExt,
            5 => MsgKind::Cts,
            6 => MsgKind::RdvData,
            7 => MsgKind::CidAck,
            8 => MsgKind::CidAdvert,
            _ => return None,
        })
    }

    /// Whether this kind carries the extended header.
    pub fn has_ext(&self) -> bool {
        matches!(self, MsgKind::EagerExt | MsgKind::RtsExt)
    }
}

/// Size of the packed match header.
pub const MATCH_HEADER_LEN: usize = 14;
/// Size of the packed extended header.
pub const EXT_HEADER_LEN: usize = 18;

/// The 14-byte match header.
///
/// Layout (little-endian): `kind:u8 | flags:u8 | ctx:u16 | src:i32 |
/// tag:i32 | seq:u16` = 14 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchHeader {
    /// Message kind.
    pub kind: MsgKind,
    /// Flags (reserved; kept for header-size fidelity).
    pub flags: u8,
    /// Communicator context id — the *receiver's* local CID once known,
    /// or the sender's local CID inside extended-header messages.
    pub ctx: u16,
    /// Sender's rank within the communicator.
    pub src: i32,
    /// Message tag.
    pub tag: i32,
    /// Per-(peer, communicator) sequence number.
    pub seq: u16,
}

impl MatchHeader {
    /// Pack into exactly [`MATCH_HEADER_LEN`] bytes.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.kind as u8);
        out.push(self.flags);
        out.extend_from_slice(&self.ctx.to_le_bytes());
        out.extend_from_slice(&self.src.to_le_bytes());
        out.extend_from_slice(&self.tag.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
    }

    /// Unpack from at least [`MATCH_HEADER_LEN`] bytes.
    pub fn decode(b: &[u8]) -> Option<(MatchHeader, &[u8])> {
        if b.len() < MATCH_HEADER_LEN {
            return None;
        }
        let kind = MsgKind::from_u8(b[0])?;
        let hdr = MatchHeader {
            kind,
            flags: b[1],
            ctx: u16::from_le_bytes([b[2], b[3]]),
            src: i32::from_le_bytes([b[4], b[5], b[6], b[7]]),
            tag: i32::from_le_bytes([b[8], b[9], b[10], b[11]]),
            seq: u16::from_le_bytes([b[12], b[13]]),
        };
        Some((hdr, &b[MATCH_HEADER_LEN..]))
    }
}

/// The extended header: exCID plus the sender's local CID.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtHeader {
    /// The communicator's exCID.
    pub excid: ExCid,
    /// Sender's local CID for this communicator.
    pub sender_cid: u16,
}

impl ExtHeader {
    /// Pack into exactly [`EXT_HEADER_LEN`] bytes.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.excid.encode());
        out.extend_from_slice(&self.sender_cid.to_le_bytes());
    }

    /// Unpack.
    pub fn decode(b: &[u8]) -> Option<(ExtHeader, &[u8])> {
        if b.len() < EXT_HEADER_LEN {
            return None;
        }
        let excid = ExCid::decode(&b[..16]);
        let sender_cid = u16::from_le_bytes([b[16], b[17]]);
        Some((ExtHeader { excid, sender_cid }, &b[EXT_HEADER_LEN..]))
    }
}

/// Payload of a [`MsgKind::CidAck`] message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CidAck {
    /// Which communicator (by exCID).
    pub excid: ExCid,
    /// The acker's (receiver's) local CID for it.
    pub receiver_cid: u16,
    /// The acker's rank within the communicator.
    pub acker_rank: u32,
}

impl CidAck {
    /// Serialize (kind byte + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + 16 + 2 + 4);
        out.push(MsgKind::CidAck as u8);
        out.extend_from_slice(&self.excid.encode());
        out.extend_from_slice(&self.receiver_cid.to_le_bytes());
        out.extend_from_slice(&self.acker_rank.to_le_bytes());
        out
    }

    /// Deserialize the body (after the kind byte).
    pub fn decode_body(b: &[u8]) -> Option<CidAck> {
        if b.len() < 22 {
            return None;
        }
        Some(CidAck {
            excid: ExCid::decode(&b[..16]),
            receiver_cid: u16::from_le_bytes([b[16], b[17]]),
            acker_rank: u32::from_le_bytes([b[18], b[19], b[20], b[21]]),
        })
    }
}

/// Payload of a [`MsgKind::CidAdvert`] message (same wire shape as
/// [`CidAck`], different direction: pushed proactively from the handshake
/// cache rather than answering an extended header).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CidAdvert {
    /// Which communicator (by exCID).
    pub excid: ExCid,
    /// The advertiser's local CID for it.
    pub advertiser_cid: u16,
    /// The advertiser's rank within the communicator.
    pub advertiser_rank: u32,
}

impl CidAdvert {
    /// Serialize (kind byte + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + 16 + 2 + 4);
        out.push(MsgKind::CidAdvert as u8);
        out.extend_from_slice(&self.excid.encode());
        out.extend_from_slice(&self.advertiser_cid.to_le_bytes());
        out.extend_from_slice(&self.advertiser_rank.to_le_bytes());
        out
    }

    /// Deserialize the body (after the kind byte).
    pub fn decode_body(b: &[u8]) -> Option<CidAdvert> {
        if b.len() < 22 {
            return None;
        }
        Some(CidAdvert {
            excid: ExCid::decode(&b[..16]),
            advertiser_cid: u16::from_le_bytes([b[16], b[17]]),
            advertiser_rank: u32::from_le_bytes([b[18], b[19], b[20], b[21]]),
        })
    }
}

/// Rendezvous control fields carried by RTS messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtsInfo {
    /// Total payload size the sender wants to transfer.
    pub size: u64,
    /// Sender-side request id (echoed in the CTS).
    pub send_req: u64,
}

impl RtsInfo {
    /// Pack (16 bytes).
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.size.to_le_bytes());
        out.extend_from_slice(&self.send_req.to_le_bytes());
    }

    /// Unpack.
    pub fn decode(b: &[u8]) -> Option<(RtsInfo, &[u8])> {
        if b.len() < 16 {
            return None;
        }
        Some((
            RtsInfo {
                size: u64::from_le_bytes(b[..8].try_into().ok()?),
                send_req: u64::from_le_bytes(b[8..16].try_into().ok()?),
            },
            &b[16..],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_header_is_exactly_14_bytes() {
        let h = MatchHeader {
            kind: MsgKind::Eager,
            flags: 0,
            ctx: 513,
            src: -1,
            tag: 99,
            seq: 7,
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), MATCH_HEADER_LEN);
        let (back, rest) = MatchHeader::decode(&buf).unwrap();
        assert_eq!(back, h);
        assert!(rest.is_empty());
    }

    #[test]
    fn ext_header_is_exactly_18_bytes() {
        let e = ExtHeader { excid: ExCid::from_pgcid(77), sender_cid: 3 };
        let mut buf = Vec::new();
        e.encode(&mut buf);
        assert_eq!(buf.len(), EXT_HEADER_LEN);
        let (back, rest) = ExtHeader::decode(&buf).unwrap();
        assert_eq!(back, e);
        assert!(rest.is_empty());
    }

    #[test]
    fn cid_ack_roundtrip() {
        let ack = CidAck { excid: ExCid::from_pgcid(5), receiver_cid: 12, acker_rank: 3 };
        let bytes = ack.encode();
        assert_eq!(bytes[0], MsgKind::CidAck as u8);
        assert_eq!(CidAck::decode_body(&bytes[1..]).unwrap(), ack);
    }

    #[test]
    fn cid_advert_roundtrip() {
        let ad = CidAdvert { excid: ExCid::from_pgcid(8), advertiser_cid: 44, advertiser_rank: 2 };
        let bytes = ad.encode();
        assert_eq!(bytes[0], MsgKind::CidAdvert as u8);
        assert_eq!(CidAdvert::decode_body(&bytes[1..]).unwrap(), ad);
    }

    #[test]
    fn rts_info_roundtrip() {
        let r = RtsInfo { size: 1 << 40, send_req: 9 };
        let mut buf = Vec::new();
        r.encode(&mut buf);
        let (back, rest) = RtsInfo::decode(&buf).unwrap();
        assert_eq!(back, r);
        assert!(rest.is_empty());
    }

    #[test]
    fn kind_parse_rejects_garbage() {
        assert!(MsgKind::from_u8(0).is_none());
        assert!(MsgKind::from_u8(200).is_none());
        assert!(MsgKind::from_u8(2).unwrap().has_ext());
        assert!(!MsgKind::from_u8(1).unwrap().has_ext());
    }

    #[test]
    fn truncated_headers_rejected() {
        assert!(MatchHeader::decode(&[1u8; 13]).is_none());
        assert!(ExtHeader::decode(&[0u8; 17]).is_none());
        assert!(CidAck::decode_body(&[0u8; 21]).is_none());
        assert!(RtsInfo::decode(&[0u8; 15]).is_none());
    }
}
