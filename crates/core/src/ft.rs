//! Fault-tolerance surface (paper §II-C).
//!
//! Sessions as fault-isolation domains rest on two capabilities this
//! module exposes:
//!
//! * **failure notification** — a session can subscribe to process-failure
//!   events (PMIx event forwarding) and learn which peers died;
//! * **re-initialization** — because `MPI_Session_init` is repeatable, an
//!   application can finalize everything after a failure and re-initialize
//!   MPI over the surviving processes ("roll forward ... and use whatever
//!   resources are available at the point of re-initialization").
//!
//! The client/server isolation scenario (a client failure must not cascade
//!   into the server's internal session) is exercised by the
//! `client_server` example and the integration tests.

use crate::error::Result;
use crate::session::Session;
use pmix::{Event, EventCode, PmixUniverse, ProcId};
use std::sync::Arc;
use std::time::Duration;

/// A subscription to peer-failure notifications, scoped to a session.
pub struct FailureNotifier {
    stream: pmix::event::EventStream,
}

impl FailureNotifier {
    /// Poll for the next failure, if any.
    pub fn try_next(&self) -> Option<ProcId> {
        self.stream.try_next().and_then(|e| e.source)
    }

    /// Wait up to `timeout` for a failure notification.
    pub fn next_timeout(&self, timeout: Duration) -> Option<ProcId> {
        self.stream.next_timeout(timeout).and_then(|e: Event| e.source)
    }

    /// Number of queued notifications.
    pub fn pending(&self) -> usize {
        self.stream.pending()
    }
}

/// A fault subscription rooted at the fabric's dead set, scoped to the
/// session's namespace.
///
/// Unlike [`FailureNotifier`] (PMIx event forwarding: live events only, a
/// subscriber attaching after a death never hears about it), a
/// `FaultWatcher` has the same **exactly-once replay** contract as
/// [`Session::watch_psets`]: deaths that happened before the subscription
/// are replayed on attach (in endpoint-id order), deaths after it arrive
/// live, and no death is ever reported twice. A subscriber attaching at
/// any point — before the kill, after the kill but before the first lazy
/// resolution, long after — converges on the same fault knowledge.
pub struct FaultWatcher {
    watcher: simnet::FailureWatcher,
    universe: Arc<PmixUniverse>,
    nspace: String,
}

impl FaultWatcher {
    /// Map a fabric death onto a process of this watcher's namespace.
    /// Server endpoints are not registered as processes and deaths from
    /// other jobs carry a different nspace; both filter to `None`.
    fn decode(&self, ev: simnet::FailureEvent) -> Option<ProcId> {
        let proc = self.universe.registry().find_by_endpoint(ev.endpoint)?;
        (proc.nspace() == self.nspace).then_some(proc)
    }

    /// Poll for the next fault, if any (replayed or live).
    pub fn try_next(&mut self) -> Option<ProcId> {
        while let Some(ev) = self.watcher.try_recv() {
            if let Some(p) = self.decode(ev) {
                return Some(p);
            }
        }
        None
    }

    /// Wait up to `timeout` for the next fault of this namespace.
    pub fn next_timeout(&mut self, timeout: Duration) -> Option<ProcId> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            let ev = self.watcher.recv_timeout(left)?;
            if let Some(p) = self.decode(ev) {
                return Some(p);
            }
        }
    }
}

impl Session {
    /// Subscribe this session to process-failure events.
    pub fn failure_notifier(&self) -> Result<FailureNotifier> {
        let stream = self
            .process()
            .pmix()
            .register_events(Some(vec![EventCode::ProcTerminated, EventCode::GroupMemberFailed]));
        Ok(FailureNotifier { stream })
    }

    /// Subscribe to faults of this session's job with exactly-once replay
    /// of deaths that predate the subscription (see [`FaultWatcher`]).
    pub fn watch_faults(&self) -> Result<FaultWatcher> {
        self.check_live()?;
        let process = self.process();
        Ok(FaultWatcher {
            watcher: process.universe().fabric().watch_failures(),
            universe: process.universe().clone(),
            nspace: process.proc().nspace().to_owned(),
        })
    }

    /// Opt this session's job into the queryable faults pset: defines (or
    /// returns) `mpi://survivors/{nspace}` — the job's world minus every
    /// process the runtime has observed dead, shrunk live by the failure
    /// bridge on each kill and by the launcher on each graceful retire.
    ///
    /// The pset is versioned under the registry epoch like any other, so
    /// it composes with [`Session::group_from_pset`],
    /// [`Session::group_from_pset_at`] (epoch-pinned), and
    /// [`crate::elastic::ElasticComm`]. It is **opt-in** (not defined at
    /// launch) so jobs that never track faults keep their exact pset
    /// epoch sequence. Returns the pset name.
    pub fn track_faults(&self) -> Result<String> {
        self.check_live()?;
        let process = self.process();
        Ok(process.universe().track_faults(process.proc().nspace())?)
    }

    /// Build the set of *surviving* members of a pset: the pset membership
    /// minus processes the fabric has marked dead. This is what an
    /// application uses to re-initialize after a failure.
    pub fn surviving_group(&self, pset: &str) -> Result<crate::group::MpiGroup> {
        let group = self.group_from_pset(pset)?;
        let process = self.process().clone();
        let fabric = process.universe().fabric().clone();
        let members: Vec<crate::group::ProcRef> = group
            .iter()
            .filter(|m| fabric.is_alive(m.endpoint))
            .collect();
        Ok(crate::group::MpiGroup::from_members(members).bind(process))
    }
}
