//! Fault-tolerance surface (paper §II-C).
//!
//! Sessions as fault-isolation domains rest on two capabilities this
//! module exposes:
//!
//! * **failure notification** — a session can subscribe to process-failure
//!   events (PMIx event forwarding) and learn which peers died;
//! * **re-initialization** — because `MPI_Session_init` is repeatable, an
//!   application can finalize everything after a failure and re-initialize
//!   MPI over the surviving processes ("roll forward ... and use whatever
//!   resources are available at the point of re-initialization").
//!
//! The client/server isolation scenario (a client failure must not cascade
//!   into the server's internal session) is exercised by the
//! `client_server` example and the integration tests.

use crate::error::Result;
use crate::session::Session;
use pmix::{Event, EventCode, ProcId};
use std::time::Duration;

/// A subscription to peer-failure notifications, scoped to a session.
pub struct FailureNotifier {
    stream: pmix::event::EventStream,
}

impl FailureNotifier {
    /// Poll for the next failure, if any.
    pub fn try_next(&self) -> Option<ProcId> {
        self.stream.try_next().and_then(|e| e.source)
    }

    /// Wait up to `timeout` for a failure notification.
    pub fn next_timeout(&self, timeout: Duration) -> Option<ProcId> {
        self.stream.next_timeout(timeout).and_then(|e: Event| e.source)
    }

    /// Number of queued notifications.
    pub fn pending(&self) -> usize {
        self.stream.pending()
    }
}

impl Session {
    /// Subscribe this session to process-failure events.
    pub fn failure_notifier(&self) -> Result<FailureNotifier> {
        let stream = self
            .process()
            .pmix()
            .register_events(Some(vec![EventCode::ProcTerminated, EventCode::GroupMemberFailed]));
        Ok(FailureNotifier { stream })
    }

    /// Build the set of *surviving* members of a pset: the pset membership
    /// minus processes the fabric has marked dead. This is what an
    /// application uses to re-initialize after a failure.
    pub fn surviving_group(&self, pset: &str) -> Result<crate::group::MpiGroup> {
        let group = self.group_from_pset(pset)?;
        let process = self.process().clone();
        let fabric = process.universe().fabric().clone();
        let members: Vec<crate::group::ProcRef> = group
            .iter()
            .filter(|m| fabric.is_alive(m.endpoint))
            .collect();
        Ok(crate::group::MpiGroup::from_members(members).bind(process))
    }
}
