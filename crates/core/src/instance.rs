//! The per-process MPI instance and the subsystem lifecycle framework.
//!
//! Paper §III-B5: instead of initializing the whole library in
//! `MPI_Init` and tearing it down in a carefully ordered `MPI_Finalize`,
//! the prototype reference-counts each subsystem. Creating an MPI object
//! initializes (or re-references) the subsystems it needs; each newly
//! initialized subsystem registers a **cleanup callback**; when the last
//! session is finalized the callbacks run in reverse order and the cycle
//! may start again (`MPI_Session_init` after full finalization works).
//!
//! [`MpiProcess`] is the Rust analog of the per-OS-process ambient state a
//! real MPI library keeps: one exists per simulated process (keyed by its
//! fabric endpoint), holding the PML, the communicator-table allocator and
//! the subsystem table. Everything session-visible hangs off sessions.

use crate::cid::CidTable;
use crate::error::{ErrClass, MpiError, Result};
use crate::pml::Pml;
use crate::request::{LazyResolveStage, ProgressEngine, SetupRequest};
use parking_lot::Mutex;
use pmix::{PmixClient, PmixUniverse, ProcId};
use prrte::ProcCtx;
use simnet::{EndpointId, NodeId};
use std::collections::HashMap;
use std::sync::{Arc, Weak};

/// Subsystems the library knows about, in canonical init order.
pub const SUBSYSTEMS: &[&str] = &["opal", "mca", "info", "errh", "attr", "grp", "pml", "coll", "comm"];

/// The minimal set a bare `MPI_Session_init` brings up (paper: "we
/// initialize only the minimum set of MPI subsystems needed to support the
/// MPI Session object").
pub const SESSION_MIN_SUBSYSTEMS: &[&str] = &["opal", "mca", "info", "errh", "attr", "grp", "pml", "comm"];

type Cleanup = Box<dyn Fn(&MpiProcess) + Send>;

struct Subsystem {
    name: &'static str,
    refs: u32,
    cleanup: Option<Cleanup>,
}

/// Reference count of one PGCID "family": the base communicator plus every
/// communicator whose exCID was derived (directly or transitively) from its
/// PGCID. The PMIx group handle parks here so the *last* free — whichever
/// member it is — runs the collective destruct, after which the server can
/// recycle the PGCID.
struct PgcidFamily {
    count: u32,
    group: Option<pmix::PmixGroup>,
}

pub(crate) struct ProcState {
    pub cid_table: CidTable,
    pgcid_users: HashMap<u64, PgcidFamily>,
    subsystems: Vec<Subsystem>,
    /// Total live instance references (sessions + the internal WPM session).
    pub open_instances: u32,
    /// Generation counter: bumped every time the library fully finalizes.
    pub generation: u64,
    pub session_counter: u64,
    /// Count of fully-init/finalize cycles completed (tests).
    pub full_cycles: u64,
}

/// Per-process MPI library state.
pub struct MpiProcess {
    proc: ProcId,
    node: NodeId,
    pml: Arc<Pml>,
    pmix: PmixClient,
    universe: Arc<PmixUniverse>,
    engine: ProgressEngine,
    pub(crate) state: Mutex<ProcState>,
    /// Watchdog-visible wrappers around in-flight lazy peer resolutions
    /// (one [`LazyResolveStage`] request per resolution the PML starts);
    /// pruned by [`MpiProcess::progress`] once terminal.
    lazy_probes: Mutex<Vec<SetupRequest<()>>>,
}

static PROCESS_TABLE: Mutex<Option<HashMap<EndpointId, Weak<MpiProcess>>>> = Mutex::new(None);

/// Simulated cost of bringing a subsystem up for the first time, in
/// nanoseconds (0 by default).
///
/// The paper notes its absolute `MPI_Init` times were dominated by loading
/// MCA components from a slow NFS filesystem — a cost paid *inside*
/// initialization, once per component. Benchmarks that want paper-like
/// absolute startup magnitudes set this knob; tests leave it at zero.
static SUBSYSTEM_INIT_COST_NS: std::sync::atomic::AtomicU64 =
    std::sync::atomic::AtomicU64::new(0);

/// Set the simulated per-subsystem first-initialization cost.
pub fn set_subsystem_init_cost(cost: std::time::Duration) {
    SUBSYSTEM_INIT_COST_NS.store(cost.as_nanos() as u64, std::sync::atomic::Ordering::Relaxed);
}

/// Current simulated per-subsystem first-initialization cost.
pub fn subsystem_init_cost() -> std::time::Duration {
    std::time::Duration::from_nanos(
        SUBSYSTEM_INIT_COST_NS.load(std::sync::atomic::Ordering::Relaxed),
    )
}

impl MpiProcess {
    /// Get (or lazily create) the MPI process object for this simulated
    /// process. Thread-safe and idempotent: repeated `Session_init` calls
    /// from any thread of the process share one instance.
    pub fn obtain(ctx: &ProcCtx) -> Arc<MpiProcess> {
        let key = ctx.endpoint().id();
        let mut table = PROCESS_TABLE.lock();
        let map = table.get_or_insert_with(HashMap::new);
        if let Some(existing) = map.get(&key).and_then(|w| w.upgrade()) {
            return existing;
        }
        let process = Arc::new(MpiProcess {
            proc: ctx.proc().clone(),
            node: ctx.node(),
            pml: Pml::new(ctx.endpoint_arc()),
            pmix: ctx.pmix().clone(),
            universe: ctx.universe().clone(),
            engine: ProgressEngine::default(),
            state: Mutex::new(ProcState {
                cid_table: CidTable::new(),
                pgcid_users: HashMap::new(),
                subsystems: Vec::new(),
                open_instances: 0,
                generation: 0,
                session_counter: 0,
                full_cycles: 0,
            }),
            lazy_probes: Mutex::new(Vec::new()),
        });
        map.insert(key, Arc::downgrade(&process));
        map.retain(|_, w| w.strong_count() > 0);
        process.register_cvars();
        process
    }

    /// Register this process's control variables on the fabric registry
    /// (the MPI_T surface). Closures capture only `Weak` handles — the
    /// registry hangs off the fabric and outlives any process, so a dead
    /// subject reads as `None` and the entry is pruned lazily.
    fn register_cvars(self: &Arc<Self>) {
        let obs = self.obs();
        let scope = self.proc.to_string();
        let r = Arc::downgrade(self);
        let w = Arc::downgrade(self);
        obs.cvar_register(
            &scope,
            "pml.handshake_cache_cap",
            "LRU bound on the PML handshake cache (peer endpoints)",
            move || {
                r.upgrade().map(|p| obs::CvarValue::U64(p.pml.handshake_cache_cap() as u64))
            },
            obs::u64_writer(move |v| {
                if let Some(p) = w.upgrade() {
                    p.pml.set_handshake_cache_cap(v as usize);
                }
            }),
        );
        let r = Arc::downgrade(self);
        let w = Arc::downgrade(self);
        obs.cvar_register(
            &scope,
            "core.stall_ticks",
            "engine sweeps without progress before a setup request is declared stalled",
            move || r.upgrade().map(|p| obs::CvarValue::U64(p.engine.stall_ticks())),
            obs::u64_writer(move |v| {
                if let Some(p) = w.upgrade() {
                    p.engine.set_stall_ticks(v);
                }
            }),
        );
    }

    /// Every live MPI process registered against `universe`, ordered by
    /// process identity so snapshot iteration is deterministic.
    pub fn processes_of(universe: &Arc<PmixUniverse>) -> Vec<Arc<MpiProcess>> {
        let table = PROCESS_TABLE.lock();
        let Some(map) = table.as_ref() else { return Vec::new() };
        let mut procs: Vec<Arc<MpiProcess>> = map
            .values()
            .filter_map(|w| w.upgrade())
            .filter(|p| Arc::ptr_eq(&p.universe, universe))
            .collect();
        procs.sort_by_key(|p| p.proc.to_string());
        procs
    }

    /// This process's PMIx identity.
    pub fn proc(&self) -> &ProcId {
        &self.proc
    }

    /// The node this process runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The messaging engine.
    pub fn pml(&self) -> &Arc<Pml> {
        &self.pml
    }

    /// The PMIx client.
    pub fn pmix(&self) -> &PmixClient {
        &self.pmix
    }

    /// The universe (registry access for pset resolution).
    pub fn universe(&self) -> &Arc<PmixUniverse> {
        &self.universe
    }

    /// The setup progress engine: every in-flight `i`-variant construction
    /// of this process registers here.
    pub fn progress_engine(&self) -> &ProgressEngine {
        &self.engine
    }

    /// Explicit progress: step every in-flight setup request once and pump
    /// the messaging engine. Returns the number of setup requests still in
    /// flight.
    pub fn progress(&self) -> usize {
        let live = self.engine.progress();
        self.pml.progress(None);
        self.prune_lazy_probes();
        live
    }

    /// Wrap every lazy peer resolution the PML has started since the last
    /// call in a watchdog-visible [`LazyResolveStage`] request. Called from
    /// the send path right after a send may have begun a resolution, so a
    /// stalled business-card fetch gets a `req.stalled` diagnosis naming
    /// the peer.
    pub(crate) fn watch_lazy_resolves(self: &Arc<Self>) {
        while let Some(peer) = self.pml.take_resolve_probe() {
            let stage = Box::new(LazyResolveStage { pml: self.pml.clone(), peer });
            let req = SetupRequest::issue(self.clone(), "lazy_resolve", None, false, stage, None);
            self.lazy_probes.lock().push(req);
        }
    }

    /// Drop terminal lazy-resolve probes, claiming their unit results so
    /// the drop does not read as a cancellation.
    fn prune_lazy_probes(&self) {
        let finished: Vec<SetupRequest<()>> = {
            let mut probes = self.lazy_probes.lock();
            if probes.iter().all(|r| !r.is_complete()) {
                return;
            }
            let (done, live): (Vec<_>, Vec<_>) =
                probes.drain(..).partition(|r| r.is_complete());
            *probes = live;
            done
        };
        for r in finished {
            // A failed resolution already failed its sends; the probe's
            // error needs no further handling.
            let _ = r.wait();
        }
    }

    /// Claim every remaining lazy-resolve probe at PML teardown. The reset
    /// just made each resolution terminal, so the waits return immediately
    /// and each probe's `req.issued` gets its terminal event — without
    /// this, a probe nobody explicitly progressed would strand (and, since
    /// it holds an `Arc<MpiProcess>`, leak the process).
    fn drain_lazy_probes(&self) {
        let probes: Vec<SetupRequest<()>> = std::mem::take(&mut *self.lazy_probes.lock());
        for r in probes {
            let _ = r.wait();
        }
    }

    /// The fabric-wide observability registry this process reports into.
    pub fn obs(&self) -> Arc<obs::Registry> {
        self.universe.fabric().obs()
    }

    /// Bring up `names`, incrementing refcounts; first use of a subsystem
    /// registers its cleanup callback. Returns the instance id.
    pub(crate) fn acquire_instance(&self, names: &[&'static str]) -> u64 {
        let t0 = std::time::Instant::now();
        let mut fresh = 0u32;
        let id = {
            let mut st = self.state.lock();
            for name in names {
                match st.subsystems.iter_mut().find(|s| s.name == *name) {
                    Some(s) => s.refs += 1,
                    None => {
                        let cleanup = Self::cleanup_for(name);
                        st.subsystems.push(Subsystem { name, refs: 1, cleanup });
                        fresh += 1;
                    }
                }
            }
            st.open_instances += 1;
            st.session_counter += 1;
            st.session_counter
        };
        // Simulated component-load cost for newly initialized subsystems
        // (outside the lock: loading is per-process work, not contention).
        let per = subsystem_init_cost();
        if fresh > 0 && !per.is_zero() {
            std::thread::sleep(per * fresh);
        }
        let obs = self.obs();
        let p = self.proc.to_string();
        obs.histogram(&p, "instance", "subsystem_init_ns").record(t0.elapsed());
        obs.counter(&p, "instance", "subsystems_initialized").add(fresh as u64);
        obs.counter(&p, "instance", "instances_acquired").inc();
        id
    }

    /// Release an instance's subsystems. When the last instance goes away,
    /// cleanup callbacks run in reverse init order and the library returns
    /// to the pristine state.
    pub(crate) fn release_instance(&self, names: &[&'static str]) {
        let mut cleanups: Vec<Cleanup> = Vec::new();
        {
            let mut st = self.state.lock();
            for name in names {
                if let Some(s) = st.subsystems.iter_mut().find(|s| s.name == *name) {
                    s.refs = s.refs.saturating_sub(1);
                }
            }
            st.open_instances = st.open_instances.saturating_sub(1);
            if st.open_instances == 0 {
                // Last finalize: run all cleanups, reverse order.
                while let Some(mut s) = st.subsystems.pop() {
                    if let Some(c) = s.cleanup.take() {
                        cleanups.push(c);
                    }
                }
                st.generation += 1;
                st.full_cycles += 1;
                // Teardown audit: anything still claimed here is a
                // communicator the application never freed — surfaced as a
                // counter so soak harnesses can gate on leak-freedom.
                let leaked = st.cid_table.count_used();
                let leaked_families = st.pgcid_users.len();
                st.cid_table = CidTable::new();
                st.pgcid_users.clear();
                drop(st);
                let obs = self.obs();
                let p = self.proc.to_string();
                if leaked > 0 || leaked_families > 0 {
                    obs.counter(&p, "instance", "cids_leaked_at_teardown")
                        .add(leaked as u64);
                    obs.event(
                        &p,
                        "instance",
                        "instance.teardown_leak",
                        vec![
                            ("leaked_cids".into(), (leaked as u64).into()),
                            ("leaked_pgcid_families".into(), (leaked_families as u64).into()),
                        ],
                    );
                }
                obs.gauge(&p, "cid", "table_used").set(0);
            }
        }
        if !cleanups.is_empty() {
            let t0 = std::time::Instant::now();
            let n = cleanups.len() as u64;
            for c in cleanups {
                c(self);
            }
            let obs = self.obs();
            let p = self.proc.to_string();
            obs.histogram(&p, "instance", "subsystem_cleanup_ns").record(t0.elapsed());
            obs.counter(&p, "instance", "subsystems_cleaned").add(n);
        }
    }

    fn cleanup_for(name: &str) -> Option<Cleanup> {
        match name {
            "pml" => Some(Box::new(|p: &MpiProcess| {
                p.pml.reset();
                p.drain_lazy_probes();
            })),
            _ => None,
        }
    }

    /// How many instances (sessions incl. the WPM-internal one) are open.
    pub fn open_instances(&self) -> u32 {
        self.state.lock().open_instances
    }

    /// Completed full init/finalize cycles (tests of re-initialization).
    pub fn full_cycles(&self) -> u64 {
        self.state.lock().full_cycles
    }

    /// Current library generation (bumps on every full finalize).
    pub fn generation(&self) -> u64 {
        self.state.lock().generation
    }

    /// In-use local CID indices, ascending (flight-recorder snapshots).
    pub fn cid_indices(&self) -> Vec<u16> {
        self.state.lock().cid_table.used_indices()
    }

    /// Live PGCID families as `(pgcid, refcount, holds_group_handle)`,
    /// ascending by PGCID (flight-recorder snapshots).
    pub fn pgcid_families(&self) -> Vec<(u64, u32, bool)> {
        let st = self.state.lock();
        let mut fams: Vec<(u64, u32, bool)> = st
            .pgcid_users
            .iter()
            .map(|(k, f)| (*k, f.count, f.group.is_some()))
            .collect();
        fams.sort_unstable_by_key(|f| f.0);
        fams
    }

    /// Which subsystems are currently initialized (tests).
    pub fn live_subsystems(&self) -> Vec<&'static str> {
        self.state
            .lock()
            .subsystems
            .iter()
            .filter(|s| s.refs > 0)
            .map(|s| s.name)
            .collect()
    }

    /// Publish the current CID-table occupancy as a gauge (its high-water
    /// mark is the "CID pool occupancy" column of the soak report).
    fn publish_cid_gauge(&self, used: usize) {
        self.obs()
            .gauge(&self.proc.to_string(), "cid", "table_used")
            .set(used as i64);
    }

    /// Claim a specific local CID (built-in communicators).
    pub(crate) fn claim_cid(&self, idx: u16) -> Result<u16> {
        let used = {
            let mut st = self.state.lock();
            st.cid_table.claim(idx)?;
            st.cid_table.count_used()
        };
        self.publish_cid_gauge(used);
        Ok(idx)
    }

    /// Claim the lowest free local CID at or above `from`.
    pub(crate) fn claim_lowest_cid(&self, from: u16) -> Result<u16> {
        let (idx, used) = {
            let mut st = self.state.lock();
            let idx = st.cid_table.claim_lowest(from)?;
            (idx, st.cid_table.count_used())
        };
        self.publish_cid_gauge(used);
        Ok(idx)
    }

    /// Lowest free CID at or above `from` without claiming (consensus).
    pub(crate) fn peek_lowest_cid(&self, from: u16) -> Result<u16> {
        self.state.lock().cid_table.lowest_free(from)
    }

    /// Release a local CID.
    pub(crate) fn release_cid(&self, idx: u16) {
        let used = {
            let mut st = self.state.lock();
            st.cid_table.release(idx);
            st.cid_table.count_used()
        };
        self.publish_cid_gauge(used);
    }

    /// Add one reference to `pgcid`'s family, parking the PMIx group handle
    /// (when the caller owns one) for the eventual last-free destruct.
    pub(crate) fn pgcid_retain(&self, pgcid: u64, group: Option<pmix::PmixGroup>) {
        let mut st = self.state.lock();
        let fam = st
            .pgcid_users
            .entry(pgcid)
            .or_insert(PgcidFamily { count: 0, group: None });
        fam.count += 1;
        if group.is_some() {
            fam.group = group;
        }
    }

    /// Drop one reference from `pgcid`'s family. Returns the parked PMIx
    /// group handle when this was the last reference — the caller then owns
    /// the collective destruct.
    pub(crate) fn pgcid_release(&self, pgcid: u64) -> Option<pmix::PmixGroup> {
        let mut st = self.state.lock();
        let fam = st.pgcid_users.get_mut(&pgcid)?;
        fam.count = fam.count.saturating_sub(1);
        if fam.count == 0 {
            st.pgcid_users.remove(&pgcid).and_then(|f| f.group)
        } else {
            None
        }
    }

    /// Guard: an MPI object call requires the library to be initialized.
    pub(crate) fn require_active(&self) -> Result<()> {
        if self.state.lock().open_instances == 0 {
            return Err(MpiError::new(
                ErrClass::Session,
                "MPI is not initialized (no open session)",
            ));
        }
        Ok(())
    }
}

impl std::fmt::Debug for MpiProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MpiProcess")
            .field("proc", &self.proc)
            .field("open_instances", &self.open_instances())
            .finish()
    }
}
