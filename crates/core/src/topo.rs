//! Cartesian process topologies (`MPI_Cart_create` and friends).
//!
//! Stencil applications (like the paper's 2MESH L0 library) address
//! neighbors through a Cartesian view of the communicator; this module
//! provides that layer over any communicator — sessions-derived or WPM.

use crate::coll;
use crate::comm::Comm;
use crate::error::{ErrClass, MpiError, Result};

/// Payloads received from the low/high neighbor in a halo exchange
/// (`None` at a non-periodic wall).
pub type HaloPair = (Option<Vec<u8>>, Option<Vec<u8>>);

/// A communicator with a Cartesian topology attached.
pub struct CartComm {
    comm: Comm,
    dims: Vec<u32>,
    periodic: Vec<bool>,
}

/// `MPI_Dims_create`: factor `nnodes` into `ndims` balanced dimensions.
pub fn dims_create(nnodes: u32, ndims: usize) -> Vec<u32> {
    assert!(ndims >= 1);
    let mut dims = vec![1u32; ndims];
    let mut rest = nnodes.max(1);
    // Greedy: repeatedly assign the largest prime factor to the smallest
    // dimension, yielding near-cubic decompositions.
    let mut factors = Vec::new();
    let mut f = 2u32;
    while f * f <= rest {
        while rest.is_multiple_of(f) {
            factors.push(f);
            rest /= f;
        }
        f += 1;
    }
    if rest > 1 {
        factors.push(rest);
    }
    factors.sort_unstable_by(|a, b| b.cmp(a));
    for factor in factors {
        let i = (0..ndims).min_by_key(|&i| dims[i]).expect("ndims >= 1");
        dims[i] *= factor;
    }
    dims.sort_unstable_by(|a, b| b.cmp(a));
    dims
}

impl CartComm {
    /// `MPI_Cart_create` (with `reorder = false`): attach a
    /// `dims`-shaped grid to `comm`. The product of `dims` must equal the
    /// communicator size (ranks beyond the grid are not supported — pass
    /// an exact grid, as `dims_create` produces).
    pub fn create(comm: &Comm, dims: &[u32], periodic: &[bool]) -> Result<CartComm> {
        if dims.is_empty() || dims.len() != periodic.len() {
            return Err(MpiError::new(ErrClass::Arg, "dims/periodic shape mismatch"));
        }
        let cells: u64 = dims.iter().map(|d| *d as u64).product();
        if cells != comm.size() as u64 {
            return Err(MpiError::new(
                ErrClass::Arg,
                format!("grid of {cells} cells over communicator of {}", comm.size()),
            ));
        }
        Ok(CartComm {
            comm: comm.dup()?,
            dims: dims.to_vec(),
            periodic: periodic.to_vec(),
        })
    }

    /// The underlying communicator.
    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    /// Grid shape (`MPI_Cart_get`).
    pub fn dims(&self) -> &[u32] {
        &self.dims
    }

    /// Number of dimensions (`MPI_Cartdim_get`).
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// `MPI_Cart_coords`: rank → coordinates (row-major, like MPI).
    pub fn coords_of(&self, rank: u32) -> Result<Vec<u32>> {
        if rank >= self.comm.size() {
            return Err(MpiError::new(ErrClass::Rank, "rank outside grid"));
        }
        let mut rest = rank;
        let mut coords = vec![0u32; self.dims.len()];
        for i in (0..self.dims.len()).rev() {
            coords[i] = rest % self.dims[i];
            rest /= self.dims[i];
        }
        Ok(coords)
    }

    /// `MPI_Cart_rank`: coordinates → rank. Periodic dimensions wrap;
    /// out-of-range coordinates on non-periodic dimensions are an error.
    pub fn rank_of(&self, coords: &[i64]) -> Result<Option<u32>> {
        if coords.len() != self.dims.len() {
            return Err(MpiError::new(ErrClass::Arg, "coordinate arity mismatch"));
        }
        let mut rank = 0u64;
        for (i, &c) in coords.iter().enumerate() {
            let d = self.dims[i] as i64;
            let c = if self.periodic[i] {
                c.rem_euclid(d)
            } else if c < 0 || c >= d {
                return Ok(None); // MPI_PROC_NULL
            } else {
                c
            };
            rank = rank * d as u64 + c as u64;
        }
        Ok(Some(rank as u32))
    }

    /// This process's coordinates.
    pub fn my_coords(&self) -> Vec<u32> {
        self.coords_of(self.comm.rank()).expect("own rank valid")
    }

    /// `MPI_Cart_shift`: source and destination ranks for a displacement
    /// along `dim`. `None` = `MPI_PROC_NULL` (walked off a wall).
    pub fn shift(&self, dim: usize, disp: i64) -> Result<(Option<u32>, Option<u32>)> {
        if dim >= self.dims.len() {
            return Err(MpiError::new(ErrClass::Arg, "shift dimension out of range"));
        }
        let me: Vec<i64> = self.my_coords().iter().map(|c| *c as i64).collect();
        let mut dst = me.clone();
        dst[dim] += disp;
        let mut src = me;
        src[dim] -= disp;
        Ok((self.rank_of(&src)?, self.rank_of(&dst)?))
    }

    /// Halo exchange along one dimension: sendrecv with both neighbors,
    /// returning `(from_low, from_high)` (None at non-periodic walls).
    pub fn halo_exchange(
        &self,
        dim: usize,
        tag: i32,
        to_low: &[u8],
        to_high: &[u8],
    ) -> Result<HaloPair> {
        let (low, high) = self.shift(dim, 1)?; // src = low side, dst = high side
        // Phase 1: send toward the high neighbor, receive from the low.
        let from_low = match (high, low) {
            (Some(h), Some(l)) => {
                Some(self.comm.sendrecv(h, tag, to_high, l as i32, tag)?.0)
            }
            (Some(h), None) => {
                self.comm.send(h, tag, to_high)?;
                None
            }
            (None, Some(l)) => Some(self.comm.recv(l as i32, tag)?.0),
            (None, None) => None,
        };
        // Phase 2: the mirror direction.
        let from_high = match (low, high) {
            (Some(l), Some(h)) => {
                Some(self.comm.sendrecv(l, tag + 1, to_low, h as i32, tag + 1)?.0)
            }
            (Some(l), None) => {
                self.comm.send(l, tag + 1, to_low)?;
                None
            }
            (None, Some(h)) => Some(self.comm.recv(h as i32, tag + 1)?.0),
            (None, None) => None,
        };
        Ok((from_low, from_high))
    }

    /// `MPI_Cart_sub`: keep the dimensions where `keep[i]`, splitting into
    /// disjoint sub-grids over the dropped dimensions.
    pub fn sub(&self, keep: &[bool]) -> Result<CartComm> {
        if keep.len() != self.dims.len() {
            return Err(MpiError::new(ErrClass::Arg, "keep arity mismatch"));
        }
        let my = self.my_coords();
        // Color = coordinates along dropped dims; key = linearized kept coords.
        let mut color = 0u32;
        let mut key = 0u32;
        let mut sub_dims = Vec::new();
        let mut sub_periodic = Vec::new();
        for i in 0..keep.len() {
            if keep[i] {
                key = key * self.dims[i] + my[i];
                sub_dims.push(self.dims[i]);
                sub_periodic.push(self.periodic[i]);
            } else {
                color = color * self.dims[i] + my[i];
            }
        }
        if sub_dims.is_empty() {
            sub_dims.push(1);
            sub_periodic.push(false);
        }
        let sub_comm = self.comm.split(color, key)?;
        Ok(CartComm { comm: sub_comm, dims: sub_dims, periodic: sub_periodic })
    }

    /// Free the attached communicator (collective).
    pub fn free(self) -> Result<()> {
        self.comm.free()
    }

    /// Barrier over the grid.
    pub fn barrier(&self) -> Result<()> {
        coll::barrier(&self.comm)
    }
}

impl std::fmt::Debug for CartComm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CartComm")
            .field("dims", &self.dims)
            .field("periodic", &self.periodic)
            .field("rank", &self.comm.rank())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_create_balances_factors() {
        assert_eq!(dims_create(12, 2), vec![4, 3]);
        assert_eq!(dims_create(8, 3), vec![2, 2, 2]);
        assert_eq!(dims_create(7, 2), vec![7, 1]);
        assert_eq!(dims_create(1, 2), vec![1, 1]);
        assert_eq!(dims_create(16, 2), vec![4, 4]);
    }

    #[test]
    fn dims_product_matches_input() {
        for n in 1..=64u32 {
            for nd in 1..=3usize {
                let dims = dims_create(n, nd);
                assert_eq!(dims.iter().product::<u32>(), n, "n={n} nd={nd}");
            }
        }
    }
}
