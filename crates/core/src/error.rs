//! MPI error classes and the library error type.

use pmix::PmixError;

/// MPI error classes (subset of the standard's `MPI_ERR_*` space relevant
/// to this implementation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrClass {
    /// `MPI_ERR_ARG` — invalid argument.
    Arg,
    /// `MPI_ERR_RANK` — invalid rank.
    Rank,
    /// `MPI_ERR_TAG` — invalid tag.
    Tag,
    /// `MPI_ERR_COMM` — invalid communicator.
    Comm,
    /// `MPI_ERR_GROUP` — invalid group.
    Group,
    /// `MPI_ERR_TRUNCATE` — receive buffer too small.
    Truncate,
    /// `MPI_ERR_PROC_FAILED` (ULFM-style) — a peer process failed.
    ProcFailed,
    /// A peer this operation was waiting on is *already known dead* when
    /// the operation is issued or polled: the policy layer (fault-aware
    /// waits, `Comm::repair_via_pset`, `ElasticComm` rebuild) returns this
    /// instead of burning a timeout budget on a peer that can never answer.
    /// Distinct from [`ErrClass::ProcFailed`], which reports a failure the
    /// runtime *discovered* while the operation was in flight.
    ProcTerminated,
    /// `MPI_ERR_UNSUPPORTED_OPERATION`.
    Unsupported,
    /// `MPI_ERR_SESSION` — invalid or finalized session.
    Session,
    /// Stale pset epoch: the registry moved past the requested version
    /// (a torn read on the elastic rebuild path).
    Stale,
    /// `MPI_ERR_PENDING` / timeout from the runtime.
    Timeout,
    /// `MPI_ERR_INTERN` — implementation error.
    Intern,
    /// `MPI_ERR_OTHER`.
    Other,
}

/// The error type returned by fallible MPI operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MpiError {
    /// The error class (`MPI_Error_class` analog).
    pub class: ErrClass,
    /// Human-readable detail (`MPI_Error_string` analog).
    pub message: String,
}

impl MpiError {
    /// Construct an error.
    pub fn new(class: ErrClass, message: impl Into<String>) -> Self {
        Self { class, message: message.into() }
    }

    /// Shorthand for internal errors.
    pub fn intern(message: impl Into<String>) -> Self {
        Self::new(ErrClass::Intern, message)
    }
}

impl std::fmt::Display for MpiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MPI error ({:?}): {}", self.class, self.message)
    }
}

impl std::error::Error for MpiError {}

impl From<PmixError> for MpiError {
    fn from(e: PmixError) -> Self {
        let class = match &e {
            PmixError::Timeout => ErrClass::Timeout,
            PmixError::ProcTerminated(_) => ErrClass::ProcFailed,
            PmixError::NotFound(_) => ErrClass::Arg,
            PmixError::BadParam(_) => ErrClass::Arg,
            PmixError::Unreachable => ErrClass::ProcFailed,
            PmixError::NotMember => ErrClass::Group,
            PmixError::Exists(_) => ErrClass::Arg,
            PmixError::Declined(_) => ErrClass::Group,
            PmixError::Internal(_) => ErrClass::Intern,
        };
        MpiError::new(class, e.to_string())
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, MpiError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_class_and_message() {
        let e = MpiError::new(ErrClass::Truncate, "message too long");
        let s = e.to_string();
        assert!(s.contains("Truncate"));
        assert!(s.contains("message too long"));
    }

    #[test]
    fn pmix_errors_map_to_classes() {
        assert_eq!(MpiError::from(PmixError::Timeout).class, ErrClass::Timeout);
        assert_eq!(
            MpiError::from(PmixError::ProcTerminated(pmix::ProcId::new("j", 0))).class,
            ErrClass::ProcFailed
        );
        assert_eq!(MpiError::from(PmixError::NotMember).class, ErrClass::Group);
    }
}
