//! RMA windows created from groups (`MPI_Win_allocate_from_group`).
//!
//! The prototype implements group-based window creation by first building
//! an intermediate communicator with the exCID machinery and then running
//! the MPI-3 window path over it (paper §III-B6); we do the same — the
//! window owns the communicator produced by `Comm::create_from_group`.
//!
//! The RMA model implemented is **active-target fence epochs** (BSP):
//! `put`/`get` calls queue one-sided operations; [`Win::fence`] exchanges
//! and applies them and completes all pending [`GetHandle`]s. Passive
//! target (lock/unlock) is out of scope and documented as such.

use crate::coll;
use crate::comm::Comm;
use crate::error::{ErrClass, MpiError, Result};
use crate::group::MpiGroup;
use parking_lot::Mutex;
use std::sync::Arc;

const TAG_OPS: i32 = 0;
const TAG_GET_REPLY: i32 = 1;

enum RmaOp {
    Put { dst: u32, offset: usize, data: Vec<u8> },
    Get { dst: u32, offset: usize, len: usize, slot: Arc<Mutex<Option<Vec<u8>>>> },
}

/// Result slot of a queued `get`; filled by the closing [`Win::fence`].
pub struct GetHandle {
    slot: Arc<Mutex<Option<Vec<u8>>>>,
}

impl GetHandle {
    /// The fetched bytes. Errors if the epoch has not been fenced yet.
    pub fn result(&self) -> Result<Vec<u8>> {
        self.slot
            .lock()
            .clone()
            .ok_or_else(|| MpiError::new(ErrClass::Other, "get not completed: call Win::fence first"))
    }
}

/// An RMA window over a group of processes.
pub struct Win {
    comm: Comm,
    local: Arc<Mutex<Vec<u8>>>,
    pending: Mutex<Vec<RmaOp>>,
}

impl Win {
    /// `MPI_Win_allocate_from_group`: collective over the group.
    pub fn allocate_from_group(group: &MpiGroup, stringtag: &str, size: usize) -> Result<Win> {
        let comm = Comm::create_from_group(group, &format!("win:{stringtag}"))?;
        Ok(Win {
            comm,
            local: Arc::new(Mutex::new(vec![0u8; size])),
            pending: Mutex::new(Vec::new()),
        })
    }

    /// `MPI_Win_create` over an existing communicator (MPI-3 path).
    pub fn create(comm: &Comm, size: usize) -> Result<Win> {
        Ok(Win {
            comm: comm.dup()?,
            local: Arc::new(Mutex::new(vec![0u8; size])),
            pending: Mutex::new(Vec::new()),
        })
    }

    /// The window's communicator (diagnostics).
    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    /// Size of the local window.
    pub fn local_size(&self) -> usize {
        self.local.lock().len()
    }

    /// Direct load from the local window.
    pub fn read_local(&self, offset: usize, len: usize) -> Result<Vec<u8>> {
        let mem = self.local.lock();
        if offset + len > mem.len() {
            return Err(MpiError::new(ErrClass::Arg, "local read outside window"));
        }
        Ok(mem[offset..offset + len].to_vec())
    }

    /// Direct store to the local window.
    pub fn write_local(&self, offset: usize, data: &[u8]) -> Result<()> {
        let mut mem = self.local.lock();
        if offset + data.len() > mem.len() {
            return Err(MpiError::new(ErrClass::Arg, "local write outside window"));
        }
        mem[offset..offset + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Queue `MPI_Put` toward `dst` (applied at the next fence).
    pub fn put(&self, dst: u32, offset: usize, data: &[u8]) -> Result<()> {
        if dst >= self.comm.size() {
            return Err(MpiError::new(ErrClass::Rank, "put target outside window group"));
        }
        self.pending.lock().push(RmaOp::Put { dst, offset, data: data.to_vec() });
        Ok(())
    }

    /// Queue `MPI_Get` from `dst` (completed at the next fence).
    pub fn get(&self, dst: u32, offset: usize, len: usize) -> Result<GetHandle> {
        if dst >= self.comm.size() {
            return Err(MpiError::new(ErrClass::Rank, "get target outside window group"));
        }
        let slot = Arc::new(Mutex::new(None));
        self.pending
            .lock()
            .push(RmaOp::Get { dst, offset, len, slot: slot.clone() });
        Ok(GetHandle { slot })
    }

    /// `MPI_Win_fence`: closes the epoch — exchanges queued operations,
    /// applies puts, serves gets, completes get handles. Collective.
    pub fn fence(&self) -> Result<()> {
        let n = self.comm.size();
        let me = self.comm.rank();
        // Partition pending ops by target.
        let mut puts: Vec<Vec<(usize, Vec<u8>)>> = vec![Vec::new(); n as usize];
        let mut gets: Vec<Vec<(u64, usize, usize)>> = vec![Vec::new(); n as usize];
        let mut get_slots: Vec<Arc<Mutex<Option<Vec<u8>>>>> = Vec::new();
        for op in self.pending.lock().drain(..) {
            match op {
                RmaOp::Put { dst, offset, data } => puts[dst as usize].push((offset, data)),
                RmaOp::Get { dst, offset, len, slot } => {
                    let id = get_slots.len() as u64;
                    get_slots.push(slot);
                    gets[dst as usize].push((id, offset, len));
                }
            }
        }
        // Self-targeted ops resolve locally.
        for (offset, data) in puts[me as usize].drain(..) {
            self.write_local(offset, &data)?;
        }
        for (id, offset, len) in gets[me as usize].drain(..) {
            let data = self.read_local(offset, len)?;
            *get_slots[id as usize].lock() = Some(data);
        }
        // Exchange op lists pairwise.
        let mut reply_jobs: Vec<(u32, u64, usize, usize)> = Vec::new();
        let mut expected_replies = 0usize;
        for round in 1..n {
            let dst = (me + round) % n;
            let src = (me + n - round) % n;
            let msg = encode_ops(&puts[dst as usize], &gets[dst as usize]);
            expected_replies += gets[dst as usize].len();
            let (incoming, _) = self.comm.sendrecv(dst, TAG_OPS, &msg, src as i32, TAG_OPS)?;
            let (in_puts, in_gets) = decode_ops(&incoming)?;
            for (offset, data) in in_puts {
                self.write_local(offset, &data)?;
            }
            for (id, offset, len) in in_gets {
                reply_jobs.push((src, id, offset, len));
            }
        }
        // Serve gets that targeted us — non-blocking, so two ranks serving
        // each other large replies cannot deadlock before their collect
        // phases post the matching receives.
        let mut reply_reqs = Vec::new();
        for (requester, id, offset, len) in reply_jobs {
            let data = self.read_local(offset, len)?;
            let mut reply = Vec::with_capacity(8 + data.len());
            reply.extend_from_slice(&id.to_le_bytes());
            reply.extend_from_slice(&data);
            reply_reqs.push(self.comm.isend(requester, TAG_GET_REPLY, &reply)?);
        }
        // Collect replies for our gets.
        for _ in 0..expected_replies {
            let (reply, _) = self.comm.recv(crate::ANY_SOURCE, TAG_GET_REPLY)?;
            if reply.len() < 8 {
                return Err(MpiError::intern("short RMA get reply"));
            }
            let id = u64::from_le_bytes(reply[..8].try_into().expect("len checked"));
            *get_slots[id as usize].lock() = Some(reply[8..].to_vec());
        }
        crate::request::Request::wait_all(reply_reqs)?;
        coll::barrier(&self.comm)?;
        Ok(())
    }

    /// `MPI_Win_free`: collective.
    pub fn free(self) -> Result<()> {
        coll::barrier(&self.comm)?;
        self.comm.free()
    }
}

fn encode_ops(puts: &[(usize, Vec<u8>)], gets: &[(u64, usize, usize)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(puts.len() as u64).to_le_bytes());
    for (offset, data) in puts {
        out.extend_from_slice(&(*offset as u64).to_le_bytes());
        out.extend_from_slice(&(data.len() as u64).to_le_bytes());
        out.extend_from_slice(data);
    }
    out.extend_from_slice(&(gets.len() as u64).to_le_bytes());
    for (id, offset, len) in gets {
        out.extend_from_slice(&id.to_le_bytes());
        out.extend_from_slice(&(*offset as u64).to_le_bytes());
        out.extend_from_slice(&(*len as u64).to_le_bytes());
    }
    out
}

type DecodedOps = (Vec<(usize, Vec<u8>)>, Vec<(u64, usize, usize)>);

fn decode_ops(b: &[u8]) -> Result<DecodedOps> {
    let short = || MpiError::intern("short RMA op list");
    let mut pos = 0usize;
    let read_u64 = |pos: &mut usize| -> Result<u64> {
        if *pos + 8 > b.len() {
            return Err(short());
        }
        let v = u64::from_le_bytes(b[*pos..*pos + 8].try_into().expect("checked"));
        *pos += 8;
        Ok(v)
    };
    let nputs = read_u64(&mut pos)?;
    let mut puts = Vec::with_capacity(nputs as usize);
    for _ in 0..nputs {
        let offset = read_u64(&mut pos)? as usize;
        let len = read_u64(&mut pos)? as usize;
        if pos + len > b.len() {
            return Err(short());
        }
        puts.push((offset, b[pos..pos + len].to_vec()));
        pos += len;
    }
    let ngets = read_u64(&mut pos)?;
    let mut gets = Vec::with_capacity(ngets as usize);
    for _ in 0..ngets {
        let id = read_u64(&mut pos)?;
        let offset = read_u64(&mut pos)? as usize;
        let len = read_u64(&mut pos)? as usize;
        gets.push((id, offset, len));
    }
    Ok((puts, gets))
}

impl std::fmt::Debug for Win {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Win")
            .field("size", &self.local_size())
            .field("pending_ops", &self.pending.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_encode_decode_roundtrip() {
        let puts = vec![(4usize, vec![1u8, 2, 3]), (0usize, vec![9u8])];
        let gets = vec![(7u64, 16usize, 8usize)];
        let bytes = encode_ops(&puts, &gets);
        let (p2, g2) = decode_ops(&bytes).unwrap();
        assert_eq!(p2, puts);
        assert_eq!(g2, gets);
    }

    #[test]
    fn decode_rejects_truncation() {
        let puts = vec![(4usize, vec![1u8, 2, 3])];
        let bytes = encode_ops(&puts, &[]);
        assert!(decode_ops(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode_ops(&[1, 2, 3]).is_err());
    }
}
