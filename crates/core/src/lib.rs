//! # mpi-sessions — an MPI library with the MPI Sessions extensions
//!
//! This crate is the reproduction of the paper's primary contribution: the
//! prototype implementation of the **MPI Sessions** proposal inside an MPI
//! library (the paper used Open MPI; here the library itself is built from
//! scratch in Rust over the `pmix`/`prrte`/`simnet` substrates).
//!
//! ## The two process models
//!
//! * **World Process Model (WPM)** — [`world::init`] /
//!   [`world::World::finalize`]: eager initialization of every subsystem, a
//!   PMIx fence across the job (the `add_procs` analog), and the built-in
//!   `MPI_COMM_WORLD` / `MPI_COMM_SELF` communicators with consensus-based
//!   CIDs. Internally implemented *as a session* (paper §III-B5), so the two
//!   models coexist.
//! * **Sessions Process Model** — [`session::Session::init`] is local and
//!   thread-safe, can be called many times, and initializes only the
//!   subsystems the session needs (reference-counted with cleanup callbacks
//!   — the OPAL finalize-framework analog, [`instance`]). Communicators are
//!   built with `Session → psets → Group → Comm::create_from_group`,
//!   exactly the sequence in the paper's Figure 1.
//!
//! ## Communicator identifiers (paper §III-B2/3/4)
//!
//! Communicators carry a 16-bit local CID (an index into the per-process
//! communicator table, kept in the compact 14-byte match header) and, for
//! sessions-derived communicators, a 128-bit **exCID** (PGCID + eight 8-bit
//! derivation subfields). The `ob1`-style PML performs the first-message
//! extended-header handshake and per-peer local-CID exchange described in
//! the paper; the legacy multi-round **consensus** CID algorithm is kept
//! for the WPM path and as the fallback/baseline.
//!
//! ## Quick start
//!
//! The paper's Figure 1 sequence — init a session, resolve a process set,
//! build a group, and create a communicator from it — on a two-process
//! simulated job:
//!
//! ```
//! use mpi_sessions::{Comm, ErrHandler, Info, MpiError, Session, ThreadLevel};
//! use prrte::{JobSpec, Launcher};
//! use simnet::SimTestbed;
//!
//! let launcher = Launcher::new(SimTestbed::tiny(1, 2));
//! let results = launcher
//!     .spawn(JobSpec::new(2), |ctx| {
//!         let session =
//!             Session::init(&ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null())?;
//!         let group = session.group_from_pset("mpi://world")?;
//!         let comm = Comm::create_from_group(&group, "quick-start")?;
//!         let peer = 1 - comm.rank();
//!         let (reply, _status) = comm.sendrecv(peer, 0, b"hello", peer as i32, 0)?;
//!         assert_eq!(reply, b"hello");
//!         comm.free()?;
//!         session.finalize()?;
//!         Ok::<(), MpiError>(())
//!     })
//!     .join()
//!     .expect("job ran");
//! results.into_iter().for_each(|r| r.expect("rank succeeded"));
//! ```

pub mod attr;
pub mod cid;
pub mod coll;
pub mod comm;
pub mod datatype;
pub mod elastic;
pub mod errhandler;
pub mod error;
pub mod file;
pub mod ft;
pub mod group;
pub mod info;
pub mod instance;
pub mod introspect;
pub mod pml;
pub mod request;
pub mod session;
pub mod status;
pub mod topo;
pub mod win;
pub mod world;

pub use comm::{CidOrigin, Comm};
pub use datatype::{MpiScalar, ReduceOp};
pub use elastic::{ElasticComm, PsetUpdate, PsetUpdateKind, PsetWatcher, Rebuild};
pub use errhandler::ErrHandler;
pub use error::{ErrClass, MpiError, Result};
pub use ft::{FailureNotifier, FaultWatcher};
pub use group::MpiGroup;
pub use info::Info;
pub use request::{
    stage, ProgressEngine, ReqSnapshot, Request, SetupRequest, SetupStage, SetupStep,
    DEFAULT_STALL_TICKS,
};
pub use session::{Session, ThreadLevel};
pub use status::Status;
pub use world::World;

/// Wildcard source rank for receives (`MPI_ANY_SOURCE`).
pub const ANY_SOURCE: i32 = -1;
/// Wildcard tag for receives (`MPI_ANY_TAG`).
pub const ANY_TAG: i32 = -1;
