//! Session attribute caching (`MPI_Session_create_keyval` etc.).
//!
//! The Sessions proposal allows keyval creation and attribute caching
//! *before* initialization and requires thread safety throughout (paper
//! §III-B5). Keyvals are process-wide (a global, thread-safe registry —
//! the analog of the C library's static keyval table); attribute values
//! are cached per session.

use crate::error::{ErrClass, MpiError, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An attribute key created with [`Keyval::create`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Keyval(u64);

static NEXT_KEYVAL: AtomicU64 = AtomicU64::new(1);
static LIVE_KEYVALS: Mutex<Vec<u64>> = Mutex::new(Vec::new());

impl Keyval {
    /// `MPI_Session_create_keyval`: callable before any init, thread-safe.
    pub fn create() -> Keyval {
        let id = NEXT_KEYVAL.fetch_add(1, Ordering::Relaxed);
        LIVE_KEYVALS.lock().push(id);
        Keyval(id)
    }

    /// `MPI_Session_free_keyval`. Cached values under this key become
    /// unreadable everywhere.
    pub fn free(self) {
        LIVE_KEYVALS.lock().retain(|k| *k != self.0);
    }

    /// Whether this keyval is still valid.
    pub fn is_valid(&self) -> bool {
        LIVE_KEYVALS.lock().contains(&self.0)
    }
}

/// Per-object attribute store (hangs off each session).
#[derive(Default, Clone)]
pub struct AttrStore {
    map: Arc<Mutex<HashMap<Keyval, u64>>>,
}

impl AttrStore {
    /// Fresh, empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// `MPI_Session_set_attr`.
    pub fn set(&self, key: Keyval, value: u64) -> Result<()> {
        if !key.is_valid() {
            return Err(MpiError::new(ErrClass::Arg, "attribute keyval has been freed"));
        }
        self.map.lock().insert(key, value);
        Ok(())
    }

    /// `MPI_Session_get_attr`: `Ok(None)` when unset.
    pub fn get(&self, key: Keyval) -> Result<Option<u64>> {
        if !key.is_valid() {
            return Err(MpiError::new(ErrClass::Arg, "attribute keyval has been freed"));
        }
        Ok(self.map.lock().get(&key).copied())
    }

    /// `MPI_Session_delete_attr`. Returns whether a value was cached.
    pub fn delete(&self, key: Keyval) -> Result<bool> {
        if !key.is_valid() {
            return Err(MpiError::new(ErrClass::Arg, "attribute keyval has been freed"));
        }
        Ok(self.map.lock().remove(&key).is_some())
    }
}

impl std::fmt::Debug for AttrStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AttrStore({} entries)", self.map.lock().len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyval_lifecycle() {
        let k = Keyval::create();
        assert!(k.is_valid());
        let store = AttrStore::new();
        store.set(k, 42).unwrap();
        assert_eq!(store.get(k).unwrap(), Some(42));
        assert!(store.delete(k).unwrap());
        assert_eq!(store.get(k).unwrap(), None);
        k.free();
        assert!(!k.is_valid());
        assert!(store.set(k, 1).is_err());
        assert!(store.get(k).is_err());
    }

    #[test]
    fn distinct_keyvals_do_not_collide() {
        let a = Keyval::create();
        let b = Keyval::create();
        assert_ne!(a, b);
        let store = AttrStore::new();
        store.set(a, 1).unwrap();
        store.set(b, 2).unwrap();
        assert_eq!(store.get(a).unwrap(), Some(1));
        assert_eq!(store.get(b).unwrap(), Some(2));
        a.free();
        b.free();
    }

    #[test]
    fn concurrent_keyval_creation_is_safe() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| (0..50).map(|_| Keyval::create()).collect::<Vec<_>>()))
            .collect();
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        let mut ids: Vec<_> = all.iter().map(|k| k.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 400, "keyvals must be unique across threads");
        for k in all {
            k.free();
        }
    }
}
