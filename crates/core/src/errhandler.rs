//! MPI error handlers.
//!
//! Creatable before initialization (paper §III-B5). A handler decides what
//! happens when an MPI call fails on an object bound to it: abort the
//! process, return the error to the caller, or run a user callback.

use crate::error::MpiError;
use std::sync::Arc;

/// Callback type for custom error handlers.
pub type ErrCallback = dyn Fn(&MpiError) + Send + Sync;

/// An MPI error handler (`MPI_Errhandler`).
#[derive(Clone)]
pub enum ErrHandler {
    /// `MPI_ERRORS_ARE_FATAL`: panic the simulated process (the analog of
    /// aborting the job; the launcher reports it as a rank panic).
    Abort,
    /// `MPI_ERRORS_RETURN`: surface the error to the caller.
    Return,
    /// User-defined handler: the callback runs, then the error is returned
    /// (matching the common "log and continue" usage).
    Custom(Arc<ErrCallback>),
}

impl ErrHandler {
    /// Create a custom handler from a callback.
    pub fn custom(f: impl Fn(&MpiError) + Send + Sync + 'static) -> Self {
        ErrHandler::Custom(Arc::new(f))
    }

    /// Apply this handler to `err`: panics for [`ErrHandler::Abort`],
    /// otherwise hands the error back.
    pub fn apply(&self, err: MpiError) -> MpiError {
        match self {
            ErrHandler::Abort => panic!("MPI_ERRORS_ARE_FATAL: {err}"),
            ErrHandler::Return => err,
            ErrHandler::Custom(f) => {
                f(&err);
                err
            }
        }
    }

    /// Route a result through this handler.
    pub fn check<T>(&self, res: crate::error::Result<T>) -> crate::error::Result<T> {
        res.map_err(|e| self.apply(e))
    }
}

impl std::fmt::Debug for ErrHandler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ErrHandler::Abort => write!(f, "ErrHandler::Abort"),
            ErrHandler::Return => write!(f, "ErrHandler::Return"),
            ErrHandler::Custom(_) => write!(f, "ErrHandler::Custom(..)"),
        }
    }
}

impl Default for ErrHandler {
    /// The Sessions proposal default for sessions is `MPI_ERRORS_RETURN`
    /// (WPM keeps `MPI_ERRORS_ARE_FATAL` on `MPI_COMM_WORLD`).
    fn default() -> Self {
        ErrHandler::Return
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ErrClass;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn boom() -> MpiError {
        MpiError::new(ErrClass::Other, "boom")
    }

    #[test]
    fn return_handler_passes_through() {
        let e = ErrHandler::Return.apply(boom());
        assert_eq!(e.class, ErrClass::Other);
    }

    #[test]
    #[should_panic(expected = "MPI_ERRORS_ARE_FATAL")]
    fn abort_handler_panics() {
        ErrHandler::Abort.apply(boom());
    }

    #[test]
    fn custom_handler_runs_callback_then_returns() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = {
            let hits = hits.clone();
            ErrHandler::custom(move |_| {
                hits.fetch_add(1, Ordering::SeqCst);
            })
        };
        let e = h.apply(boom());
        assert_eq!(e.message, "boom");
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn check_routes_ok_untouched() {
        let ok: crate::error::Result<u32> = Ok(5);
        assert_eq!(ErrHandler::Return.check(ok).unwrap(), 5);
    }
}
