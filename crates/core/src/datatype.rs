//! MPI datatypes and reduction operators.
//!
//! Typed message payloads are (de)serialized to little-endian bytes via the
//! [`MpiScalar`] trait — the analog of the basic MPI datatypes. Reductions
//! are expressed with [`ReduceOp`] and dispatched per scalar type.

use crate::error::{ErrClass, MpiError, Result};

/// A fixed-size scalar exchangeable through MPI (basic datatype analog).
pub trait MpiScalar: Copy + PartialEq + std::fmt::Debug + Send + 'static {
    /// Size in bytes on the wire.
    const WIDTH: usize;
    /// Serialize into `out` (exactly `WIDTH` bytes).
    fn write_le(&self, out: &mut [u8]);
    /// Deserialize from `inp` (exactly `WIDTH` bytes).
    fn read_le(inp: &[u8]) -> Self;
    /// Combine two values under a reduction operator.
    fn combine(op: ReduceOp, a: Self, b: Self) -> Result<Self>;
}

/// Reduction operators (`MPI_Op` analog).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// `MPI_SUM`
    Sum,
    /// `MPI_PROD`
    Prod,
    /// `MPI_MAX`
    Max,
    /// `MPI_MIN`
    Min,
    /// `MPI_LAND` (logical and; nonzero = true)
    LAnd,
    /// `MPI_LOR`
    LOr,
    /// `MPI_BAND` (integers only)
    BAnd,
    /// `MPI_BOR` (integers only)
    BOr,
}

macro_rules! impl_scalar_int {
    ($t:ty, $w:expr) => {
        impl MpiScalar for $t {
            const WIDTH: usize = $w;
            fn write_le(&self, out: &mut [u8]) {
                out[..$w].copy_from_slice(&self.to_le_bytes());
            }
            fn read_le(inp: &[u8]) -> Self {
                <$t>::from_le_bytes(inp[..$w].try_into().expect("width checked"))
            }
            fn combine(op: ReduceOp, a: Self, b: Self) -> Result<Self> {
                Ok(match op {
                    ReduceOp::Sum => a.wrapping_add(b),
                    ReduceOp::Prod => a.wrapping_mul(b),
                    ReduceOp::Max => a.max(b),
                    ReduceOp::Min => a.min(b),
                    ReduceOp::LAnd => ((a != 0) && (b != 0)) as $t,
                    ReduceOp::LOr => ((a != 0) || (b != 0)) as $t,
                    ReduceOp::BAnd => a & b,
                    ReduceOp::BOr => a | b,
                })
            }
        }
    };
}

macro_rules! impl_scalar_float {
    ($t:ty, $w:expr) => {
        impl MpiScalar for $t {
            const WIDTH: usize = $w;
            fn write_le(&self, out: &mut [u8]) {
                out[..$w].copy_from_slice(&self.to_le_bytes());
            }
            fn read_le(inp: &[u8]) -> Self {
                <$t>::from_le_bytes(inp[..$w].try_into().expect("width checked"))
            }
            fn combine(op: ReduceOp, a: Self, b: Self) -> Result<Self> {
                Ok(match op {
                    ReduceOp::Sum => a + b,
                    ReduceOp::Prod => a * b,
                    ReduceOp::Max => a.max(b),
                    ReduceOp::Min => a.min(b),
                    ReduceOp::LAnd => (((a != 0.0) && (b != 0.0)) as u8) as $t,
                    ReduceOp::LOr => (((a != 0.0) || (b != 0.0)) as u8) as $t,
                    ReduceOp::BAnd | ReduceOp::BOr => {
                        return Err(MpiError::new(
                            ErrClass::Arg,
                            "bitwise reduction on floating-point datatype",
                        ))
                    }
                })
            }
        }
    };
}

impl_scalar_int!(u8, 1);
impl_scalar_int!(i32, 4);
impl_scalar_int!(u32, 4);
impl_scalar_int!(i64, 8);
impl_scalar_int!(u64, 8);
impl_scalar_float!(f32, 4);
impl_scalar_float!(f64, 8);

/// Serialize a slice of scalars to a byte vector.
pub fn to_bytes<T: MpiScalar>(data: &[T]) -> Vec<u8> {
    let mut out = vec![0u8; data.len() * T::WIDTH];
    for (i, v) in data.iter().enumerate() {
        v.write_le(&mut out[i * T::WIDTH..]);
    }
    out
}

/// Deserialize a byte slice into scalars. Errors on length mismatch
/// (the `MPI_ERR_TRUNCATE`-adjacent datatype mismatch case).
pub fn from_bytes<T: MpiScalar>(bytes: &[u8]) -> Result<Vec<T>> {
    if !bytes.len().is_multiple_of(T::WIDTH) {
        return Err(MpiError::new(
            ErrClass::Arg,
            format!("byte length {} not a multiple of datatype width {}", bytes.len(), T::WIDTH),
        ));
    }
    Ok(bytes.chunks_exact(T::WIDTH).map(T::read_le).collect())
}

/// Elementwise reduction: `acc[i] = combine(op, acc[i], inp[i])`.
pub fn reduce_into<T: MpiScalar>(op: ReduceOp, acc: &mut [T], inp: &[T]) -> Result<()> {
    if acc.len() != inp.len() {
        return Err(MpiError::new(ErrClass::Arg, "reduction length mismatch"));
    }
    for (a, b) in acc.iter_mut().zip(inp) {
        *a = T::combine(op, *a, *b)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_every_type() {
        assert_eq!(from_bytes::<i32>(&to_bytes(&[1i32, -2, 3])).unwrap(), vec![1, -2, 3]);
        assert_eq!(from_bytes::<u64>(&to_bytes(&[u64::MAX])).unwrap(), vec![u64::MAX]);
        assert_eq!(from_bytes::<f64>(&to_bytes(&[1.5f64, -0.25])).unwrap(), vec![1.5, -0.25]);
        assert_eq!(from_bytes::<u8>(&to_bytes(&[7u8])).unwrap(), vec![7]);
        assert_eq!(from_bytes::<f32>(&to_bytes(&[2.5f32])).unwrap(), vec![2.5]);
    }

    #[test]
    fn from_bytes_rejects_misaligned_length() {
        assert!(from_bytes::<i32>(&[0u8; 5]).is_err());
        assert!(from_bytes::<i32>(&[0u8; 8]).is_ok());
    }

    #[test]
    fn integer_reductions() {
        assert_eq!(i32::combine(ReduceOp::Sum, 2, 3).unwrap(), 5);
        assert_eq!(i32::combine(ReduceOp::Prod, 2, 3).unwrap(), 6);
        assert_eq!(i32::combine(ReduceOp::Max, 2, 3).unwrap(), 3);
        assert_eq!(i32::combine(ReduceOp::Min, 2, 3).unwrap(), 2);
        assert_eq!(i32::combine(ReduceOp::LAnd, 2, 0).unwrap(), 0);
        assert_eq!(i32::combine(ReduceOp::LOr, 2, 0).unwrap(), 1);
        assert_eq!(u32::combine(ReduceOp::BAnd, 0b110, 0b011).unwrap(), 0b010);
        assert_eq!(u32::combine(ReduceOp::BOr, 0b110, 0b011).unwrap(), 0b111);
    }

    #[test]
    fn float_reductions_and_bitwise_rejection() {
        assert_eq!(f64::combine(ReduceOp::Sum, 1.5, 2.5).unwrap(), 4.0);
        assert_eq!(f64::combine(ReduceOp::Max, 1.5, 2.5).unwrap(), 2.5);
        assert!(f64::combine(ReduceOp::BAnd, 1.0, 2.0).is_err());
        assert!(f32::combine(ReduceOp::BOr, 1.0, 2.0).is_err());
    }

    #[test]
    fn wrapping_sum_does_not_panic() {
        assert_eq!(i32::combine(ReduceOp::Sum, i32::MAX, 1).unwrap(), i32::MIN);
    }

    #[test]
    fn reduce_into_elementwise() {
        let mut acc = vec![1i64, 10, 100];
        reduce_into(ReduceOp::Sum, &mut acc, &[1, 2, 3]).unwrap();
        assert_eq!(acc, vec![2, 12, 103]);
        assert!(reduce_into(ReduceOp::Sum, &mut acc, &[1]).is_err());
    }
}
