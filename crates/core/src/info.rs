//! MPI_Info objects.
//!
//! Per the Sessions proposal (paper §III-B5), info objects must be fully
//! usable *before* any MPI initialization call and must be thread-safe
//! regardless of the eventual thread-support level — hence the always-on
//! internal lock (the prototype "always enables" these locks; they are off
//! the communication critical path).

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A thread-safe string key/value dictionary (`MPI_Info`).
#[derive(Clone, Default)]
pub struct Info {
    map: Arc<RwLock<BTreeMap<String, String>>>,
}

impl Info {
    /// `MPI_Info_create`.
    pub fn new() -> Self {
        Self::default()
    }

    /// The null info object (`MPI_INFO_NULL`): empty and shareable.
    pub fn null() -> Self {
        Self::default()
    }

    /// `MPI_Info_set`.
    pub fn set(&self, key: &str, value: &str) {
        self.map.write().insert(key.to_owned(), value.to_owned());
    }

    /// `MPI_Info_get`.
    pub fn get(&self, key: &str) -> Option<String> {
        self.map.read().get(key).cloned()
    }

    /// `MPI_Info_delete`. Returns whether the key existed.
    pub fn delete(&self, key: &str) -> bool {
        self.map.write().remove(key).is_some()
    }

    /// `MPI_Info_get_nkeys`.
    pub fn nkeys(&self) -> usize {
        self.map.read().len()
    }

    /// `MPI_Info_get_nthkey` (keys are sorted, as iteration order must be
    /// stable).
    pub fn nth_key(&self, n: usize) -> Option<String> {
        self.map.read().keys().nth(n).cloned()
    }

    /// `MPI_Info_dup`: a deep copy (mutations do not alias).
    pub fn dup(&self) -> Self {
        Self { map: Arc::new(RwLock::new(self.map.read().clone())) }
    }

    /// Typed convenience: parse a value as an integer.
    pub fn get_int(&self, key: &str) -> Option<i64> {
        self.get(key).and_then(|v| v.parse().ok())
    }

    /// Typed convenience: parse a value as a boolean ("true"/"false").
    pub fn get_bool(&self, key: &str) -> Option<bool> {
        self.get(key).and_then(|v| v.parse().ok())
    }
}

impl std::fmt::Debug for Info {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.map.read().iter()).finish()
    }
}

/// Well-known info keys understood by this implementation.
pub mod keys {
    /// Eager/rendezvous protocol switchover size in bytes (PML tuning).
    pub const EAGER_LIMIT: &str = "mpi_eager_limit";
    /// Force the legacy consensus CID algorithm even when exCIDs are
    /// available ("thread_level" of CID selection; used by benchmarks to
    /// compare both paths).
    pub const FORCE_CONSENSUS_CID: &str = "mpi_force_consensus_cid";
    /// `mpi_thread_support_level` info key on sessions (per the proposal).
    pub const THREAD_LEVEL: &str = "thread_level";
    /// Session initialization mode: `"eager"` (default; endpoints known up
    /// front) or `"lazy"` (fence-free init with on-demand peer resolution;
    /// see DESIGN.md §14). Absent, the universe-wide `pmix.init_mode` cvar
    /// (seeded from the `INIT_MODE` environment variable) decides.
    pub const INIT_MODE: &str = "init_mode";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_delete() {
        let info = Info::new();
        assert_eq!(info.nkeys(), 0);
        info.set("a", "1");
        info.set("b", "2");
        assert_eq!(info.get("a").as_deref(), Some("1"));
        assert_eq!(info.nkeys(), 2);
        assert!(info.delete("a"));
        assert!(!info.delete("a"));
        assert_eq!(info.get("a"), None);
    }

    #[test]
    fn nth_key_is_sorted() {
        let info = Info::new();
        info.set("zeta", "");
        info.set("alpha", "");
        assert_eq!(info.nth_key(0).as_deref(), Some("alpha"));
        assert_eq!(info.nth_key(1).as_deref(), Some("zeta"));
        assert_eq!(info.nth_key(2), None);
    }

    #[test]
    fn dup_is_deep() {
        let info = Info::new();
        info.set("k", "v");
        let copy = info.dup();
        info.set("k", "changed");
        assert_eq!(copy.get("k").as_deref(), Some("v"));
    }

    #[test]
    fn clone_aliases_but_dup_does_not() {
        let info = Info::new();
        let alias = info.clone();
        info.set("x", "1");
        assert_eq!(alias.get("x").as_deref(), Some("1"));
    }

    #[test]
    fn typed_getters() {
        let info = Info::new();
        info.set("n", "42");
        info.set("flag", "true");
        info.set("junk", "xyz");
        assert_eq!(info.get_int("n"), Some(42));
        assert_eq!(info.get_bool("flag"), Some(true));
        assert_eq!(info.get_int("junk"), None);
        assert_eq!(info.get_int("missing"), None);
    }

    #[test]
    fn info_is_usable_from_many_threads_pre_init() {
        // The Sessions proposal requires info calls to be thread-safe even
        // before any initialization; exercise concurrent mutation.
        let info = Info::new();
        let mut handles = Vec::new();
        for t in 0..8 {
            let info = info.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    info.set(&format!("k{t}-{i}"), "v");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(info.nkeys(), 800);
    }
}
