//! Collective operations, built on the communicator's point-to-point
//! channels with a reserved (negative) internal tag space.
//!
//! Algorithms are the textbook ones Open MPI's `coll/base` uses at these
//! scales: dissemination barrier, binomial broadcast/reduce, gather+bcast
//! allgather, pairwise-exchange alltoall, linear scan. `MPI_Ibarrier` is a
//! state machine driven by `Request::test`/`wait` — exactly what the
//! paper's 2MESH integration loops over (`MPI_Ibarrier` + `nanosleep`) to
//! emulate low-perturbation quiescence (§IV-E).

use crate::comm::Comm;
use crate::datatype::{self, MpiScalar, ReduceOp};
use crate::error::{ErrClass, MpiError, Result};
use crate::request::{ReqInner, Request};
use bytes::Bytes;

/// Internal collective op codes (folded into the reserved tag space).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum CollOp {
    Barrier = 0,
    Bcast = 1,
    Reduce = 2,
    Alltoall = 4,
    Gather = 5,
    Scatter = 6,
    Scan = 7,
    Subgroup = 8,
    Ibarrier = 9,
}

/// Build an internal (negative) tag: 4 bits of op, 26 bits of salt.
fn internal_tag(op: CollOp, salt: u32) -> i32 {
    -(1 + (((op as i32) & 0xF) << 26) + ((salt & 0x03FF_FFFF) as i32))
}

fn next_salt(comm: &Comm) -> u32 {
    comm.inner.coll_seq.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

// ---------------------------------------------------------------------
// Barrier
// ---------------------------------------------------------------------

/// `MPI_Barrier`: dissemination algorithm, ⌈log2 n⌉ rounds.
pub fn barrier(comm: &Comm) -> Result<()> {
    let n = comm.size();
    if n <= 1 {
        return Ok(());
    }
    let me = comm.rank();
    let salt = next_salt(comm);
    let mut round = 0u32;
    let mut dist = 1u32;
    while dist < n {
        let tag = internal_tag(CollOp::Barrier, salt.wrapping_add(round) & 0xFFFF | (salt << 16));
        let to = (me + dist) % n;
        let from = (me + n - dist) % n;
        let rreq = comm.irecv_internal(Some(from), Some(tag))?;
        let sreq = comm.isend_internal(to, tag, Bytes::new())?;
        rreq.wait()?;
        sreq.wait()?;
        dist *= 2;
        round += 1;
    }
    Ok(())
}

/// `MPI_Ibarrier`: the dissemination barrier as a poll-driven state
/// machine.
pub fn ibarrier(comm: &Comm) -> Result<Request> {
    let n = comm.size();
    let pml = comm.process().pml().clone();
    if n <= 1 {
        let inner = ReqInner::new(crate::request::ReqKind::Coll);
        inner.complete_send(0);
        return Ok(Request::new(inner, pml));
    }
    let me = comm.rank();
    let salt = next_salt(comm);
    let comm2 = comm.clone();
    let mut dist = 1u32;
    let mut round = 0u32;
    let mut pending: Option<(Request, Request)> = None;
    let hook = Box::new(move || -> Result<bool> {
        loop {
            if dist >= n {
                return Ok(true);
            }
            if pending.is_none() {
                let tag = internal_tag(
                    CollOp::Ibarrier,
                    salt.wrapping_add(round) & 0xFFFF | (salt << 16),
                );
                let to = (me + dist) % n;
                let from = (me + n - dist) % n;
                let rreq = comm2.irecv_internal(Some(from), Some(tag))?;
                let sreq = comm2.isend_internal(to, tag, Bytes::new())?;
                pending = Some((rreq, sreq));
            }
            let (r, s) = pending.as_mut().expect("just set");
            if r.test()? && s.test()? {
                pending = None;
                dist *= 2;
                round += 1;
                continue;
            }
            return Ok(false);
        }
    });
    Ok(Request::new(ReqInner::with_hook(hook), pml))
}

// ---------------------------------------------------------------------
// Rooted collectives
// ---------------------------------------------------------------------

/// `MPI_Bcast`: binomial tree from `root`. Root passes the payload; all
/// callers receive the broadcast value.
pub fn bcast_t<T: MpiScalar>(comm: &Comm, root: u32, data: &[T]) -> Result<Vec<T>> {
    let bytes = bcast_bytes(comm, root, datatype::to_bytes(data))?;
    datatype::from_bytes(&bytes)
}

/// Byte-level broadcast.
pub fn bcast_bytes(comm: &Comm, root: u32, data: Vec<u8>) -> Result<Vec<u8>> {
    let n = comm.size();
    if root >= n {
        return Err(MpiError::new(ErrClass::Rank, "bcast root outside communicator"));
    }
    if n == 1 {
        return Ok(data);
    }
    let salt = next_salt(comm);
    let tag = internal_tag(CollOp::Bcast, salt);
    // Rotate so the root is virtual rank 0.
    let me = comm.rank();
    let vrank = (me + n - root) % n;
    let mut payload: Option<Vec<u8>> = if me == root { Some(data) } else { None };
    // Standard binomial tree: receive from the parent across the lowest
    // set bit of vrank, then forward to children across the bits below it.
    let mut mask = 1u32;
    if vrank != 0 {
        while mask < n {
            if vrank & mask != 0 {
                let parent_v = vrank - mask;
                let parent = (parent_v + root) % n;
                let req = comm.irecv_internal(Some(parent), Some(tag))?;
                let (bytes, _) = req.wait_data()?;
                payload = Some(bytes.to_vec());
                break;
            }
            mask <<= 1;
        }
    } else {
        while mask < n {
            mask <<= 1;
        }
    }
    let have = payload.expect("received or root");
    let mut m = mask >> 1;
    while m > 0 {
        let child_v = vrank + m;
        if child_v < n {
            let child = (child_v + root) % n;
            let req = comm.isend_internal(child, tag, Bytes::from(have.clone()))?;
            req.wait()?;
        }
        m >>= 1;
    }
    Ok(have)
}

/// `MPI_Reduce`: binomial fold toward `root`. Returns `Some(result)` at the
/// root, `None` elsewhere.
pub fn reduce_t<T: MpiScalar>(
    comm: &Comm,
    root: u32,
    op: ReduceOp,
    data: &[T],
) -> Result<Option<Vec<T>>> {
    let n = comm.size();
    if root >= n {
        return Err(MpiError::new(ErrClass::Rank, "reduce root outside communicator"));
    }
    let salt = next_salt(comm);
    let tag = internal_tag(CollOp::Reduce, salt);
    let me = comm.rank();
    let vrank = (me + n - root) % n;
    let mut acc: Vec<T> = data.to_vec();
    let mut mask = 1u32;
    while mask < n {
        if vrank & mask != 0 {
            // Send to the partner below and exit.
            let dst_v = vrank & !mask;
            let dst = (dst_v + root) % n;
            let req = comm.isend_internal(dst, tag, Bytes::from(datatype::to_bytes(&acc)))?;
            req.wait()?;
            return Ok(None);
        }
        let src_v = vrank | mask;
        if src_v < n {
            let src = (src_v + root) % n;
            let req = comm.irecv_internal(Some(src), Some(tag))?;
            let (bytes, _) = req.wait_data()?;
            let theirs: Vec<T> = datatype::from_bytes(&bytes)?;
            datatype::reduce_into(op, &mut acc, &theirs)?;
        }
        mask <<= 1;
    }
    Ok(Some(acc))
}

/// `MPI_Allreduce`: reduce to rank 0, then broadcast.
pub fn allreduce_t<T: MpiScalar>(comm: &Comm, op: ReduceOp, data: &[T]) -> Result<Vec<T>> {
    let reduced = reduce_t(comm, 0, op, data)?;
    bcast_t(comm, 0, &reduced.unwrap_or_default())
}

/// `MPI_Gather` (equal contribution lengths): linear to `root`.
/// Returns `Some(concatenated)` at the root.
pub fn gather_t<T: MpiScalar>(comm: &Comm, root: u32, data: &[T]) -> Result<Option<Vec<T>>> {
    let n = comm.size();
    if root >= n {
        return Err(MpiError::new(ErrClass::Rank, "gather root outside communicator"));
    }
    let salt = next_salt(comm);
    let tag = internal_tag(CollOp::Gather, salt);
    let me = comm.rank();
    if me == root {
        let mut out: Vec<Vec<T>> = vec![Vec::new(); n as usize];
        out[me as usize] = data.to_vec();
        let mut reqs = Vec::new();
        for r in 0..n {
            if r != me {
                reqs.push((r, comm.irecv_internal(Some(r), Some(tag))?));
            }
        }
        for (r, req) in reqs {
            let (bytes, _) = req.wait_data()?;
            out[r as usize] = datatype::from_bytes(&bytes)?;
        }
        Ok(Some(out.concat()))
    } else {
        let req = comm.isend_internal(root, tag, Bytes::from(datatype::to_bytes(data)))?;
        req.wait()?;
        Ok(None)
    }
}

/// `MPI_Scatter` (equal chunks): root passes `Some(all)`, everyone gets
/// their chunk.
pub fn scatter_t<T: MpiScalar>(comm: &Comm, root: u32, data: Option<&[T]>) -> Result<Vec<T>> {
    let n = comm.size();
    if root >= n {
        return Err(MpiError::new(ErrClass::Rank, "scatter root outside communicator"));
    }
    let salt = next_salt(comm);
    let tag = internal_tag(CollOp::Scatter, salt);
    let me = comm.rank();
    if me == root {
        let all = data.ok_or_else(|| MpiError::new(ErrClass::Arg, "scatter root needs data"))?;
        if all.len() % n as usize != 0 {
            return Err(MpiError::new(ErrClass::Arg, "scatter data not divisible by size"));
        }
        let chunk = all.len() / n as usize;
        for r in 0..n {
            if r != me {
                let part = &all[r as usize * chunk..(r as usize + 1) * chunk];
                let req = comm.isend_internal(r, tag, Bytes::from(datatype::to_bytes(part)))?;
                req.wait()?;
            }
        }
        Ok(all[me as usize * chunk..(me as usize + 1) * chunk].to_vec())
    } else {
        let req = comm.irecv_internal(Some(root), Some(tag))?;
        let (bytes, _) = req.wait_data()?;
        datatype::from_bytes(&bytes)
    }
}

// ---------------------------------------------------------------------
// All-to-all style
// ---------------------------------------------------------------------

/// `MPI_Allgather` (equal contribution lengths): gather to 0 + bcast.
pub fn allgather_t<T: MpiScalar>(comm: &Comm, data: &[T]) -> Result<Vec<T>> {
    let gathered = gather_t(comm, 0, data)?;
    bcast_t(comm, 0, &gathered.unwrap_or_default())
}

/// `MPI_Alltoall` (equal chunks): pairwise exchange, n-1 rounds of
/// sendrecv.
pub fn alltoall_t<T: MpiScalar>(comm: &Comm, data: &[T]) -> Result<Vec<T>> {
    let n = comm.size() as usize;
    if !data.len().is_multiple_of(n) {
        return Err(MpiError::new(ErrClass::Arg, "alltoall data not divisible by size"));
    }
    let chunk = data.len() / n;
    let me = comm.rank() as usize;
    let salt = next_salt(comm);
    let tag = internal_tag(CollOp::Alltoall, salt);
    let mut out = vec![data[me * chunk..(me + 1) * chunk].to_vec()];
    out.resize(n, Vec::new());
    // out[k] will hold the chunk received *from* rank (me - ... ) — build
    // by absolute source rank below instead.
    let mut slots: Vec<Vec<T>> = vec![Vec::new(); n];
    slots[me] = data[me * chunk..(me + 1) * chunk].to_vec();
    for round in 1..n {
        let dst = (me + round) % n;
        let src = (me + n - round) % n;
        let send_part = &data[dst * chunk..(dst + 1) * chunk];
        let rreq = comm.irecv_internal(Some(src as u32), Some(tag))?;
        let sreq =
            comm.isend_internal(dst as u32, tag, Bytes::from(datatype::to_bytes(send_part)))?;
        let (bytes, _) = rreq.wait_data()?;
        sreq.wait()?;
        slots[src] = datatype::from_bytes(&bytes)?;
    }
    Ok(slots.concat())
}

/// `MPI_Scan` (inclusive prefix reduction): linear chain.
pub fn scan_t<T: MpiScalar>(comm: &Comm, op: ReduceOp, data: &[T]) -> Result<Vec<T>> {
    let n = comm.size();
    let me = comm.rank();
    let salt = next_salt(comm);
    let tag = internal_tag(CollOp::Scan, salt);
    let mut acc = data.to_vec();
    if me > 0 {
        let req = comm.irecv_internal(Some(me - 1), Some(tag))?;
        let (bytes, _) = req.wait_data()?;
        let prefix: Vec<T> = datatype::from_bytes(&bytes)?;
        // acc = prefix ⊕ mine (order matters for non-commutative ops).
        let mut combined = prefix;
        datatype::reduce_into(op, &mut combined, &acc)?;
        acc = combined;
    }
    if me + 1 < n {
        let req = comm.isend_internal(me + 1, tag, Bytes::from(datatype::to_bytes(&acc)))?;
        req.wait()?;
    }
    Ok(acc)
}

// ---------------------------------------------------------------------
// Subgroup primitives (CID consensus machinery)
// ---------------------------------------------------------------------

/// Reduction flavor for [`subgroup_allreduce_u32`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubgroupOp {
    /// Maximum.
    Max,
    /// Minimum.
    Min,
    /// Sum.
    Sum,
}

/// An allreduce over a *subset* of a communicator's ranks, used by the CID
/// consensus algorithm (which must agree among exactly the participating
/// processes, e.g. `MPI_Comm_create_group`). `participants` must be
/// identical (same order) at every participant and contain the caller.
pub fn subgroup_allreduce_u32(
    comm: &Comm,
    participants: &[u32],
    value: u32,
    op: SubgroupOp,
) -> Result<u32> {
    let me = comm.rank();
    let my_pos = participants
        .iter()
        .position(|r| *r == me)
        .ok_or_else(|| MpiError::new(ErrClass::Group, "caller not among participants"))?;
    if participants.len() == 1 {
        return Ok(value);
    }
    // Tag salt: hash of the participant list, so different subgroups sharing
    // a member use disjoint tag streams. Sequential ops on the same subgroup
    // may share a tag; per-pair FIFO keeps them correctly paired.
    let mut h: u32 = 0x811c9dc5;
    for p in participants {
        h ^= *p;
        h = h.wrapping_mul(0x0100_0193);
    }
    let tag = internal_tag(CollOp::Subgroup, h);
    let lead = participants[0];
    if my_pos == 0 {
        let mut acc = value;
        for _ in 1..participants.len() {
            let req = comm.irecv_internal(None, Some(tag))?;
            let (bytes, _) = req.wait_data()?;
            let v: Vec<u32> = datatype::from_bytes(&bytes)?;
            acc = match op {
                SubgroupOp::Max => acc.max(v[0]),
                SubgroupOp::Min => acc.min(v[0]),
                SubgroupOp::Sum => acc.wrapping_add(v[0]),
            };
        }
        for p in &participants[1..] {
            let req = comm.isend_internal(*p, tag, Bytes::from(datatype::to_bytes(&[acc])))?;
            req.wait()?;
        }
        Ok(acc)
    } else {
        let req = comm.isend_internal(lead, tag, Bytes::from(datatype::to_bytes(&[value])))?;
        req.wait()?;
        let req = comm.irecv_internal(Some(lead), Some(tag))?;
        let (bytes, _) = req.wait_data()?;
        let v: Vec<u32> = datatype::from_bytes(&bytes)?;
        Ok(v[0])
    }
}

// ---------------------------------------------------------------------
// Variable-count and prefix variants
// ---------------------------------------------------------------------

/// `MPI_Gatherv` analog with implicit counts: each rank contributes a
/// slice of any length; the root receives them in rank order.
pub fn gatherv_t<T: MpiScalar>(
    comm: &Comm,
    root: u32,
    data: &[T],
) -> Result<Option<Vec<Vec<T>>>> {
    let n = comm.size();
    if root >= n {
        return Err(MpiError::new(ErrClass::Rank, "gatherv root outside communicator"));
    }
    let salt = next_salt(comm);
    let tag = internal_tag(CollOp::Gather, salt ^ 0x2000_0000);
    let me = comm.rank();
    if me == root {
        let mut out: Vec<Vec<T>> = vec![Vec::new(); n as usize];
        out[me as usize] = data.to_vec();
        let mut reqs = Vec::new();
        for r in 0..n {
            if r != me {
                reqs.push((r, comm.irecv_internal(Some(r), Some(tag))?));
            }
        }
        for (r, req) in reqs {
            let (bytes, _) = req.wait_data()?;
            out[r as usize] = datatype::from_bytes(&bytes)?;
        }
        Ok(Some(out))
    } else {
        let req = comm.isend_internal(root, tag, Bytes::from(datatype::to_bytes(data)))?;
        req.wait()?;
        Ok(None)
    }
}

/// `MPI_Allgatherv` analog: every rank receives every contribution,
/// rank-ordered, preserving per-rank lengths.
pub fn allgatherv_t<T: MpiScalar>(comm: &Comm, data: &[T]) -> Result<Vec<Vec<T>>> {
    let gathered = gatherv_t(comm, 0, data)?;
    // Broadcast lengths, then the flattened payload.
    let (lens, flat): (Vec<u64>, Vec<T>) = match gathered {
        Some(parts) => {
            let lens = parts.iter().map(|p| p.len() as u64).collect();
            (lens, parts.concat())
        }
        None => (Vec::new(), Vec::new()),
    };
    let lens = bcast_t(comm, 0, &lens)?;
    let flat = bcast_t(comm, 0, &flat)?;
    let mut out = Vec::with_capacity(lens.len());
    let mut off = 0usize;
    for l in lens {
        let l = l as usize;
        out.push(flat[off..off + l].to_vec());
        off += l;
    }
    Ok(out)
}

/// `MPI_Exscan` (exclusive prefix reduction): rank 0 receives `None`;
/// rank r receives the reduction of ranks 0..r.
pub fn exscan_t<T: MpiScalar>(comm: &Comm, op: ReduceOp, data: &[T]) -> Result<Option<Vec<T>>> {
    let n = comm.size();
    let me = comm.rank();
    let salt = next_salt(comm);
    let tag = internal_tag(CollOp::Scan, salt ^ 0x2000_0000);
    // Inclusive prefix of my predecessor = my exclusive prefix; compute by
    // a linear chain carrying the running inclusive prefix.
    let mut incoming: Option<Vec<T>> = None;
    if me > 0 {
        let req = comm.irecv_internal(Some(me - 1), Some(tag))?;
        let (bytes, _) = req.wait_data()?;
        incoming = Some(datatype::from_bytes(&bytes)?);
    }
    if me + 1 < n {
        // Forward the inclusive prefix through me.
        let mut inclusive = incoming.clone().unwrap_or_default();
        if inclusive.is_empty() {
            inclusive = data.to_vec();
        } else {
            datatype::reduce_into(op, &mut inclusive, data)?;
        }
        let req = comm.isend_internal(me + 1, tag, Bytes::from(datatype::to_bytes(&inclusive)))?;
        req.wait()?;
    }
    Ok(incoming)
}

/// `MPI_Reduce_scatter_block`: reduce elementwise across ranks, then
/// scatter equal blocks — rank r gets block r of the reduction.
pub fn reduce_scatter_block_t<T: MpiScalar>(
    comm: &Comm,
    op: ReduceOp,
    data: &[T],
) -> Result<Vec<T>> {
    let n = comm.size() as usize;
    if !data.len().is_multiple_of(n) {
        return Err(MpiError::new(
            ErrClass::Arg,
            "reduce_scatter_block data not divisible by size",
        ));
    }
    let reduced = reduce_t(comm, 0, op, data)?;
    scatter_t(comm, 0, reduced.as_deref())
}
