//! Request objects (`MPI_Request`): completion tracking for non-blocking
//! operations, plus the poll-hook mechanism that implements non-blocking
//! collectives (`MPI_Ibarrier`) as state machines driven by `test`/`wait`.
//!
//! # The setup engine (nonblocking session/comm construction)
//!
//! [`SetupRequest`] is the request type behind the `i`-variants of the
//! construction API (`Session::init_i`, `Session::igroup_from_pset`,
//! `Comm::icomm_create_from_group`, `Comm::idup`, `Comm::idup_via_group`).
//! A setup request is a **multi-stage state machine**: each stage is a
//! [`SetupStage`] whose `poll` either reports [`SetupStep::Pending`],
//! hands over to the next stage ([`SetupStep::Next`]), or finishes with
//! the constructed object ([`SetupStep::Done`]). Issuing the request runs
//! the first stage synchronously — that is what lets N concurrent
//! constructions *pipeline*: every request's PMIx fan-in (and therefore
//! its PGCID demand) is on the wire before the first `wait`, so the
//! per-server PGCID coalescer batches them into fewer `pgcid.request`
//! round trips than N blocking calls would pay.
//!
//! Progress is driven three ways, all equivalent:
//! * `test()` — one step, the caller's thread;
//! * `wait()` — steps until terminal, parking on the stage's own wake
//!   source between polls (a blocking variant is exactly
//!   `i`-variant + `wait`);
//! * [`ProgressEngine::progress`] — the per-process engine sweeps every
//!   registered in-flight request once (explicit `MPI_Progress` analog,
//!   what the test harness single-steps).
//!
//! **Cancellation is collective** (like the constructions themselves):
//! dropping an in-flight `SetupRequest` first drives it to a terminal
//! state and then runs the release action — e.g. a cancelled
//! `icomm_create_from_group` collectively frees the just-built
//! communicator, returning its local CID, PML route and PGCID-family
//! reference. Every rank of the construction must drop (or complete) the
//! same request; see DESIGN.md §12 for the full contract.
//!
//! # Quick start: issue → progress → wait
//!
//! The canonical life of a setup request, on a two-process simulated job:
//! issuing puts the first stage on the wire, `test` drives it one step at
//! a time, and `wait` claims the constructed object.
//!
//! ```
//! use mpi_sessions::{ErrHandler, Info, MpiError, Session, ThreadLevel};
//! use prrte::{JobSpec, Launcher};
//! use simnet::SimTestbed;
//!
//! let launcher = Launcher::new(SimTestbed::tiny(1, 2));
//! let results = launcher
//!     .spawn(JobSpec::new(2), |ctx| {
//!         // Issue: the first stage has already run when this returns.
//!         let mut req =
//!             Session::init_i(&ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null());
//!         // Progress: step explicitly until the construction lands...
//!         while !req.test()? {}
//!         // ...and claim the built session (completes immediately here).
//!         let session = req.wait()?;
//!         session.finalize()?;
//!         Ok::<(), MpiError>(())
//!     })
//!     .join()
//!     .expect("job ran");
//! results.into_iter().for_each(|r| r.expect("rank succeeded"));
//! ```

use crate::error::{ErrClass, MpiError, Result};
use crate::instance::MpiProcess;
use crate::pml::{Pml, ResolveStatus};
use crate::status::Status;
use bytes::Bytes;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

/// What kind of operation a request tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// A send.
    Send,
    /// A receive.
    Recv,
    /// A non-blocking collective (driven by a poll hook).
    Coll,
}

/// Poll hook for collective requests: returns `Ok(true)` when the
/// collective has completed. Runs outside all PML locks.
pub type PollHook = Box<dyn FnMut() -> Result<bool> + Send>;

struct ReqState {
    done: bool,
    err: Option<MpiError>,
    status: Option<Status>,
    data: Option<Bytes>,
    hook: Option<PollHook>,
    /// The one endpoint whose process must act for this request to ever
    /// complete (a named-source receive's sender, a rendezvous send's
    /// destination). Fault-aware waits consult it to fail fast when that
    /// peer is already dead instead of burning their whole timeout budget.
    waiting_on: Option<simnet::EndpointId>,
}

/// Shared request core (engine side).
pub struct ReqInner {
    kind: ReqKind,
    state: Mutex<ReqState>,
}

impl ReqInner {
    /// New incomplete request.
    pub fn new(kind: ReqKind) -> Arc<Self> {
        Arc::new(Self {
            kind,
            state: Mutex::new(ReqState {
                done: false,
                err: None,
                status: None,
                data: None,
                hook: None,
                waiting_on: None,
            }),
        })
    }

    /// New collective request driven by `hook`.
    pub fn with_hook(hook: PollHook) -> Arc<Self> {
        let r = Self::new(ReqKind::Coll);
        r.state.lock().hook = Some(hook);
        r
    }

    /// The request kind.
    pub fn kind(&self) -> ReqKind {
        self.kind
    }

    /// Mark a send complete.
    pub fn complete_send(&self, len: usize) {
        let mut st = self.state.lock();
        st.status = Some(Status { source: -1, tag: -1, len });
        st.done = true;
    }

    /// Mark a receive complete with its payload.
    pub fn complete_recv(&self, status: Status, data: Bytes) {
        let mut st = self.state.lock();
        st.status = Some(status);
        st.data = Some(data);
        st.done = true;
    }

    /// Record match metadata before the payload arrives (rendezvous).
    pub fn set_status(&self, status: Status) {
        self.state.lock().status = Some(status);
    }

    /// Snapshot the status (may be pre-completion for rendezvous).
    pub fn status_snapshot(&self) -> Option<Status> {
        self.state.lock().status
    }

    /// Fail the request.
    pub fn fail(&self, err: MpiError) {
        let mut st = self.state.lock();
        st.err = Some(err);
        st.done = true;
    }

    /// Record the endpoint this request's completion depends on (set by
    /// the PML when the dependency is known: a named-source receive, a
    /// rendezvous send awaiting its CTS).
    pub fn set_waiting_on(&self, ep: simnet::EndpointId) {
        self.state.lock().waiting_on = Some(ep);
    }

    /// The endpoint this request is known to be waiting on, if any.
    pub fn waiting_on(&self) -> Option<simnet::EndpointId> {
        self.state.lock().waiting_on
    }

    /// Completion check; runs the poll hook for collective requests.
    fn poll(&self) -> Result<bool> {
        let hook = {
            let mut st = self.state.lock();
            if st.done {
                return match &st.err {
                    Some(e) => Err(e.clone()),
                    None => Ok(true),
                };
            }
            st.hook.take()
        };
        match hook {
            None => Ok(false),
            Some(mut h) => {
                let res = h();
                let mut st = self.state.lock();
                match res {
                    Ok(true) => {
                        st.done = true;
                        // Collectives carry no match metadata.
                        if st.status.is_none() {
                            st.status = Some(Status { source: -1, tag: -1, len: 0 });
                        }
                        Ok(true)
                    }
                    Ok(false) => {
                        st.hook = Some(h);
                        Ok(false)
                    }
                    Err(e) => {
                        st.err = Some(e.clone());
                        st.done = true;
                        Err(e)
                    }
                }
            }
        }
    }

    fn take_data(&self) -> Option<Bytes> {
        self.state.lock().data.take()
    }

    /// Whether the request has completed (engine-side check).
    pub fn is_done(&self) -> bool {
        self.state.lock().done
    }
}

/// A user-facing request handle bound to its process's progress engine.
pub struct Request {
    inner: Arc<ReqInner>,
    pml: Arc<Pml>,
}

impl Request {
    /// Wrap an engine request.
    pub fn new(inner: Arc<ReqInner>, pml: Arc<Pml>) -> Self {
        Self { inner, pml }
    }

    /// `MPI_Test`: progress once, then check completion.
    pub fn test(&mut self) -> Result<bool> {
        self.pml.progress(None);
        self.inner.poll()
    }

    /// `MPI_Wait`: progress until complete. Returns the status.
    pub fn wait(self) -> Result<Status> {
        loop {
            if self.inner.poll()? {
                return self
                    .inner
                    .status_snapshot()
                    .ok_or_else(|| MpiError::intern("completed request without status"));
            }
            self.pml.progress(Some(Duration::from_millis(1)));
        }
    }

    /// `MPI_Wait` with a logical deadline: progress until complete or
    /// until `budget` expires in logical time (wall budget elapsed AND
    /// fabric quiesced, [`pmix::LogicalDeadline`]). Expiry surfaces as an
    /// [`ErrClass::Timeout`] error naming the request kind; the request
    /// stays live and a later `test`/`wait` can still claim it.
    /// The wait also fails fast — typed [`ErrClass::ProcTerminated`], well
    /// before the budget expires — when the one peer this request depends
    /// on ([`ReqInner::waiting_on`]) is already dead and the fabric is
    /// quiet: nothing that could still complete the request is in flight,
    /// so burning the rest of the budget would only delay the verdict.
    pub fn wait_timeout(&mut self, budget: Duration) -> Result<Status> {
        let mut deadline = pmix::LogicalDeadline::new(self.pml.fabric(), budget);
        loop {
            if self.inner.poll()? {
                return self
                    .inner
                    .status_snapshot()
                    .ok_or_else(|| MpiError::intern("completed request without status"));
            }
            if let Some(ep) = self.inner.waiting_on() {
                let fabric = self.pml.fabric();
                if !fabric.is_alive(ep) && fabric.in_flight() == 0 {
                    // One final sweep: a completion the dead peer sent
                    // before dying may already sit in our mailbox, and a
                    // delivered message must always beat the verdict.
                    self.pml.progress(None);
                    if self.inner.poll()? {
                        return self
                            .inner
                            .status_snapshot()
                            .ok_or_else(|| MpiError::intern("completed request without status"));
                    }
                    let err = MpiError::new(
                        ErrClass::ProcTerminated,
                        format!(
                            "{:?} request waits on endpoint {ep:?}, whose process is dead \
                             and the fabric is quiet: it can never complete",
                            self.inner.kind()
                        ),
                    );
                    self.inner.fail(err.clone());
                    return Err(err);
                }
            }
            if deadline.expired() {
                return Err(MpiError::new(
                    ErrClass::Timeout,
                    format!("{:?} request timed out after {budget:?}", self.inner.kind()),
                ));
            }
            self.pml.progress(Some(Duration::from_millis(1)));
        }
    }

    /// [`Request::wait_timeout`] for receives: bounded wait returning the
    /// payload bytes and status. Same typed verdicts as `wait_timeout` —
    /// [`ErrClass::Timeout`] on budget expiry (the request stays live and
    /// can be retried), fast [`ErrClass::ProcTerminated`] when the one
    /// peer the receive depends on is dead and the fabric is quiet. This
    /// is the primitive fault-aware application loops build on: every
    /// blocking point has a bounded, typed exit instead of an unbounded
    /// park on a message that can never arrive.
    pub fn wait_data_timeout(&mut self, budget: Duration) -> Result<(Bytes, Status)> {
        let status = self.wait_timeout(budget)?;
        let data = self.inner.take_data().ok_or_else(|| {
            MpiError::new(
                ErrClass::Arg,
                "wait_data_timeout on a request with no payload (send?)",
            )
        })?;
        Ok((data, status))
    }

    /// `MPI_Wait` for receives, returning the payload bytes and status.
    pub fn wait_data(self) -> Result<(Bytes, Status)> {
        loop {
            if self.inner.poll()? {
                let status = self
                    .inner
                    .status_snapshot()
                    .ok_or_else(|| MpiError::intern("completed request without status"))?;
                let data = self.inner.take_data().ok_or_else(|| {
                    MpiError::new(ErrClass::Arg, "wait_data on a request with no payload (send?)")
                })?;
                return Ok((data, status));
            }
            self.pml.progress(Some(Duration::from_millis(1)));
        }
    }

    /// Wait for all requests (`MPI_Waitall`).
    ///
    /// Polls **round-robin** across the whole set. The obvious
    /// `for r in reqs { r.wait() }` is wrong for hook-driven (collective /
    /// setup) requests: their completion only advances when *their* hook
    /// is polled, so waiting in issue order livelocks when request 0 can
    /// only finish after a completion that request 1's hook must first
    /// observe. Completions arriving in any order now unblock the set.
    pub fn wait_all(reqs: Vec<Request>) -> Result<Vec<Status>> {
        let n = reqs.len();
        let mut out: Vec<Option<Status>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        // First failure by *issue index* (deterministic regardless of the
        // completion interleaving); the remaining requests are still
        // drained to terminal so none is left un-progressed.
        let mut first_err: Option<(usize, MpiError)> = None;
        let mut pending: Vec<(usize, Request)> = reqs.into_iter().enumerate().collect();
        while !pending.is_empty() {
            let mut advanced = false;
            let mut i = 0;
            while i < pending.len() {
                let (idx, req) = &pending[i];
                let idx = *idx;
                match req.inner.poll() {
                    Ok(false) => {
                        i += 1;
                        continue;
                    }
                    Ok(true) => {
                        out[idx] = req.inner.status_snapshot();
                    }
                    Err(e) => {
                        if first_err.as_ref().map(|(j, _)| idx < *j).unwrap_or(true) {
                            first_err = Some((idx, e));
                        }
                    }
                }
                pending.swap_remove(i);
                advanced = true;
            }
            if !pending.is_empty() && !advanced {
                pending[0].1.pml.progress(Some(Duration::from_millis(1)));
            }
        }
        if let Some((_, e)) = first_err {
            return Err(e);
        }
        out.into_iter()
            .map(|s| s.ok_or_else(|| MpiError::intern("completed request without status")))
            .collect()
    }

    /// Whether the request has already completed (no progress attempt).
    pub fn is_complete(&self) -> bool {
        self.inner.state.lock().done
    }

    /// Engine-side handle (internal plumbing for collectives).
    pub fn inner(&self) -> &Arc<ReqInner> {
        &self.inner
    }
}

impl std::fmt::Debug for Request {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Request")
            .field("kind", &self.inner.kind())
            .field("done", &self.inner.state.lock().done)
            .finish()
    }
}

// ----------------------------------------------------------------------
// The setup engine
// ----------------------------------------------------------------------

/// Outcome of polling one stage of a [`SetupRequest`].
pub enum SetupStep<T> {
    /// The stage is waiting on an external completion; poll again.
    Pending,
    /// The stage finished; continue with the given next stage.
    Next(Box<dyn SetupStage<T>>),
    /// The whole construction finished with the built object.
    Done(T),
}

/// One stage of a setup request's state machine. A stage may do arbitrary
/// synchronous work in `poll` (stages wrapping an inherently collective
/// exchange, like CID consensus, run it to completion in one poll — see
/// DESIGN.md §12); a stage waiting on an asynchronous completion returns
/// [`SetupStep::Pending`] and should override `park` with its real wake
/// source so blocking waiters do not spin.
pub trait SetupStage<T>: Send {
    /// Stage name (harness introspection and `req.progressed` telemetry).
    fn name(&self) -> &'static str;
    /// Attempt to advance the construction.
    fn poll(&mut self) -> Result<SetupStep<T>>;
    /// Block until `poll` may make progress, at most `limit`.
    fn park(&mut self, limit: Duration) {
        std::thread::sleep(limit.min(Duration::from_micros(200)));
    }
    /// What the stage is currently parked on (the stall watchdog's
    /// diagnosis: a peer, an endpoint, a PMIx op). `None` means the stage
    /// has nothing more specific to say than its name.
    fn waiting_on(&self) -> Option<String> {
        None
    }
    /// The one *process* whose cooperation this stage's completion depends
    /// on, when the stage knows it (a lazy resolution's target peer).
    /// Fault-aware waits consult it to fail the request fast — typed —
    /// once that peer is known dead, instead of burning the timeout.
    fn waiting_on_proc(&self) -> Option<pmix::ProcId> {
        None
    }
}

/// Watchdog-visible wrapper around one lazy peer resolution (lazy init's
/// on-demand business-card fetch; see [`Pml::resolve_status`]). The send
/// that triggered the resolution is an ordinary point-to-point request,
/// invisible to the [`ProgressEngine`] — issuing this stage alongside it
/// puts the resolution under the stall watchdog, so a fetch stuck on an
/// unpublished or partitioned peer produces a `req.stalled` diagnosis
/// naming the peer instead of a silent hang.
pub(crate) struct LazyResolveStage {
    pub(crate) pml: Arc<Pml>,
    pub(crate) peer: pmix::ProcId,
}

impl SetupStage<()> for LazyResolveStage {
    fn name(&self) -> &'static str {
        "lazy_resolve"
    }
    fn poll(&mut self) -> Result<SetupStep<()>> {
        match self.pml.resolve_status(&self.peer) {
            ResolveStatus::InFlight => Ok(SetupStep::Pending),
            // `Idle` is terminal here too: the resolution state was pruned
            // (e.g. a PML reset) after this stage was issued.
            ResolveStatus::Resolved | ResolveStatus::Idle => Ok(SetupStep::Done(())),
            ResolveStatus::Failed(e) => Err(e),
        }
    }
    fn park(&mut self, limit: Duration) {
        self.pml.progress(Some(limit));
    }
    fn waiting_on(&self) -> Option<String> {
        Some(format!("business card of {}", self.peer))
    }
    fn waiting_on_proc(&self) -> Option<pmix::ProcId> {
        Some(self.peer.clone())
    }
}

struct FnStage<T> {
    name: &'static str,
    f: Box<dyn FnMut() -> Result<SetupStep<T>> + Send>,
}

impl<T> SetupStage<T> for FnStage<T> {
    fn name(&self) -> &'static str {
        self.name
    }
    fn poll(&mut self) -> Result<SetupStep<T>> {
        (self.f)()
    }
}

/// Build a stage from a closure (the common case for local stages).
pub fn stage<T, F>(name: &'static str, f: F) -> Box<dyn SetupStage<T>>
where
    F: FnMut() -> Result<SetupStep<T>> + Send + 'static,
    T: 'static,
{
    Box::new(FnStage { name, f: Box::new(f) })
}

enum SetupPhase<T> {
    Running(Box<dyn SetupStage<T>>),
    /// Completed; `None` once the value has been claimed by `wait`/`take`.
    Done(Option<T>),
    Failed(MpiError),
}

static SETUP_REQ_IDS: AtomicU64 = AtomicU64::new(1);

struct SetupCore<T> {
    process: Arc<MpiProcess>,
    /// Operation label (`icomm_create_from_group`, …) for telemetry.
    op: &'static str,
    /// Process-unique request id carried on every `req.*` event, so the
    /// `request-terminal` invariant can pair issuance with termination.
    id: u64,
    /// The operation's outer span (e.g. `comm.create_from_group`),
    /// entered for the duration of every step so stage-created child
    /// spans parent correctly; ended when the request turns terminal.
    span: Option<obs::Span>,
    phase: SetupPhase<T>,
    /// Stage polls performed (diagnostics; `req.progressed` fires only on
    /// stage *transitions*).
    steps: u64,
    /// Blocking wrappers run quiet: no `req.*` telemetry, no engine
    /// registration — their observable behavior stays byte-identical to
    /// the historical blocking implementations.
    quiet: bool,
    /// Release action for a cancelled (dropped-before-claimed) result.
    cancel: Option<Box<dyn FnOnce(T) + Send>>,
    /// Engine sweeps since the last stage transition (the watchdog's
    /// logical-tick counter; wait/test polls do not count — a spinning
    /// waiter is making *attempts*, only engine sweeps define ticks).
    ticks: u64,
    /// Whether the watchdog has flagged this request as stalled.
    stalled: bool,
}

impl<T> SetupCore<T> {
    fn is_terminal(&self) -> bool {
        !matches!(self.phase, SetupPhase::Running(_))
    }

    fn stage_name(&self) -> &'static str {
        match &self.phase {
            SetupPhase::Running(s) => s.name(),
            SetupPhase::Done(_) => "done",
            SetupPhase::Failed(_) => "failed",
        }
    }

    fn emit(&self, name: &str, extra: Vec<(String, obs::AttrValue)>) {
        if self.quiet {
            return;
        }
        let obs = self.process.obs();
        let p = self.process.proc().to_string();
        let mut attrs: Vec<(String, obs::AttrValue)> = vec![
            ("op".into(), self.op.into()),
            ("id".into(), self.id.into()),
        ];
        attrs.extend(extra);
        obs.event(&p, "req", name, attrs);
    }

    /// Run at most one stage poll (and so at most one stage transition).
    /// Returns whether the request advanced (stage transition or terminal)
    /// — the signal the stall watchdog keys on.
    fn step(&mut self) -> bool {
        let SetupPhase::Running(stage) = &mut self.phase else {
            return false;
        };
        self.steps += 1;
        let from = stage.name();
        let res = match &self.span {
            Some(span) => {
                let _entered = span.enter();
                stage.poll()
            }
            None => stage.poll(),
        };
        match res {
            Ok(SetupStep::Pending) => false,
            Ok(SetupStep::Next(next)) => {
                let to = next.name();
                self.phase = SetupPhase::Running(next);
                self.note_progress(from);
                self.emit(
                    "req.progressed",
                    vec![("from".into(), from.into()), ("to".into(), to.into())],
                );
                true
            }
            Ok(SetupStep::Done(v)) => {
                self.phase = SetupPhase::Done(Some(v));
                self.note_progress(from);
                if let Some(span) = self.span.take() {
                    span.end();
                }
                self.emit("req.completed", vec![("stage".into(), from.into())]);
                if !self.quiet {
                    let p = self.process.proc().to_string();
                    self.process.obs().counter(&p, "req", "completed").inc();
                }
                true
            }
            Err(e) => {
                self.note_progress(from);
                self.emit(
                    "req.failed",
                    vec![
                        ("stage".into(), from.into()),
                        ("error".into(), e.to_string().into()),
                    ],
                );
                if !self.quiet {
                    let p = self.process.proc().to_string();
                    self.process.obs().counter(&p, "req", "failed").inc();
                }
                self.phase = SetupPhase::Failed(e);
                if let Some(span) = self.span.take() {
                    span.end();
                }
                true
            }
        }
    }

    /// The request advanced out of `from`: reset the watchdog tick counter
    /// and, if the watchdog had flagged a stall, emit the matching
    /// `req.unstalled` (heal notification). Runs on *every* driver —
    /// engine sweep, `wait`, `test`, cancellation drain — so a stall
    /// always clears the moment progress resumes, whoever caused it.
    fn note_progress(&mut self, from: &'static str) {
        self.ticks = 0;
        if self.stalled {
            self.stalled = false;
            self.emit("req.unstalled", vec![("stage".into(), from.into())]);
        }
    }

    /// One engine sweep passed without progress. Crossing `stall_after`
    /// consecutive profitless sweeps fires the watchdog: a single
    /// `req.stalled` event carrying the structured diagnosis (stage,
    /// what it is parked on, poll count, tick count).
    fn tick(&mut self, stall_after: u64) {
        self.ticks += 1;
        if self.stalled || self.ticks < stall_after {
            return;
        }
        self.stalled = true;
        let (stage, waiting) = match &self.phase {
            SetupPhase::Running(s) => (s.name(), self.waiting_desc()),
            _ => return,
        };
        self.emit(
            "req.stalled",
            vec![
                ("stage".into(), stage.into()),
                ("waiting_on".into(), waiting.into()),
                ("steps".into(), self.steps.into()),
                ("ticks".into(), self.ticks.into()),
            ],
        );
    }

    /// The peer the current stage says it depends on, if any.
    fn waiting_on_proc(&self) -> Option<pmix::ProcId> {
        match &self.phase {
            SetupPhase::Running(s) => s.waiting_on_proc(),
            _ => None,
        }
    }

    /// Terminally fail the request from outside a stage poll (the
    /// fault-aware wait's dead-peer verdict). Emits the same telemetry as
    /// a stage failure so the request-terminal invariant still pairs
    /// issuance with termination.
    fn fail(&mut self, e: MpiError) {
        let from = self.stage_name();
        self.note_progress(from);
        self.emit(
            "req.failed",
            vec![
                ("stage".into(), from.into()),
                ("error".into(), e.to_string().into()),
            ],
        );
        if !self.quiet {
            let p = self.process.proc().to_string();
            self.process.obs().counter(&p, "req", "failed").inc();
        }
        self.phase = SetupPhase::Failed(e);
        if let Some(span) = self.span.take() {
            span.end();
        }
    }

    /// What the request is parked on right now (stage-provided detail,
    /// falling back to the stage name).
    fn waiting_desc(&self) -> String {
        match &self.phase {
            SetupPhase::Running(s) => {
                s.waiting_on().unwrap_or_else(|| format!("stage '{}'", s.name()))
            }
            SetupPhase::Done(_) => "nothing (done)".to_string(),
            SetupPhase::Failed(_) => "nothing (failed)".to_string(),
        }
    }

    /// One-line structured diagnosis (timeout errors, `Debug`, dumps).
    fn diagnosis(&self) -> String {
        format!(
            "op={} id={} stage={} steps={} ticks={} stalled={} parked_on={}",
            self.op,
            self.id,
            self.stage_name(),
            self.steps,
            self.ticks,
            self.stalled,
            self.waiting_desc(),
        )
    }

    fn snapshot(&self) -> ReqSnapshot {
        ReqSnapshot {
            op: self.op,
            id: self.id,
            stage: self.stage_name(),
            steps: self.steps,
            ticks: self.ticks,
            stalled: self.stalled,
            waiting_on: match &self.phase {
                SetupPhase::Running(s) => s.waiting_on(),
                _ => None,
            },
        }
    }

    fn park(&mut self, limit: Duration) {
        if let SetupPhase::Running(stage) = &mut self.phase {
            stage.park(limit);
        }
    }
}

/// Point-in-time description of one in-flight setup request, as reported
/// by [`ProgressEngine::describe`] (the flight recorder's `requests`
/// section).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReqSnapshot {
    /// Operation label (`icomm_create_from_group`, …).
    pub op: &'static str,
    /// Process-unique request id.
    pub id: u64,
    /// Current stage name (`"done"` / `"failed"` once terminal).
    pub stage: &'static str,
    /// Stage polls performed.
    pub steps: u64,
    /// Engine sweeps since the last stage transition.
    pub ticks: u64,
    /// Whether the stall watchdog has flagged the request.
    pub stalled: bool,
    /// Stage-provided description of what the request is parked on.
    pub waiting_on: Option<String>,
}

/// Engine-side view of an in-flight setup request (type-erased so one
/// [`ProgressEngine`] drives requests of every construction type).
trait EngineStep: Send + Sync {
    /// Try to step once; `true` when the request is terminal. A request
    /// currently being driven by another thread is skipped (not stalled
    /// on: whoever holds the lock is already making progress). A step
    /// that makes no progress accrues one watchdog tick; crossing
    /// `stall_after` ticks fires the stall diagnosis.
    fn engine_step(&self, stall_after: u64) -> bool;
    fn is_terminal(&self) -> bool;
    /// Point-in-time description (`None` while another thread drives it).
    fn snapshot(&self) -> Option<ReqSnapshot>;
}

impl<T: Send + 'static> EngineStep for Mutex<SetupCore<T>> {
    fn engine_step(&self, stall_after: u64) -> bool {
        match self.try_lock() {
            Some(mut core) => {
                let advanced = core.step();
                if !advanced && !core.is_terminal() {
                    core.tick(stall_after);
                }
                core.is_terminal()
            }
            None => false,
        }
    }
    fn is_terminal(&self) -> bool {
        self.try_lock().is_some_and(|c| c.is_terminal())
    }
    fn snapshot(&self) -> Option<ReqSnapshot> {
        self.try_lock().map(|c| c.snapshot())
    }
}

/// Default stall threshold: engine sweeps a request may sit in one stage
/// without progress before the watchdog emits `req.stalled`. High enough
/// that ordinary in-flight exchanges (a fan-out crossing a slow fabric)
/// never trip it; tests shrink it through the `core.stall_ticks` cvar to
/// fire deterministically.
pub const DEFAULT_STALL_TICKS: u64 = 64;

/// The per-process progress engine for setup requests: every issued
/// `i`-variant registers here, and [`ProgressEngine::progress`] steps each
/// in-flight request once. This is the seam the interleaving test harness
/// single-steps, and the hook a future virtual-time backend replaces
/// (blocked = parked request, not parked thread).
///
/// The engine doubles as the **stall watchdog**: a sweep that fails to
/// advance a request accrues one logical tick against it, and a request
/// exceeding the stall threshold gets a structured `req.stalled` diagnosis
/// (cleared by `req.unstalled` the moment it moves again). Quiet blocking
/// wrappers never register, so the watchdog cannot fire on them.
pub struct ProgressEngine {
    slots: Mutex<Vec<Weak<dyn EngineStep>>>,
    stall_after: AtomicU64,
}

impl Default for ProgressEngine {
    fn default() -> Self {
        Self { slots: Mutex::new(Vec::new()), stall_after: AtomicU64::new(DEFAULT_STALL_TICKS) }
    }
}

impl ProgressEngine {
    fn register(&self, s: Weak<dyn EngineStep>) {
        self.slots.lock().push(s);
    }

    /// Current stall threshold (engine sweeps without progress).
    pub fn stall_ticks(&self) -> u64 {
        self.stall_after.load(Ordering::Relaxed)
    }

    /// Tune the stall threshold (clamped to ≥ 1). Exposed as the
    /// per-process `core.stall_ticks` cvar.
    pub fn set_stall_ticks(&self, ticks: u64) {
        self.stall_after.store(ticks.max(1), Ordering::Relaxed);
    }

    /// Describe every registered in-flight request (terminal and
    /// currently-driven ones excluded), sorted by request id — the flight
    /// recorder's per-process `requests` section.
    pub fn describe(&self) -> Vec<ReqSnapshot> {
        let snapshot: Vec<Weak<dyn EngineStep>> = self.slots.lock().clone();
        let mut out: Vec<ReqSnapshot> = snapshot
            .iter()
            .filter_map(|w| w.upgrade())
            .filter_map(|s| s.snapshot())
            .filter(|r| r.stage != "done" && r.stage != "failed")
            .collect();
        out.sort_by_key(|r| r.id);
        out
    }

    /// Step every live in-flight request once; prune completed and dropped
    /// ones. Returns how many requests remain in flight.
    pub fn progress(&self) -> usize {
        let stall_after = self.stall_after.load(Ordering::Relaxed);
        // Snapshot the weak handles so stage polls (which may send, park
        // briefly, or re-enter the engine's owner) run outside our lock.
        let snapshot: Vec<Weak<dyn EngineStep>> = self.slots.lock().clone();
        for w in &snapshot {
            if let Some(s) = w.upgrade() {
                s.engine_step(stall_after);
            }
        }
        let mut live = 0;
        self.slots.lock().retain(|w| match w.upgrade() {
            Some(s) if !s.is_terminal() => {
                live += 1;
                true
            }
            _ => false,
        });
        live
    }

    /// Registered requests not yet terminal (without stepping them).
    pub fn in_flight(&self) -> usize {
        self.slots
            .lock()
            .iter()
            .filter(|w| w.upgrade().is_some_and(|s| !s.is_terminal()))
            .count()
    }
}

impl std::fmt::Debug for ProgressEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressEngine")
            .field("in_flight", &self.in_flight())
            .finish()
    }
}

/// A multi-stage nonblocking construction request (see the module docs).
pub struct SetupRequest<T: Send + 'static> {
    core: Arc<Mutex<SetupCore<T>>>,
}

impl<T: Send + 'static> SetupRequest<T> {
    /// Issue a construction: emit `req.issued`, register with the owning
    /// process's [`ProgressEngine`], and run the first stage synchronously
    /// — so by the time `issue` returns, the request's opening exchange
    /// (e.g. the PMIx fan-in carrying its PGCID demand) is on the wire.
    pub(crate) fn issue(
        process: Arc<MpiProcess>,
        op: &'static str,
        span: Option<obs::Span>,
        quiet: bool,
        first: Box<dyn SetupStage<T>>,
        cancel: Option<Box<dyn FnOnce(T) + Send>>,
    ) -> SetupRequest<T> {
        let id = SETUP_REQ_IDS.fetch_add(1, Ordering::Relaxed);
        let core = Arc::new(Mutex::new(SetupCore {
            process,
            op,
            id,
            span,
            phase: SetupPhase::Running(first),
            steps: 0,
            quiet,
            cancel,
            ticks: 0,
            stalled: false,
        }));
        {
            let mut c = core.lock();
            c.emit("req.issued", vec![("stage".into(), c.stage_name().into())]);
            if !quiet {
                let p = c.process.proc().to_string();
                c.process.obs().counter(&p, "req", "issued").inc();
                let weak: Weak<Mutex<SetupCore<T>>> = Arc::downgrade(&core);
                c.process.progress_engine().register(weak);
            }
            c.step();
        }
        SetupRequest { core }
    }

    /// One engine step. `Ok(true)` once the construction has completed
    /// (the value is claimed by [`SetupRequest::wait`]); a failed
    /// construction surfaces its error on every call (sticky).
    pub fn test(&mut self) -> Result<bool> {
        let mut core = self.core.lock();
        core.step();
        match &core.phase {
            SetupPhase::Running(_) => Ok(false),
            SetupPhase::Done(_) => Ok(true),
            SetupPhase::Failed(e) => Err(e.clone()),
        }
    }

    /// Drive to completion and claim the constructed object.
    pub fn wait(self) -> Result<T> {
        loop {
            let mut core = self.core.lock();
            core.step();
            match &mut core.phase {
                SetupPhase::Running(_) => core.park(Duration::from_millis(1)),
                SetupPhase::Done(v) => {
                    return v
                        .take()
                        .ok_or_else(|| MpiError::intern("setup result already claimed"));
                }
                SetupPhase::Failed(e) => return Err(e.clone()),
            }
        }
    }

    /// Drive to completion, giving up once `budget` expires in *logical*
    /// time ([`pmix::LogicalDeadline`]: the wall budget must elapse AND
    /// the fabric must quiesce, so injected delays defer expiry instead of
    /// flipping the outcome). On expiry the error carries the watchdog's
    /// structured stall diagnosis — current stage, what the request is
    /// parked on, poll and tick counts — instead of leaving the caller to
    /// guess why a wait hung. The request stays in flight: the caller can
    /// keep waiting, test, or drop it (collective cancellation as usual).
    pub fn wait_timeout(&mut self, budget: Duration) -> Result<T> {
        let fabric = self.core.lock().process.universe().fabric().clone();
        let mut deadline = pmix::LogicalDeadline::new(fabric, budget);
        loop {
            let mut core = self.core.lock();
            core.step();
            match &mut core.phase {
                SetupPhase::Running(_) => {
                    // Fail fast on a stage parked on a peer that is
                    // already dead: the stage can never complete, so the
                    // request turns terminal (typed) rather than timing
                    // out — and rather than hanging the collective drop.
                    if let Some(peer) = core.waiting_on_proc() {
                        if core.process.universe().proc_is_dead(&peer) {
                            let err = MpiError::new(
                                ErrClass::ProcTerminated,
                                format!(
                                    "setup request waits on dead peer {peer}: {}",
                                    core.diagnosis()
                                ),
                            );
                            core.fail(err.clone());
                            return Err(err);
                        }
                    }
                    if deadline.expired() {
                        return Err(MpiError::new(
                            ErrClass::Timeout,
                            format!("setup request timed out: {}", core.diagnosis()),
                        ));
                    }
                    core.park(Duration::from_millis(1));
                }
                SetupPhase::Done(v) => {
                    return v
                        .take()
                        .ok_or_else(|| MpiError::intern("setup result already claimed"));
                }
                SetupPhase::Failed(e) => return Err(e.clone()),
            }
        }
    }

    /// Whether the request is terminal (no progress attempt).
    pub fn is_complete(&self) -> bool {
        self.core.lock().is_terminal()
    }

    /// Whether the stall watchdog currently flags this request.
    pub fn is_stalled(&self) -> bool {
        self.core.lock().stalled
    }

    /// One-line structured diagnosis: op, id, stage, poll/tick counts and
    /// what the request is parked on (same rendering `wait_timeout`
    /// embeds in its timeout error).
    pub fn diagnosis(&self) -> String {
        self.core.lock().diagnosis()
    }

    /// Current stage name (`"done"` / `"failed"` once terminal).
    pub fn stage(&self) -> &'static str {
        self.core.lock().stage_name()
    }

    /// The operation label this request was issued under.
    pub fn op(&self) -> &'static str {
        self.core.lock().op
    }

    /// Process-unique request id (telemetry correlation).
    pub fn id(&self) -> u64 {
        self.core.lock().id
    }

    /// Stage polls performed so far (diagnostics).
    pub fn steps(&self) -> u64 {
        self.core.lock().steps
    }
}

impl<T: Send + 'static> Drop for SetupRequest<T> {
    fn drop(&mut self) {
        // Cancellation is *collective*: drive the construction to a
        // terminal state (the exchange completes on every rank — walking
        // away mid-collective would strand the peers), then release the
        // unclaimed result via the op's cancel action. A request whose
        // value was claimed by `wait` carries `Done(None)` and is a no-op
        // here; a failed request has nothing to release.
        loop {
            let mut core = self.core.lock();
            match &mut core.phase {
                SetupPhase::Running(_) => {
                    core.step();
                    if !core.is_terminal() {
                        core.park(Duration::from_millis(1));
                    }
                }
                SetupPhase::Done(v) => {
                    if let Some(v) = v.take() {
                        let cancel = core.cancel.take();
                        core.emit("req.cancelled", Vec::new());
                        if !core.quiet {
                            let p = core.process.proc().to_string();
                            core.process.obs().counter(&p, "req", "cancelled").inc();
                        }
                        drop(core);
                        if let Some(c) = cancel {
                            c(v);
                        }
                    }
                    return;
                }
                SetupPhase::Failed(_) => return,
            }
        }
    }
}

impl<T: Send + 'static> std::fmt::Debug for SetupRequest<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let core = self.core.lock();
        f.debug_struct("SetupRequest")
            .field("op", &core.op)
            .field("id", &core.id)
            .field("stage", &core.stage_name())
            .field("steps", &core.steps)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_send_sets_status() {
        let r = ReqInner::new(ReqKind::Send);
        assert!(!r.poll().unwrap());
        r.complete_send(10);
        assert!(r.poll().unwrap());
        assert_eq!(r.status_snapshot().unwrap().len, 10);
    }

    #[test]
    fn fail_surfaces_error() {
        let r = ReqInner::new(ReqKind::Recv);
        r.fail(MpiError::new(ErrClass::ProcFailed, "peer died"));
        assert_eq!(r.poll().unwrap_err().class, ErrClass::ProcFailed);
    }

    #[test]
    fn hook_drives_completion() {
        let mut count = 0;
        let r = ReqInner::with_hook(Box::new(move || {
            count += 1;
            Ok(count >= 3)
        }));
        assert!(!r.poll().unwrap());
        assert!(!r.poll().unwrap());
        assert!(r.poll().unwrap());
        // Once done, stays done without re-running the hook.
        assert!(r.poll().unwrap());
    }

    #[test]
    fn hook_error_is_sticky() {
        let r = ReqInner::with_hook(Box::new(|| Err(MpiError::intern("boom"))));
        assert!(r.poll().is_err());
        assert!(r.poll().is_err());
    }
}
