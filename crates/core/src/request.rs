//! Request objects (`MPI_Request`): completion tracking for non-blocking
//! operations, plus the poll-hook mechanism that implements non-blocking
//! collectives (`MPI_Ibarrier`) as state machines driven by `test`/`wait`.

use crate::error::{ErrClass, MpiError, Result};
use crate::pml::Pml;
use crate::status::Status;
use bytes::Bytes;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// What kind of operation a request tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// A send.
    Send,
    /// A receive.
    Recv,
    /// A non-blocking collective (driven by a poll hook).
    Coll,
}

/// Poll hook for collective requests: returns `Ok(true)` when the
/// collective has completed. Runs outside all PML locks.
pub type PollHook = Box<dyn FnMut() -> Result<bool> + Send>;

struct ReqState {
    done: bool,
    err: Option<MpiError>,
    status: Option<Status>,
    data: Option<Bytes>,
    hook: Option<PollHook>,
}

/// Shared request core (engine side).
pub struct ReqInner {
    kind: ReqKind,
    state: Mutex<ReqState>,
}

impl ReqInner {
    /// New incomplete request.
    pub fn new(kind: ReqKind) -> Arc<Self> {
        Arc::new(Self {
            kind,
            state: Mutex::new(ReqState {
                done: false,
                err: None,
                status: None,
                data: None,
                hook: None,
            }),
        })
    }

    /// New collective request driven by `hook`.
    pub fn with_hook(hook: PollHook) -> Arc<Self> {
        let r = Self::new(ReqKind::Coll);
        r.state.lock().hook = Some(hook);
        r
    }

    /// The request kind.
    pub fn kind(&self) -> ReqKind {
        self.kind
    }

    /// Mark a send complete.
    pub fn complete_send(&self, len: usize) {
        let mut st = self.state.lock();
        st.status = Some(Status { source: -1, tag: -1, len });
        st.done = true;
    }

    /// Mark a receive complete with its payload.
    pub fn complete_recv(&self, status: Status, data: Bytes) {
        let mut st = self.state.lock();
        st.status = Some(status);
        st.data = Some(data);
        st.done = true;
    }

    /// Record match metadata before the payload arrives (rendezvous).
    pub fn set_status(&self, status: Status) {
        self.state.lock().status = Some(status);
    }

    /// Snapshot the status (may be pre-completion for rendezvous).
    pub fn status_snapshot(&self) -> Option<Status> {
        self.state.lock().status
    }

    /// Fail the request.
    pub fn fail(&self, err: MpiError) {
        let mut st = self.state.lock();
        st.err = Some(err);
        st.done = true;
    }

    /// Completion check; runs the poll hook for collective requests.
    fn poll(&self) -> Result<bool> {
        let hook = {
            let mut st = self.state.lock();
            if st.done {
                return match &st.err {
                    Some(e) => Err(e.clone()),
                    None => Ok(true),
                };
            }
            st.hook.take()
        };
        match hook {
            None => Ok(false),
            Some(mut h) => {
                let res = h();
                let mut st = self.state.lock();
                match res {
                    Ok(true) => {
                        st.done = true;
                        // Collectives carry no match metadata.
                        if st.status.is_none() {
                            st.status = Some(Status { source: -1, tag: -1, len: 0 });
                        }
                        Ok(true)
                    }
                    Ok(false) => {
                        st.hook = Some(h);
                        Ok(false)
                    }
                    Err(e) => {
                        st.err = Some(e.clone());
                        st.done = true;
                        Err(e)
                    }
                }
            }
        }
    }

    fn take_data(&self) -> Option<Bytes> {
        self.state.lock().data.take()
    }

    /// Whether the request has completed (engine-side check).
    pub fn is_done(&self) -> bool {
        self.state.lock().done
    }
}

/// A user-facing request handle bound to its process's progress engine.
pub struct Request {
    inner: Arc<ReqInner>,
    pml: Arc<Pml>,
}

impl Request {
    /// Wrap an engine request.
    pub fn new(inner: Arc<ReqInner>, pml: Arc<Pml>) -> Self {
        Self { inner, pml }
    }

    /// `MPI_Test`: progress once, then check completion.
    pub fn test(&mut self) -> Result<bool> {
        self.pml.progress(None);
        self.inner.poll()
    }

    /// `MPI_Wait`: progress until complete. Returns the status.
    pub fn wait(self) -> Result<Status> {
        loop {
            if self.inner.poll()? {
                return self
                    .inner
                    .status_snapshot()
                    .ok_or_else(|| MpiError::intern("completed request without status"));
            }
            self.pml.progress(Some(Duration::from_millis(1)));
        }
    }

    /// `MPI_Wait` for receives, returning the payload bytes and status.
    pub fn wait_data(self) -> Result<(Bytes, Status)> {
        loop {
            if self.inner.poll()? {
                let status = self
                    .inner
                    .status_snapshot()
                    .ok_or_else(|| MpiError::intern("completed request without status"))?;
                let data = self.inner.take_data().ok_or_else(|| {
                    MpiError::new(ErrClass::Arg, "wait_data on a request with no payload (send?)")
                })?;
                return Ok((data, status));
            }
            self.pml.progress(Some(Duration::from_millis(1)));
        }
    }

    /// Wait for all requests (`MPI_Waitall`).
    pub fn wait_all(reqs: Vec<Request>) -> Result<Vec<Status>> {
        reqs.into_iter().map(|r| r.wait()).collect()
    }

    /// Whether the request has already completed (no progress attempt).
    pub fn is_complete(&self) -> bool {
        self.inner.state.lock().done
    }

    /// Engine-side handle (internal plumbing for collectives).
    pub fn inner(&self) -> &Arc<ReqInner> {
        &self.inner
    }
}

impl std::fmt::Debug for Request {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Request")
            .field("kind", &self.inner.kind())
            .field("done", &self.inner.state.lock().done)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_send_sets_status() {
        let r = ReqInner::new(ReqKind::Send);
        assert!(!r.poll().unwrap());
        r.complete_send(10);
        assert!(r.poll().unwrap());
        assert_eq!(r.status_snapshot().unwrap().len, 10);
    }

    #[test]
    fn fail_surfaces_error() {
        let r = ReqInner::new(ReqKind::Recv);
        r.fail(MpiError::new(ErrClass::ProcFailed, "peer died"));
        assert_eq!(r.poll().unwrap_err().class, ErrClass::ProcFailed);
    }

    #[test]
    fn hook_drives_completion() {
        let mut count = 0;
        let r = ReqInner::with_hook(Box::new(move || {
            count += 1;
            Ok(count >= 3)
        }));
        assert!(!r.poll().unwrap());
        assert!(!r.poll().unwrap());
        assert!(r.poll().unwrap());
        // Once done, stays done without re-running the hook.
        assert!(r.poll().unwrap());
    }

    #[test]
    fn hook_error_is_sticky() {
        let r = ReqInner::with_hook(Box::new(|| Err(MpiError::intern("boom"))));
        assert!(r.poll().is_err());
        assert!(r.poll().is_err());
    }
}
