//! The World Process Model: `MPI_Init` / `MPI_Finalize`.
//!
//! Implemented *as an internal session* (paper §III-B5: "the legacy MPI-3
//! initialization and finalize functions were restructured to create and
//! finalize an internal MPI Session that also initializes the World
//! Process Model built-in MPI objects"). Differences from a plain session:
//!
//! * **eager**: every subsystem is brought up at init;
//! * **global exchange**: a PMIx business-card commit + collecting fence
//!   over the whole job (the `add_procs`/modex analog — this is the
//!   startup cost Fig. 3 measures for the baseline);
//! * **built-ins**: `MPI_COMM_WORLD` (local CID 0) and `MPI_COMM_SELF`
//!   (local CID 1) with globally agreed CIDs;
//! * **once-only**: per MPI-3 semantics, `init` may run once per process
//!   lifetime — the very restriction the Sessions model removes.

use crate::comm::{CidOrigin, Comm};
use crate::error::{ErrClass, MpiError, Result};
use crate::group::{MpiGroup, ProcRef};
use crate::instance::{MpiProcess, SUBSYSTEMS};
use crate::session::ThreadLevel;
use parking_lot::Mutex;
use prrte::ProcCtx;
use simnet::EndpointId;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Guards MPI-3 "initialize once" semantics per simulated process.
static WPM_USED: Mutex<Option<HashSet<EndpointId>>> = Mutex::new(None);

/// A World Process Model instance: the owner of `MPI_COMM_WORLD`.
pub struct World {
    process: Arc<MpiProcess>,
    comm_world: Comm,
    comm_self: Comm,
    finalized: AtomicBool,
    thread_level: ThreadLevel,
}

/// `MPI_Init`.
pub fn init(ctx: &ProcCtx) -> Result<World> {
    init_thread(ctx, ThreadLevel::Single)
}

/// `MPI_Init_thread`.
pub fn init_thread(ctx: &ProcCtx, requested: ThreadLevel) -> Result<World> {
    let process = MpiProcess::obtain(ctx);
    {
        let mut used = WPM_USED.lock();
        let set = used.get_or_insert_with(HashSet::new);
        if !set.insert(ctx.endpoint().id()) {
            return Err(MpiError::new(
                ErrClass::Other,
                "MPI_Init called twice: the World Process Model cannot be re-initialized \
                 (use MPI Sessions for repeatable initialization)",
            ));
        }
    }
    // Eager initialization of every subsystem.
    process.acquire_instance(SUBSYSTEMS);

    // The add_procs/modex analog. Per paper §III-B1, Open MPI's startup
    // only discovers *node-local* processes eagerly; remote peers are
    // resolved on first communication (direct modex). So: publish our
    // business card, then a plain (non-collecting) fence across the job.
    let pmix = process.pmix();
    pmix.put(pmix::value::keys::ENDPOINT, pmix::PmixValue::U64(ctx.endpoint().id().0));
    pmix.commit();
    let registry = process.universe().registry();
    let nspace = registry.namespace(process.proc().nspace())?;
    let all: Vec<pmix::ProcId> = nspace.procs().iter().map(|p| p.proc.clone()).collect();
    pmix.fence(&all, false)?;

    // Built-in communicators on reserved CIDs.
    let world_group = MpiGroup::from_members(
        nspace
            .procs()
            .iter()
            .map(|p| ProcRef { proc: p.proc.clone(), endpoint: p.endpoint })
            .collect(),
    )
    .bind(process.clone());
    let me = registry.locate(process.proc())?;
    let self_group = MpiGroup::from_members(vec![ProcRef {
        proc: process.proc().clone(),
        endpoint: me.endpoint,
    }])
    .bind(process.clone());

    process.claim_cid(0)?;
    process.claim_cid(1)?;
    let comm_world = Comm::build(
        process.clone(),
        world_group,
        0,
        None,
        CidOrigin::Builtin,
        Some(0),
        None,
    )?;
    let comm_self = Comm::build(
        process.clone(),
        self_group,
        1,
        None,
        CidOrigin::Builtin,
        Some(1),
        None,
    )?;
    Ok(World {
        process,
        comm_world,
        comm_self,
        finalized: AtomicBool::new(false),
        thread_level: requested,
    })
}

impl World {
    /// `MPI_COMM_WORLD`.
    pub fn comm(&self) -> &Comm {
        &self.comm_world
    }

    /// `MPI_COMM_SELF`.
    pub fn comm_self(&self) -> &Comm {
        &self.comm_self
    }

    /// Shortcut: rank in `MPI_COMM_WORLD`.
    pub fn rank(&self) -> u32 {
        self.comm_world.rank()
    }

    /// Shortcut: size of `MPI_COMM_WORLD`.
    pub fn size(&self) -> u32 {
        self.comm_world.size()
    }

    /// The granted thread level (`MPI_Query_thread`).
    pub fn thread_level(&self) -> ThreadLevel {
        self.thread_level
    }

    /// The owning process (crate plumbing, e.g. for the QUO layer).
    pub fn mpi_process(&self) -> &Arc<MpiProcess> {
        &self.process
    }

    /// `MPI_Finalize`: tears down the built-ins and releases the internal
    /// session. Sessions may still be open (the models coexist); the
    /// library fully cleans up when the last instance goes.
    pub fn finalize(self) -> Result<()> {
        if self.finalized.swap(true, Ordering::AcqRel) {
            return Err(MpiError::new(ErrClass::Other, "MPI_Finalize called twice"));
        }
        self.process.pml().unregister_comm(self.comm_world.local_cid());
        self.process.pml().unregister_comm(self.comm_self.local_cid());
        self.process.release_cid(0);
        self.process.release_cid(1);
        self.process.release_instance(SUBSYSTEMS);
        Ok(())
    }
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("rank", &self.rank())
            .field("size", &self.size())
            .finish()
    }
}
